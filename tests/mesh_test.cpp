// Tests for src/mesh: TriMesh invariants, structured meshers, Delaunay
// triangulation properties (empty circumcircles, full coverage), and the
// refinement loop that substitutes for Shewchuk's Triangle.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/delaunay.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"
#include "mesh/tri_mesh.h"

namespace sckl::mesh {
namespace {

using geometry::BoundingBox;
using geometry::Point2;

TEST(TriMesh, BasicInvariants) {
  const std::vector<Point2> verts = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const std::vector<TriMesh::TriangleIndices> tris = {{0, 1, 2}, {1, 3, 2}};
  const TriMesh mesh(verts, tris);
  EXPECT_EQ(mesh.num_vertices(), 4u);
  EXPECT_EQ(mesh.num_triangles(), 2u);
  EXPECT_NEAR(mesh.area(0), 0.5, 1e-12);
  EXPECT_NEAR(mesh.quality().total_area, 1.0, 1e-12);
  const Point2 c = mesh.centroid(0);
  EXPECT_NEAR(c.x, 1.0 / 3.0, 1e-12);
}

TEST(TriMesh, NormalizesWindingToCcw) {
  // Clockwise input triangle gets flipped.
  const std::vector<Point2> verts = {{0, 0}, {0, 1}, {1, 0}};
  const TriMesh mesh(verts, {{0, 1, 2}});
  const geometry::Triangle t = mesh.triangle(0);
  EXPECT_GT(geometry::orientation(t.p[0], t.p[1], t.p[2]), 0.0);
}

TEST(TriMesh, RejectsBadInput) {
  const std::vector<Point2> verts = {{0, 0}, {1, 0}, {2, 0}};
  EXPECT_THROW(TriMesh(verts, {{0, 1, 2}}), Error);  // degenerate
  EXPECT_THROW(TriMesh(verts, {{0, 1, 5}}), Error);  // out of range
  EXPECT_THROW(TriMesh({}, {}), Error);
  EXPECT_THROW(TriMesh(verts, {}), Error);
}

class StructuredMeshTest
    : public ::testing::TestWithParam<StructuredPattern> {};

TEST_P(StructuredMeshTest, CoversDomainExactly) {
  const BoundingBox die = BoundingBox::unit_die();
  const TriMesh mesh = structured_mesh(die, 7, 5, GetParam());
  const MeshQuality q = mesh.quality();
  EXPECT_NEAR(q.total_area, die.area(), 1e-9);
  const std::size_t per_cell =
      GetParam() == StructuredPattern::kDiagonal ? 2 : 4;
  EXPECT_EQ(mesh.num_triangles(), 7u * 5u * per_cell);
}

TEST_P(StructuredMeshTest, QualityOnSquareCells) {
  const TriMesh mesh =
      structured_mesh(BoundingBox::unit_die(), 10, 10, GetParam());
  // Square cells split diagonally or crosswise: min angle exactly 45 deg.
  EXPECT_NEAR(mesh.quality().min_angle_degrees, 45.0, 1e-9);
}

TEST_P(StructuredMeshTest, ForCountReachesTarget) {
  const TriMesh mesh =
      structured_mesh_for_count(BoundingBox::unit_die(), 1500, GetParam());
  EXPECT_GE(mesh.num_triangles(), 1500u);
  EXPECT_LE(mesh.num_triangles(), 3200u);  // not wildly oversized
}

TEST_P(StructuredMeshTest, ForMaxAreaMeetsConstraint) {
  const double max_area = 0.004;  // paper: 0.1% of the unit die's area 4
  const TriMesh mesh = structured_mesh_for_max_area(BoundingBox::unit_die(),
                                                    max_area, GetParam());
  EXPECT_LE(mesh.quality().max_area, max_area + 1e-12);
  EXPECT_NEAR(mesh.quality().total_area, 4.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Patterns, StructuredMeshTest,
                         ::testing::Values(StructuredPattern::kDiagonal,
                                           StructuredPattern::kCross));

TEST(Delaunay, TriangulatesSquarePointGrid) {
  std::vector<Point2> points;
  for (int i = 0; i <= 4; ++i)
    for (int j = 0; j <= 4; ++j)
      points.push_back({i * 0.25 - 0.5 + 0.001 * j, j * 0.25 - 0.5});
  const BoundingBox bounds{{-0.6, -0.6}, {0.6, 0.6}};
  const TriMesh mesh = delaunay_mesh(bounds, points);
  EXPECT_EQ(mesh.num_vertices(), points.size());
  // Euler: a triangulation of a convex point set has 2i + b - 2 triangles;
  // here just check coverage of the convex hull area (~1x1 square).
  EXPECT_NEAR(mesh.quality().total_area, 1.0, 0.02);
}

TEST(Delaunay, EmptyCircumcircleProperty) {
  Rng rng(5);
  std::vector<Point2> points;
  for (int i = 0; i < 60; ++i)
    points.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  const TriMesh mesh = delaunay_mesh(BoundingBox::unit_die(), points);

  // No input point strictly inside any triangle's circumcircle.
  for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
    const geometry::Triangle tri = mesh.triangle(t);
    for (const Point2& p : mesh.vertices()) {
      const bool is_vertex = (p == tri.p[0]) || (p == tri.p[1]) ||
                             (p == tri.p[2]);
      if (is_vertex) continue;
      EXPECT_FALSE(geometry::in_circumcircle(tri.p[0], tri.p[1], tri.p[2], p))
          << "triangle " << t;
    }
  }
}

TEST(Delaunay, DuplicatePointsIgnored) {
  DelaunayTriangulator builder(BoundingBox::unit_die());
  EXPECT_TRUE(builder.insert({0.0, 0.0}));
  EXPECT_FALSE(builder.insert({0.0, 0.0}));
  EXPECT_TRUE(builder.insert({0.5, 0.0}));
  EXPECT_TRUE(builder.insert({0.0, 0.5}));
  EXPECT_EQ(builder.num_points(), 3u);
  const TriMesh mesh = builder.finalize();
  EXPECT_EQ(mesh.num_triangles(), 1u);
}

TEST(Delaunay, RequiresThreePoints) {
  DelaunayTriangulator builder(BoundingBox::unit_die());
  builder.insert({0.0, 0.0});
  builder.insert({1.0, 0.0});
  EXPECT_THROW(builder.finalize(), Error);
}

TEST(Refine, MeetsAreaConstraintAndCoversDie) {
  RefinementOptions options;
  options.max_area = 0.02;
  options.seed = 3;
  const TriMesh mesh =
      refined_delaunay_mesh(BoundingBox::unit_die(), options);
  const MeshQuality q = mesh.quality();
  EXPECT_LE(q.max_area, options.max_area * (1.0 + 1e-9));
  EXPECT_NEAR(q.total_area, 4.0, 1e-6);
  EXPECT_GE(q.min_angle_degrees, options.min_angle_degrees);
}

TEST(Refine, PaperMeshApproximatesPaperSize) {
  // Paper: max area 0.1% of the die -> n = 1546 with Triangle. Our
  // refinement lands in the same regime (area bound strict, n within ~50%).
  const TriMesh mesh = paper_mesh();
  EXPECT_GT(mesh.num_triangles(), 1100u);
  EXPECT_LT(mesh.num_triangles(), 2800u);
  EXPECT_LE(mesh.quality().max_area, 0.004 * (1.0 + 1e-9));
  EXPECT_NEAR(mesh.quality().total_area, 4.0, 1e-6);
  EXPECT_GE(mesh.quality().min_angle_degrees, 15.0);
}

TEST(Refine, FinerBudgetGivesMoreTriangles) {
  RefinementOptions coarse;
  coarse.max_area = 0.05;
  RefinementOptions fine;
  fine.max_area = 0.0125;
  const TriMesh mc = refined_delaunay_mesh(BoundingBox::unit_die(), coarse);
  const TriMesh mf = refined_delaunay_mesh(BoundingBox::unit_die(), fine);
  EXPECT_GT(mf.num_triangles(), 2 * mc.num_triangles());
  // h shrinks roughly with sqrt(area ratio).
  EXPECT_LT(mf.quality().max_side, mc.quality().max_side);
}

TEST(Refine, RejectsNonPositiveArea) {
  RefinementOptions bad;
  bad.max_area = 0.0;
  EXPECT_THROW(refined_delaunay_mesh(BoundingBox::unit_die(), bad), Error);
}

}  // namespace
}  // namespace sckl::mesh
