// Tests for the canonical first-order SSTA extension: canonical-form
// arithmetic, Clark's max against brute-force Monte Carlo, and the full
// propagation against the Monte Carlo SSTA reference.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/canonical.h"
#include "ssta/mc_ssta.h"

namespace sckl::ssta {
namespace {

TEST(NormalHelpers, CdfPdfValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_pdf(0.0), 0.39894228, 1e-7);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072, 1e-7);
}

TEST(CanonicalForm, ConstantAndShift) {
  CanonicalForm c = CanonicalForm::constant(3.0, 4);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
  EXPECT_DOUBLE_EQ(c.sigma(), 0.0);
  c.shift(2.0);
  EXPECT_DOUBLE_EQ(c.mean(), 5.0);
  EXPECT_THROW(CanonicalForm(0.0, {}, -1.0), Error);
}

TEST(CanonicalForm, AdditionAddsSensitivitiesAndQuadratureIndependents) {
  const CanonicalForm a(1.0, {0.3, 0.0}, 0.4);
  CanonicalForm b(2.0, {0.1, -0.2}, 0.3);
  b += a;
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.sensitivities()[0], 0.4);
  EXPECT_DOUBLE_EQ(b.sensitivities()[1], -0.2);
  EXPECT_DOUBLE_EQ(b.independent(), 0.5);  // hypot(0.4, 0.3)
  EXPECT_NEAR(b.variance(), 0.16 + 0.04 + 0.25, 1e-12);
}

TEST(CanonicalForm, CovarianceFromSharedBasis) {
  const CanonicalForm x(0.0, {1.0, 2.0}, 3.0);
  const CanonicalForm y(0.0, {2.0, -1.0}, 5.0);
  EXPECT_DOUBLE_EQ(CanonicalForm::covariance(x, y), 0.0);
  const CanonicalForm z(0.0, {1.0, 1.0}, 0.0);
  EXPECT_DOUBLE_EQ(CanonicalForm::covariance(x, z), 3.0);
}

TEST(CanonicalForm, MaxOfPerfectlyTrackingFormsIsIdentity) {
  // With no independent part, two equal forms are the same random variable
  // and the max degenerates to either argument.
  const CanonicalForm x(5.0, {0.5, 0.2}, 0.0);
  const CanonicalForm m = CanonicalForm::maximum(x, x);
  EXPECT_DOUBLE_EQ(m.mean(), x.mean());
  EXPECT_NEAR(m.sigma(), x.sigma(), 1e-12);
}

TEST(CanonicalForm, IndependentPartsAreDistinctRandomVariables) {
  // Two forms with equal parameters but non-zero independent parts are NOT
  // the same RV: max(X, Y) sits strictly above the common mean (by
  // theta * phi(0) with theta = sqrt(2) * s_ind).
  const CanonicalForm x(5.0, {0.5}, 0.1);
  const CanonicalForm m = CanonicalForm::maximum(x, x);
  const double theta = std::sqrt(2.0) * 0.1;
  EXPECT_NEAR(m.mean(), 5.0 + theta * normal_pdf(0.0), 1e-12);
}

TEST(CanonicalForm, MaxOfDominantFormIsThatForm) {
  // Means 10 sigma apart: max(X, Y) ~ X.
  const CanonicalForm x(10.0, {0.5}, 0.0);
  const CanonicalForm y(0.0, {0.3}, 0.2);
  const CanonicalForm m = CanonicalForm::maximum(x, y);
  EXPECT_NEAR(m.mean(), 10.0, 1e-6);
  EXPECT_NEAR(m.sigma(), 0.5, 1e-4);
  EXPECT_NEAR(m.sensitivities()[0], 0.5, 1e-4);
}

class ClarkVsMonteCarloTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClarkVsMonteCarloTest, MomentsMatchSimulation) {
  // X = mx + ax xi1 + bx eta_x, Y = my + ay xi1 + by eta_y; compare Clark's
  // mean/sigma of max(X, Y) against 200K simulated samples.
  const auto [mean_gap, correlation_knob] = GetParam();
  const CanonicalForm x(10.0, {0.8 * correlation_knob, 0.3}, 0.2);
  const CanonicalForm y(10.0 + mean_gap, {0.5 * correlation_knob, -0.4},
                        0.3);
  const CanonicalForm m = CanonicalForm::maximum(x, y);

  Rng rng(77);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double xi1 = rng.normal();
    const double xi2 = rng.normal();
    const double sample_x = 10.0 + 0.8 * correlation_knob * xi1 + 0.3 * xi2 +
                            0.2 * rng.normal();
    const double sample_y = 10.0 + mean_gap + 0.5 * correlation_knob * xi1 -
                            0.4 * xi2 + 0.3 * rng.normal();
    stats.add(std::max(sample_x, sample_y));
  }
  EXPECT_NEAR(m.mean(), stats.mean(), 0.02);
  EXPECT_NEAR(m.sigma(), stats.stddev(), 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    GapsAndCorrelations, ClarkVsMonteCarloTest,
    ::testing::Values(std::make_tuple(0.0, 1.0),   // tied means, correlated
                      std::make_tuple(0.0, 0.0),   // tied, independent
                      std::make_tuple(0.5, 1.0),   // small gap
                      std::make_tuple(2.0, 0.5))); // large gap

TEST(CanonicalSsta, MatchesMonteCarloOnC17) {
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 700, mesh::StructuredPattern::kCross);
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 25;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const auto locations = placement.physical_locations(netlist);
  const field::KleFieldSampler sampler(kle, 25, locations);

  // Canonical pass.
  const linalg::Matrix& g = sampler.field().location_operator();
  const CanonicalSstaResult canonical =
      run_canonical_ssta(engine, {&g, &g, &g, &g});

  // Monte Carlo reference with the same sampler.
  McSstaOptions mc_options;
  mc_options.num_samples = 20000;
  const McSstaResult mc = run_monte_carlo_ssta(
      engine, {&sampler, &sampler, &sampler, &sampler}, mc_options);

  EXPECT_NEAR(canonical.worst_delay.mean(), mc.worst_delay.mean(),
              0.02 * mc.worst_delay.mean());
  EXPECT_NEAR(canonical.worst_delay.sigma(), mc.worst_delay.stddev(),
              0.25 * mc.worst_delay.stddev());
  ASSERT_EQ(canonical.endpoint.size(), mc.endpoint.size());
  for (std::size_t e = 0; e < canonical.endpoint.size(); ++e) {
    EXPECT_NEAR(canonical.endpoint[e].mean(), mc.endpoint[e].mean(),
                0.02 * mc.endpoint[e].mean());
  }
}

TEST(CanonicalSsta, SingleRunBeatsMonteCarloRuntime) {
  // The whole point of the analytic engine: one propagation instead of
  // thousands. Verify on a mid-size circuit.
  const circuit::Netlist netlist = circuit::make_paper_circuit("c880");
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 700, mesh::StructuredPattern::kCross);
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 25;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const auto locations = placement.physical_locations(netlist);
  const field::KleFieldSampler sampler(kle, 25, locations);
  const linalg::Matrix& g = sampler.field().location_operator();

  const CanonicalSstaResult canonical =
      run_canonical_ssta(engine, {&g, &g, &g, &g});
  EXPECT_GT(canonical.worst_delay.mean(), 0.0);
  EXPECT_GT(canonical.worst_delay.sigma(), 0.0);

  McSstaOptions mc_options;
  mc_options.num_samples = 500;
  const McSstaResult mc = run_monte_carlo_ssta(
      engine, {&sampler, &sampler, &sampler, &sampler}, mc_options);
  const double mc_time = mc.sampling_seconds + mc.sta_seconds;
  EXPECT_LT(canonical.seconds, mc_time);
  // And it still lands near the MC distribution.
  EXPECT_NEAR(canonical.worst_delay.mean(), mc.worst_delay.mean(),
              0.05 * mc.worst_delay.mean());
}

TEST(CanonicalSsta, ValidatesOperators) {
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const linalg::Matrix wrong(3, 5);
  EXPECT_THROW(
      run_canonical_ssta(engine, {&wrong, &wrong, &wrong, &wrong}), Error);
  EXPECT_THROW(
      run_canonical_ssta(engine, {nullptr, nullptr, nullptr, nullptr}),
      Error);
}

}  // namespace
}  // namespace sckl::ssta
