// Tests for src/core — the paper's numerical method itself:
//  - quadrature exactness and the Theorem 2 h-convergence of the element
//    integrals,
//  - Galerkin assembly symmetry/PSD structure,
//  - KLE eigenvalues/eigenfunctions against the analytic solution of the
//    separable exponential kernel (the only closed-form 2-D case, Sec. 3.1),
//  - Phi-orthonormality of the computed eigenfunctions,
//  - the truncation-selection rule,
//  - kernel reconstruction error (the Fig. 3b experiment in miniature),
//  - the KleField reduced reconstruction operator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/analytic_kle.h"
#include "core/galerkin.h"
#include "core/kle_field.h"
#include "core/kle_solver.h"
#include "core/quadrature.h"
#include "core/truncation.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"

namespace sckl::core {
namespace {

using geometry::BoundingBox;
using geometry::Point2;
using geometry::Triangle;

class QuadratureRuleTest : public ::testing::TestWithParam<QuadratureRule> {};

TEST_P(QuadratureRuleTest, WeightsSumToArea) {
  const Triangle t{{Point2{0.2, 0.1}, Point2{1.3, 0.4}, Point2{0.5, 1.7}}};
  double sum = 0.0;
  for (const auto& q : quadrature_points(t, GetParam())) sum += q.weight;
  EXPECT_NEAR(sum, geometry::triangle_area(t), 1e-13);
  EXPECT_EQ(quadrature_points(t, GetParam()).size(),
            static_cast<std::size_t>(quadrature_point_count(GetParam())));
}

TEST_P(QuadratureRuleTest, ExactForConstantsAndLinears) {
  const Triangle t{{Point2{0, 0}, Point2{2, 0}, Point2{0, 2}}};
  const double area = geometry::triangle_area(t);
  EXPECT_NEAR(integrate_on_triangle(t, GetParam(), [](Point2) { return 3.0; }),
              3.0 * area, 1e-12);
  // int x over this triangle = area * centroid_x.
  EXPECT_NEAR(
      integrate_on_triangle(t, GetParam(), [](Point2 p) { return p.x; }),
      area * (2.0 / 3.0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllRules, QuadratureRuleTest,
                         ::testing::Values(QuadratureRule::kCentroid1,
                                           QuadratureRule::kSymmetric3,
                                           QuadratureRule::kSymmetric7));

TEST(Quadrature, HigherRulesExactForHigherDegree) {
  const Triangle t{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  // int over unit right triangle of x^2 = 1/12; x^2 y = 1/60.
  const auto x2 = [](Point2 p) { return p.x * p.x; };
  const auto x2y = [](Point2 p) { return p.x * p.x * p.y; };
  // Centroid rule is *not* exact for quadratics; 3-point and 7-point are.
  EXPECT_GT(std::abs(integrate_on_triangle(t, QuadratureRule::kCentroid1, x2) -
                     1.0 / 12.0),
            1e-4);
  EXPECT_NEAR(integrate_on_triangle(t, QuadratureRule::kSymmetric3, x2),
              1.0 / 12.0, 1e-14);
  EXPECT_NEAR(integrate_on_triangle(t, QuadratureRule::kSymmetric7, x2),
              1.0 / 12.0, 1e-14);
  EXPECT_NEAR(integrate_on_triangle(t, QuadratureRule::kSymmetric7, x2y),
              1.0 / 60.0, 1e-14);
}

TEST(Theorem2, ElementIntegralConvergesLinearlyInH) {
  // |int int K - K(c_i, c_k) a_i a_k| -> 0 as h -> 0 (Theorem 2). Compare
  // the centroid approximation against the 7-point rule on nested meshes.
  const kernels::GaussianKernel kernel(2.33);
  double previous_error = -1.0;
  for (std::size_t grid : {2, 4, 8, 16}) {
    const mesh::TriMesh mesh = mesh::structured_mesh(
        BoundingBox::unit_die(), grid, grid, mesh::StructuredPattern::kDiagonal);
    double worst = 0.0;
    // Probe a handful of element pairs, including self pairs.
    for (std::size_t i = 0; i < mesh.num_triangles();
         i += mesh.num_triangles() / 7 + 1) {
      for (std::size_t k = 0; k < mesh.num_triangles();
           k += mesh.num_triangles() / 5 + 1) {
        const double exact = element_pair_integral(
            mesh.triangle(i), mesh.triangle(k), kernel,
            QuadratureRule::kSymmetric7);
        const double approx =
            kernel(mesh.centroid(i), mesh.centroid(k)) * mesh.area(i) *
            mesh.area(k);
        worst = std::max(worst,
                         std::abs(exact - approx) /
                             (mesh.area(i) * mesh.area(k)));
      }
    }
    if (previous_error > 0.0) {
      EXPECT_LT(worst, previous_error);
    }
    previous_error = worst;
  }
  EXPECT_LT(previous_error, 2e-2);
}

TEST(Galerkin, MatrixIsSymmetricWithPositiveDiagonal) {
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 6, 6, mesh::StructuredPattern::kDiagonal);
  const kernels::GaussianKernel kernel(2.0);
  const linalg::Matrix b = assemble_galerkin_matrix(mesh, kernel);
  EXPECT_TRUE(linalg::is_symmetric(b, 1e-12));
  for (std::size_t i = 0; i < b.rows(); ++i) {
    EXPECT_GT(b(i, i), 0.0);
    // Diagonal entries are K(c,c) * a = a for a normalized kernel.
    EXPECT_NEAR(b(i, i), mesh.area(i), 1e-12);
  }
}

TEST(Galerkin, HigherOrderQuadratureCloseToCentroidOnFineMesh) {
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 8, 8, mesh::StructuredPattern::kDiagonal);
  const kernels::GaussianKernel kernel(2.0);
  const linalg::Matrix b1 =
      assemble_galerkin_matrix(mesh, kernel, QuadratureRule::kCentroid1);
  const linalg::Matrix b3 =
      assemble_galerkin_matrix(mesh, kernel, QuadratureRule::kSymmetric3);
  EXPECT_LT(b1.max_abs_diff(b3), 2e-3);
}

TEST(Analytic1d, RootsSolveTranscendentalEquations) {
  const double c = 1.0;
  const double a = 1.0;
  const auto modes = analytic_exponential_kle_1d(c, a, 8);
  ASSERT_EQ(modes.size(), 8u);
  for (const auto& m : modes) {
    if (m.even) {
      EXPECT_NEAR(c - m.omega * std::tan(m.omega * a), 0.0, 1e-8)
          << "omega=" << m.omega;
    } else {
      EXPECT_NEAR(std::tan(m.omega * a) + m.omega / c, 0.0, 1e-8)
          << "omega=" << m.omega;
    }
    EXPECT_NEAR(m.lambda, 2.0 * c / (m.omega * m.omega + c * c), 1e-12);
  }
  // Descending eigenvalues.
  for (std::size_t i = 1; i < modes.size(); ++i)
    EXPECT_GE(modes[i - 1].lambda, modes[i].lambda);
}

TEST(Analytic1d, EigenfunctionsAreOrthonormal) {
  const auto modes = analytic_exponential_kle_1d(1.3, 1.0, 5);
  // Trapezoid integration of f_i f_j over [-1, 1].
  const int steps = 4000;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    for (std::size_t j = i; j < modes.size(); ++j) {
      double sum = 0.0;
      for (int s = 0; s <= steps; ++s) {
        const double x = -1.0 + 2.0 * s / steps;
        const double value = modes[i].value(x) * modes[j].value(x);
        sum += (s == 0 || s == steps) ? 0.5 * value : value;
      }
      sum *= 2.0 / steps;
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-6) << "pair " << i << "," << j;
    }
  }
}

TEST(Analytic1d, EigenvaluesSumTowardTotalVariance) {
  // sum lambda_i = int_{-a}^{a} K(x,x) dx = 2a. With many modes the partial
  // sum approaches it from below.
  const double a = 1.0;
  const auto modes = analytic_exponential_kle_1d(2.0, a, 200);
  double sum = 0.0;
  for (const auto& m : modes) sum += m.lambda;
  EXPECT_GT(sum, 0.97 * 2.0 * a);
  EXPECT_LT(sum, 2.0 * a + 1e-9);
}

TEST(Analytic2d, ProductStructureAndOrdering) {
  const auto modes = analytic_separable_kle_2d(1.0, 1.0, 10);
  ASSERT_EQ(modes.size(), 10u);
  for (std::size_t i = 1; i < modes.size(); ++i)
    EXPECT_GE(modes[i - 1].lambda, modes[i].lambda);
  for (const auto& m : modes)
    EXPECT_NEAR(m.lambda, m.mode_x.lambda * m.mode_y.lambda, 1e-14);
  // The top mode is the product of the two top 1-D modes.
  const auto one_d = analytic_exponential_kle_1d(1.0, 1.0, 1);
  EXPECT_NEAR(modes[0].lambda, one_d[0].lambda * one_d[0].lambda, 1e-12);
}

TEST(KleSolver, MatchesAnalyticSeparableKernel) {
  // The validation the paper's method rests on: Galerkin eigenvalues of the
  // separable L1 exponential kernel converge to the analytic products.
  const double c = 1.0;
  const kernels::SeparableL1Kernel kernel(c);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 16, 16, mesh::StructuredPattern::kCross);
  KleOptions options;
  options.num_eigenpairs = 10;
  options.backend = KleBackend::kLanczos;
  const KleResult kle = solve_kle(mesh, kernel, options);
  const auto analytic = analytic_separable_kle_2d(c, 1.0, 10);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(kle.eigenvalue(j), analytic[j].lambda,
                0.03 * analytic[0].lambda)
        << "eigenpair " << j;
  }
}

TEST(KleSolver, DenseAndLanczosBackendsAgree) {
  const kernels::GaussianKernel kernel(2.33);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 8, 8, mesh::StructuredPattern::kDiagonal);
  KleOptions dense;
  dense.num_eigenpairs = 12;
  dense.backend = KleBackend::kDense;
  KleOptions lanczos = dense;
  lanczos.backend = KleBackend::kLanczos;
  const KleResult a = solve_kle(mesh, kernel, dense);
  const KleResult b = solve_kle(mesh, kernel, lanczos);
  for (std::size_t j = 0; j < 12; ++j)
    EXPECT_NEAR(a.eigenvalue(j), b.eigenvalue(j), 1e-7 * a.eigenvalue(0));
}

TEST(KleSolver, EigenfunctionsArePhiOrthonormal) {
  const kernels::GaussianKernel kernel(2.33);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 9, 9, mesh::StructuredPattern::kDiagonal);
  KleOptions options;
  options.num_eigenpairs = 8;
  options.backend = KleBackend::kDense;
  const KleResult kle = solve_kle(mesh, kernel, options);
  for (std::size_t p = 0; p < 8; ++p) {
    for (std::size_t q = p; q < 8; ++q) {
      double inner = 0.0;
      for (std::size_t i = 0; i < mesh.num_triangles(); ++i)
        inner += kle.coefficient(i, p) * kle.coefficient(i, q) * mesh.area(i);
      EXPECT_NEAR(inner, p == q ? 1.0 : 0.0, 1e-9) << p << "," << q;
    }
  }
}

TEST(KleSolver, EigenvalueSumApproachesDomainVariance) {
  // For a normalized kernel, sum of all eigenvalues = area(D) = 4; the top
  // 60 should capture almost all of it for the paper's Gaussian kernel.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 12, 12, mesh::StructuredPattern::kDiagonal);
  KleOptions options;
  options.num_eigenpairs = 60;
  const KleResult kle = solve_kle(mesh, kernel, options);
  double sum = 0.0;
  for (std::size_t j = 0; j < 60; ++j) sum += kle.eigenvalue(j);
  EXPECT_GT(sum, 0.95 * 4.0);
  EXPECT_LT(sum, 4.0 + 1e-6);
  EXPECT_GT(kle.captured_variance_fraction(60, 4.0), 0.95);
}

TEST(KleSolver, KernelReconstructionErrorIsSmall) {
  // Fig. 3b in miniature: reconstruct K(x, 0) from 25 eigenpairs; the paper
  // reports max error 0.016 on its (finer) mesh. Evaluation is at triangle
  // centroids: the piecewise-constant basis is exact there to O(h^2), which
  // is what the paper's figure shows (pointwise between centroids the basis
  // itself adds O(h) staircase error regardless of r).
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 14, 14, mesh::StructuredPattern::kCross);
  KleOptions options;
  options.num_eigenpairs = 25;
  const KleResult kle = solve_kle(mesh, kernel, options);
  double worst = 0.0;
  const Point2 origin = mesh.centroid(kle.triangle_of({0.0, 0.0}));
  for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
    const Point2 p = mesh.centroid(t);
    worst = std::max(worst, std::abs(kle.reconstruct_kernel(p, origin, 25) -
                                     kernel(p, origin)));
  }
  EXPECT_LT(worst, 0.05);  // coarser mesh than the paper's -> looser bound
}

TEST(KleSolver, MoreEigenpairsReduceReconstructionError) {
  const kernels::GaussianKernel kernel(2.33);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 12, 12, mesh::StructuredPattern::kCross);
  KleOptions options;
  options.num_eigenpairs = 30;
  const KleResult kle = solve_kle(mesh, kernel, options);
  const Point2 origin = mesh.centroid(kle.triangle_of({0.0, 0.0}));
  auto max_error = [&](std::size_t r) {
    double worst = 0.0;
    for (std::size_t t = 0; t < mesh.num_triangles(); t += 3)
      worst = std::max(
          worst, std::abs(kle.reconstruct_kernel(mesh.centroid(t), origin, r) -
                          kernel(mesh.centroid(t), origin)));
    return worst;
  };
  const double e5 = max_error(5);
  const double e15 = max_error(15);
  const double e30 = max_error(30);
  EXPECT_GT(e5, e15);
  EXPECT_GE(e15, e30 - 1e-6);
}

TEST(Truncation, PaperCriterionSelectsSmallR) {
  // Spectrum decaying like the Gaussian kernel's: geometric decay.
  linalg::Vector values;
  for (int i = 0; i < 200; ++i) values.push_back(std::pow(0.8, i));
  const std::size_t r = select_truncation(values, 1546, 0.01);
  EXPECT_GT(r, 5u);
  EXPECT_LT(r, 120u);
  // Criterion holds at r and fails at r-1.
  double retained = 0.0;
  for (std::size_t i = 0; i < r; ++i) retained += values[i];
  EXPECT_LE(discarded_variance_bound(values, 1546, r), 0.01 * retained);
  double retained_prev = retained - values[r - 1];
  EXPECT_GT(discarded_variance_bound(values, 1546, r - 1),
            0.01 * retained_prev);
}

TEST(Truncation, ThrowsWhenCriterionUnreachable) {
  // Flat spectrum: the (n - m) lambda_m bound can never pass.
  linalg::Vector flat(10, 1.0);
  EXPECT_THROW(select_truncation(flat, 1000, 0.01), Error);
  EXPECT_THROW(select_truncation({}, 10, 0.01), Error);
}

TEST(KleField, ReconstructionMatchesOperatorRows) {
  const kernels::GaussianKernel kernel(2.33);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 8, 8, mesh::StructuredPattern::kDiagonal);
  KleOptions options;
  options.num_eigenpairs = 10;
  const KleResult kle = solve_kle(mesh, kernel, options);

  const std::vector<Point2> locations = {
      {0.1, 0.1}, {-0.7, 0.3}, {0.9, -0.9}, {0.0, 0.0}};
  const KleField field(kle, 6, locations);
  EXPECT_EQ(field.reduced_dimension(), 6u);
  EXPECT_EQ(field.num_locations(), 4u);

  Rng rng(17);
  const linalg::Vector xi = rng.normal_vector(6);
  linalg::Vector values;
  field.reconstruct(xi, values);
  ASSERT_EQ(values.size(), 4u);
  // Manual: value at location = sum_j sqrt(lambda_j) d_{tri, j} xi_j.
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const std::size_t tri = kle.triangle_of(locations[i]);
    EXPECT_EQ(field.triangle_of_location(i), tri);
    double expected = 0.0;
    for (std::size_t j = 0; j < 6; ++j)
      expected += std::sqrt(kle.eigenvalue(j)) * kle.coefficient(tri, j) *
                  xi[j];
    EXPECT_NEAR(values[i], expected, 1e-12);
  }

  // Block form agrees with the vector form.
  linalg::Matrix xi_block(2, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    xi_block(0, j) = xi[j];
    xi_block(1, j) = -xi[j];
  }
  const linalg::Matrix block = field.reconstruct_block(xi_block);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(block(0, i), values[i], 1e-12);
    EXPECT_NEAR(block(1, i), -values[i], 1e-12);
  }
}

TEST(KleField, VarianceAtLocationApproachesUnity) {
  // Var p(x) = sum_j lambda_j f_j(x)^2 -> K(x,x) = 1 as r grows.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 14, 14, mesh::StructuredPattern::kCross);
  KleOptions options;
  options.num_eigenpairs = 40;
  const KleResult kle = solve_kle(mesh, kernel, options);
  const std::vector<Point2> locations = {{0.0, 0.0}, {0.5, -0.5}};
  const KleField field(kle, 40, locations);
  const linalg::Matrix& g = field.location_operator();
  for (std::size_t i = 0; i < locations.size(); ++i) {
    double variance = 0.0;
    for (std::size_t j = 0; j < 40; ++j) variance += g(i, j) * g(i, j);
    EXPECT_NEAR(variance, 1.0, 0.08) << "location " << i;
  }
}

}  // namespace
}  // namespace sckl::core
