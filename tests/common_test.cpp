// Tests for src/common: error handling, RNG quality/determinism, streaming
// statistics, table formatting, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace sckl {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "the condition");
    FAIL() << "require did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the condition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

TEST(Error, EnsureThrowsWithInvariantKind) {
  try {
    ensure(false, "broken");
    FAIL() << "ensure did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Error, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_NO_THROW(ensure(true, "ok"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 - 600);
    EXPECT_LT(c, draws / 10 + 600);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(11);
  RunningStats stats;
  double sum_cubed = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    stats.add(x);
    sum_cubed += x * x * x;
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
  EXPECT_NEAR(sum_cubed / n, 0.0, 0.03);  // skewness ~ 0
}

TEST(Rng, NormalWithParametersScales) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(13);
  Rng child = parent.split();
  CovarianceAccumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(parent.normal(), child.normal());
  EXPECT_LT(std::abs(acc.correlation()), 0.02);
}

TEST(Rng, NormalVectorHasRequestedLength) {
  Rng rng(14);
  EXPECT_EQ(rng.normal_vector(17).size(), 17u);
}

TEST(CounterRng, PureFunctionOfKeyIndexAndLane) {
  const CounterRng a(StreamKey{42, 3});
  const CounterRng b(StreamKey{42, 3});
  for (std::uint64_t i = 0; i < 64; ++i)
    for (std::uint64_t lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(a.bits(i, lane), b.bits(i, lane));
      EXPECT_EQ(a.normal(i, lane), b.normal(i, lane));
    }
}

TEST(CounterRng, DistinctKeysIndicesAndLanesDecorrelate) {
  const CounterRng base(StreamKey{1, 0});
  const CounterRng other_seed(StreamKey{2, 0});
  const CounterRng other_param(StreamKey{1, 1});
  int seed_same = 0;
  int param_same = 0;
  int lane_same = 0;
  int index_same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seed_same += base.bits(i, 0) == other_seed.bits(i, 0);
    param_same += base.bits(i, 0) == other_param.bits(i, 0);
    lane_same += base.bits(i, 0) == base.bits(i, 1);
    index_same += base.bits(i, 0) == base.bits(i + 1, 0);
  }
  EXPECT_EQ(seed_same, 0);
  EXPECT_EQ(param_same, 0);
  EXPECT_EQ(lane_same, 0);
  EXPECT_EQ(index_same, 0);
}

TEST(CounterRng, UniformStrictlyInsideUnitInterval) {
  const CounterRng rng(StreamKey{7, 0});
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double u = rng.uniform(i, 0);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, NormalMomentsMatchStandardNormal) {
  const CounterRng rng(StreamKey{11, 2});
  RunningStats stats;
  double sum_cubed = 0.0;
  const std::uint64_t n = 200000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double x = rng.normal(i, 0);
    stats.add(x);
    sum_cubed += x * x * x;
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
  EXPECT_NEAR(sum_cubed / static_cast<double>(n), 0.0, 0.03);
}

TEST(CounterRng, NormalRowIsBitIdenticalToScalarNormal) {
  // The batched hot path (field::fill_latent_normals rides normal_row) is
  // only allowed to hoist the per-index digest round — the bits of every
  // draw must match the scalar normal() calls exactly, including with a
  // nonzero lane offset and across row lengths that cross any internal
  // unrolling boundary.
  const CounterRng rng(StreamKey{314, 7});
  for (const std::size_t count : {1u, 7u, 8u, 25u, 64u, 193u}) {
    for (const std::uint64_t first_lane : {0u, 3u}) {
      std::vector<double> row(count);
      rng.normal_row(5, first_lane, count, row.data());
      for (std::size_t c = 0; c < count; ++c)
        ASSERT_EQ(row[c], rng.normal(5, first_lane + c))
            << "count=" << count << " first_lane=" << first_lane
            << " c=" << c;
    }
  }
}

TEST(StandardNormalQuantile, RoundTripsAndRejectsEndpoints) {
  // Acklam's approximation is accurate to ~1.2e-9 relative; the erfc-based
  // CDF closes the loop.
  const auto normal_cdf = [](double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
  };
  for (double p : {1e-9, 1e-4, 0.02425, 0.3, 0.5, 0.8, 0.97575, 0.9999}) {
    EXPECT_NEAR(normal_cdf(standard_normal_quantile(p)), p,
                1e-8 + 1e-7 * p)
        << "p=" << p;
  }
  EXPECT_THROW(standard_normal_quantile(0.0), Error);
  EXPECT_THROW(standard_normal_quantile(1.0), Error);
  EXPECT_THROW(standard_normal_quantile(-0.5), Error);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> data = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats stats;
  for (double x : data) stats.add(x);
  double mean = 0.0;
  for (double x : data) mean += x;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double x : data) var += (x - mean) * (x - mean);
  var /= static_cast<double>(data.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
  EXPECT_EQ(stats.count(), data.size());
}

TEST(RunningStats, EmptyAndSingleValueEdgeCases) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Rng rng(15);
  RunningStats whole;
  RunningStats part1;
  RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i % 2 == 0 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(part1.count(), whole.count());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, MergeIsAssociativeUpToRounding) {
  // Property: for random partitions into three chunks, (a+b)+c and a+(b+c)
  // agree on count/min/max exactly and on mean/variance to tight tolerance.
  // (The parallel MC engine relies on a fixed merge order for bit-equality;
  // this pins down that any order is still statistically equivalent.)
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    Rng rng(900 + trial);
    RunningStats chunk[3];
    for (int i = 0; i < 600; ++i)
      chunk[rng.uniform_index(3)].add(rng.normal(10.0, 3.0));

    RunningStats left_first = chunk[0];
    left_first.merge(chunk[1]);
    left_first.merge(chunk[2]);
    RunningStats right_first = chunk[1];
    right_first.merge(chunk[2]);
    RunningStats a = chunk[0];
    a.merge(right_first);

    EXPECT_EQ(left_first.count(), a.count());
    EXPECT_EQ(left_first.min(), a.min());
    EXPECT_EQ(left_first.max(), a.max());
    EXPECT_NEAR(left_first.mean(), a.mean(), 1e-12);
    EXPECT_NEAR(left_first.variance(), a.variance(), 1e-10);
  }
}

TEST(RunningStats, MergeOfEmptyPartialsIsStillEmpty) {
  // A resumed MC run may fold leases whose geometry produced zero samples
  // locally; empty-into-empty must stay a clean zero state, not NaN.
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_TRUE(std::isinf(a.min()));
  EXPECT_TRUE(std::isinf(a.max()));
}

TEST(RunningStats, FoldOfSingleSampleBlocksMatchesDirectStats) {
  // Degenerate block size 1: every partial carries one observation and zero
  // M2. The fixed-order fold must still reproduce the direct accumulation's
  // count/min/max exactly and moments to rounding.
  Rng rng(41);
  std::vector<double> data;
  RunningStats direct;
  for (int i = 0; i < 257; ++i) {
    data.push_back(rng.normal(3.0, 2.0));
    direct.add(data.back());
  }
  RunningStats folded;
  for (double x : data) {
    RunningStats block;
    block.add(x);
    folded.merge(block);
  }
  EXPECT_EQ(folded.count(), direct.count());
  EXPECT_EQ(folded.min(), direct.min());
  EXPECT_EQ(folded.max(), direct.max());
  EXPECT_NEAR(folded.mean(), direct.mean(), 1e-12);
  EXPECT_NEAR(folded.variance(), direct.variance(), 1e-10);
}

TEST(RunningStats, NanPoisonPropagatesThroughMinMaxAndMerge) {
  RunningStats poisoned;
  poisoned.add(1.0);
  poisoned.add(std::nan(""));
  EXPECT_TRUE(std::isnan(poisoned.mean()));
  EXPECT_TRUE(std::isnan(poisoned.min()));
  EXPECT_TRUE(std::isnan(poisoned.max()));

  // Merge in either direction keeps the poison: corrupt data must never be
  // laundered into clean-looking extremes by a merge.
  RunningStats clean;
  clean.add(2.0);
  clean.add(5.0);
  RunningStats into_clean = clean;
  into_clean.merge(poisoned);
  EXPECT_TRUE(std::isnan(into_clean.mean()));
  EXPECT_TRUE(std::isnan(into_clean.min()));
  EXPECT_TRUE(std::isnan(into_clean.max()));
  RunningStats into_poisoned = poisoned;
  into_poisoned.merge(clean);
  EXPECT_TRUE(std::isnan(into_poisoned.mean()));
  EXPECT_TRUE(std::isnan(into_poisoned.min()));
  EXPECT_TRUE(std::isnan(into_poisoned.max()));
}

TEST(RunningStats, FixedOrderFoldIsBitIdenticalUnderPermutedCompletion) {
  // The MC resume invariant in one picture: blocks may *finish* in any
  // order (threads, crashes, resumes), but as long as the fold runs in
  // block order the accumulator state is bit-identical.
  Rng rng(43);
  std::vector<RunningStats> blocks(8);
  for (std::size_t b = 0; b < blocks.size(); ++b)
    for (int i = 0; i < 37; ++i) blocks[b].add(rng.normal(7.0, 1.5));

  const auto fold_in_order = [&blocks](const std::vector<std::size_t>&) {
    // Completion order is irrelevant by construction: the fold below reads
    // blocks[0..n) regardless of which order they were produced in.
    RunningStats acc;
    for (const RunningStats& block : blocks) acc.merge(block);
    return acc;
  };
  const RunningStats a = fold_in_order({0, 1, 2, 3, 4, 5, 6, 7});
  const RunningStats b = fold_in_order({5, 2, 7, 0, 6, 1, 4, 3});
  EXPECT_TRUE(a.state_equals(b));

  // And a genuinely different fold nesting is NOT bit-identical in general
  // (Welford merge is not associative at the bit level) — which is exactly
  // why the checkpointed runner pins the nesting as part of its contract.
  EXPECT_EQ(a.count(), 8u * 37u);
}

TEST(RunningStats, EncodeDecodeRoundTripsBitExactly) {
  Rng rng(44);
  RunningStats original;
  for (int i = 0; i < 100; ++i) original.add(rng.normal(-2.0, 9.0));
  std::vector<std::uint8_t> bytes;
  original.encode(bytes);
  wire::ByteReader r(bytes.data(), bytes.size(), ErrorCode::kCorruptArtifact,
                     "test");
  const RunningStats copy = RunningStats::decode(r);
  EXPECT_TRUE(copy.state_equals(original));

  // Empty and NaN-poisoned states round-trip too (NaN payload bits travel
  // verbatim, so state_equals — a bit comparison — still holds).
  for (const bool poison : {false, true}) {
    RunningStats s;
    if (poison) s.add(std::nan(""));
    std::vector<std::uint8_t> b2;
    s.encode(b2);
    wire::ByteReader r2(b2.data(), b2.size(), ErrorCode::kCorruptArtifact,
                        "test");
    EXPECT_TRUE(RunningStats::decode(r2).state_equals(s));
  }
}

// --- QuantileSketch --------------------------------------------------------

TEST(QuantileSketch, ExactWhileWithinCapacity) {
  // Below capacity everything sits in level 0: quantile() must return exact
  // order statistics under its "smallest value reaching rank q*n" rule.
  QuantileSketch sketch(64);
  std::vector<double> values;
  Rng rng(50);
  for (int i = 0; i < 60; ++i) {
    values.push_back(rng.normal());
    sketch.add(values.back());
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(sketch.count(), values.size());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), values.front());
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), values.back());
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    EXPECT_DOUBLE_EQ(sketch.quantile(q), values[rank - 1]) << "q=" << q;
  }
}

TEST(QuantileSketch, TailQuantilesStayAccurateBeyondCapacity) {
  // 50k uniform samples through a capacity-128 sketch: rank error at p99 /
  // p99.9 must stay within a couple of percent of rank (for U(0,1) the
  // value IS the rank fraction, which makes the error directly readable).
  QuantileSketch sketch(128);
  Rng rng(51);
  RunningStats check;
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform();
    sketch.add(u);
    check.add(u);
  }
  EXPECT_EQ(sketch.count(), 50000u);
  EXPECT_DOUBLE_EQ(sketch.min(), check.min());  // extremes are exact
  EXPECT_DOUBLE_EQ(sketch.max(), check.max());
  EXPECT_NEAR(sketch.quantile(0.5), 0.5, 0.03);
  EXPECT_NEAR(sketch.quantile(0.99), 0.99, 0.03);
  EXPECT_NEAR(sketch.quantile(0.999), 0.999, 0.03);
}

TEST(QuantileSketch, IdenticalOperationSequencesAreBitIdentical) {
  // The deterministic-compaction property the MC resume contract rests on:
  // same adds in the same order -> identical state, including compaction
  // counters, far past capacity.
  QuantileSketch a(32);
  QuantileSketch b(32);
  Rng rng_a(52);
  Rng rng_b(52);
  for (int i = 0; i < 5000; ++i) {
    a.add(rng_a.normal());
    b.add(rng_b.normal());
  }
  EXPECT_TRUE(a.state_equals(b));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
}

TEST(QuantileSketch, MergeIsDeterministicAndWeightPreserving) {
  // Split one stream into blocks, fold the block sketches in block order:
  // two independent executions of that plan agree bit for bit, and the
  // merged count is the sum of the parts.
  const auto build = [] {
    QuantileSketch folded(32);
    Rng rng(53);
    for (int block = 0; block < 6; ++block) {
      QuantileSketch part(32);
      for (int i = 0; i < 777; ++i) part.add(rng.normal(5.0, 2.0));
      folded.merge(part);
    }
    return folded;
  };
  const QuantileSketch x = build();
  const QuantileSketch y = build();
  EXPECT_TRUE(x.state_equals(y));
  EXPECT_EQ(x.count(), 6u * 777u);

  QuantileSketch other_capacity(64);
  other_capacity.add(1.0);
  QuantileSketch target(32);
  EXPECT_THROW(target.merge(other_capacity), Error);
}

TEST(QuantileSketch, RejectsNonFiniteAndBadQueries) {
  QuantileSketch sketch(16);
  EXPECT_THROW(sketch.add(std::nan("")), Error);
  EXPECT_THROW(sketch.add(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(sketch.quantile(0.5), Error);  // empty
  sketch.add(1.0);
  EXPECT_THROW(sketch.quantile(-0.1), Error);
  EXPECT_THROW(sketch.quantile(1.1), Error);
  EXPECT_THROW(QuantileSketch(4), Error);  // capacity floor is 8
}

TEST(QuantileSketch, EncodeDecodeRoundTripsBitExactly) {
  QuantileSketch original(16);
  Rng rng(54);
  for (int i = 0; i < 3000; ++i) original.add(rng.normal());
  std::vector<std::uint8_t> bytes;
  original.encode(bytes);
  wire::ByteReader r(bytes.data(), bytes.size(), ErrorCode::kCorruptArtifact,
                     "test");
  const QuantileSketch copy = QuantileSketch::decode(r);
  EXPECT_TRUE(copy.state_equals(original));
  EXPECT_EQ(copy.quantile(0.999), original.quantile(0.999));

  // Truncated input surfaces the reader's error code, not garbage.
  wire::ByteReader torn(bytes.data(), bytes.size() / 2,
                        ErrorCode::kCorruptArtifact, "test");
  EXPECT_THROW(QuantileSketch::decode(torn), Error);
}

TEST(Covariance, RecoverKnownLinearRelation) {
  Rng rng(16);
  CovarianceAccumulator acc;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.normal();
    acc.add(x, 2.0 * x + rng.normal());  // cov = 2, corr = 2/sqrt(5)
  }
  EXPECT_NEAR(acc.covariance(), 2.0, 0.05);
  EXPECT_NEAR(acc.correlation(), 2.0 / std::sqrt(5.0), 0.01);
}

TEST(Covariance, DegenerateInputsGiveZero) {
  CovarianceAccumulator acc;
  acc.add(1.0, 1.0);
  EXPECT_EQ(acc.covariance(), 0.0);
  EXPECT_EQ(acc.correlation(), 0.0);
  acc.add(1.0, 2.0);  // x variance is 0
  EXPECT_EQ(acc.correlation(), 0.0);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  EXPECT_THROW(mean_of({}), Error);
  EXPECT_THROW(stddev_of({1.0}), Error);
}

TEST(TextTable, AlignsColumnsAndFormatsCsv) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_numeric_row({2.5, 3.25}, 2);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.25"), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("2.50,3.25"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_NE(format_scientific(12345.0, 2).find("e"), std::string::npos);
}

TEST(CliFlags, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=3",  "--beta=2.5",
                        "--flag",     "positional", "--name=abc",
                        "--enabled=false"};
  CliFlags flags(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_FALSE(flags.get_bool("enabled", true));
  EXPECT_EQ(flags.get_string("name", ""), "abc");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_FALSE(flags.has("missing"));
}

TEST(CliFlags, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--x=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.get_int("x", 0), Error);
  EXPECT_THROW(flags.get_double("x", 0.0), Error);
  EXPECT_THROW(flags.get_bool("x", false), Error);
}

TEST(ExperimentFlagSet, AppliesOnlyPresentFlags) {
  const char* argv[] = {"prog", "--circuit=c1355", "--threads=4", "--strict"};
  CliFlags flags(static_cast<int>(std::size(argv)), argv);
  ExperimentFlagSet defaults;
  defaults.num_samples = 250;  // binary-specific default
  const ExperimentFlagSet set = parse_experiment_flags(flags, defaults);
  EXPECT_EQ(set.circuit, "c1355");
  EXPECT_EQ(set.num_threads, 4u);
  EXPECT_TRUE(set.strict);
  EXPECT_FALSE(set.validate);
  EXPECT_EQ(set.num_samples, 250u);  // untouched: no --samples flag
  EXPECT_EQ(set.seed, 1u);
}

TEST(ExperimentFlagSet, RejectsNegativeCounts) {
  const char* argv[] = {"prog", "--threads=-2"};
  CliFlags flags(2, argv);
  EXPECT_THROW(parse_experiment_flags(flags), Error);
}

TEST(ExperimentFlagSet, BlockSamplesParsesAndValidates) {
  {
    const char* argv[] = {"prog", "--block-samples=512"};
    CliFlags flags(2, argv);
    const ExperimentFlagSet set = parse_experiment_flags(flags);
    EXPECT_EQ(set.block_samples, 512u);
  }
  {
    // Absent flag keeps the 0 = subsystem-default sentinel.
    const char* argv[] = {"prog"};
    CliFlags flags(1, argv);
    EXPECT_EQ(parse_experiment_flags(flags).block_samples, 0u);
  }
  {
    const char* argv[] = {"prog", "--block-samples=-1"};
    CliFlags flags(2, argv);
    EXPECT_THROW(parse_experiment_flags(flags), Error);
  }
  {
    // One past the serve-layer ceiling the flag is validated against.
    const std::string flag =
        "--block-samples=" +
        std::to_string(ExperimentFlagSet::kMaxBlockSamples + 1);
    const char* argv[] = {"prog", flag.c_str()};
    CliFlags flags(2, argv);
    EXPECT_THROW(parse_experiment_flags(flags), Error);
  }
}

TEST(ThreadPool, ExplicitRequestIsVerbatim) {
  EXPECT_EQ(ThreadPool::resolve_num_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_num_threads(6), 6u);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1u);  // auto >= 1
}

TEST(ThreadPool, AutoModeHonorsEnvOverride) {
  const char* saved = std::getenv("SCKL_THREADS");
  const std::string restore = saved != nullptr ? saved : "";
  setenv("SCKL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(0), 3u);
  EXPECT_EQ(ThreadPool::resolve_num_threads(2), 2u);  // explicit wins
  setenv("SCKL_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1u);  // malformed -> auto
  if (saved != nullptr)
    setenv("SCKL_THREADS", restore.c_str(), 1);
  else
    unsetenv("SCKL_THREADS");
}

TEST(ThreadPool, RunsJobOnEveryWorkerAndStaysUsableAfterThrow) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> total{0};
  pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
  EXPECT_THROW(pool.run([&](std::size_t worker) {
                 if (worker == 2) throw Error("boom");
               }),
               Error);
  total = 0;
  pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
}

}  // namespace
}  // namespace sckl
