// Tests for the solver resilience layer: deterministic fault injection,
// error codes + context chaining, health reports, bounded retry, and —
// most importantly — every fallback chain exercised end-to-end:
//   Lanczos non-convergence  -> dense eigensolver (KleSolveInfo telemetry)
//   non-SPD mass matrix      -> cholesky_with_jitter (GeneralizedEigenInfo)
//   transient store read     -> bounded retry -> fresh solve (StoreHealth)
//   corrupt artifact         -> quarantine to <key>.sckl.bad -> fresh solve
//   out-of-mesh gate         -> nearest triangle (counted)
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/statistics.h"
#include "core/kle_field.h"
#include "core/kle_health.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_library.h"
#include "linalg/cholesky.h"
#include "linalg/generalized_eigen.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "mesh/structured_mesher.h"
#include "robust/fault_injection.h"
#include "robust/health.h"
#include "robust/retry.h"
#include "store/artifact_store.h"
#include "store/kle_io.h"

namespace {

using namespace sckl;
namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sckl_rb_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

store::KleArtifactConfig small_config() {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {2.0};
  config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  config.mesh.target_triangles = 100;
  config.num_eigenpairs = 16;
  return config;
}

mesh::TriMesh small_mesh(std::size_t triangles = 200) {
  return mesh::structured_mesh_for_count(geometry::BoundingBox::unit_die(),
                                         triangles,
                                         mesh::StructuredPattern::kCross);
}

// --- error codes -----------------------------------------------------------

TEST(ErrorCodeTest, DefaultsToGenericAndCarriesCode) {
  const Error plain("boom");
  EXPECT_EQ(plain.code(), ErrorCode::kGeneric);
  const Error coded("disk hiccup", ErrorCode::kIoTransient);
  EXPECT_EQ(coded.code(), ErrorCode::kIoTransient);
  EXPECT_STREQ(coded.what(), "disk hiccup");
}

TEST(ErrorCodeTest, WithContextPrependsStageAndPreservesCode) {
  const Error inner("checksum mismatch", ErrorCode::kCorruptArtifact);
  const Error outer = inner.with_context("while reading 'x.sckl'");
  EXPECT_EQ(outer.code(), ErrorCode::kCorruptArtifact);
  const std::string what = outer.what();
  EXPECT_NE(what.find("while reading 'x.sckl'"), std::string::npos);
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos);
}

TEST(ErrorCodeTest, ToStringCoversEveryCode) {
  EXPECT_STREQ(to_string(ErrorCode::kIoTransient), "io_transient");
  EXPECT_STREQ(to_string(ErrorCode::kCorruptArtifact), "corrupt_artifact");
  EXPECT_STREQ(to_string(ErrorCode::kNoConvergence), "no_convergence");
  EXPECT_STREQ(to_string(ErrorCode::kNonFinite), "non_finite");
  EXPECT_STREQ(to_string(ErrorCode::kNotPositiveDefinite),
               "not_positive_definite");
  EXPECT_STREQ(to_string(ErrorCode::kHealthCheckFailed),
               "health_check_failed");
}

// --- fault injector --------------------------------------------------------

TEST(FaultInjectorTest, DisarmedByDefaultAndZeroStats) {
  robust::FaultInjector::instance().disarm();
  EXPECT_FALSE(robust::FaultInjector::instance().armed());
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kStoreRead));
  EXPECT_EQ(robust::FaultInjector::instance()
                .stats(robust::FaultSite::kStoreRead)
                .injected,
            0u);
}

TEST(FaultInjectorTest, BudgetIsCountedAndExact) {
  robust::ScopedFaultPlan plan("store_read:2");
  EXPECT_TRUE(robust::FaultInjector::instance().armed());
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kStoreRead));
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kStoreRead));
  // Budget exhausted: behaves normally again, and the injector disarms
  // (further consultations take the fast path and are not even counted).
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kStoreRead));
  EXPECT_FALSE(robust::FaultInjector::instance().armed());
  const auto stats =
      robust::FaultInjector::instance().stats(robust::FaultSite::kStoreRead);
  EXPECT_EQ(stats.injected, 2u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  robust::ScopedFaultPlan plan("lanczos_convergence:1,cholesky_pivot:1");
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kStoreRead));
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kLanczosConvergence));
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kCholeskyPivot));
  EXPECT_FALSE(robust::FaultInjector::instance().armed());
}

TEST(FaultInjectorTest, MalformedPlansThrow) {
  robust::FaultInjector::instance().disarm();
  EXPECT_THROW(robust::FaultInjector::instance().arm("bogus_site:1"), Error);
  EXPECT_THROW(robust::FaultInjector::instance().arm("store_read:abc"), Error);
  EXPECT_THROW(robust::FaultInjector::instance().arm("store_read"), Error);
  robust::FaultInjector::instance().disarm();
}

TEST(FaultInjectorTest, DisarmedCrashPointIsANoOp) {
  // The armed behaviour (_Exit with kCrashExitCode) is exercised by
  // tests/kill_loop_harness.cpp in forked children; in-process we can only
  // assert the disarmed fast path returns.
  robust::FaultInjector::instance().disarm();
  robust::crash_point(robust::FaultSite::kStoreWritePreFsync);
  robust::crash_point(robust::FaultSite::kStoreWritePreRename);
  robust::crash_point(robust::FaultSite::kStoreWritePostRename);
  robust::crash_point(robust::FaultSite::kStoreGcMidSweep);
  SUCCEED();
}

TEST(FaultInjectorTest, SkipSuffixDelaysInjection) {
  // "site:count@skip": behave normally for `skip` hits, then fail `count`.
  // The kill-loop harness uses this to march a crash point through a run.
  robust::ScopedFaultPlan plan("store_read:2@3");
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kStoreRead))
        << "skip hit " << i;
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kStoreRead));
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kStoreRead));
  // Budget exhausted: the injector disarms and this consultation takes the
  // uncounted fast path (as BudgetIsCountedAndExact documents).
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kStoreRead));
  const auto stats =
      robust::FaultInjector::instance().stats(robust::FaultSite::kStoreRead);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.injected, 2u);
}

TEST(FaultInjectorTest, SkipViaApiMatchesPlanGrammar) {
  robust::FaultInjector::instance().disarm();
  robust::FaultInjector::instance().arm(robust::FaultSite::kMcLeaseExpire, 1,
                                        2);
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kMcLeaseExpire));
  EXPECT_FALSE(robust::fault_injected(robust::FaultSite::kMcLeaseExpire));
  EXPECT_TRUE(robust::fault_injected(robust::FaultSite::kMcLeaseExpire));
  EXPECT_FALSE(robust::FaultInjector::instance().armed());
  robust::FaultInjector::instance().disarm();
}

TEST(FaultInjectorTest, MalformedSkipSuffixesThrow) {
  robust::FaultInjector::instance().disarm();
  EXPECT_THROW(robust::FaultInjector::instance().arm("store_read:1@"), Error);
  EXPECT_THROW(robust::FaultInjector::instance().arm("store_read:1@xyz"),
               Error);
  EXPECT_THROW(robust::FaultInjector::instance().arm("store_read:@2"), Error);
  robust::FaultInjector::instance().disarm();
}

TEST(FaultInjectorTest, McSiteNamesAreStable) {
  // The CI kill-loop and SCKL_FAULTS plans name these in the wild; renames
  // would silently disarm them.
  EXPECT_STREQ(robust::to_string(robust::FaultSite::kMcLeaseExpire),
               "mc_lease_expire");
  EXPECT_STREQ(robust::to_string(robust::FaultSite::kMcLedgerWrite),
               "mc_ledger_write");
  EXPECT_STREQ(robust::to_string(robust::FaultSite::kMcWorkerCrash),
               "mc_worker_crash");
  EXPECT_EQ(robust::fault_site_from_name("mc_worker_crash"),
            robust::FaultSite::kMcWorkerCrash);
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  for (int i = 0; i < robust::kNumFaultSites; ++i) {
    const auto site = static_cast<robust::FaultSite>(i);
    const auto back = robust::fault_site_from_name(robust::to_string(site));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(robust::fault_site_from_name("nope").has_value());
}

// --- health report ---------------------------------------------------------

TEST(HealthReportTest, TracksWorstSeverityAndCounts) {
  robust::HealthReport report;
  EXPECT_EQ(report.worst(), robust::Severity::kInfo);
  EXPECT_TRUE(report.ok());
  report.add(robust::Severity::kInfo, "a", "fine");
  report.add(robust::Severity::kWarning, "b", "meh");
  EXPECT_EQ(report.worst(), robust::Severity::kWarning);
  EXPECT_TRUE(report.ok());  // default threshold is kError
  EXPECT_FALSE(report.ok(robust::Severity::kWarning));
  report.add(robust::Severity::kError, "c", "bad");
  EXPECT_EQ(report.count(robust::Severity::kWarning), 1u);
  EXPECT_FALSE(report.ok());
}

TEST(HealthReportTest, ThrowIfFatalListsFindingsWithCode) {
  robust::HealthReport report;
  report.add(robust::Severity::kError, "eigen_residual", "residual too big");
  EXPECT_NO_THROW(report.throw_if_fatal(robust::Severity::kFatal));
  try {
    report.throw_if_fatal();  // default threshold kError
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kHealthCheckFailed);
    EXPECT_NE(std::string(e.what()).find("eigen_residual"), std::string::npos);
  }
}

TEST(HealthReportTest, MetricsAreRecorded) {
  robust::HealthReport report;
  report.metric("max_eigen_residual", 1.5e-10);
  EXPECT_DOUBLE_EQ(report.metric_value("max_eigen_residual"), 1.5e-10);
  EXPECT_TRUE(std::isnan(report.metric_value("absent")));
  EXPECT_NE(report.to_string().find("max_eigen_residual"), std::string::npos);
}

// --- retry -----------------------------------------------------------------

TEST(RetryTest, SucceedsAfterTransientFailures) {
  robust::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 1e-6;
  int calls = 0;
  robust::RetryStats stats;
  const int value = robust::retry_bounded(
      policy,
      [&] {
        if (++calls < 3) throw Error("flaky", ErrorCode::kIoTransient);
        return 42;
      },
      [](const Error& e) { return e.code() == ErrorCode::kIoTransient; },
      &stats);
  EXPECT_EQ(value, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retried, 2);
}

TEST(RetryTest, NonRetryableErrorPropagatesImmediately) {
  robust::RetryPolicy policy;
  policy.initial_backoff_seconds = 1e-6;
  int calls = 0;
  EXPECT_THROW(
      robust::retry_bounded(
          policy,
          [&]() -> int {
            ++calls;
            throw Error("corrupt", ErrorCode::kCorruptArtifact);
          },
          [](const Error& e) { return e.code() == ErrorCode::kIoTransient; }),
      Error);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustedBudgetRethrowsLastError) {
  robust::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1e-6;
  int calls = 0;
  robust::RetryStats stats;
  EXPECT_THROW(robust::retry_bounded(
                   policy,
                   [&]() -> int {
                     ++calls;
                     throw Error("always", ErrorCode::kIoTransient);
                   },
                   [](const Error&) { return true; }, &stats),
               Error);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retried, 2);
}

// --- cholesky diagnostics & jitter chain -----------------------------------

TEST(CholeskyResilienceTest, FailureNamesThePivot) {
  linalg::Matrix k(2, 2);
  k(0, 0) = 1.0;
  k(0, 1) = k(1, 0) = 0.0;
  k(1, 1) = -4.0;  // indefinite
  linalg::CholeskyFailure failure;
  EXPECT_FALSE(linalg::try_cholesky(k, &failure).has_value());
  EXPECT_EQ(failure.pivot_index, 1u);
  EXPECT_NEAR(failure.pivot_value, -4.0, 1e-12);
  try {
    linalg::cholesky(k);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotPositiveDefinite);
    EXPECT_NE(std::string(e.what()).find("pivot 1"), std::string::npos);
  }
}

TEST(CholeskyResilienceTest, InjectedPivotFaultFailsAnSpdMatrix) {
  linalg::Matrix k(2, 2);
  k(0, 0) = k(1, 1) = 2.0;
  k(0, 1) = k(1, 0) = 0.5;
  {
    robust::ScopedFaultPlan plan("cholesky_pivot:1");
    EXPECT_FALSE(linalg::try_cholesky(k).has_value());
  }
  EXPECT_TRUE(linalg::try_cholesky(k).has_value());  // disarmed again
}

TEST(CholeskyResilienceTest, JitterLadderAbsorbsInjectedFaults) {
  linalg::Matrix k(3, 3);
  for (std::size_t i = 0; i < 3; ++i) k(i, i) = 1.0;
  robust::ScopedFaultPlan plan("cholesky_pivot:2");
  const linalg::JitteredCholesky jittered =
      linalg::cholesky_with_jitter(k, 1e-10);
  // Two injected failures -> the ladder had to climb, so jitter is nonzero.
  EXPECT_GT(jittered.jitter, 0.0);
}

TEST(GeneralizedEigenTest, SemiDefiniteMassFallsBackToJitter) {
  // A = diag(3, 2, 1), M = diag(1, 1, 0): the exact Cholesky of M must fail
  // at pivot 2 and the jitter fallback must still produce finite pairs.
  const std::size_t n = 3;
  linalg::Matrix a(n, n), m(n, n);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  m(0, 0) = m(1, 1) = 1.0;
  m(2, 2) = 0.0;
  linalg::GeneralizedEigenInfo info;
  const linalg::SymmetricEigenResult result =
      linalg::generalized_symmetric_eigen(a, m, &info);
  EXPECT_FALSE(info.mass_spd);
  EXPECT_GT(info.mass_jitter, 0.0);
  EXPECT_EQ(info.failure.pivot_index, 2u);
  for (double lambda : result.values) EXPECT_TRUE(std::isfinite(lambda));
}

TEST(GeneralizedEigenTest, InjectedMassFaultIsAbsorbedAndRecorded) {
  const std::size_t n = 3;
  linalg::Matrix a(n, n), m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = static_cast<double>(n - i);
    m(i, i) = 1.0;
  }
  linalg::GeneralizedEigenInfo clean_info;
  const linalg::SymmetricEigenResult clean =
      linalg::generalized_symmetric_eigen(a, m, &clean_info);
  EXPECT_TRUE(clean_info.mass_spd);
  EXPECT_EQ(clean_info.mass_jitter, 0.0);

  // Budget 2: the exact factorization fails, then the jitter ladder's first
  // (jitter = 0) rung fails too, forcing a genuinely nonzero jitter.
  robust::ScopedFaultPlan plan("cholesky_pivot:2");
  linalg::GeneralizedEigenInfo info;
  const linalg::SymmetricEigenResult result =
      linalg::generalized_symmetric_eigen(a, m, &info);
  EXPECT_FALSE(info.mass_spd);
  EXPECT_GT(info.mass_jitter, 0.0);
  ASSERT_EQ(result.values.size(), clean.values.size());
  for (std::size_t i = 0; i < result.values.size(); ++i)
    EXPECT_NEAR(result.values[i], clean.values[i], 1e-8);
}

// --- lanczos residual gate & fallback chain --------------------------------

TEST(LanczosResilienceTest, ConvergedSolveReportsResiduals) {
  const mesh::TriMesh mesh = small_mesh();
  const kernels::GaussianKernel kernel(2.0);
  const linalg::Matrix b = core::assemble_galerkin_matrix(
      mesh, kernel, core::QuadratureRule::kCentroid1);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 8;
  linalg::LanczosInfo info;
  const linalg::SymmetricEigenResult result =
      linalg::lanczos_largest(b, options, &info);
  EXPECT_TRUE(info.converged);
  EXPECT_FALSE(info.fault_injected);
  EXPECT_EQ(info.rejected_pairs, 0u);
  EXPECT_GE(info.iterations, 8u);
  EXPECT_LE(info.max_residual, options.best_effort_tolerance);
  for (double lambda : result.values) EXPECT_TRUE(std::isfinite(lambda));
}

TEST(LanczosResilienceTest, InjectedNonConvergenceThrowsNoConvergence) {
  const mesh::TriMesh mesh = small_mesh();
  const kernels::GaussianKernel kernel(2.0);
  const linalg::Matrix b = core::assemble_galerkin_matrix(
      mesh, kernel, core::QuadratureRule::kCentroid1);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 8;
  robust::ScopedFaultPlan plan("lanczos_convergence:1");
  linalg::LanczosInfo info;
  try {
    linalg::lanczos_largest(b, options, &info);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoConvergence);
  }
  // Telemetry was filled before the throw.
  EXPECT_TRUE(info.fault_injected);
  EXPECT_FALSE(info.converged);
}

TEST(KleSolverTest, LanczosFailureFallsBackToDenseWithSameSpectrum) {
  const mesh::TriMesh mesh = small_mesh(300);
  const kernels::GaussianKernel kernel(2.0);
  core::KleOptions dense_options;
  dense_options.num_eigenpairs = 12;
  dense_options.backend = core::KleBackend::kDense;
  const core::KleResult reference = core::solve_kle(mesh, kernel, dense_options);

  core::KleOptions lanczos_options = dense_options;
  lanczos_options.backend = core::KleBackend::kLanczos;
  robust::ScopedFaultPlan plan("lanczos_convergence:1");
  core::KleSolveInfo info;
  const core::KleResult recovered =
      core::solve_kle(mesh, kernel, lanczos_options, &info);

  // The chain fired and was recorded...
  EXPECT_EQ(info.requested, core::KleBackend::kLanczos);
  EXPECT_EQ(info.used, core::KleBackend::kDense);
  EXPECT_TRUE(info.fallback);
  EXPECT_TRUE(info.lanczos.fault_injected);
  EXPECT_NE(info.fallback_reason.find("lanczos"), std::string::npos);
  // ...and the recovered spectrum matches the dense reference exactly.
  ASSERT_EQ(recovered.num_eigenpairs(), reference.num_eigenpairs());
  for (std::size_t j = 0; j < recovered.num_eigenpairs(); ++j)
    EXPECT_NEAR(recovered.eigenvalue(j), reference.eigenvalue(j), 1e-12);
}

TEST(KleSolverTest, CleanLanczosSolveRecordsBackendAndClampAccounting) {
  const mesh::TriMesh mesh = small_mesh(300);
  const kernels::GaussianKernel kernel(2.0);
  core::KleOptions options;
  options.num_eigenpairs = 12;
  options.backend = core::KleBackend::kLanczos;
  core::KleSolveInfo info;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options, &info);
  EXPECT_EQ(info.used, core::KleBackend::kLanczos);
  EXPECT_FALSE(info.fallback);
  EXPECT_EQ(info.clamped_eigenvalues, kle.clamped_count());
  EXPECT_DOUBLE_EQ(info.clamped_magnitude, kle.clamped_magnitude());
}

TEST(KleSolverTest, NonFiniteGalerkinMatrixIsRejected) {
  class NanKernel final : public kernels::CovarianceKernel {
   public:
    double operator()(geometry::Point2, geometry::Point2) const override {
      return std::numeric_limits<double>::quiet_NaN();
    }
    std::string name() const override { return "nan_kernel"; }
    std::unique_ptr<kernels::CovarianceKernel> clone() const override {
      return std::make_unique<NanKernel>();
    }
  };
  const mesh::TriMesh mesh = small_mesh(64);
  try {
    core::solve_kle(mesh, NanKernel{}, {});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
    EXPECT_NE(std::string(e.what()).find("nan_kernel"), std::string::npos);
  }
}

// --- KLE health validation -------------------------------------------------

TEST(KleHealthTest, HealthySolveIsClean) {
  const mesh::TriMesh mesh = small_mesh();
  const kernels::GaussianKernel kernel(2.0);
  core::KleOptions options;
  options.num_eigenpairs = 12;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);
  const linalg::Matrix b = core::assemble_galerkin_matrix(
      mesh, kernel, core::QuadratureRule::kCentroid1);
  const robust::HealthReport report = core::check_kle_health(kle, b);
  EXPECT_TRUE(report.ok(robust::Severity::kWarning)) << report.to_string();
  EXPECT_LT(report.metric_value("max_eigen_residual"), 1e-8);
  EXPECT_LT(report.metric_value("orthonormality_drift"), 1e-8);
  EXPECT_NO_THROW(report.throw_if_fatal(robust::Severity::kWarning));
}

TEST(KleHealthTest, BrokenOrthonormalityIsAnError) {
  const mesh::TriMesh mesh = small_mesh(64);
  const std::size_t n = mesh.num_triangles();
  linalg::Vector eigenvalues = {1.0, 0.5};
  linalg::Matrix coefficients(n, 2);
  for (std::size_t i = 0; i < n; ++i)
    coefficients(i, 0) = coefficients(i, 1) = 1.0;  // far from Phi-orthonormal
  const core::KleResult kle(mesh, std::move(eigenvalues),
                            std::move(coefficients));
  const robust::HealthReport report = core::check_kle_health(kle);
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_GT(report.metric_value("orthonormality_drift"), 1e-3);
}

TEST(KleHealthTest, NanEigenvalueIsFatalAndThrows) {
  const mesh::TriMesh mesh = small_mesh(64);
  const std::size_t n = mesh.num_triangles();
  linalg::Vector eigenvalues = {1.0,
                                std::numeric_limits<double>::quiet_NaN()};
  linalg::Matrix coefficients(n, 2);
  const core::KleResult kle(mesh, std::move(eigenvalues),
                            std::move(coefficients));
  const robust::HealthReport report = core::check_kle_health(kle);
  EXPECT_EQ(report.worst(), robust::Severity::kFatal);
  try {
    report.throw_if_fatal();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kHealthCheckFailed);
  }
}

TEST(KleHealthTest, MeshMismatchedGalerkinMatrixIsFatal) {
  const mesh::TriMesh mesh = small_mesh();
  const kernels::GaussianKernel kernel(2.0);
  core::KleOptions options;
  options.num_eigenpairs = 8;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);
  const linalg::Matrix wrong(4, 4);  // wrong basis size
  const robust::HealthReport report = core::check_kle_health(kle, wrong);
  EXPECT_EQ(report.worst(), robust::Severity::kFatal);
}

// --- out-of-mesh gate resolution -------------------------------------------

TEST(KleFieldTest, OutOfMeshGatesResolveToNearestAndAreCounted) {
  const mesh::TriMesh mesh = small_mesh();
  const kernels::GaussianKernel kernel(2.0);
  core::KleOptions options;
  options.num_eigenpairs = 8;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);

  // The die is [-1, 1]^2; the last two gates are legalized off it.
  const std::vector<geometry::Point2> locations = {
      {0.5, 0.5}, {0.25, 0.75}, {1.5, 1.5}, {-2.0, 0.4}};
  const field::KleFieldSampler sampler(kle, 4, locations);
  EXPECT_EQ(sampler.out_of_mesh_count(), 2u);
  EXPECT_EQ(sampler.num_locations(), locations.size());

  // Sampling still works and produces finite values for every location.
  linalg::Matrix block;
  sampler.sample_block(field::SampleRange{0, 8}, StreamKey{7, 0}, block);
  ASSERT_EQ(block.rows(), 8u);
  ASSERT_EQ(block.cols(), locations.size());
  for (std::size_t i = 0; i < block.rows(); ++i)
    for (std::size_t j = 0; j < block.cols(); ++j)
      EXPECT_TRUE(std::isfinite(block(i, j)));

  const std::vector<geometry::Point2> inside = {{0.5, 0.5}, {0.25, 0.75}};
  const field::KleFieldSampler clean(kle, 4, inside);
  EXPECT_EQ(clean.out_of_mesh_count(), 0u);
}

// --- store resilience chains -----------------------------------------------

TEST(StoreResilienceTest, TransientReadFaultIsRetriedThenServedFromDisk) {
  const fs::path root = scratch_dir("read_retry");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  {
    store::KleArtifactStore warm(root);
    EXPECT_EQ(warm.get_or_compute(config, kernel).source,
              store::FetchSource::kSolved);
  }
  store::StoreOptions options;
  options.retry.initial_backoff_seconds = 1e-6;
  store::KleArtifactStore cold(root, options);
  robust::ScopedFaultPlan plan("store_read:1");
  const store::FetchResult fetch = cold.get_or_compute(config, kernel);
  // One injected failure, one retry, then the disk copy was served.
  EXPECT_EQ(fetch.source, store::FetchSource::kDisk);
  const store::StoreHealth health = cold.health();
  EXPECT_EQ(health.read_retries, 1u);
  EXPECT_EQ(health.failed_reads, 0u);
  EXPECT_EQ(health.quarantined, 0u);
}

TEST(StoreResilienceTest, PersistentReadFaultFallsBackToFreshSolve) {
  const fs::path root = scratch_dir("read_exhaust");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  {
    store::KleArtifactStore warm(root);
    warm.get_or_compute(config, kernel);
  }
  store::StoreOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_seconds = 1e-6;
  store::KleArtifactStore cold(root, options);
  robust::ScopedFaultPlan plan("store_read:99");
  const store::FetchResult fetch = cold.get_or_compute(config, kernel);
  // Every read attempt failed; the chain ended in a fresh solve anyway.
  EXPECT_EQ(fetch.source, store::FetchSource::kSolved);
  ASSERT_NE(fetch.artifact, nullptr);
  EXPECT_GT(fetch.artifact->kle().eigenvalue(0), 0.0);
  // A cold key probes the disk twice — once before the per-key solve lock
  // and once after acquiring it (a lock winner may have published while we
  // waited) — so a persistent fault is charged two retry rounds.
  const store::StoreHealth health = cold.health();
  EXPECT_EQ(health.read_retries, 4u);  // 2 rounds x (max_attempts - 1)
  EXPECT_EQ(health.failed_reads, 2u);
}

TEST(StoreResilienceTest, TransientWriteFaultIsRetriedAndStillPersists) {
  const fs::path root = scratch_dir("write_retry");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  store::StoreOptions options;
  options.retry.initial_backoff_seconds = 1e-6;
  store::KleArtifactStore store(root, options);
  robust::ScopedFaultPlan plan("store_write:1");
  const store::FetchResult fetch = store.get_or_compute(config, kernel);
  EXPECT_EQ(fetch.source, store::FetchSource::kSolved);
  EXPECT_TRUE(fs::exists(store.path_for(config)));
  EXPECT_EQ(store.health().write_retries, 1u);
  EXPECT_EQ(store.health().failed_writes, 0u);
}

TEST(StoreResilienceTest, PersistentWriteFaultDegradesToMemoryOnly) {
  const fs::path root = scratch_dir("write_exhaust");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  store::StoreOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_seconds = 1e-6;
  store::KleArtifactStore store(root, options);
  robust::ScopedFaultPlan plan("store_write:99");
  const store::FetchResult fetch = store.get_or_compute(config, kernel);
  // The result is fully usable despite persistence failing...
  ASSERT_NE(fetch.artifact, nullptr);
  EXPECT_GT(fetch.artifact->kle().eigenvalue(0), 0.0);
  EXPECT_FALSE(fs::exists(store.path_for(config)));
  EXPECT_EQ(store.health().failed_writes, 1u);
  // ...and is served from memory on the next hit.
  robust::FaultInjector::instance().disarm();
  EXPECT_EQ(store.get_or_compute(config, kernel).source,
            store::FetchSource::kMemory);
}

TEST(StoreResilienceTest, CorruptArtifactIsQuarantinedAndResolved) {
  const fs::path root = scratch_dir("quarantine");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  fs::path artifact_path;
  {
    store::KleArtifactStore warm(root);
    warm.get_or_compute(config, kernel);
    artifact_path = warm.path_for(config);
  }
  // Flip bytes in the middle of the payload: CRC now rejects the file.
  {
    std::fstream f(artifact_path, std::ios::in | std::ios::out |
                                      std::ios::binary);
    f.seekp(64);
    const char garbage[4] = {'X', 'X', 'X', 'X'};
    f.write(garbage, sizeof(garbage));
  }
  store::KleArtifactStore cold(root);
  const store::FetchResult fetch = cold.get_or_compute(config, kernel);
  EXPECT_EQ(fetch.source, store::FetchSource::kSolved);
  EXPECT_EQ(cold.health().quarantined, 1u);
  EXPECT_EQ(cold.health().read_retries, 0u);  // corruption is not retryable

  // The evidence file exists, the healthy artifact was rewritten.
  const fs::path bad = artifact_path.string() + ".bad";
  EXPECT_TRUE(fs::exists(bad));
  EXPECT_TRUE(fs::exists(artifact_path));

  // ls() reports the quarantined entry; gc() purges it.
  std::size_t quarantined_entries = 0;
  for (const auto& entry : cold.ls())
    if (entry.quarantined) ++quarantined_entries;
  EXPECT_EQ(quarantined_entries, 1u);
  EXPECT_GE(cold.gc(), 1u);
  EXPECT_FALSE(fs::exists(bad));
  EXPECT_TRUE(fs::exists(artifact_path));  // healthy rewrite survives gc
}

TEST(StoreResilienceTest, GcNeverDeletesHealthyArtifactsOnTransientFaults) {
  const fs::path root = scratch_dir("gc_transient");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  store::StoreOptions options;
  options.retry.initial_backoff_seconds = 1e-6;
  store::KleArtifactStore store(root, options);
  store.get_or_compute(config, kernel);
  {
    // One injected failure: gc's validation read retries through it. The
    // only casualty is the now-stale solve lock left by the cold fetch.
    robust::ScopedFaultPlan plan("store_read:1");
    EXPECT_EQ(store.gc(), 1u);
    EXPECT_FALSE(fs::exists(store.lock_path_for(config)));
  }
  {
    // Unrecoverable transient faults prove nothing about the file — gc must
    // skip it, not delete it.
    robust::ScopedFaultPlan plan("store_read:99");
    EXPECT_EQ(store.gc(), 0u);
  }
  EXPECT_TRUE(fs::exists(store.path_for(config)));
}

TEST(StoreResilienceTest, ReadErrorCodesDistinguishTransientFromCorrupt) {
  const fs::path root = scratch_dir("codes");
  const fs::path missing = root / "nope.sckl";
  try {
    store::read_kle_file(missing.string());
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoTransient);
  }
  const fs::path garbage = root / "garbage.sckl";
  { std::ofstream(garbage) << "not an artifact"; }
  try {
    store::read_kle_file(garbage.string());
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptArtifact);
    // Context chaining names the file.
    EXPECT_NE(std::string(e.what()).find("garbage.sckl"), std::string::npos);
  }
}

// --- non-finite guards -----------------------------------------------------

TEST(NonFiniteGuardTest, StatisticsHelpersRejectNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> poisoned = {1.0, 2.0, nan, 4.0};
  for (auto fn : {+[](const std::vector<double>& v) { (void)mean_of(v); },
                  +[](const std::vector<double>& v) { (void)stddev_of(v); },
                  +[](const std::vector<double>& v) {
                    (void)quantile(v, 0.5);
                  }}) {
    try {
      fn(poisoned);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
      EXPECT_NE(std::string(e.what()).find("index 2"), std::string::npos);
    }
  }
  // Finite input still works.
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(NonFiniteGuardTest, KernelEvaluationRejectsNonFiniteCoordinates) {
  const kernels::GaussianKernel kernel(2.0);
  const geometry::Point2 good{0.5, 0.5};
  const geometry::Point2 bad{std::numeric_limits<double>::quiet_NaN(), 0.5};
  try {
    kernel(good, bad);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
  }
  EXPECT_DOUBLE_EQ(kernel(good, good), 1.0);
}

TEST(NonFiniteGuardTest, KernelConstructorsRejectNonFiniteParameters) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(kernels::GaussianKernel{inf}, Error);
  EXPECT_THROW(kernels::GaussianKernel{nan}, Error);
  EXPECT_THROW(kernels::ExponentialKernel{inf}, Error);
  EXPECT_THROW((kernels::MaternKernel{inf, 2.0}), Error);
  EXPECT_THROW(kernels::LinearConeKernel{nan}, Error);
  EXPECT_NO_THROW(kernels::GaussianKernel{2.0});
}

}  // namespace
