// Tests for src/placer: hypergraph extraction, FM bisection (balance, cut
// improvement, correctness of incremental gains), recursive placement
// legality, and HPWL.
#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "placer/fm_partitioner.h"
#include "placer/hypergraph.h"
#include "placer/recursive_placer.h"
#include "placer/wireload.h"

namespace sckl::placer {
namespace {

using circuit::CellFunction;

Hypergraph clique_pair_graph() {
  // Two 4-cliques joined by a single bridge net: the optimal bisection cuts
  // exactly one net.
  Hypergraph g;
  g.num_cells = 8;
  g.cell_nets.assign(8, {});
  auto add_net = [&g](std::vector<std::size_t> cells) {
    const std::size_t e = g.nets.size();
    for (std::size_t c : cells) g.cell_nets[c].push_back(e);
    g.nets.push_back(std::move(cells));
  };
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = a + 1; b < 4; ++b) add_net({a, b});
  for (std::size_t a = 4; a < 8; ++a)
    for (std::size_t b = a + 1; b < 8; ++b) add_net({a, b});
  add_net({0, 4});  // bridge
  return g;
}

TEST(Hypergraph, BuildFromNetlist) {
  const circuit::Netlist c17 =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const Hypergraph g = build_hypergraph(c17);
  EXPECT_EQ(g.num_cells, 6u);
  // Nets: each NAND whose fanout includes another physical gate. In c17,
  // gates 10, 11, 16, 19 drive other gates; 22 and 23 drive only pads.
  EXPECT_EQ(g.nets.size(), 4u);
  EXPECT_GT(g.max_cell_degree(), 0u);
}

TEST(Hypergraph, InducedSubgraphDropsExternalNets) {
  const Hypergraph g = clique_pair_graph();
  const Hypergraph sub = induced_subgraph(g, {0, 1, 2, 3});
  EXPECT_EQ(sub.num_cells, 4u);
  EXPECT_EQ(sub.nets.size(), 6u);  // bridge drops (single endpoint inside)
  const Hypergraph cross = induced_subgraph(g, {0, 4});
  EXPECT_EQ(cross.nets.size(), 1u);  // only the bridge survives
}

TEST(FmPartitioner, FindsTheObviousMinCut) {
  const Hypergraph g = clique_pair_graph();
  FmOptions options;
  options.seed = 3;
  const FmResult r = fm_bisect(g, options);
  EXPECT_EQ(r.cut, 1u);  // only the bridge is cut
  EXPECT_EQ(r.size0, 4u);
  // The two cliques end up on opposite sides.
  for (std::size_t c = 1; c < 4; ++c) EXPECT_EQ(r.side[c], r.side[0]);
  for (std::size_t c = 5; c < 8; ++c) EXPECT_EQ(r.side[c], r.side[4]);
  EXPECT_NE(r.side[0], r.side[4]);
}

TEST(FmPartitioner, CutMatchesIndependentCount) {
  const circuit::SyntheticSpec spec{.name = "t", .num_gates = 300,
                                    .seed = 7};
  const circuit::Netlist n = circuit::synthetic_circuit(spec);
  const Hypergraph g = build_hypergraph(n);
  const FmResult r = fm_bisect(g);
  EXPECT_EQ(r.cut, cut_size(g, r.side));
}

TEST(FmPartitioner, ImprovesOverRandomAndStaysBalanced) {
  const circuit::SyntheticSpec spec{.name = "t", .num_gates = 400,
                                    .seed = 9};
  const circuit::Netlist n = circuit::synthetic_circuit(spec);
  const Hypergraph g = build_hypergraph(n);

  // Baseline: average cut of random balanced partitions.
  Rng rng(10);
  double random_cut = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> side(g.num_cells, 0);
    for (std::size_t i = 0; i < g.num_cells; ++i)
      side[i] = static_cast<int>(rng.uniform_index(2));
    random_cut += static_cast<double>(cut_size(g, side));
  }
  random_cut /= trials;

  FmOptions options;
  options.balance_tolerance = 0.1;
  const FmResult r = fm_bisect(g, options);
  EXPECT_LT(static_cast<double>(r.cut), 0.7 * random_cut);
  const double fraction =
      static_cast<double>(r.size0) / static_cast<double>(g.num_cells);
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.65);
}

TEST(FmPartitioner, RejectsTrivialInput) {
  Hypergraph g;
  g.num_cells = 1;
  g.cell_nets.assign(1, {});
  EXPECT_THROW(fm_bisect(g), Error);
}

TEST(RecursivePlacer, AllGatesInsideDieAndPadsOnBoundary) {
  const circuit::SyntheticSpec spec{.name = "t", .num_gates = 500,
                                    .seed = 4};
  const circuit::Netlist n = circuit::synthetic_circuit(spec);
  const geometry::BoundingBox die = geometry::BoundingBox::unit_die();
  const Placement p = place(n, die);
  ASSERT_EQ(p.location.size(), n.num_gates_total());
  for (std::size_t g = 0; g < n.num_gates_total(); ++g)
    EXPECT_TRUE(die.contains(p.location[g])) << n.gate(g).name;
  for (std::size_t pi : n.primary_inputs())
    EXPECT_DOUBLE_EQ(p.location[pi].x, die.min.x);
  for (std::size_t po : n.primary_outputs())
    EXPECT_DOUBLE_EQ(p.location[po].x, die.max.x);
  // Physical gate locations: right count, in-core.
  const auto locations = p.physical_locations(n);
  EXPECT_EQ(locations.size(), n.num_physical_gates());
}

TEST(RecursivePlacer, SpreadsCellsAcrossTheDie) {
  const circuit::SyntheticSpec spec{.name = "t", .num_gates = 800,
                                    .seed = 5};
  const circuit::Netlist n = circuit::synthetic_circuit(spec);
  const Placement p = place(n);
  // Quadrant occupancy: no quadrant empty or hoarding > 60%.
  std::array<int, 4> quadrant{0, 0, 0, 0};
  for (const auto& loc : p.physical_locations(n)) {
    const int q = (loc.x >= 0.0 ? 1 : 0) + (loc.y >= 0.0 ? 2 : 0);
    ++quadrant[static_cast<std::size_t>(q)];
  }
  for (int count : quadrant) {
    EXPECT_GT(count, 0);
    EXPECT_LT(count, 480);
  }
}

TEST(RecursivePlacer, BeatsRandomPlacementOnHpwl) {
  const circuit::SyntheticSpec spec{.name = "t", .num_gates = 600,
                                    .seed = 6};
  const circuit::Netlist n = circuit::synthetic_circuit(spec);
  const Placement mincut = place(n);

  Placement random = mincut;
  Rng rng(11);
  for (std::size_t g : n.physical_gates())
    random.location[g] = {rng.uniform(-0.98, 0.98), rng.uniform(-0.98, 0.98)};
  EXPECT_LT(total_hpwl(n, mincut), 0.8 * total_hpwl(n, random));
}

TEST(Wireload, HpwlHandComputed) {
  circuit::Netlist n("t");
  n.add_gate("a", CellFunction::kInput, {});
  n.add_gate("g", CellFunction::kBuf, {"a"});
  n.add_gate("h", CellFunction::kInv, {"g"});
  n.add_gate("k", CellFunction::kInv, {"g"});
  n.add_gate("h_po", CellFunction::kOutput, {"h"});
  n.add_gate("k_po", CellFunction::kOutput, {"k"});
  n.finalize();
  Placement p;
  p.die = geometry::BoundingBox::unit_die();
  p.location.assign(n.num_gates_total(), {0.0, 0.0});
  p.location[n.index_of("g")] = {0.0, 0.0};
  p.location[n.index_of("h")] = {0.5, 0.25};
  p.location[n.index_of("k")] = {-0.25, 0.5};
  // Net g -> {h, k}: bbox x [-0.25, 0.5], y [0, 0.5] => HPWL 1.25.
  EXPECT_NEAR(net_hpwl(n, p, n.index_of("g")), 1.25, 1e-12);
  // Sink-less gates have zero HPWL.
  EXPECT_DOUBLE_EQ(net_hpwl(n, p, n.index_of("h_po")), 0.0);
  const auto all = all_net_hpwl(n, p);
  EXPECT_EQ(all.size(), n.num_gates_total());
  EXPECT_NEAR(all[n.index_of("g")], 1.25, 1e-12);
}

}  // namespace
}  // namespace sckl::placer
