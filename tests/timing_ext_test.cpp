// Tests for the timing extensions: critical-path extraction/reporting and
// cell-library text serialization round-trips.
#include <gtest/gtest.h>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "placer/recursive_placer.h"
#include "timing/critical_path.h"
#include "timing/library_io.h"
#include "timing/sta.h"

namespace sckl::timing {
namespace {

class CriticalPathTest : public ::testing::Test {
 protected:
  CriticalPathTest()
      : netlist_(circuit::parse_bench_string(circuit::c17_bench_text(),
                                             "c17")),
        placement_(placer::place(netlist_)),
        library_(CellLibrary::default_90nm()),
        engine_(netlist_, placement_, library_) {}

  circuit::Netlist netlist_;
  placer::Placement placement_;
  CellLibrary library_;
  StaEngine engine_;
};

TEST_F(CriticalPathTest, PathEndsAtWorstEndpointWithMatchingDelay) {
  StaTrace trace;
  const StaResult result = engine_.run_nominal(&trace);
  const CriticalPath path = extract_critical_path(engine_, result, trace);
  EXPECT_DOUBLE_EQ(path.delay, result.worst_delay);
  ASSERT_FALSE(path.steps.empty());
  // Last step drives the endpoint.
  const circuit::Gate& endpoint = netlist_.gate(path.endpoint);
  EXPECT_EQ(endpoint.fanin[0], path.steps.back().gate);
  EXPECT_EQ(endpoint.function, circuit::CellFunction::kOutput);
}

TEST_F(CriticalPathTest, PathIsConnectedAndStartsAtStartpoint) {
  StaTrace trace;
  const StaResult result = engine_.run_nominal(&trace);
  const CriticalPath path = extract_critical_path(engine_, result, trace);
  const circuit::Gate& first = netlist_.gate(path.steps.front().gate);
  EXPECT_TRUE(first.function == circuit::CellFunction::kInput ||
              first.function == circuit::CellFunction::kDff);
  for (std::size_t i = 1; i < path.steps.size(); ++i) {
    const circuit::Gate& gate = netlist_.gate(path.steps[i].gate);
    const auto& fanin = gate.fanin;
    EXPECT_NE(std::find(fanin.begin(), fanin.end(), path.steps[i - 1].gate),
              fanin.end())
        << "step " << i << " not driven by step " << i - 1;
    // Arrivals are non-decreasing along the path.
    EXPECT_GE(path.steps[i].arrival, path.steps[i - 1].arrival);
    EXPECT_GE(path.steps[i].increment, 0.0);
  }
}

TEST_F(CriticalPathTest, IncrementsSumToPathArrival) {
  StaTrace trace;
  const StaResult result = engine_.run_nominal(&trace);
  const CriticalPath path = extract_critical_path(engine_, result, trace);
  double sum = 0.0;
  for (const auto& step : path.steps) sum += step.increment;
  EXPECT_NEAR(sum, path.steps.back().arrival, 1e-9);
}

TEST_F(CriticalPathTest, ReportMentionsEveryGateOnThePath) {
  StaTrace trace;
  const StaResult result = engine_.run_nominal(&trace);
  const CriticalPath path = extract_critical_path(engine_, result, trace);
  const std::string report = format_critical_path(netlist_, path);
  for (const auto& step : path.steps)
    EXPECT_NE(report.find(netlist_.gate(step.gate).name), std::string::npos);
}

// Small helper so the assertion below reads naturally.
circuit::CellFunction netlist_gate_function(const circuit::Netlist& n,
                                            std::size_t g) {
  return n.gate(g).function;
}

TEST(CriticalPathSequential, StartsAtDffForRegisteredPaths) {
  circuit::Netlist n("seq");
  n.add_gate("pi", circuit::CellFunction::kInput, {});
  n.add_gate("ff", circuit::CellFunction::kDff, {"g2"});
  n.add_gate("g1", circuit::CellFunction::kInv, {"ff"});
  n.add_gate("g2", circuit::CellFunction::kInv, {"g1"});
  n.add_gate("g2_po", circuit::CellFunction::kOutput, {"g2"});
  n.finalize();
  const placer::Placement p = placer::place(n);
  const CellLibrary lib = CellLibrary::default_90nm();
  const StaEngine engine(n, p, lib);
  StaTrace trace;
  const StaResult result = engine.run_nominal(&trace);
  const CriticalPath path = extract_critical_path(engine, result, trace);
  EXPECT_EQ(netlist_gate_function(n, path.steps.front().gate),
            circuit::CellFunction::kDff);
}

TEST(LibraryIo, RoundTripPreservesEverything) {
  const CellLibrary original = CellLibrary::default_90nm();
  const std::string text = write_library(original);
  const CellLibrary reparsed = parse_library(text);

  ASSERT_EQ(reparsed.cells().size(), original.cells().size());
  for (std::size_t i = 0; i < original.cells().size(); ++i) {
    const TimingCell& a = original.cells()[i];
    const TimingCell& b = reparsed.cells()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.arity, b.arity);
    EXPECT_DOUBLE_EQ(a.input_cap, b.input_cap);
    for (double s : {7.0, 45.0, 210.0})
      for (double c : {1.0, 12.0, 60.0}) {
        EXPECT_DOUBLE_EQ(a.delay.lookup(s, c), b.delay.lookup(s, c))
            << a.name;
        EXPECT_DOUBLE_EQ(a.output_slew.lookup(s, c),
                         b.output_slew.lookup(s, c));
      }
    for (std::size_t j = 0; j < kNumStatParameters; ++j) {
      EXPECT_DOUBLE_EQ(a.delay_sensitivity.linear[j],
                       b.delay_sensitivity.linear[j]);
      EXPECT_DOUBLE_EQ(a.slew_sensitivity.direction[j],
                       b.slew_sensitivity.direction[j]);
    }
    EXPECT_DOUBLE_EQ(a.delay_sensitivity.quadratic,
                     b.delay_sensitivity.quadratic);
  }
  const Technology& ta = original.technology();
  const Technology& tb = reparsed.technology();
  EXPECT_DOUBLE_EQ(ta.wire_resistance_per_unit, tb.wire_resistance_per_unit);
  EXPECT_DOUBLE_EQ(ta.clock_slew, tb.clock_slew);
}

TEST(LibraryIo, ParsedLibraryTimesIdentically) {
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);
  const CellLibrary original = CellLibrary::default_90nm();
  const CellLibrary reparsed = parse_library(write_library(original));
  const StaEngine engine_a(netlist, placement, original);
  const StaEngine engine_b(netlist, placement, reparsed);
  EXPECT_DOUBLE_EQ(engine_a.run_nominal().worst_delay,
                   engine_b.run_nominal().worst_delay);
}

TEST(LibraryIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_library(""), Error);
  EXPECT_THROW(parse_library("library foo {"), Error);  // unquoted name
  EXPECT_THROW(parse_library("library \"x\" { technology { bogus 1 } }"),
               Error);
  const std::string good = write_library(CellLibrary::default_90nm());
  std::string truncated = good.substr(0, good.size() / 2);
  EXPECT_THROW(parse_library(truncated), Error);
}


TEST(WireModel, SharedTrunkProducesFiniteComparableTiming) {
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);

  CellLibrary star_lib = CellLibrary::default_90nm();
  CellLibrary tree_lib = CellLibrary::default_90nm();
  Technology tree_tech = tree_lib.technology();
  tree_tech.wire_model = WireModel::kSharedTrunkTree;
  tree_lib.set_technology(tree_tech);

  const StaEngine star(netlist, placement, star_lib);
  const StaEngine tree(netlist, placement, tree_lib);
  const double star_delay = star.run_nominal().worst_delay;
  const double tree_delay = tree.run_nominal().worst_delay;
  EXPECT_GT(tree_delay, 0.0);
  // Same technology constants, different topology: same order of magnitude.
  EXPECT_GT(tree_delay, 0.3 * star_delay);
  EXPECT_LT(tree_delay, 3.0 * star_delay);
}

TEST(WireModel, SharedTrunkSinksShareTrunkDelay) {
  // One driver, two sinks placed far away in the same direction: with the
  // shared trunk both sinks pay the trunk once; with the star model each
  // pays its full private segment. The trunk model therefore gives *lower*
  // total load (single trunk) for tightly clustered sinks.
  circuit::Netlist n("t");
  n.add_gate("a", circuit::CellFunction::kInput, {});
  n.add_gate("drv", circuit::CellFunction::kBuf, {"a"});
  n.add_gate("s1", circuit::CellFunction::kInv, {"drv"});
  n.add_gate("s2", circuit::CellFunction::kInv, {"drv"});
  n.add_gate("s1_po", circuit::CellFunction::kOutput, {"s1"});
  n.add_gate("s2_po", circuit::CellFunction::kOutput, {"s2"});
  n.finalize();
  placer::Placement p;
  p.die = geometry::BoundingBox::unit_die();
  p.location.assign(n.num_gates_total(), {0.0, 0.0});
  p.location[n.index_of("a")] = {-1.0, 0.0};
  p.location[n.index_of("drv")] = {-0.8, 0.0};
  p.location[n.index_of("s1")] = {0.8, 0.05};
  p.location[n.index_of("s2")] = {0.8, -0.05};
  p.location[n.index_of("s1_po")] = {1.0, 0.5};
  p.location[n.index_of("s2_po")] = {1.0, -0.5};

  CellLibrary tree_lib = CellLibrary::default_90nm();
  Technology tech = tree_lib.technology();
  tech.wire_model = WireModel::kSharedTrunkTree;
  tree_lib.set_technology(tech);
  const CellLibrary star_lib = CellLibrary::default_90nm();

  const StaEngine star(n, p, star_lib);
  const StaEngine tree(n, p, tree_lib);
  const std::size_t drv = n.index_of("drv");
  // Star load: c * HPWL + pins; tree load: trunk + short branches + pins.
  // For two clustered sinks the tree's wire is about half the star's two
  // full-length segments, but comparable to HPWL; both must be positive.
  EXPECT_GT(star.load_capacitance(drv), 0.0);
  EXPECT_GT(tree.load_capacitance(drv), 0.0);
  // Sink wire delays: with the shared trunk, the two sinks' delays are
  // nearly equal (common trunk dominates); with the star they are too (by
  // symmetry). Check trunk sharing via load: tree wire cap < star's
  // 2-private-segments cap.
  const std::size_t s1 = n.index_of("s1");
  EXPECT_NEAR(tree.edge_elmore(s1, 0), tree.edge_elmore(n.index_of("s2"), 0),
              0.15 * tree.edge_elmore(s1, 0));
}

}  // namespace
}  // namespace sckl::timing
