// Tests of the sckl_serve daemon: protocol robustness (hostile bytes give
// typed errors, never crashes), SampleBlock bit-exactness vs local
// sampling, cold-key solve dedup across concurrent clients, batching,
// deadlines, admission control, fault sites, and graceful shutdown —
// including a fork-based SIGTERM-under-load restart test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/socket.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/server.h"
#include "serve/worker.h"
#include "store/artifact_store.h"
#include "store/kle_io.h"

namespace sckl {
namespace {

// Unix socket paths are limited to ~100 chars: keep scratch under /tmp
// regardless of where the build tree lives.
std::filesystem::path fresh_scratch() {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("sckl_serve_test_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

store::KleArtifactConfig small_config() {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {kernels::paper_gaussian_c()};
  config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  config.mesh.area_fraction = 0.01;  // ~200 triangles
  config.mesh.mesher_seed = 8;
  config.num_eigenpairs = 16;
  return config;
}

std::vector<geometry::Point2> test_locations(std::size_t n) {
  std::vector<geometry::Point2> locations;
  locations.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(n + 1);
    locations.push_back({t, 1.0 - t * t});
  }
  return locations;
}

serve::SampleBlockRequest sample_request(std::uint64_t first,
                                         std::size_t count) {
  serve::SampleBlockRequest request;
  request.config = small_config();
  request.r = 8;
  request.locations = test_locations(40);
  request.range = {first, count};
  request.stream = {1234, 2};
  return request;
}

/// A server on a fresh socket + store root, torn down with the fixture.
class ServeTest : public ::testing::Test {
 protected:
  void start(serve::ServerOptions options = {}) {
    scratch_ = fresh_scratch();
    options.unix_path = (scratch_ / "serve.sock").string();
    options.store_root = (scratch_ / "store").string();
    options_ = options;
    server_ = std::make_unique<serve::Server>(options_);
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
    server_.reset();
    if (!scratch_.empty()) std::filesystem::remove_all(scratch_);
  }

  serve::Client client() {
    return serve::Client::connect_unix(options_.unix_path);
  }

  std::filesystem::path scratch_;
  serve::ServerOptions options_;
  std::unique_ptr<serve::Server> server_;
};

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  return ErrorCode::kGeneric;
}

// --- basic round trips -----------------------------------------------------

TEST_F(ServeTest, HelloRoundTrip) {
  start();
  serve::Client c = client();
  const serve::HelloReply hello = c.hello();
  EXPECT_EQ(hello.protocol_version, wire::kProtocolVersion);
  EXPECT_EQ(hello.server, options_.server_name);
}

TEST_F(ServeTest, StatsDocumentHasSchemaAndCounters) {
  start();
  serve::Client c = client();
  const std::string json = c.stats().json;
  EXPECT_NE(json.find("\"schema\": \"sckl-serve-stats-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"deduped_solves\""), std::string::npos);
  EXPECT_NE(json.find("\"sampler_cache\""), std::string::npos);
  EXPECT_NE(json.find("sckl.serve.requests"), std::string::npos);
  // The admission block surfaces every hardening counter an operator needs
  // to distinguish overload shedding from client bugs.
  EXPECT_NE(json.find("\"admission\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected_row_limit\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected_reply_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"connections_reaped\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected_overloaded\""), std::string::npos);
}

TEST_F(ServeTest, SolveKleColdThenWarm) {
  start();
  serve::Client c = client();
  serve::SolveKleRequest request;
  request.config = small_config();
  const serve::SolveKleReply cold = c.solve_kle(request);
  EXPECT_EQ(cold.source, static_cast<std::uint32_t>(store::FetchSource::kSolved));
  EXPECT_GT(cold.mesh_triangles, 0u);
  EXPECT_EQ(cold.num_eigenpairs, 16u);
  EXPECT_TRUE(cold.artifact.empty());

  request.want_artifact = true;
  const serve::SolveKleReply warm = c.solve_kle(request);
  EXPECT_EQ(warm.source, static_cast<std::uint32_t>(store::FetchSource::kMemory));
  EXPECT_EQ(warm.key, cold.key);
  EXPECT_FALSE(warm.artifact.empty());
}

TEST_F(ServeTest, RunSstaReturnsStatistics) {
  start();
  serve::Client c = client();
  serve::RunSstaRequest request;
  request.circuit = "c880";
  request.num_samples = 64;
  request.r = 8;
  request.mesh_area_fraction = 0.01;
  request.seed = 3;
  request.num_threads = 1;
  const serve::RunSstaReply reply = c.run_ssta(request);
  EXPECT_GT(reply.mean, 0.0);
  EXPECT_GT(reply.sigma, 0.0);
  EXPECT_GT(reply.mesh_triangles, 0u);
  EXPECT_EQ(reply.threads_used, 1u);

  // Same config again: the pipeline and artifact are cached server-side and
  // the statistics are deterministic.
  const serve::RunSstaReply again = c.run_ssta(request);
  EXPECT_EQ(again.mean, reply.mean);
  EXPECT_EQ(again.sigma, reply.sigma);
  EXPECT_EQ(again.source,
            static_cast<std::uint32_t>(store::FetchSource::kMemory));
}

TEST_F(ServeTest, RunSstaCheckpointedReportsTailsAndResumes) {
  start();
  serve::Client c = client();
  serve::RunSstaRequest request;
  request.circuit = "c880";
  request.num_samples = 64;
  request.r = 8;
  request.mesh_area_fraction = 0.01;
  request.seed = 3;
  request.num_threads = 1;
  request.run_id = "serve-ckpt";
  const serve::RunSstaReply reply = c.run_ssta(request);
  EXPECT_GT(reply.mean, 0.0);
  // Tail quantiles come from the worst-delay sketch: ordered and bracketing
  // the mean from above.
  EXPECT_GE(reply.p99, reply.mean);
  EXPECT_GE(reply.p999, reply.p99);
  EXPECT_EQ(reply.resumed_leases, 0u);

  // Same run id with resume: every lease is served from the ledger and the
  // statistics do not move a bit.
  request.resume = true;
  const serve::RunSstaReply resumed = c.run_ssta(request);
  EXPECT_GT(resumed.resumed_leases, 0u);
  EXPECT_EQ(resumed.mean, reply.mean);
  EXPECT_EQ(resumed.sigma, reply.sigma);
  EXPECT_EQ(resumed.p99, reply.p99);
  EXPECT_EQ(resumed.p999, reply.p999);
}

// --- distributed runs (protocol v3) ----------------------------------------

serve::RunSstaRequest dist_ssta_request(const std::string& run_id) {
  serve::RunSstaRequest request;
  request.circuit = "c880";
  request.num_samples = 64;
  request.r = 8;
  request.mesh_area_fraction = 0.01;
  request.seed = 3;
  request.num_threads = 1;
  request.run_id = run_id;
  request.distributed = true;
  request.mc_block_size = 8;
  request.mc_lease_blocks = 2;  // 8 blocks -> 4 leases
  return request;
}

TEST_F(ServeTest, DistributedRunMatchesNonDistributedBitForBit) {
  serve::ServerOptions options;
  options.lease_ttl_ms = 10'000;
  options.heartbeat_interval_ms = 500;
  // The long-running coordinator RunSsta occupies one handler thread for
  // its whole duration; the worker's claim/publish RPCs need their own.
  options.num_threads = 4;
  start(options);

  // Reference: the same workload as an ordinary (coordinator-only)
  // checkpointed run under a different run id.
  serve::Client c = client();
  c.set_deadline_ms(120'000);
  serve::RunSstaRequest local = dist_ssta_request("dist-ref");
  local.distributed = false;
  const serve::RunSstaReply expected = c.run_ssta(local);

  // Distributed coordinator plus one in-process worker thread. The worker
  // polls until the run registers, claims leases over the wire, fetches the
  // KLE through kSolveKle, and publishes partials the coordinator folds.
  serve::WorkerOptions wopts;
  wopts.unix_path = options_.unix_path;
  wopts.run_id = "dist-run";
  wopts.worker_id = 42;
  wopts.poll_ms = 25;
  wopts.max_runtime_seconds = 120.0;
  serve::WorkerReport report;
  std::thread worker([&] { report = serve::run_worker(wopts); });

  const serve::RunSstaReply reply = c.run_ssta(dist_ssta_request("dist-run"));
  worker.join();

  // Index-addressed sampling: remote partials are the bits the coordinator
  // would have computed, so the statistics cannot move at all.
  EXPECT_TRUE(report.run_complete);
  EXPECT_GE(report.leases_computed, 1u)
      << "rejected=" << report.publishes_rejected
      << " blocks=" << report.blocks_computed
      << " heartbeats=" << report.heartbeats
      << " retries=" << report.rpc_retries;
  EXPECT_EQ(reply.mean, expected.mean);
  EXPECT_EQ(reply.sigma, expected.sigma);
  EXPECT_EQ(reply.p99, expected.p99);
  EXPECT_EQ(reply.p999, expected.p999);

  // Resuming the distributed run serves every lease from the ledger: no
  // workers needed, identical bits.
  serve::RunSstaRequest resume = dist_ssta_request("dist-run");
  resume.resume = true;
  const serve::RunSstaReply resumed = c.run_ssta(resume);
  EXPECT_EQ(resumed.resumed_leases, 4u);
  EXPECT_EQ(resumed.mean, expected.mean);
  EXPECT_EQ(resumed.sigma, expected.sigma);
}

TEST_F(ServeTest, ClaimLeasesRejectsWorkerIdZero) {
  start();
  serve::Client c = client();
  serve::ClaimLeasesRequest claim;
  claim.run_id = "whatever";
  claim.worker_id = 0;  // the coordinator's own claim marker
  EXPECT_EQ(code_of([&] { c.claim_leases(claim); }),
            ErrorCode::kPrecondition);
}

TEST_F(ServeTest, DistributedRpcsOnUnknownRunAreTypedNotFatal) {
  start();
  serve::Client c = client();
  // A worker that outlives a coordinator restart speaks about a run the
  // daemon has not (re-)registered yet: every RPC must answer with typed
  // "unknown / not accepted" states it can poll on, never an error.
  serve::ClaimLeasesRequest claim;
  claim.run_id = "no-such-run";
  claim.worker_id = 7;
  EXPECT_EQ(c.claim_leases(claim).run_state, serve::RunState::kUnknown);
  serve::HeartbeatRequest hb;
  hb.run_id = "no-such-run";
  hb.worker_id = 7;
  EXPECT_EQ(c.heartbeat(hb).run_state, serve::RunState::kUnknown);
  serve::RunStatusRequest st;
  st.run_id = "no-such-run";
  EXPECT_EQ(c.run_status(st).run_state, serve::RunState::kUnknown);
  serve::PublishPartialRequest pub;
  pub.run_id = "no-such-run";
  pub.worker_id = 7;
  EXPECT_FALSE(c.publish_partial(pub).accepted);
}

TEST_F(ServeTest, ClaimLeasesConfigHashMismatchIsPrecondition) {
  start();
  serve::Client c = client();
  c.set_deadline_ms(120'000);
  // Complete a distributed run with no workers: the coordinator's local
  // fallback computes everything and the registry keeps a terminal entry.
  c.run_ssta(dist_ssta_request("dist-hash"));
  serve::RunStatusRequest st;
  st.run_id = "dist-hash";
  const serve::RunStatusReply status = c.run_status(st);
  ASSERT_EQ(status.run_state, serve::RunState::kComplete);
  ASSERT_NE(status.config_hash, 0u);

  // A worker carrying a different hash is computing a different workload:
  // its claim must be refused before any lease changes hands.
  serve::ClaimLeasesRequest claim;
  claim.run_id = "dist-hash";
  claim.worker_id = 9;
  claim.config_hash = status.config_hash + 1;
  EXPECT_EQ(code_of([&] { c.claim_leases(claim); }),
            ErrorCode::kPrecondition);
  // The run's own hash (and 0 = "not known yet") are accepted.
  claim.config_hash = status.config_hash;
  EXPECT_EQ(c.claim_leases(claim).run_state, serve::RunState::kComplete);
  claim.config_hash = 0;
  EXPECT_EQ(c.claim_leases(claim).run_state, serve::RunState::kComplete);
}

TEST_F(ServeTest, ServerValidatesLeaseTtlAgainstHeartbeatInterval) {
  // A worker needs several heartbeat opportunities inside one TTL window;
  // 3 * interval must be strictly under the TTL.
  serve::ServerOptions tight;
  tight.lease_ttl_ms = 900;
  tight.heartbeat_interval_ms = 300;
  EXPECT_EQ(code_of([&] { start(tight); }), ErrorCode::kPrecondition);
  serve::ServerOptions zero;
  zero.lease_ttl_ms = 0;
  EXPECT_EQ(code_of([&] { start(zero); }), ErrorCode::kPrecondition);
}

// --- client reconnect semantics --------------------------------------------

TEST_F(ServeTest, StaleConnectionAfterRestartFailsTypedAndFreshOneWorks) {
  start();
  serve::Client stale = client();
  EXPECT_EQ(stale.hello().protocol_version, wire::kProtocolVersion);

  // Restart the daemon on the same socket path (the stopped listener is
  // stale, so the new one may take the path over).
  server_->stop();
  server_ = std::make_unique<serve::Server>(options_);
  server_->start();

  // The old connection is dead: the next RPC surfaces a typed transport
  // error — the cue a distributed worker's retry loop uses to reconnect —
  // and a fresh connection against the same path works immediately.
  stale.set_rpc_timeout_ms(2'000);
  EXPECT_EQ(code_of([&] { stale.hello(); }), ErrorCode::kIoTransient);
  serve::Client fresh = client();
  EXPECT_EQ(fresh.hello().server, options_.server_name);
}

TEST_F(ServeTest, SilentPeerSurfacesAsDeadlineExceededNotAHang) {
  scratch_ = fresh_scratch();
  // A listener that never accepts: connects succeed (backlog), requests
  // vanish. Half-open daemons look exactly like this to a client.
  const std::string silent_path = (scratch_ / "silent.sock").string();
  net::Fd listener = net::listen_unix(silent_path);
  serve::Client c = serve::Client::connect_unix(silent_path);
  c.set_rpc_timeout_ms(200);
  EXPECT_EQ(code_of([&] { c.hello(); }), ErrorCode::kDeadlineExceeded);
}

TEST_F(ServeTest, RpcAfterServerStopIsTypedNotAHang) {
  start();
  serve::Client c = client();
  c.set_rpc_timeout_ms(2'000);
  c.shutdown_server();
  server_->stop();
  serve::HeartbeatRequest hb;
  hb.run_id = "gone";
  hb.worker_id = 3;
  const ErrorCode code = code_of([&] { c.heartbeat(hb); });
  EXPECT_TRUE(code == ErrorCode::kIoTransient ||
              code == ErrorCode::kDeadlineExceeded)
      << "got code " << static_cast<int>(code);
}

// --- determinism: remote == local, byte for byte ---------------------------

TEST_F(ServeTest, SampleBlockBitIdenticalToLocalSampler) {
  start();
  serve::Client c = client();
  const serve::SampleBlockRequest request = sample_request(7, 33);
  const linalg::Matrix remote = c.sample_matrix(request);

  // Local reference: same artifact via a second store handle on the same
  // root, same sampler construction, same index-addressed draw.
  store::KleArtifactStore local(options_.store_root);
  const auto kernel = store::make_kernel(request.config.kernel_id,
                                         request.config.kernel_params);
  const store::FetchResult fetch = local.get_or_compute(request.config, *kernel);
  const field::KleFieldSampler sampler(*fetch.artifact, request.r,
                                       request.locations);
  linalg::Matrix expected;
  sampler.sample_block(request.range, request.stream, expected);

  ASSERT_EQ(remote.rows(), expected.rows());
  ASSERT_EQ(remote.cols(), expected.cols());
  EXPECT_EQ(std::memcmp(remote.data(), expected.data(),
                        remote.rows() * remote.cols() * sizeof(double)),
            0);
}

TEST_F(ServeTest, SampleBlockChunkingPreservesBits) {
  // Server-side chunked generation (tiny sample_chunk_rows) must still be
  // byte-identical: every row is a pure function of its global index.
  serve::ServerOptions options;
  options.sample_chunk_rows = 5;
  start(options);
  serve::Client c = client();
  const serve::SampleBlockRequest request = sample_request(100, 23);
  const linalg::Matrix chunked = c.sample_matrix(request);

  store::KleArtifactStore local(options_.store_root);
  const auto kernel = store::make_kernel(request.config.kernel_id,
                                         request.config.kernel_params);
  const store::FetchResult fetch = local.get_or_compute(request.config, *kernel);
  const field::KleFieldSampler sampler(*fetch.artifact, request.r,
                                       request.locations);
  linalg::Matrix expected;
  sampler.sample_block(request.range, request.stream, expected);
  EXPECT_EQ(std::memcmp(chunked.data(), expected.data(),
                        expected.rows() * expected.cols() * sizeof(double)),
            0);
}

TEST_F(ServeTest, ConcurrentClientsEachGetExactBits) {
  start();
  {
    serve::Client warm = client();
    serve::SolveKleRequest solve;
    solve.config = small_config();
    warm.solve_kle(solve);
  }

  constexpr int kClients = 4;
  std::vector<linalg::Matrix> results(kClients);
  std::vector<std::thread> threads;
  for (int k = 0; k < kClients; ++k) {
    threads.emplace_back([this, k, &results] {
      serve::Client c = client();
      // Distinct, overlapping ranges: batching may fuse these requests;
      // each must still get exactly its own rows.
      results[k] = c.sample_matrix(sample_request(k * 10, 20));
    });
  }
  for (std::thread& t : threads) t.join();

  store::KleArtifactStore local(options_.store_root);
  const serve::SampleBlockRequest proto = sample_request(0, 1);
  const auto kernel =
      store::make_kernel(proto.config.kernel_id, proto.config.kernel_params);
  const store::FetchResult fetch = local.get_or_compute(proto.config, *kernel);
  const field::KleFieldSampler sampler(*fetch.artifact, proto.r,
                                       proto.locations);
  for (int k = 0; k < kClients; ++k) {
    linalg::Matrix expected;
    sampler.sample_block({static_cast<std::uint64_t>(k) * 10, 20},
                         proto.stream, expected);
    EXPECT_EQ(std::memcmp(results[k].data(), expected.data(),
                          expected.rows() * expected.cols() * sizeof(double)),
              0)
        << "client " << k;
  }
}

// --- cold-key stampede: exactly one eigensolve -----------------------------

TEST_F(ServeTest, ConcurrentColdSolvesDedupToOneEigensolve) {
  start();
  constexpr int kClients = 6;
  std::vector<std::uint32_t> sources(kClients, 999);
  std::vector<std::thread> threads;
  for (int k = 0; k < kClients; ++k) {
    threads.emplace_back([this, k, &sources] {
      serve::Client c = client();
      serve::SolveKleRequest request;
      request.config = small_config();
      sources[k] = c.solve_kle(request).source;
    });
  }
  for (std::thread& t : threads) t.join();

  int solved = 0;
  for (const std::uint32_t source : sources)
    if (source == static_cast<std::uint32_t>(store::FetchSource::kSolved))
      ++solved;
  EXPECT_EQ(solved, 1) << "stampede must resolve to exactly one eigensolve";
  // The losers that waited on the per-key lock are counted by the store.
  EXPECT_GT(server_->store().health().deduped_solves +
                server_->store().cache_stats().hits,
            0u);
}

// --- batching --------------------------------------------------------------

TEST_F(ServeTest, ConcurrentSampleRequestsBatch) {
  serve::ServerOptions options;
  options.num_threads = 1;        // one worker: arrivals pile up in the queue
  options.batch_limit = 8;
  options.batch_window_ms = 200;  // hold the batch open for the stragglers
  start(options);
  {
    serve::Client warm = client();
    serve::SolveKleRequest solve;
    solve.config = small_config();
    warm.solve_kle(solve);
    warm.sample_block(sample_request(0, 1));  // construct + cache the sampler
  }

  const std::uint64_t batched_before =
      obs::counter("sckl.serve.batched_requests").value();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int k = 0; k < kClients; ++k) {
    threads.emplace_back([this, k, &ok] {
      serve::Client c = client();
      const linalg::Matrix m = c.sample_matrix(sample_request(k * 100, 8));
      if (m.rows() == 8) ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(obs::counter("sckl.serve.batched_requests").value(),
            batched_before + 2)
      << "at least one batch of >= 2 compatible requests should have formed";
}

// --- deadlines, admission control, fault sites -----------------------------

TEST_F(ServeTest, ForcedDeadlineExpiryGivesTypedError) {
  start();
  serve::Client c = client();
  c.hello();  // connection fully up before arming the fault
  robust::ScopedFaultPlan plan("serve_deadline:1");
  EXPECT_EQ(code_of([&] { c.sample_block(sample_request(0, 4)); }),
            ErrorCode::kDeadlineExceeded);
  // One-shot fault: the same request works afterwards.
  EXPECT_NO_THROW(c.sample_block(sample_request(0, 4)));
}

TEST_F(ServeTest, ZeroQueueRejectsWithOverloaded) {
  serve::ServerOptions options;
  options.max_queue = 0;  // admission control rejects everything
  start(options);
  serve::Client c = client();
  EXPECT_EQ(code_of([&] { c.hello(); }), ErrorCode::kOverloaded);
}

TEST_F(ServeTest, ReadFaultGivesTransientErrorAndConnectionSurvives) {
  start();
  serve::Client c = client();
  c.hello();
  robust::ScopedFaultPlan plan("serve_read:1");
  EXPECT_EQ(code_of([&] { c.hello(); }), ErrorCode::kIoTransient);
  // The frame was consumed before the injection: the stream is still in
  // sync and the connection keeps working.
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, AcceptFaultDropsConnectionButServerSurvives) {
  start();
  robust::ScopedFaultPlan plan("serve_accept:1");
  serve::Client dropped = client();  // accepted, then dropped by the fault
  EXPECT_EQ(code_of([&] { dropped.hello(); }), ErrorCode::kIoTransient);
  serve::Client ok = client();
  EXPECT_NO_THROW(ok.hello());
}

// --- protocol robustness: hostile bytes ------------------------------------

TEST_F(ServeTest, VersionMismatchGetsTypedReplyAndConnectionSurvives) {
  start();
  serve::Client c = client();
  wire::FrameHeader header;
  header.version = 99;
  header.type = static_cast<std::uint32_t>(serve::MessageType::kHello);
  header.request_id = 7;
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, {});
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kVersionMismatch);
  EXPECT_NO_THROW(c.hello());  // header layout is version-stable: still in sync
}

TEST_F(ServeTest, UnknownMessageTypeGetsTypedReply) {
  start();
  serve::Client c = client();
  wire::FrameHeader header;
  header.type = 42;
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, {});
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, MalformedPayloadGetsTypedReplyAndConnectionSurvives) {
  start();
  serve::Client c = client();
  wire::FrameHeader header;
  header.type = static_cast<std::uint32_t>(serve::MessageType::kSolveKle);
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, garbage);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, TrailingPayloadBytesRejected) {
  start();
  serve::Client c = client();
  wire::FrameHeader header;
  header.type = static_cast<std::uint32_t>(serve::MessageType::kHello);
  const std::vector<std::uint8_t> extra = {0};  // hello body must be empty
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, extra);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
}

TEST_F(ServeTest, OversizedLengthPrefixRejectedWithoutAllocation) {
  serve::ServerOptions options;
  options.max_payload_bytes = 1024;
  start(options);
  net::Fd fd = net::connect_unix(options_.unix_path);

  // Hand-encode a header declaring an absurd payload length.
  std::vector<std::uint8_t> bytes;
  wire::put_u32(bytes, wire::kFrameMagic);
  wire::put_u32(bytes, wire::kProtocolVersion);
  wire::put_u32(bytes, static_cast<std::uint32_t>(serve::MessageType::kHello));
  wire::put_u32(bytes, 0);                        // deadline_ms
  wire::put_u64(bytes, 77);                       // request id
  wire::put_u64(bytes, std::uint64_t{1} << 60);   // hostile payload size
  net::write_all(fd.get(), bytes.data(), bytes.size());

  wire::FrameHeader header;
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(wire::read_frame(fd.get(), 1 << 20, header, reply));
  EXPECT_EQ(header.request_id, 77u);  // parsed far enough to correlate
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  // The stream is beyond repair: the server closes it...
  EXPECT_FALSE(wire::read_frame(fd.get(), 1 << 20, header, reply));
  // ...but keeps serving new connections.
  serve::Client c = client();
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, GarbageMagicDropsConnectionServerSurvives) {
  start();
  net::Fd fd = net::connect_unix(options_.unix_path);
  const char garbage[64] = "this is definitely not a SCKF frame............";
  net::write_all(fd.get(), garbage, sizeof(garbage));
  // The server replies with a protocol error (or just closes, depending on
  // how much it parsed) and drops the connection — it must not crash.
  wire::FrameHeader header;
  std::vector<std::uint8_t> reply;
  try {
    while (wire::read_frame(fd.get(), 1 << 20, header, reply)) {
    }
  } catch (const Error&) {
  }
  serve::Client c = client();
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, TruncatedFrameMidHeaderServerSurvives) {
  start();
  {
    net::Fd fd = net::connect_unix(options_.unix_path);
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, wire::kFrameMagic);
    wire::put_u32(bytes, wire::kProtocolVersion);
    net::write_all(fd.get(), bytes.data(), bytes.size());
    // Close mid-header: the reader thread sees EOF inside the frame.
  }
  serve::Client c = client();
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, CrcMismatchRejected) {
  start();
  net::Fd fd = net::connect_unix(options_.unix_path);
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  std::vector<std::uint8_t> bytes;
  wire::put_u32(bytes, wire::kFrameMagic);
  wire::put_u32(bytes, wire::kProtocolVersion);
  wire::put_u32(bytes, static_cast<std::uint32_t>(serve::MessageType::kHello));
  wire::put_u32(bytes, 0);
  wire::put_u64(bytes, 5);
  wire::put_u64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  wire::put_u32(bytes, 0xDEADBEEF);  // wrong CRC
  net::write_all(fd.get(), bytes.data(), bytes.size());

  wire::FrameHeader header;
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(wire::read_frame(fd.get(), 1 << 20, header, reply));
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  serve::Client c = client();
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, HostileLocationCountRejectedWithoutAllocation) {
  // A location count near 2^64 once wrapped `count * 16` to a small value
  // that passed the bounds check, and the subsequent resize(count) threw a
  // non-sckl exception that killed the whole daemon. It must be a typed
  // protocol error on a surviving server.
  start();
  serve::Client c = client();
  std::vector<std::uint8_t> payload;
  store::append_artifact_config(payload, small_config());
  wire::put_u64(payload, 8);                             // r
  wire::put_u64(payload, (std::uint64_t{1} << 62) + 1);  // hostile count
  payload.resize(payload.size() + 32, 0);  // wrapped product would "fit"
  wire::FrameHeader header;
  header.type = static_cast<std::uint32_t>(serve::MessageType::kSampleBlock);
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  EXPECT_NO_THROW(c.hello());
}

TEST_F(ServeTest, HostileKernelParamCountRejectedWithoutAllocation) {
  // Same wrap in u32 arithmetic: num_params = 2^30 made `num_params * 8`
  // wrap to 0, pass the check, and attempt a multi-GB resize.
  start();
  serve::Client c = client();
  std::vector<std::uint8_t> payload;
  wire::put_string(payload, "gaussian");
  wire::put_u32(payload, std::uint32_t{1} << 30);  // hostile param count
  payload.resize(payload.size() + 32, 0);
  wire::FrameHeader header;
  header.type = static_cast<std::uint32_t>(serve::MessageType::kSolveKle);
  const std::vector<std::uint8_t> reply = c.roundtrip_raw(header, payload);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::check_reply_status(r); }),
            ErrorCode::kProtocol);
  EXPECT_NO_THROW(c.hello());
}

TEST(ServeProtocolTest, ClientRejectsHostileSampleReplyShape) {
  // Client-side twin: a hostile reply header whose rows * cols * 8 wraps
  // past the check must throw a typed error, not resize(2^61).
  std::vector<std::uint8_t> reply;
  wire::put_u32(reply, 0);                             // status: success
  wire::put_u64(reply, (std::uint64_t{1} << 61) + 1);  // rows
  wire::put_u64(reply, 1);                             // cols
  reply.resize(reply.size() + 32, 0);
  wire::ByteReader r(reply.data(), reply.size(), ErrorCode::kProtocol,
                     "reply");
  EXPECT_EQ(code_of([&] { serve::decode_sample_block_reply(r); }),
            ErrorCode::kProtocol);
}

TEST_F(ServeTest, SampleRowCountAboveServerLimitRejected) {
  serve::ServerOptions options;
  options.max_sample_rows = 16;
  start(options);
  serve::Client c = client();
  EXPECT_EQ(code_of([&] { c.sample_block(sample_request(0, 17)); }),
            ErrorCode::kPrecondition);
  // At the limit the request runs normally (and the daemon survived).
  EXPECT_NO_THROW(c.sample_block(sample_request(0, 16)));
}

// --- connection lifecycle --------------------------------------------------

TEST_F(ServeTest, DisconnectedClientsAreReapedNotAccumulated) {
  // A long-running daemon serving short-lived connections (each CLI call is
  // one) must release the fd and registry slot at disconnect, not at
  // stop() — otherwise accept() hits EMFILE after ~1000 clients.
  start();
  for (int i = 0; i < 16; ++i) {
    serve::Client c = client();
    c.hello();
  }  // every client closed here
  bool reaped = false;
  for (int i = 0; i < 200 && !reaped; ++i) {
    reaped = server_->open_connections() == 0;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reaped) << server_->open_connections()
                      << " connections still registered after disconnect";
  EXPECT_NE(server_->stats_json().find("\"open_connections\""),
            std::string::npos);
}

TEST_F(ServeTest, ListenUnixRefusesToStealALiveSocketPath) {
  start();
  // A second daemon on the same path must fail loudly instead of silently
  // unlinking the live endpoint out from under this server.
  EXPECT_EQ(code_of([&] { net::listen_unix(options_.unix_path); }),
            ErrorCode::kPrecondition);
  serve::Client c = client();  // the original listener is untouched
  EXPECT_NO_THROW(c.hello());
}

// --- graceful shutdown -----------------------------------------------------

TEST_F(ServeTest, ShutdownRequestIsAcknowledgedAndFlagged) {
  start();
  serve::Client c = client();
  EXPECT_FALSE(server_->stop_requested());
  c.shutdown_server();  // acknowledged before the drain begins
  EXPECT_TRUE(server_->wait_for_stop_request(2000));
  server_->stop();
  // The socket is unlinked after a graceful stop.
  EXPECT_FALSE(std::filesystem::exists(options_.unix_path));
}

#if defined(__unix__) || defined(__APPLE__)

/// run_daemon in a forked child; SIGTERM mid-load must drain and exit 0,
/// and the socket path must be immediately reusable by a restarted daemon.
TEST(ServeDaemonTest, SigtermUnderLoadDrainsExitsZeroAndRestarts) {
  const std::filesystem::path scratch = fresh_scratch();
  const std::string socket = (scratch / "daemon.sock").string();
  const std::string root = (scratch / "store").string();

  const auto spawn_daemon = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      serve::ServerOptions options;
      options.unix_path = socket;
      options.store_root = root;
      options.drain_ms = 5000;
      // _Exit: never run the parent's atexit/gtest teardown in the child.
      ::_Exit(serve::run_daemon(options, /*announce=*/false));
    }
    return pid;
  };

  const auto wait_for_socket = [&] {
    for (int i = 0; i < 200; ++i) {
      try {
        serve::Client::connect_unix(socket).hello();
        return true;
      } catch (const Error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    return false;
  };

  const pid_t first = spawn_daemon();
  ASSERT_GT(first, 0);
  ASSERT_TRUE(wait_for_socket());

  // Load: clients hammering the daemon when the SIGTERM lands. Errors are
  // expected once the server drains; crashes of the *daemon* are not.
  std::atomic<bool> stop_load{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> load;
  for (int k = 0; k < 3; ++k) {
    load.emplace_back([&] {
      while (!stop_load.load()) {
        try {
          serve::Client c = serve::Client::connect_unix(socket);
          serve::SolveKleRequest request;
          request.config = small_config();
          c.solve_kle(request);
          completed.fetch_add(1);
        } catch (const Error&) {
          break;  // server is draining / gone
        }
      }
    });
  }
  // Let the load actually arrive before the signal.
  for (int i = 0; i < 100 && completed.load() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(completed.load(), 0);

  ASSERT_EQ(::kill(first, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first, &status, 0), first);
  stop_load.store(true);
  for (std::thread& t : load) t.join();
  ASSERT_TRUE(WIFEXITED(status)) << "daemon must exit, not crash";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "SIGTERM under load must exit 0";

  // Restart on the same socket path: the graceful exit left it usable.
  const pid_t second = spawn_daemon();
  ASSERT_GT(second, 0);
  ASSERT_TRUE(wait_for_socket());
  {
    serve::Client c = serve::Client::connect_unix(socket);
    serve::SolveKleRequest request;
    request.config = small_config();
    // Warm start: the artifact persisted by the first daemon is reused.
    EXPECT_NE(c.solve_kle(request).source,
              static_cast<std::uint32_t>(store::FetchSource::kSolved));
  }
  ASSERT_EQ(::kill(second, SIGTERM), 0);
  ASSERT_EQ(::waitpid(second, &status, 0), second);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::filesystem::remove_all(scratch);
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace sckl
