// Tests for the analysis extensions: slack (backward STA), yield curves,
// Latin hypercube sampling, and the Hermite PCE surrogate.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bench_parser.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "field/lhs.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/mc_ssta.h"
#include "ssta/pce.h"
#include "ssta/yield.h"
#include "timing/critical_path.h"
#include "timing/slack.h"

namespace sckl {
namespace {

class SlackTest : public ::testing::Test {
 protected:
  SlackTest()
      : netlist_(circuit::parse_bench_string(circuit::c17_bench_text(),
                                             "c17")),
        placement_(placer::place(netlist_)),
        library_(timing::CellLibrary::default_90nm()),
        engine_(netlist_, placement_, library_) {
    result_ = engine_.run_nominal(&trace_);
  }

  circuit::Netlist netlist_;
  placer::Placement placement_;
  timing::CellLibrary library_;
  timing::StaEngine engine_;
  timing::StaTrace trace_;
  timing::StaResult result_;
};

TEST_F(SlackTest, WorstSlackIsConstraintMinusWorstDelay) {
  const double period = result_.worst_delay + 100.0;
  const timing::SlackReport report =
      compute_slacks(engine_, trace_, period);
  EXPECT_NEAR(report.worst_slack, 100.0, 1e-9);
  EXPECT_EQ(report.num_negative, 0u);
}

TEST_F(SlackTest, TightConstraintCreatesViolations) {
  const double period = result_.worst_delay - 50.0;
  const timing::SlackReport report =
      compute_slacks(engine_, trace_, period);
  EXPECT_NEAR(report.worst_slack, -50.0, 1e-9);
  EXPECT_GT(report.num_negative, 0u);
}

TEST_F(SlackTest, CriticalPathGatesCarryTheWorstSlack) {
  const double period = result_.worst_delay;  // zero-slack design
  const timing::SlackReport report =
      compute_slacks(engine_, trace_, period);
  const timing::CriticalPath path =
      extract_critical_path(engine_, result_, trace_);
  // Every gate on the critical path has (near-)zero slack.
  for (const auto& step : path.steps)
    EXPECT_NEAR(report.slack[step.gate], 0.0, 1e-6)
        << netlist_.gate(step.gate).name;
  // Off-path slacks are never below the worst slack.
  for (std::size_t g = 0; g < netlist_.num_gates_total(); ++g)
    if (std::isfinite(report.slack[g]))
      EXPECT_GE(report.slack[g], report.worst_slack - 1e-9);
}

TEST(Yield, EmpiricalYieldCountsCorrectly) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ssta::empirical_yield(samples, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(ssta::empirical_yield(samples, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ssta::empirical_yield(samples, 4.0), 1.0);
  EXPECT_THROW(ssta::empirical_yield({}, 1.0), Error);
}

TEST(Yield, EmpiricalCurveIsMonotoneFromZeroToOne) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.normal(100.0, 10.0));
  const auto curve = ssta::empirical_yield_curve(samples, 21);
  ASSERT_EQ(curve.size(), 21u);
  EXPECT_DOUBLE_EQ(curve.front().yield, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().yield, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].yield, curve[i - 1].yield);
    EXPECT_GT(curve[i].period, curve[i - 1].period);
  }
}

TEST(Yield, CanonicalYieldMatchesNormalCdf) {
  const ssta::CanonicalForm delay(100.0, {6.0, 8.0}, 0.0);  // sigma 10
  EXPECT_NEAR(ssta::canonical_yield(delay, 100.0), 0.5, 1e-12);
  EXPECT_NEAR(ssta::canonical_yield(delay, 110.0), 0.8413, 1e-3);
  EXPECT_NEAR(ssta::canonical_yield(delay, 80.0), 0.0228, 1e-3);
  // Inverse: period for a target yield.
  EXPECT_NEAR(ssta::canonical_period_for_yield(delay, 0.99865), 130.0, 0.1);
  EXPECT_NEAR(ssta::canonical_period_for_yield(delay, 0.5), 100.0, 1e-9);
}

TEST(Yield, CanonicalCurveTracksEmpiricalForNormalSamples) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(100.0, 10.0));
  const auto grid = ssta::empirical_yield_curve(samples, 15);
  const ssta::CanonicalForm delay(100.0, {10.0}, 0.0);
  const auto parametric = ssta::canonical_yield_curve(delay, grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(parametric[i].yield, grid[i].yield, 0.02) << "point " << i;
}

TEST(InverseNormalCdf, RoundTripsWithCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    const double z = field::inverse_normal_cdf(p);
    EXPECT_NEAR(ssta::normal_cdf(z), p, 1e-7) << "p=" << p;
  }
  EXPECT_THROW(field::inverse_normal_cdf(0.0), Error);
  EXPECT_THROW(field::inverse_normal_cdf(1.0), Error);
}

TEST(LatinHypercube, MarginalsAreStandardNormal) {
  linalg::Matrix sample;
  field::latin_hypercube_normal(2000, 3, StreamKey{5, 0}, sample);
  for (std::size_t d = 0; d < 3; ++d) {
    RunningStats stats;
    for (std::size_t i = 0; i < 2000; ++i) stats.add(sample(i, d));
    // Stratification makes these estimates far tighter than sqrt(1/n).
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0, 0.03);
  }
}

TEST(LatinHypercube, StratificationCoversEveryStratum) {
  const std::size_t n = 64;
  linalg::Matrix sample;
  field::latin_hypercube_normal(n, 2, StreamKey{6, 0}, sample);
  // Exactly one sample per probability stratum per dimension.
  for (std::size_t d = 0; d < 2; ++d) {
    std::vector<int> hits(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = ssta::normal_cdf(sample(i, d));
      const auto stratum = std::min<std::size_t>(
          static_cast<std::size_t>(u * static_cast<double>(n)), n - 1);
      ++hits[stratum];
    }
    for (std::size_t s = 0; s < n; ++s) EXPECT_EQ(hits[s], 1) << s;
  }
}

TEST(LatinHypercube, ReducesMeanEstimatorVariance) {
  // Estimate E[sum xi^2] (= dims) with n samples, repeated; the LHS
  // estimator must have visibly lower spread than plain MC.
  const std::size_t n = 64;
  const std::size_t dims = 4;
  RunningStats plain_spread;
  RunningStats lhs_spread;
  for (int rep = 0; rep < 60; ++rep) {
    Rng rng_a(100 + rep);
    double plain = 0.0;
    for (std::size_t i = 0; i < n * dims; ++i) {
      const double x = rng_a.normal();
      plain += x * x;
    }
    plain_spread.add(plain / static_cast<double>(n));
    linalg::Matrix sample;
    field::latin_hypercube_normal(
        n, dims, StreamKey{100 + static_cast<std::uint64_t>(rep), 0}, sample);
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < dims; ++d)
        lhs += sample(i, d) * sample(i, d);
    lhs_spread.add(lhs / static_cast<double>(n));
  }
  EXPECT_NEAR(plain_spread.mean(), 4.0, 0.15);
  EXPECT_NEAR(lhs_spread.mean(), 4.0, 0.05);
  EXPECT_LT(lhs_spread.stddev(), 0.5 * plain_spread.stddev());
}

TEST(PceModel, IndexLayoutAndClosedFormStatistics) {
  // dims=2: terms are [1, x0, x1, H2(x0), H2(x1), x0 x1].
  linalg::Vector coefficients = {10.0, 2.0, 0.0, 1.0, 0.0, 0.5};
  const ssta::PceModel model(2, coefficients, 0.25);
  EXPECT_EQ(model.num_terms(), 6u);
  EXPECT_EQ(model.linear_index(0), 1u);
  EXPECT_EQ(model.quadratic_index(1), 4u);
  EXPECT_EQ(model.cross_index(0, 1), 5u);
  EXPECT_DOUBLE_EQ(model.mean(), 10.0);
  EXPECT_DOUBLE_EQ(model.variance(), 4.0 + 1.0 + 0.25 + 0.25);
  EXPECT_NEAR(model.main_effect_fraction(0), 5.0 / 5.5, 1e-12);
  EXPECT_NEAR(model.interaction_fraction(), 0.25 / 5.5, 1e-12);
  // evaluate at xi = (1, -1): 10 + 2*1 + 1*(1-1)/sqrt2 + 0.5*(-1) = 11.5.
  EXPECT_NEAR(model.evaluate({1.0, -1.0}), 11.5, 1e-12);
  EXPECT_THROW(model.evaluate({1.0}), Error);
  EXPECT_THROW(ssta::PceModel(2, {1.0, 2.0}, 0.0), Error);
}

TEST(Pce, RecoversKnownQuadraticFunction) {
  // Synthetic "timer": y = 5 + 3 xi0 - 2 H2(xi1) + 0.7 xi0 xi1. Build a
  // fake 1-gate engine? Simpler: exercise the regression path through the
  // public API on a real engine below; here validate the algebra by
  // fitting via the model on c17 and checking MC agreement instead.
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 600, mesh::StructuredPattern::kCross);
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 12;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const auto locations = placement.physical_locations(netlist);
  const field::KleFieldSampler sampler(kle, 12, locations);
  const linalg::Matrix& g = sampler.field().location_operator();

  ssta::PceOptions options;
  options.dims_per_parameter = 3;
  options.num_samples = 600;
  const ssta::PceAnalysis analysis =
      fit_worst_delay_pce(engine, {&g, &g, &g, &g}, options);
  EXPECT_EQ(analysis.model.num_dimensions(), 12u);  // 3 x 4 parameters
  EXPECT_EQ(analysis.dimension_origin.size(), 12u);

  // The surrogate's mean/sigma track the Monte Carlo estimates.
  ssta::McSstaOptions mc_options;
  mc_options.num_samples = 4000;
  const ssta::McSstaResult mc = run_monte_carlo_ssta(
      engine, {&sampler, &sampler, &sampler, &sampler}, mc_options);
  EXPECT_NEAR(analysis.model.mean(), mc.worst_delay.mean(),
              0.02 * mc.worst_delay.mean());
  EXPECT_NEAR(analysis.model.sigma(), mc.worst_delay.stddev(),
              0.25 * mc.worst_delay.stddev());

  // Main effects sum to at most 1 and the leading modes dominate.
  double total_main = 0.0;
  for (std::size_t d = 0; d < 12; ++d) {
    const double f = analysis.model.main_effect_fraction(d);
    EXPECT_GE(f, 0.0);
    total_main += f;
  }
  EXPECT_LE(total_main, 1.0 + 1e-9);
  EXPECT_GT(total_main, 0.4);  // first-order effects carry the variance
}

TEST(Pce, RequiresEnoughSamples) {
  const circuit::Netlist netlist =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const linalg::Matrix g(netlist.num_physical_gates(), 10);
  ssta::PceOptions options;
  options.dims_per_parameter = 10;  // 40 dims -> 861 terms
  options.num_samples = 100;        // far too few
  EXPECT_THROW(fit_worst_delay_pce(engine, {&g, &g, &g, &g}, options),
               Error);
}

}  // namespace
}  // namespace sckl
