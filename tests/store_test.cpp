// Tests for the src/store/ artifact subsystem: binary round-trips, format
// rejection, content-hash keying, LRU behaviour, get_or_compute, advisory
// file locking, fsck recovery, and solve-stampede dedup.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_library.h"
#include "store/artifact_store.h"
#include "store/file_lock.h"
#include "store/key_hash.h"
#include "store/kle_io.h"
#include "store/record_log.h"
#include "store/recovery.h"

namespace {

using namespace sckl;
namespace fs = std::filesystem;

store::KleArtifactConfig small_config() {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {2.0};
  config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  config.mesh.target_triangles = 100;
  config.num_eigenpairs = 16;
  return config;
}

store::StoredKleResult small_artifact() {
  const kernels::GaussianKernel kernel(2.0);
  return store::StoredKleResult::solve(small_config(), kernel);
}

/// Fresh scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sckl_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool bit_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// --- kle_io ----------------------------------------------------------------

TEST(KleIoTest, RoundTripIsBitExact) {
  const store::StoredKleResult original = small_artifact();
  const std::vector<std::uint8_t> bytes = store::encode_kle(original);
  const store::StoredKleResult copy = store::decode_kle(bytes);

  ASSERT_EQ(copy.mesh().num_vertices(), original.mesh().num_vertices());
  ASSERT_EQ(copy.mesh().num_triangles(), original.mesh().num_triangles());
  for (std::size_t v = 0; v < copy.mesh().num_vertices(); ++v) {
    EXPECT_TRUE(bit_equal(copy.mesh().vertices()[v].x,
                          original.mesh().vertices()[v].x));
    EXPECT_TRUE(bit_equal(copy.mesh().vertices()[v].y,
                          original.mesh().vertices()[v].y));
  }
  EXPECT_EQ(copy.mesh().triangle_indices(), original.mesh().triangle_indices());

  const auto& lambda_a = original.kle().eigenvalues();
  const auto& lambda_b = copy.kle().eigenvalues();
  ASSERT_EQ(lambda_a.size(), lambda_b.size());
  for (std::size_t j = 0; j < lambda_a.size(); ++j)
    EXPECT_TRUE(bit_equal(lambda_a[j], lambda_b[j])) << "lambda " << j;

  const auto& d_a = original.kle().coefficients();
  const auto& d_b = copy.kle().coefficients();
  ASSERT_EQ(d_a.rows(), d_b.rows());
  ASSERT_EQ(d_a.cols(), d_b.cols());
  for (std::size_t i = 0; i < d_a.rows(); ++i)
    for (std::size_t j = 0; j < d_a.cols(); ++j)
      EXPECT_TRUE(bit_equal(d_a(i, j), d_b(i, j))) << "d(" << i << "," << j
                                                   << ")";

  EXPECT_EQ(copy.config().kernel_id, original.config().kernel_id);
  EXPECT_EQ(copy.config().kernel_params, original.config().kernel_params);
  EXPECT_EQ(store::artifact_key(copy.config()),
            store::artifact_key(original.config()));
}

TEST(KleIoTest, FileRoundTripMatchesBufferRoundTrip) {
  const store::StoredKleResult original = small_artifact();
  const fs::path path = scratch_dir("io_file") / "artifact.sckl";
  store::write_kle_file(path.string(), original);
  const store::StoredKleResult loaded = store::read_kle_file(path.string());
  EXPECT_EQ(store::encode_kle(loaded), store::encode_kle(original));
}

TEST(KleIoTest, TruncatedFileIsRejected) {
  const store::StoredKleResult original = small_artifact();
  std::vector<std::uint8_t> bytes = store::encode_kle(original);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{17},
        bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(store::decode_kle(cut), Error) << "kept " << keep << " bytes";
  }
}

TEST(KleIoTest, CorruptedPayloadIsRejectedByChecksum) {
  const store::StoredKleResult original = small_artifact();
  std::vector<std::uint8_t> bytes = store::encode_kle(original);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  try {
    store::decode_kle(bytes);
    FAIL() << "corrupted payload must not decode";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(KleIoTest, WrongMagicAndVersionAreRejected) {
  const store::StoredKleResult original = small_artifact();
  std::vector<std::uint8_t> bytes = store::encode_kle(original);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(store::decode_kle(bad_magic), Error);

  std::vector<std::uint8_t> bad_version = bytes;
  bad_version[4] = 0x7F;  // version 127, little-endian low byte
  try {
    store::decode_kle(bad_version);
    FAIL() << "future version must not decode";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(KleIoTest, StoredResultOwnsItsMesh) {
  // A deserialized artifact must stay fully usable with no external mesh —
  // the KleResult dangling-reference hazard the wrapper exists to fix.
  std::unique_ptr<store::StoredKleResult> copy;
  {
    const store::StoredKleResult original = small_artifact();
    copy = std::make_unique<store::StoredKleResult>(
        store::decode_kle(store::encode_kle(original)));
    // `original` (and its mesh) die here.
  }
  EXPECT_GT(copy->kle().eigenvalue(0), 0.0);
  EXPECT_GE(copy->kle().eigenfunction_value(0, {0.1, -0.2}), -1e9);
  const std::vector<geometry::Point2> gates{{0.0, 0.0}, {0.5, 0.5}};
  const field::KleFieldSampler sampler(*copy, 8, gates);
  linalg::Matrix block;
  sampler.sample_block(field::SampleRange{0, 4}, StreamKey{7, 0}, block);
  EXPECT_EQ(block.rows(), 4u);
  EXPECT_EQ(block.cols(), gates.size());
}

// --- key_hash --------------------------------------------------------------

TEST(KeyHashTest, SameConfigSameKey) {
  EXPECT_EQ(store::artifact_key(small_config()),
            store::artifact_key(small_config()));
}

TEST(KeyHashTest, AnyFieldDeltaChangesKey) {
  const std::uint64_t base = store::artifact_key(small_config());

  store::KleArtifactConfig c = small_config();
  c.kernel_id = "exponential";
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.kernel_params[0] = 2.0000000001;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.die.max.x = 0.5;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.mesh.kind = store::MeshSpec::Kind::kStructuredDiagonal;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.mesh.target_triangles += 1;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.mesh.area_fraction *= 2.0;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.mesh.mesher_seed += 1;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.quadrature = core::QuadratureRule::kSymmetric3;
  EXPECT_NE(store::artifact_key(c), base);

  c = small_config();
  c.num_eigenpairs += 1;
  EXPECT_NE(store::artifact_key(c), base);
}

TEST(KeyHashTest, KeyStringIsFixedWidthHex) {
  EXPECT_EQ(store::key_string(0), "0000000000000000");
  EXPECT_EQ(store::key_string(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(store::key_string(~std::uint64_t{0}), "ffffffffffffffff");
}

TEST(KeyHashTest, DescribeKernelMatchesLibraryTypes) {
  std::string id;
  std::vector<double> params;
  store::describe_kernel(kernels::GaussianKernel(2.33), id, params);
  EXPECT_EQ(id, "gaussian");
  ASSERT_EQ(params.size(), 1u);
  EXPECT_DOUBLE_EQ(params[0], 2.33);
  store::describe_kernel(kernels::MaternKernel(2.0, 3.0), id, params);
  EXPECT_EQ(id, "matern");
  EXPECT_EQ(params, (std::vector<double>{2.0, 3.0}));
  store::describe_kernel(kernels::SphericalKernel(1.5), id, params);
  EXPECT_TRUE(params.empty());
  EXPECT_FALSE(id.empty());  // falls back to name()
}

// --- LruCache --------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsedAndCounts) {
  store::LruCache<int, int> cache(300);
  auto value = [](int v) { return std::make_shared<const int>(v); };
  cache.put(1, value(10), 100);
  cache.put(2, value(20), 100);
  cache.put(3, value(30), 100);
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.get(1), nullptr);
  cache.put(4, value(40), 100);

  EXPECT_EQ(cache.get(2), nullptr);  // evicted
  ASSERT_NE(cache.get(1), nullptr);
  ASSERT_NE(cache.get(3), nullptr);
  ASSERT_NE(cache.get(4), nullptr);
  EXPECT_EQ(*cache.get(4), 40);

  const store::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 300u);
  EXPECT_EQ(stats.misses, 1u);   // the get(2) after eviction
  EXPECT_GE(stats.hits, 5u);     // 1 touch + 4 verification gets
}

TEST(LruCacheTest, OversizedEntryIsNotCached) {
  store::LruCache<int, int> cache(100);
  cache.put(1, std::make_shared<const int>(1), 101);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().oversized_rejects, 1u);
}

TEST(LruCacheTest, OversizedEntryDoesNotFlushResidents) {
  // An artifact larger than the whole budget must pass through without
  // evicting everything that does fit — flushing residents would trade one
  // guaranteed miss for many.
  store::LruCache<int, int> cache(100);
  cache.put(1, std::make_shared<const int>(10), 40);
  cache.put(2, std::make_shared<const int>(20), 40);
  cache.put(3, std::make_shared<const int>(30), 5000);  // oversized

  EXPECT_EQ(cache.get(3), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  const store::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.oversized_rejects, 1u);
  EXPECT_EQ(stats.insertions, 2u);  // the oversized put never inserted
}

TEST(LruCacheTest, ReplacingAKeyUpdatesByteCharge) {
  store::LruCache<int, int> cache(200);
  cache.put(1, std::make_shared<const int>(1), 150);
  cache.put(1, std::make_shared<const int>(2), 50);
  EXPECT_EQ(cache.stats().bytes, 50u);
  EXPECT_EQ(*cache.get(1), 2);
}

TEST(LruCacheTest, ConcurrentMixedUseIsSafe) {
  store::LruCache<int, int> cache(64 * 10);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = (t * 31 + i) % 23;
        if (auto hit = cache.get(key)) {
          EXPECT_EQ(*hit, key);
        } else {
          cache.put(key, std::make_shared<const int>(key), 64);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const store::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 500u);
  EXPECT_LE(stats.bytes, stats.byte_budget);
}

// --- KleArtifactStore ------------------------------------------------------

TEST(ArtifactStoreTest, GetOrComputeMatchesFreshSolveBitExactly) {
  const fs::path root = scratch_dir("store_equiv");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();

  store::KleArtifactStore store(root);
  const store::FetchResult cold = store.get_or_compute(config, kernel);
  EXPECT_EQ(cold.source, store::FetchSource::kSolved);

  const store::StoredKleResult fresh = store::StoredKleResult::solve(config, kernel);
  EXPECT_EQ(store::encode_kle(*cold.artifact), store::encode_kle(fresh));
}

TEST(ArtifactStoreTest, MemoryThenDiskHitsAndStats) {
  const fs::path root = scratch_dir("store_hits");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();

  store::KleArtifactStore store(root);
  EXPECT_FALSE(store.contains(config));
  const store::FetchResult cold = store.get_or_compute(config, kernel);
  EXPECT_EQ(cold.source, store::FetchSource::kSolved);
  EXPECT_TRUE(store.contains(config));
  EXPECT_TRUE(fs::exists(store.path_for(config)));

  const store::FetchResult warm = store.get_or_compute(config, kernel);
  EXPECT_EQ(warm.source, store::FetchSource::kMemory);
  EXPECT_EQ(warm.artifact.get(), cold.artifact.get());  // same shared object
  EXPECT_EQ(store.cache_stats().hits, 1u);

  // A fresh process (new store instance) must come from disk, bit-exactly.
  store::KleArtifactStore reopened(root);
  const store::FetchResult disk = reopened.get_or_compute(config, kernel);
  EXPECT_EQ(disk.source, store::FetchSource::kDisk);
  EXPECT_EQ(store::encode_kle(*disk.artifact),
            store::encode_kle(*cold.artifact));

  // Dropping the memory cache forces the disk path again.
  store.drop_memory_cache();
  EXPECT_EQ(store.get_or_compute(config, kernel).source,
            store::FetchSource::kDisk);
}

TEST(ArtifactStoreTest, CorruptedFileIsResolvedAndRewritten) {
  const fs::path root = scratch_dir("store_corrupt");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();

  store::KleArtifactStore store(root);
  store.get_or_compute(config, kernel);
  const fs::path path = store.path_for(config);

  // Flip a byte in the middle of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(200);
    byte = static_cast<char>(byte ^ 0x10);
    f.write(&byte, 1);
  }
  EXPECT_THROW(store::read_kle_file(path.string()), Error);
  EXPECT_FALSE(store.contains(config));

  store::KleArtifactStore reopened(root);
  const store::FetchResult fetch = reopened.get_or_compute(config, kernel);
  EXPECT_EQ(fetch.source, store::FetchSource::kSolved);  // not served corrupt
  EXPECT_TRUE(reopened.contains(config));                // rewritten clean
}

TEST(ArtifactStoreTest, LsAndGcCleanBadFiles) {
  const fs::path root = scratch_dir("store_gc");
  const kernels::GaussianKernel kernel(2.0);
  store::KleArtifactStore store(root);
  store.get_or_compute(small_config(), kernel);
  ASSERT_EQ(store.ls().size(), 1u);

  // Plant an orphaned tmp file, a truncated artifact, and a renamed one.
  // Together with the stale <key>.lock the cold solve left behind, that is
  // four pieces of debris.
  std::ofstream(root / "deadbeef00000000.sckl.tmp3") << "partial";
  std::ofstream(root / "0123456789abcdef.sckl") << "SCKLgarbage";
  fs::copy_file(root / (store.ls()[0].key + ".sckl"),
                root / "aaaaaaaaaaaaaaaa.sckl");

  EXPECT_EQ(store.gc(), 4u);
  EXPECT_FALSE(fs::exists(store.lock_path_for(small_config())));
  EXPECT_EQ(store.ls().size(), 1u);
  EXPECT_TRUE(store.contains(small_config()));
}

TEST(ArtifactStoreTest, GcDryRunPlansWithoutDeleting) {
  const fs::path root = scratch_dir("store_gc_dry");
  const kernels::GaussianKernel kernel(2.0);
  store::KleArtifactStore store(root);
  store.get_or_compute(small_config(), kernel);

  std::ofstream(root / "deadbeef00000000.sckl.424242.0.tmp") << "partial";
  std::ofstream(root / "cafecafecafecafe.sckl.bad") << "evidence";

  store::GcOptions dry;
  dry.dry_run = true;
  const store::GcReport plan = store.gc(dry);
  EXPECT_EQ(plan.removed, 0u);
  // Candidates: the tmp file, the quarantine evidence, and the stale solve
  // lock — the healthy artifact is never on the list.
  ASSERT_EQ(plan.candidates.size(), 3u);
  for (const auto& candidate : plan.candidates) {
    EXPECT_TRUE(fs::exists(candidate.path))
        << candidate.path << " (" << candidate.reason << ") was deleted";
    EXPECT_NE(candidate.path, store.path_for(small_config()));
    EXPECT_FALSE(candidate.reason.empty());
  }

  // The real sweep then removes exactly the planned set.
  EXPECT_EQ(store.gc(), plan.candidates.size());
  EXPECT_TRUE(store.contains(small_config()));
}

TEST(ArtifactStoreTest, DifferentConfigsGetDifferentFiles) {
  const fs::path root = scratch_dir("store_two");
  const kernels::GaussianKernel k2(2.0);
  const kernels::GaussianKernel k3(3.0);
  store::KleArtifactConfig a = small_config();
  store::KleArtifactConfig b = small_config();
  b.kernel_params = {3.0};

  store::KleArtifactStore store(root);
  store.get_or_compute(a, k2);
  store.get_or_compute(b, k3);
  EXPECT_EQ(store.ls().size(), 2u);
  EXPECT_NE(store.path_for(a), store.path_for(b));

  // Each artifact reloads under its own key with its own kernel parameters.
  store::KleArtifactStore reopened(root);
  const auto got_b = reopened.get_or_compute(b, k3);
  EXPECT_EQ(got_b.source, store::FetchSource::kDisk);
  EXPECT_EQ(got_b.artifact->config().kernel_params, std::vector<double>{3.0});
}

// --- FileLock --------------------------------------------------------------
// flock attaches the lock to the open file description, so two acquisitions
// in one process conflict exactly like two processes would — these tests
// exercise the real cross-process semantics without forking.

TEST(FileLockTest, ExclusiveExcludesEveryOtherAcquisition) {
  const fs::path path = scratch_dir("lock_excl") / "a.lock";
  const store::FileLock held =
      store::FileLock::acquire(path, store::FileLock::Mode::kExclusive);
  EXPECT_TRUE(held.held());
  EXPECT_EQ(held.path(), path);
  EXPECT_FALSE(
      store::FileLock::try_acquire(path, store::FileLock::Mode::kExclusive)
          .has_value());
  EXPECT_FALSE(
      store::FileLock::try_acquire(path, store::FileLock::Mode::kShared)
          .has_value());
}

TEST(FileLockTest, SharedHoldersCoexistButBlockExclusive) {
  const fs::path path = scratch_dir("lock_shared") / "a.lock";
  const store::FileLock reader1 =
      store::FileLock::acquire(path, store::FileLock::Mode::kShared);
  auto reader2 =
      store::FileLock::try_acquire(path, store::FileLock::Mode::kShared);
  ASSERT_TRUE(reader2.has_value());
  EXPECT_TRUE(reader2->held());
  EXPECT_FALSE(
      store::FileLock::try_acquire(path, store::FileLock::Mode::kExclusive)
          .has_value());
}

TEST(FileLockTest, ReleaseReopensTheDoorAndIsIdempotent) {
  const fs::path path = scratch_dir("lock_release") / "a.lock";
  store::FileLock lock =
      store::FileLock::acquire(path, store::FileLock::Mode::kExclusive);
  lock.release();
  EXPECT_FALSE(lock.held());
  lock.release();  // idempotent
  auto next =
      store::FileLock::try_acquire(path, store::FileLock::Mode::kExclusive);
  EXPECT_TRUE(next.has_value());
}

TEST(FileLockTest, MoveTransfersOwnership) {
  const fs::path path = scratch_dir("lock_move") / "a.lock";
  store::FileLock first =
      store::FileLock::acquire(path, store::FileLock::Mode::kExclusive);
  store::FileLock second = std::move(first);
  EXPECT_FALSE(first.held());
  EXPECT_TRUE(second.held());
  EXPECT_FALSE(
      store::FileLock::try_acquire(path, store::FileLock::Mode::kExclusive)
          .has_value());
  second.release();
  EXPECT_TRUE(
      store::FileLock::try_acquire(path, store::FileLock::Mode::kExclusive)
          .has_value());
}

TEST(FileLockTest, LockIsHeldProbesLiveness) {
  const fs::path dir = scratch_dir("lock_probe");
  EXPECT_FALSE(store::lock_is_held(dir / "missing.lock"));
  {
    const store::FileLock lock = store::FileLock::acquire(
        dir / "live.lock", store::FileLock::Mode::kExclusive);
    EXPECT_TRUE(store::lock_is_held(dir / "live.lock"));
  }
  // Holder gone: the leftover file is stale, not stuck.
  EXPECT_FALSE(store::lock_is_held(dir / "live.lock"));
}

// --- recovery / fsck -------------------------------------------------------

TEST(RecoveryTest, FileTaxonomyClassifiesEveryRepositoryName) {
  EXPECT_TRUE(store::is_artifact_file("0123456789abcdef.sckl"));
  EXPECT_FALSE(store::is_artifact_file("0123456789abcdef.sckl.bad"));
  EXPECT_FALSE(store::is_artifact_file("store.lock"));

  EXPECT_TRUE(store::is_quarantine_file("0123456789abcdef.sckl.bad"));
  EXPECT_FALSE(store::is_quarantine_file("0123456789abcdef.sckl"));

  // Both the current <key>.sckl.<pid>.<seq>.tmp scheme and historical
  // <key>.sckl.tmpN names count as in-flight leftovers.
  EXPECT_TRUE(store::is_tmp_file("0123456789abcdef.sckl.12345.7.tmp"));
  EXPECT_TRUE(store::is_tmp_file("0123456789abcdef.sckl.tmp3"));
  EXPECT_FALSE(store::is_tmp_file("0123456789abcdef.sckl"));
  EXPECT_FALSE(store::is_tmp_file("0123456789abcdef.sckl.bad"));

  EXPECT_TRUE(store::is_lock_file("store.lock"));
  EXPECT_TRUE(store::is_lock_file("0123456789abcdef.lock"));
  EXPECT_FALSE(store::is_lock_file("0123456789abcdef.sckl"));
}

TEST(RecoveryTest, ReportOnlyFsckCountsButTouchesNothing) {
  const fs::path root = scratch_dir("fsck_report");
  const kernels::GaussianKernel kernel(2.0);
  store::KleArtifactStore store(root);
  store.get_or_compute(small_config(), kernel);

  std::ofstream(root / "deadbeef00000000.sckl.999.0.tmp") << "partial";
  std::ofstream(root / "0123456789abcdef.sckl") << "SCKLgarbage";
  std::ofstream(root / "cafecafecafecafe.sckl.bad") << "evidence";
  // The cold solve also left a stale <key>.lock behind.

  store::FsckOptions audit;
  audit.repair = false;
  const store::FsckResult result = store::fsck(root, audit);
  EXPECT_EQ(result.stats.healthy, 1u);
  EXPECT_EQ(result.stats.orphaned_tmp, 1u);
  EXPECT_EQ(result.stats.corrupt, 1u);
  EXPECT_EQ(result.stats.quarantined, 1u);
  EXPECT_EQ(result.stats.stale_locks, 1u);
  EXPECT_EQ(result.stats.repaired, 0u);
  EXPECT_FALSE(result.stats.clean());

  // Report-only means exactly that: every planted file is still there.
  EXPECT_TRUE(fs::exists(root / "deadbeef00000000.sckl.999.0.tmp"));
  EXPECT_TRUE(fs::exists(root / "0123456789abcdef.sckl"));
  EXPECT_TRUE(fs::exists(root / "cafecafecafecafe.sckl.bad"));
}

TEST(RecoveryTest, RepairReapsDebrisAndQuarantinesBrokenArtifacts) {
  const fs::path root = scratch_dir("fsck_repair");
  const kernels::GaussianKernel kernel(2.0);
  store::KleArtifactStore store(root);
  store.get_or_compute(small_config(), kernel);
  const fs::path healthy = store.path_for(small_config());

  std::ofstream(root / "deadbeef00000000.sckl.999.0.tmp") << "partial";
  std::ofstream(root / "0123456789abcdef.sckl") << "SCKLgarbage";
  fs::copy_file(healthy, root / "aaaaaaaaaaaaaaaa.sckl");  // key mismatch

  const store::FsckResult result = store::fsck(root);
  EXPECT_EQ(result.stats.healthy, 1u);
  EXPECT_EQ(result.stats.orphaned_tmp, 1u);
  EXPECT_EQ(result.stats.corrupt, 1u);
  EXPECT_EQ(result.stats.mismatched, 1u);
  EXPECT_GE(result.stats.repaired, 4u);  // tmp + lock + 2 quarantines

  // Repair is conservative: broken artifacts become .bad evidence instead of
  // disappearing, and the healthy artifact is untouched.
  EXPECT_FALSE(fs::exists(root / "deadbeef00000000.sckl.999.0.tmp"));
  EXPECT_FALSE(fs::exists(root / "0123456789abcdef.sckl"));
  EXPECT_TRUE(fs::exists(root / "0123456789abcdef.sckl.bad"));
  EXPECT_TRUE(fs::exists(root / "aaaaaaaaaaaaaaaa.sckl.bad"));
  EXPECT_TRUE(fs::exists(healthy));

  // Second pass: only the quarantine evidence remains; purging it yields a
  // provably clean repository.
  store::FsckOptions purge;
  purge.purge_quarantine = true;
  store::fsck(root, purge);
  store::FsckOptions audit;
  audit.repair = false;
  const store::FsckResult after = store::fsck(root, audit);
  EXPECT_TRUE(after.stats.clean());
  EXPECT_EQ(after.stats.healthy, 1u);
}

TEST(RecoveryTest, YoungTmpFilesAreKeptUntilMaxAge) {
  const fs::path root = scratch_dir("fsck_age");
  fs::create_directories(root);
  std::ofstream(root / "deadbeef00000000.sckl.999.0.tmp") << "in flight?";

  store::FsckOptions patient;
  patient.tmp_max_age_seconds = 3600.0;  // anything written this hour is young
  const store::FsckResult kept = store::fsck(root, patient);
  EXPECT_EQ(kept.stats.orphaned_tmp, 1u);
  EXPECT_EQ(kept.stats.repaired, 0u);
  EXPECT_TRUE(fs::exists(root / "deadbeef00000000.sckl.999.0.tmp"));

  const store::FsckResult reaped = store::fsck(root);  // default age 0
  EXPECT_EQ(reaped.stats.repaired, 1u);
  EXPECT_FALSE(fs::exists(root / "deadbeef00000000.sckl.999.0.tmp"));
}

TEST(RecoveryTest, FsckOnOpenRepairsAtConstruction) {
  const fs::path root = scratch_dir("fsck_on_open");
  fs::create_directories(root);
  std::ofstream(root / "deadbeef00000000.sckl.999.0.tmp") << "partial";
  std::ofstream(root / "0123456789abcdef.lock") << "";

  store::StoreOptions options;
  options.fsck_on_open = true;
  store::KleArtifactStore store(root, options);
  EXPECT_FALSE(fs::exists(root / "deadbeef00000000.sckl.999.0.tmp"));
  EXPECT_FALSE(fs::exists(root / "0123456789abcdef.lock"));
}

// --- solve-stampede dedup --------------------------------------------------

TEST(ArtifactStoreTest, ThreadStampedeRunsExactlyOneSolve) {
  const fs::path root = scratch_dir("stampede_threads");
  const kernels::GaussianKernel kernel(2.0);
  const store::KleArtifactConfig config = small_config();
  store::KleArtifactStore store(root);

  constexpr int kThreads = 6;
  std::atomic<int> ready{0};
  std::atomic<int> solved{0};
  std::vector<store::FetchSource> sources(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Barrier: every thread hits the cold key as simultaneously as the
      // scheduler allows.
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      const store::FetchResult fetch = store.get_or_compute(config, kernel);
      sources[t] = fetch.source;
      if (fetch.source == store::FetchSource::kSolved) ++solved;
      EXPECT_NE(fetch.artifact, nullptr);
    });
  }
  for (auto& w : workers) w.join();

  // The per-key lock reduces the stampede to exactly one eigensolve; every
  // loser re-checks after the winner publishes and is served a cached or
  // on-disk copy.
  EXPECT_EQ(solved.load(), 1);
  int from_cache_or_disk = 0;
  for (int t = 0; t < kThreads; ++t)
    if (sources[t] != store::FetchSource::kSolved) ++from_cache_or_disk;
  EXPECT_EQ(from_cache_or_disk, kThreads - 1);
  const store::StoreHealth health = store.health();
  EXPECT_GE(health.deduped_solves, 1u);
  EXPECT_LE(health.deduped_solves, static_cast<std::size_t>(kThreads - 1));
}

// --- RecordLog (crash-safe append-only log) --------------------------------

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(RecordLogTest, AppendsPersistAcrossReopenInOrder) {
  const fs::path path = scratch_dir("record_log_rt") / "run.ledger";
  {
    store::RecordLog log = store::RecordLog::open(path);
    EXPECT_TRUE(log.records().empty());
    EXPECT_FALSE(log.recovered_torn_tail());
    log.append(bytes_of("first"));
    log.append(bytes_of(""));  // empty payloads are legal records
    log.append(bytes_of("third record, a bit longer"));
  }
  store::RecordLog reopened = store::RecordLog::open(path);
  EXPECT_FALSE(reopened.recovered_torn_tail());
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.records()[0], bytes_of("first"));
  EXPECT_EQ(reopened.records()[1], bytes_of(""));
  EXPECT_EQ(reopened.records()[2], bytes_of("third record, a bit longer"));
}

TEST(RecordLogTest, TornTailIsTruncatedAndLogStaysAppendable) {
  const fs::path path = scratch_dir("record_log_torn") / "run.ledger";
  std::uintmax_t committed_size = 0;
  {
    store::RecordLog log = store::RecordLog::open(path);
    log.append(bytes_of("alpha"));
    log.append(bytes_of("beta"));
    committed_size = fs::file_size(path);
    log.append(bytes_of("gamma-will-be-torn"));
  }
  // Simulate a crash mid-append of the last record: keep its header and a
  // few payload bytes, drop the rest (and the CRC).
  fs::resize_file(path, committed_size + 16 + 3);

  {
    store::RecordLog log = store::RecordLog::open(path);
    EXPECT_TRUE(log.recovered_torn_tail());
    ASSERT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[1], bytes_of("beta"));
    // The torn bytes are gone from disk; the next append lands cleanly.
    EXPECT_EQ(fs::file_size(path), committed_size);
    log.append(bytes_of("gamma-retried"));
  }
  store::RecordLog reopened = store::RecordLog::open(path);
  EXPECT_FALSE(reopened.recovered_torn_tail());
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.records()[2], bytes_of("gamma-retried"));
}

TEST(RecordLogTest, CorruptTailPayloadFailsCrcAndIsDropped) {
  const fs::path path = scratch_dir("record_log_crc") / "run.ledger";
  {
    store::RecordLog log = store::RecordLog::open(path);
    log.append(bytes_of("keep-me"));
    log.append(bytes_of("corrupt-me"));
  }
  {
    // Flip one payload byte of the tail record in place.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-6, std::ios::end);  // inside "corrupt-me", before the CRC
    f.put('X');
  }
  store::RecordLog log = store::RecordLog::open(path);
  EXPECT_TRUE(log.recovered_torn_tail());
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0], bytes_of("keep-me"));
}

TEST(RecordLogTest, GarbageHeaderAtTailIsRecovered) {
  const fs::path path = scratch_dir("record_log_magic") / "run.ledger";
  {
    store::RecordLog log = store::RecordLog::open(path);
    log.append(bytes_of("solid"));
  }
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "NOTAMAGICHEADER";  // a torn header shorter than the frame
  }
  store::RecordLog log = store::RecordLog::open(path);
  EXPECT_TRUE(log.recovered_torn_tail());
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0], bytes_of("solid"));
}

TEST(RecordLogTest, MoveTransfersTheAppendHandle) {
  const fs::path path = scratch_dir("record_log_move") / "run.ledger";
  store::RecordLog first = store::RecordLog::open(path);
  first.append(bytes_of("one"));
  store::RecordLog second = std::move(first);
  second.append(bytes_of("two"));
  store::RecordLog reopened = store::RecordLog::open(path);
  ASSERT_EQ(reopened.records().size(), 2u);
  EXPECT_EQ(reopened.records()[1], bytes_of("two"));
}

}  // namespace
