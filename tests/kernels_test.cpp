// Tests for src/kernels: kernel families (values, limits, symmetry),
// validity (PSD) checks including the paper's claim that the 2-D isotropic
// linear kernel can be invalid, and the Fig. 3a least-squares fits.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "kernels/covariance_kernel.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "kernels/psd_check.h"

namespace sckl::kernels {
namespace {

using geometry::Point2;

TEST(GaussianKernel, ValuesAndUnitDiagonal) {
  const GaussianKernel k(2.0);
  EXPECT_DOUBLE_EQ(k({0, 0}, {0, 0}), 1.0);
  EXPECT_NEAR(k({0, 0}, {1, 0}), std::exp(-2.0), 1e-15);
  EXPECT_NEAR(k({0, 0}, {1, 1}), std::exp(-4.0), 1e-15);
  EXPECT_THROW(GaussianKernel(0.0), Error);
  EXPECT_NE(k.name().find("gaussian"), std::string::npos);
}

TEST(ExponentialKernel, DecaysWithL2Distance) {
  const ExponentialKernel k(1.5);
  EXPECT_DOUBLE_EQ(k({0, 0}, {0, 0}), 1.0);
  EXPECT_NEAR(k({0, 0}, {3, 4}), std::exp(-1.5 * 5.0), 1e-15);
}

TEST(SeparableL1Kernel, FactorsIntoOneDimensionalKernels) {
  const SeparableL1Kernel k(0.8);
  const double v = k({0.2, -0.3}, {0.7, 0.4});
  EXPECT_NEAR(v, std::exp(-0.8 * 0.5) * std::exp(-0.8 * 0.7), 1e-14);
}

TEST(RadialMagnitudeKernel, PerfectCorrelationOnCircles) {
  // The paper's criticism of [2]: points on an origin-centric circle are
  // perfectly correlated however far apart they are.
  const RadialMagnitudeKernel k(2.0);
  EXPECT_NEAR(k({1, 0}, {0, 1}), 1.0, 1e-15);
  EXPECT_NEAR(k({1, 0}, {-1, 0}), 1.0, 1e-15);
  EXPECT_LT(k({1, 0}, {2, 0}), 1.0);
}

TEST(MaternKernel, UnitValueAtZeroAndMonotoneDecay) {
  const MaternKernel k(3.0, 2.5);
  EXPECT_DOUBLE_EQ(k.radial(0.0), 1.0);
  double previous = 1.0;
  for (double v = 0.05; v < 3.0; v += 0.05) {
    const double value = k.radial(v);
    EXPECT_LE(value, previous + 1e-12) << "at v=" << v;
    EXPECT_GE(value, 0.0);
    previous = value;
  }
  // Continuity at 0: small v close to 1.
  EXPECT_NEAR(k.radial(1e-6), 1.0, 1e-3);
}

TEST(MaternKernel, ParameterValidation) {
  EXPECT_THROW(MaternKernel(0.0, 2.0), Error);
  EXPECT_THROW(MaternKernel(1.0, 1.0), Error);
  EXPECT_NO_THROW(MaternKernel(1.0, 1.5));
}

TEST(MaternKernel, SpecialCaseMatchesExponentialFamily) {
  // nu = 1/2 (s = 1.5) reduces to exp(-b v) analytically.
  const MaternKernel k(2.0, 1.5);
  for (double v : {0.1, 0.5, 1.0, 2.0})
    EXPECT_NEAR(k.radial(v), std::exp(-2.0 * v), 1e-10) << "v=" << v;
}

TEST(LinearConeKernel, PiecewiseLinear) {
  const LinearConeKernel k(1.0);
  EXPECT_DOUBLE_EQ(k.radial(0.0), 1.0);
  EXPECT_DOUBLE_EQ(k.radial(0.5), 0.5);
  EXPECT_DOUBLE_EQ(k.radial(1.0), 0.0);
  EXPECT_DOUBLE_EQ(k.radial(2.0), 0.0);
}

TEST(SphericalKernel, CompactSupportAndShape) {
  const SphericalKernel k(2.0);
  EXPECT_DOUBLE_EQ(k.radial(0.0), 1.0);
  EXPECT_DOUBLE_EQ(k.radial(2.0), 0.0);
  EXPECT_DOUBLE_EQ(k.radial(5.0), 0.0);
  EXPECT_NEAR(k.radial(1.0), 1.0 - 0.75 + 0.0625, 1e-15);
}

TEST(AllKernels, SymmetryProperty) {
  std::vector<std::unique_ptr<CovarianceKernel>> kernels;
  kernels.push_back(std::make_unique<GaussianKernel>(2.0));
  kernels.push_back(std::make_unique<ExponentialKernel>(1.0));
  kernels.push_back(std::make_unique<SeparableL1Kernel>(0.7));
  kernels.push_back(std::make_unique<MaternKernel>(2.0, 2.0));
  kernels.push_back(std::make_unique<LinearConeKernel>(1.0));
  kernels.push_back(std::make_unique<SphericalKernel>(1.5));
  kernels.push_back(std::make_unique<RadialMagnitudeKernel>(1.0));
  const Point2 x{0.3, -0.4};
  const Point2 y{-0.8, 0.9};
  for (const auto& k : kernels) {
    EXPECT_DOUBLE_EQ((*k)(x, y), (*k)(y, x)) << k->name();
    EXPECT_DOUBLE_EQ((*k)(x, x), 1.0) << k->name();
    // clone preserves behavior
    const auto copy = k->clone();
    EXPECT_DOUBLE_EQ((*copy)(x, y), (*k)(x, y)) << k->name();
    EXPECT_EQ(copy->name(), k->name());
  }
}

TEST(PsdCheck, ValidKernelsPass) {
  EXPECT_TRUE(check_positive_semidefinite(GaussianKernel(2.33)).passed);
  EXPECT_TRUE(check_positive_semidefinite(ExponentialKernel(1.0)).passed);
  EXPECT_TRUE(check_positive_semidefinite(SeparableL1Kernel(1.0)).passed);
  EXPECT_TRUE(check_positive_semidefinite(MaternKernel(3.0, 2.0)).passed);
  EXPECT_TRUE(check_positive_semidefinite(SphericalKernel(1.0)).passed);
}

TEST(PsdCheck, LinearConeFailsInTwoDimensions) {
  // [1]'s observation reproduced: the isotropic linear kernel is not a
  // valid 2-D covariance (its min Gram eigenvalue goes genuinely negative
  // for dense enough point sets).
  const PsdCheckResult result = check_positive_semidefinite(
      LinearConeKernel(1.0), geometry::BoundingBox::unit_die(),
      /*trials=*/8, /*points_per_trial=*/120, /*tolerance=*/1e-8);
  EXPECT_FALSE(result.passed);
  EXPECT_LT(result.min_relative_eigenvalue, -1e-6);
}

TEST(RadialSse, ZeroForIdenticalProfiles) {
  const RadialProfile p = [](double v) { return std::exp(-v); };
  EXPECT_NEAR(radial_sse(p, p, 2.0), 0.0, 1e-15);
}

TEST(RadialSse, WeightingChangesEmphasis) {
  const RadialProfile a = [](double v) { return v < 0.2 ? 1.0 : 0.0; };
  const RadialProfile b = [](double) { return 0.0; };
  const double uniform = radial_sse(a, b, 2.0, FitWeight::kUniform);
  const double radial = radial_sse(a, b, 2.0, FitWeight::kRadial);
  // The mismatch lives near v=0 where the radial weight is small.
  EXPECT_LT(radial, uniform);
}

TEST(KernelFit, RecoversKnownDecayParameter) {
  // Fit the Gaussian family to an exact Gaussian target: recovers c.
  const double c_true = 2.7;
  const auto family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  const RadialProfile target = family(c_true);
  const RadialFitResult fit =
      fit_radial_parameter(family, target, 2.0, 0.1, 20.0);
  EXPECT_NEAR(fit.parameter, c_true, 1e-4);
  EXPECT_NEAR(fit.sse, 0.0, 1e-10);
}

TEST(KernelFit, GaussianFitsLinearBetterThanExponential) {
  // Fig. 3a's claim: the Gaussian kernel fits the measurement-backed linear
  // kernel better than the exponential kernel (1-D uniform-weight fit).
  const LinearConeKernel cone(1.0);
  const RadialProfile target = [&cone](double v) { return cone.radial(v); };
  const auto gaussian_family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  const auto exponential_family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v); };
  };
  const RadialFitResult g =
      fit_radial_parameter(gaussian_family, target, 2.0, 0.05, 50.0);
  const RadialFitResult e =
      fit_radial_parameter(exponential_family, target, 2.0, 0.05, 50.0);
  EXPECT_LT(g.sse, e.sse);
}

TEST(KernelFit, PaperGaussianCIsReasonable) {
  // The 2-D fit to the rho=1 cone should land in the low single digits and
  // keep meaningful correlation at mid-range separations.
  const double c = paper_gaussian_c();
  EXPECT_GT(c, 0.5);
  EXPECT_LT(c, 10.0);
  const GaussianKernel k(c);
  EXPECT_GT(k.radial(0.5), 0.2);
  EXPECT_LT(k.radial(1.5), 0.2);
}

TEST(KernelFit, RejectsBadBrackets) {
  const auto family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v); };
  };
  const RadialProfile target = [](double) { return 0.5; };
  EXPECT_THROW(fit_radial_parameter(family, target, 1.0, -1.0, 2.0), Error);
  EXPECT_THROW(fit_radial_parameter(family, target, 1.0, 2.0, 1.0), Error);
  EXPECT_THROW(radial_sse(target, target, -1.0), Error);
}

}  // namespace
}  // namespace sckl::kernels
