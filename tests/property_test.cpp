// Cross-cutting property suites (parameterized sweeps).
//
// Each suite states an invariant of the system and checks it across a
// family of configurations: kernels x meshes for the KLE, seeds for the
// mesher/partitioner, random topologies for the RC trees, circuits for the
// STA. These complement the example-based unit tests with the "for all"
// style guarantees the numerics rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"
#include "placer/fm_partitioner.h"
#include "placer/hypergraph.h"
#include "placer/recursive_placer.h"
#include "ssta/canonical.h"
#include "timing/rc_tree.h"
#include "timing/sta.h"

namespace sckl {
namespace {

// ---------------------------------------------------------------- KLE ----

struct KleCase {
  const char* kernel_name;
  std::unique_ptr<kernels::CovarianceKernel> (*make)();
};

std::unique_ptr<kernels::CovarianceKernel> make_gaussian() {
  return std::make_unique<kernels::GaussianKernel>(2.7974);
}
std::unique_ptr<kernels::CovarianceKernel> make_exponential() {
  return std::make_unique<kernels::ExponentialKernel>(1.5);
}
std::unique_ptr<kernels::CovarianceKernel> make_separable() {
  return std::make_unique<kernels::SeparableL1Kernel>(1.0);
}
std::unique_ptr<kernels::CovarianceKernel> make_matern() {
  return std::make_unique<kernels::MaternKernel>(3.0, 2.5);
}
std::unique_ptr<kernels::CovarianceKernel> make_spherical() {
  return std::make_unique<kernels::SphericalKernel>(1.2);
}

class KleInvariantTest : public ::testing::TestWithParam<KleCase> {};

TEST_P(KleInvariantTest, SpectrumIsNonNegativeDescendingAndBounded) {
  const auto kernel = GetParam().make();
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 400, mesh::StructuredPattern::kCross);
  core::KleOptions options;
  options.num_eigenpairs = 40;
  const core::KleResult kle = core::solve_kle(mesh, *kernel, options);
  double sum = 0.0;
  for (std::size_t j = 0; j < 40; ++j) {
    EXPECT_GE(kle.eigenvalue(j), 0.0) << GetParam().kernel_name;
    if (j > 0) EXPECT_LE(kle.eigenvalue(j), kle.eigenvalue(j - 1) + 1e-12);
    sum += kle.eigenvalue(j);
  }
  // Total variance of a normalized kernel's projection never exceeds
  // area(D) = 4.
  EXPECT_LE(sum, 4.0 + 1e-6) << GetParam().kernel_name;
  EXPECT_GT(sum, 0.5) << GetParam().kernel_name;
}

TEST_P(KleInvariantTest, EigenfunctionsPhiOrthonormal) {
  const auto kernel = GetParam().make();
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 250,
      mesh::StructuredPattern::kDiagonal);
  core::KleOptions options;
  options.num_eigenpairs = 10;
  options.backend = core::KleBackend::kDense;
  const core::KleResult kle = core::solve_kle(mesh, *kernel, options);
  for (std::size_t p = 0; p < 10; ++p) {
    for (std::size_t q = p; q < 10; ++q) {
      double inner = 0.0;
      for (std::size_t t = 0; t < mesh.num_triangles(); ++t)
        inner += kle.coefficient(t, p) * kle.coefficient(t, q) *
                 mesh.area(t);
      // Degenerate (repeated) eigenvalues admit any orthogonal mixing, so
      // only require orthonormality where eigenvalues are separated.
      const bool distinct =
          p == q || std::abs(kle.eigenvalue(p) - kle.eigenvalue(q)) >
                        1e-6 * kle.eigenvalue(0);
      if (distinct)
        EXPECT_NEAR(inner, p == q ? 1.0 : 0.0, 1e-8)
            << GetParam().kernel_name << " pair " << p << "," << q;
    }
  }
}

TEST_P(KleInvariantTest, ReconstructionVarianceNeverExceedsUnity) {
  // Var p(x) = sum lambda_j f_j(x)^2 <= K(x, x) = 1 for every truncation
  // (the truncated KLE always under-represents variance).
  const auto kernel = GetParam().make();
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 400, mesh::StructuredPattern::kCross);
  core::KleOptions options;
  options.num_eigenpairs = 30;
  const core::KleResult kle = core::solve_kle(mesh, *kernel, options);
  Rng rng(7);
  for (int probe = 0; probe < 50; ++probe) {
    const geometry::Point2 x{rng.uniform(-0.99, 0.99),
                             rng.uniform(-0.99, 0.99)};
    const double variance = kle.reconstruct_kernel(x, x, 30);
    EXPECT_LE(variance, 1.0 + 0.05) << GetParam().kernel_name;
    EXPECT_GE(variance, 0.0);
  }
}

TEST_P(KleInvariantTest, SolveOutputIsFiniteEverywhere) {
  // Finite-or-throw: whatever solve_kle returns must be entirely finite —
  // NaN/Inf inputs are rejected with a diagnostic sckl::Error before they
  // can reach the spectrum (see NonFiniteGalerkinMatrixIsRejected in
  // robust_test.cpp for the throwing half of the contract).
  const auto kernel = GetParam().make();
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 250, mesh::StructuredPattern::kCross);
  core::KleOptions options;
  options.num_eigenpairs = 20;
  const core::KleResult kle = core::solve_kle(mesh, *kernel, options);
  for (std::size_t j = 0; j < kle.num_eigenpairs(); ++j) {
    EXPECT_TRUE(std::isfinite(kle.eigenvalue(j))) << GetParam().kernel_name;
    for (std::size_t i = 0; i < kle.basis_size(); ++i)
      EXPECT_TRUE(std::isfinite(kle.coefficient(i, j)))
          << GetParam().kernel_name << " d(" << i << "," << j << ")";
  }
}

TEST_P(KleInvariantTest, KernelIsFiniteOnTheDieAndRejectsNonFiniteInput) {
  const auto kernel = GetParam().make();
  Rng rng(19);
  for (int probe = 0; probe < 200; ++probe) {
    const geometry::Point2 x{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const geometry::Point2 y{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const double k = (*kernel)(x, y);
    EXPECT_TRUE(std::isfinite(k)) << GetParam().kernel_name;
    EXPECT_LE(std::abs(k), 1.0 + 1e-9) << GetParam().kernel_name;
  }
  // A poisoned coordinate must fail loudly with the kNonFinite code, never
  // return NaN (the separable kernel guards inside its own evaluation).
  const geometry::Point2 good{0.25, -0.5};
  for (const double bad_value : {std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity()}) {
    const geometry::Point2 bad{bad_value, 0.0};
    try {
      const double k = (*kernel)(good, bad);
      EXPECT_TRUE(false) << GetParam().kernel_name << " returned " << k;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kNonFinite) << GetParam().kernel_name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KleInvariantTest,
    ::testing::Values(KleCase{"gaussian", &make_gaussian},
                      KleCase{"exponential", &make_exponential},
                      KleCase{"separable", &make_separable},
                      KleCase{"matern", &make_matern},
                      KleCase{"spherical", &make_spherical}),
    [](const ::testing::TestParamInfo<KleCase>& info) {
      return info.param.kernel_name;
    });

// ----------------------------------------------------------- mesher ----

class RefineSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineSeedTest, TilesAndMeetsConstraintsForEverySeed) {
  mesh::RefinementOptions options;
  options.max_area = 0.01;
  options.seed = GetParam();
  const mesh::TriMesh mesh =
      mesh::refined_delaunay_mesh(geometry::BoundingBox::unit_die(), options);
  const mesh::MeshQuality q = mesh.quality();
  EXPECT_NEAR(q.total_area, 4.0, 1e-6);
  EXPECT_LE(q.max_area, options.max_area * (1 + 1e-9));
  EXPECT_GE(q.min_angle_degrees, options.min_angle_degrees - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineSeedTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 13u, 42u, 1234u));

// ------------------------------------------------------ partitioner ----

class FmSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmSeedTest, BalancedAndConsistentForEverySeed) {
  circuit::SyntheticSpec spec;
  spec.num_gates = 250;
  spec.seed = 31;
  const circuit::Netlist netlist = circuit::synthetic_circuit(spec);
  const placer::Hypergraph graph = placer::build_hypergraph(netlist);
  placer::FmOptions options;
  options.seed = GetParam();
  const placer::FmResult result = placer::fm_bisect(graph, options);
  EXPECT_EQ(result.cut, placer::cut_size(graph, result.side));
  const double fraction = static_cast<double>(result.size0) /
                          static_cast<double>(graph.num_cells);
  EXPECT_GE(fraction, 0.5 - options.balance_tolerance - 0.01);
  EXPECT_LE(fraction, 0.5 + options.balance_tolerance + 0.01);
  // Determinism: same seed, same answer.
  const placer::FmResult again = placer::fm_bisect(graph, options);
  EXPECT_EQ(result.cut, again.cut);
  EXPECT_EQ(result.side, again.side);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmSeedTest,
                         ::testing::Values(1u, 5u, 9u, 77u, 1001u));

// ---------------------------------------------------------- RC tree ----

// Brute-force Elmore reference: delay(k) = sum_j R(path(root->k) intersect
// path(root->j)) * C_j, computed directly from parent pointers.
std::vector<double> brute_force_elmore(
    const std::vector<std::size_t>& parent,
    const std::vector<double>& resistance,
    const std::vector<double>& capacitance) {
  const std::size_t n = parent.size();
  auto path_to_root = [&](std::size_t node) {
    std::vector<std::size_t> path;
    while (node != 0) {
      path.push_back(node);
      node = parent[node];
    }
    return path;  // excludes root; resistances live on these nodes
  };
  std::vector<double> delay(n, 0.0);
  for (std::size_t k = 1; k < n; ++k) {
    const auto pk = path_to_root(k);
    for (std::size_t j = 0; j < n; ++j) {
      const auto pj = path_to_root(j);
      double shared_r = 0.0;
      for (std::size_t a : pk)
        for (std::size_t b : pj)
          if (a == b) shared_r += resistance[a];
      delay[k] += shared_r * capacitance[j];
    }
  }
  return delay;
}

class RcTreeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RcTreeRandomTest, MatchesBruteForceOnRandomTopologies) {
  Rng rng(GetParam());
  timing::RcTree tree;
  std::vector<std::size_t> parent = {0};
  std::vector<double> resistance = {0.0};
  std::vector<double> capacitance = {rng.uniform(0.1, 2.0)};
  tree.add_capacitance(0, capacitance[0]);
  const std::size_t extra = 3 + rng.uniform_index(12);
  for (std::size_t i = 0; i < extra; ++i) {
    const std::size_t p = rng.uniform_index(parent.size());
    const double r = rng.uniform(0.1, 3.0);
    const double c = rng.uniform(0.1, 4.0);
    tree.add_node(p, r, c);
    parent.push_back(p);
    resistance.push_back(r);
    capacitance.push_back(c);
  }
  const std::vector<double> fast = tree.elmore_delays();
  const std::vector<double> slow =
      brute_force_elmore(parent, resistance, capacitance);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t k = 0; k < fast.size(); ++k)
    EXPECT_NEAR(fast[k], slow[k], 1e-9) << "node " << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcTreeRandomTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --------------------------------------------------------------- STA ----

class StaMonotonicityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StaMonotonicityTest, SlowerProcessNeverSpeedsUpTheCircuit) {
  const circuit::Netlist netlist =
      circuit::make_paper_circuit(GetParam(), 3);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const std::size_t ng = netlist.num_physical_gates();
  const std::vector<double> zeros(ng, 0.0);
  double previous = 0.0;
  for (double sigma : {-1.0, 0.0, 1.0, 2.0}) {
    const std::vector<double> level(ng, sigma);
    // +L slows every gate (dominant positive sensitivity).
    const timing::StaResult result = engine.run(
        {level.data(), zeros.data(), zeros.data(), zeros.data()});
    if (sigma > -1.0) EXPECT_GT(result.worst_delay, previous);
    previous = result.worst_delay;
  }
}

TEST_P(StaMonotonicityTest, EndpointsAndDepthAreConsistent) {
  const circuit::Netlist netlist =
      circuit::make_paper_circuit(GetParam(), 3);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const timing::StaResult result = engine.run_nominal();
  EXPECT_EQ(result.endpoint_arrival.size(),
            netlist.primary_outputs().size() + netlist.flip_flops().size());
  double max_arrival = 0.0;
  for (double a : result.endpoint_arrival) {
    EXPECT_GE(a, 0.0);
    max_arrival = std::max(max_arrival, a);
  }
  EXPECT_DOUBLE_EQ(max_arrival, result.worst_delay);
}

INSTANTIATE_TEST_SUITE_P(Circuits, StaMonotonicityTest,
                         ::testing::Values("c880", "c1355", "s5378"));

// --------------------------------------------------------- Clark max ----

class ClarkPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ClarkPropertyTest, MaxDominatesBothArgumentsInMean) {
  const auto [gap, shared, independent] = GetParam();
  const ssta::CanonicalForm x(50.0, {shared, 0.2}, independent);
  const ssta::CanonicalForm y(50.0 + gap, {0.3, shared}, independent);
  const ssta::CanonicalForm m = ssta::CanonicalForm::maximum(x, y);
  // Jensen: E[max(X, Y)] >= max(E X, E Y).
  EXPECT_GE(m.mean(), std::max(x.mean(), y.mean()) - 1e-9);
  // ... and at most E X + E Y - min (loose) plus a sigma; sanity bound.
  EXPECT_LE(m.mean(),
            std::max(x.mean(), y.mean()) + x.sigma() + y.sigma() + 1e-9);
  // Variance of the max of positively dependent normals is bounded by the
  // larger argument variance plus the Clark cross term; sanity: not above
  // the sum of both variances.
  EXPECT_LE(m.variance(), x.variance() + y.variance() + 1e-9);
  EXPECT_GE(m.variance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClarkPropertyTest,
    ::testing::Values(std::make_tuple(0.0, 0.5, 0.1),
                      std::make_tuple(1.0, 0.5, 0.1),
                      std::make_tuple(5.0, 0.5, 0.1),
                      std::make_tuple(0.0, 0.0, 0.5),
                      std::make_tuple(2.0, 0.9, 0.0)));

// -------------------------------------------------------- statistics ----

class StatisticsFiniteTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatisticsFiniteTest, SummariesAreFiniteOrThrowOnPoisonedInput) {
  // Finite-or-throw for the batch statistics helpers: clean input always
  // yields finite summaries; any NaN/Inf entry raises kNonFinite instead of
  // silently poisoning the result.
  Rng rng(GetParam());
  std::vector<double> values(64);
  for (double& v : values) v = rng.uniform(-100.0, 100.0);
  const double mean = mean_of(values);
  const double stddev = stddev_of(values);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_TRUE(std::isfinite(stddev));
  EXPECT_GE(stddev, 0.0);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    const double value = quantile(values, q);
    EXPECT_TRUE(std::isfinite(value));
    EXPECT_GE(value, -100.0);
    EXPECT_LE(value, 100.0);
  }

  const std::size_t poisoned_index = rng.uniform_index(values.size());
  for (const double poison : {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    std::vector<double> poisoned = values;
    poisoned[poisoned_index] = poison;
    for (auto fn : {+[](const std::vector<double>& v) { (void)mean_of(v); },
                    +[](const std::vector<double>& v) { (void)stddev_of(v); },
                    +[](const std::vector<double>& v) {
                      (void)quantile(v, 0.5);
                    }}) {
      try {
        fn(poisoned);
        ADD_FAILURE() << "expected kNonFinite for poison " << poison;
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatisticsFiniteTest,
                         ::testing::Values(3u, 14u, 159u, 2653u));

// --------------------------------------------------- synthetic suite ----

class SyntheticSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(SyntheticSweepTest, GeneratedCircuitsAreWellFormed) {
  const auto [gates, dff_fraction] = GetParam();
  circuit::SyntheticSpec spec;
  spec.num_gates = gates;
  spec.dff_fraction = dff_fraction;
  spec.seed = 17;
  const circuit::Netlist netlist = circuit::synthetic_circuit(spec);
  EXPECT_EQ(netlist.num_physical_gates(), gates);
  // Every PO's driver exists; every fanout edge mirrors a fanin edge.
  for (std::size_t g = 0; g < netlist.num_gates_total(); ++g) {
    for (std::size_t f : netlist.gate(g).fanin) {
      const auto& fanout = netlist.gate(f).fanout;
      EXPECT_NE(std::find(fanout.begin(), fanout.end(), g), fanout.end());
    }
  }
  // Levelizable and placeable end to end.
  const circuit::Levelization lv = circuit::levelize(netlist);
  EXPECT_EQ(lv.topological_order.size(), netlist.num_gates_total());
  const placer::Placement placement = placer::place(netlist);
  for (std::size_t g : netlist.physical_gates())
    EXPECT_TRUE(placement.die.contains(placement.location[g]));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SyntheticSweepTest,
    ::testing::Values(std::make_tuple(50u, 0.0), std::make_tuple(50u, 0.3),
                      std::make_tuple(500u, 0.0),
                      std::make_tuple(500u, 0.15),
                      std::make_tuple(2000u, 0.1)));

}  // namespace
}  // namespace sckl
