// Tests for the grid+PCA baseline model (the paper's Sec. 2.1 comparison
// point) and its head-to-head behaviour against the KLE sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/kle_solver.h"
#include "field/covariance_estimate.h"
#include "field/kle_sampler.h"
#include "gridmodel/grid_model.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"

namespace sckl::gridmodel {
namespace {

using geometry::BoundingBox;
using geometry::Point2;

TEST(GridModel, CellGeometry) {
  const kernels::GaussianKernel kernel(2.0);
  const GridCorrelationModel model(kernel, BoundingBox::unit_die(), 4);
  EXPECT_EQ(model.num_cells(), 16u);
  EXPECT_EQ(model.cells_per_side(), 4u);
  // Cell 0 is bottom-left; its center at (-0.75, -0.75).
  EXPECT_NEAR(model.cell_center(0).x, -0.75, 1e-12);
  EXPECT_NEAR(model.cell_center(0).y, -0.75, 1e-12);
  EXPECT_EQ(model.cell_of({-0.9, -0.9}), 0u);
  EXPECT_EQ(model.cell_of({0.9, 0.9}), 15u);
  // Clamping outside the die.
  EXPECT_EQ(model.cell_of({-5.0, -5.0}), 0u);
}

TEST(GridModel, PcaSpectrumSumsToTrace) {
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const GridCorrelationModel model(kernel, BoundingBox::unit_die(), 6);
  double sum = 0.0;
  for (double v : model.eigenvalues()) sum += v;
  // Normalized kernel: trace = num_cells.
  EXPECT_NEAR(sum, 36.0, 1e-8);
  // Descending.
  for (std::size_t i = 1; i < model.eigenvalues().size(); ++i)
    EXPECT_GE(model.eigenvalues()[i - 1], model.eigenvalues()[i] - 1e-12);
}

TEST(GridModel, ComponentsForVarianceIsMonotone) {
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const GridCorrelationModel model(kernel, BoundingBox::unit_die(), 8);
  const std::size_t r80 = model.components_for_variance(0.80);
  const std::size_t r95 = model.components_for_variance(0.95);
  const std::size_t r999 = model.components_for_variance(0.999);
  EXPECT_LE(r80, r95);
  EXPECT_LE(r95, r999);
  EXPECT_LT(r95, model.num_cells());  // smooth kernel compresses well
  EXPECT_THROW(model.components_for_variance(0.0), Error);
}

TEST(GridPcaSampler, ReproducesCellCorrelations) {
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const GridCorrelationModel model(kernel, BoundingBox::unit_die(), 5);
  // Probe at cell centers so the grid model's representation is exact.
  std::vector<Point2> locations;
  for (std::size_t c = 0; c < model.num_cells(); c += 6)
    locations.push_back(model.cell_center(c));
  const GridPcaSampler sampler(model, model.num_cells(), locations);
  const linalg::Matrix cov =
      field::empirical_covariance(sampler, 40000, StreamKey{9, 0});
  const auto summary = field::compare_covariance(cov, kernel, locations);
  EXPECT_LT(summary.max_abs_error, 0.04);  // MC noise only
}

TEST(GridPcaSampler, SameCellMeansPerfectCorrelation) {
  // The grid model's core weakness: two gates in one cell are identical.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const GridCorrelationModel model(kernel, BoundingBox::unit_die(), 4);
  const std::vector<Point2> locations = {{0.55, 0.55}, {0.9, 0.9}};
  ASSERT_EQ(model.cell_of(locations[0]), model.cell_of(locations[1]));
  const GridPcaSampler sampler(model, 16, locations);
  linalg::Matrix block;
  sampler.sample_block(field::SampleRange{0, 200}, StreamKey{10, 0}, block);
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_DOUBLE_EQ(block(i, 0), block(i, 1));
}

TEST(GridVsKle, KleTracksIntraCellDecorrelationGridCannot) {
  // Two probes 0.25 apart inside one (coarse) grid cell: the true kernel
  // correlation is ~0.84, the grid says exactly 1, the KLE gets it right.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const std::vector<Point2> locations = {{0.50, 0.50}, {0.75, 0.50}};
  const double truth = kernel(locations[0], locations[1]);
  ASSERT_LT(truth, 0.95);

  const GridCorrelationModel grid(kernel, BoundingBox::unit_die(), 2);
  ASSERT_EQ(grid.cell_of(locations[0]), grid.cell_of(locations[1]));
  const GridPcaSampler grid_sampler(grid, 4, locations);

  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      BoundingBox::unit_die(), 900, mesh::StructuredPattern::kCross);
  core::KleOptions options;
  options.num_eigenpairs = 40;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);
  const field::KleFieldSampler kle_sampler(kle, 40, locations);

  const auto grid_cov =
      field::empirical_covariance(grid_sampler, 30000, StreamKey{11, 0});
  const auto kle_cov =
      field::empirical_covariance(kle_sampler, 30000, StreamKey{11, 0});
  EXPECT_GT(grid_cov(0, 1), 0.97);                 // wrongly ~1
  EXPECT_NEAR(kle_cov(0, 1), truth, 0.06);          // right
}

}  // namespace
}  // namespace sckl::gridmodel
