// Tests for the matrix-free operator layer (DESIGN.md §14): tile-tree
// partition invariants, the ACA error bound on admissible blocks, the
// hierarchical operator against densely assembled entries, the exact
// on-the-fly matvec, and solve_kle's kMatrixFree path (eigenvalue accuracy
// against the dense solve, and the ACA -> exact fallback hop).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/kle_solver.h"
#include "core/matfree_operator.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "linalg/gemm.h"
#include "linalg/hmat.h"
#include "linalg/kernel_operator.h"
#include "linalg/lanczos.h"
#include "mesh/structured_mesher.h"

namespace sckl {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Gaussian-kernel entries over explicit 2-D points — a symmetric smooth
// EntrySource without any mesh machinery.
class PointsSource final : public linalg::EntrySource {
 public:
  PointsSource(std::vector<double> xs, std::vector<double> ys, double c)
      : xs_(std::move(xs)), ys_(std::move(ys)), c_(c) {}
  std::size_t dim() const override { return xs_.size(); }
  double entry(std::size_t i, std::size_t k) const override {
    const double dx = xs_[i] - xs_[k];
    const double dy = ys_[i] - ys_[k];
    return std::exp(-c_ * (dx * dx + dy * dy));
  }

 private:
  std::vector<double> xs_, ys_;
  double c_;
};

std::pair<std::vector<double>, std::vector<double>> random_points(
    std::size_t n, Rng& rng) {
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  return {xs, ys};
}

Matrix materialize(const linalg::EntrySource& source) {
  const std::size_t n = source.dim();
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) a(i, k) = source.entry(i, k);
  return a;
}

TEST(TileTree, PartitionInvariants) {
  Rng rng(7);
  const std::size_t n = 777;
  const std::size_t leaf_size = 32;
  auto [xs, ys] = random_points(n, rng);
  const linalg::TileTree tree(xs, ys, leaf_size);

  // perm is a permutation: every original index exactly once.
  ASSERT_EQ(tree.perm().size(), n);
  std::vector<std::size_t> sorted = tree.perm();
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);

  const auto& nodes = tree.nodes();
  ASSERT_FALSE(nodes.empty());
  EXPECT_EQ(nodes[0].begin, 0u);
  EXPECT_EQ(nodes[0].end, n);
  std::size_t leaves = 0, covered = 0;
  for (const auto& node : nodes) {
    ASSERT_LT(node.begin, node.end);
    if (node.leaf()) {
      ++leaves;
      covered += node.size();
      EXPECT_LE(node.size(), leaf_size);
      EXPECT_LT(node.right, 0);
    } else {
      // Children partition the parent's permuted range exactly.
      const auto& l = nodes[static_cast<std::size_t>(node.left)];
      const auto& r = nodes[static_cast<std::size_t>(node.right)];
      EXPECT_EQ(l.begin, node.begin);
      EXPECT_EQ(l.end, r.begin);
      EXPECT_EQ(r.end, node.end);
    }
    // The node's bounding box contains every point it owns.
    for (std::size_t p = node.begin; p < node.end; ++p) {
      const std::size_t i = tree.perm()[p];
      EXPECT_GE(xs[i], node.min_x);
      EXPECT_LE(xs[i], node.max_x);
      EXPECT_GE(ys[i], node.min_y);
      EXPECT_LE(ys[i], node.max_y);
    }
  }
  // Leaves tile the permuted index space with no gaps or overlaps.
  EXPECT_EQ(covered, n);
  EXPECT_EQ(leaves, tree.num_leaves());
  EXPECT_GE(tree.depth(), 1u);
}

TEST(TileTree, SinglePointAndDuplicates) {
  const linalg::TileTree one({0.5}, {0.5}, 16);
  EXPECT_EQ(one.num_points(), 1u);
  EXPECT_EQ(one.num_leaves(), 1u);
  // All-identical coordinates must still terminate and partition correctly.
  const std::size_t n = 100;
  const linalg::TileTree dup(std::vector<double>(n, 0.25),
                             std::vector<double>(n, 0.75), 16);
  std::vector<std::size_t> sorted = dup.perm();
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Aca, ErrorBoundOnAdmissibleBlock) {
  // Two well-separated clusters: rows near the origin, columns near (1,1).
  Rng rng(11);
  const std::size_t m = 80, n = 60;
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < m; ++i) {
    xs.push_back(0.1 * rng.uniform());
    ys.push_back(0.1 * rng.uniform());
  }
  for (std::size_t k = 0; k < n; ++k) {
    xs.push_back(1.0 + 0.1 * rng.uniform());
    ys.push_back(1.0 + 0.1 * rng.uniform());
  }
  const PointsSource source(xs, ys, 2.33);
  std::vector<std::size_t> rows(m), cols(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::iota(cols.begin(), cols.end(), m);

  for (const double tol : {1e-4, 1e-7, 1e-10}) {
    const linalg::AcaResult aca = linalg::aca_compress(
        source, rows.data(), m, cols.data(), n, tol, /*max_rank=*/50);
    EXPECT_TRUE(aca.converged) << "tol " << tol;
    ASSERT_EQ(aca.u.rows(), m);
    ASSERT_EQ(aca.v.rows(), n);
    ASSERT_EQ(aca.u.cols(), aca.rank);
    // ||A - U V^T||_F against tol * ||A||_F (modest safety factor: the ACA
    // stopping rule is based on a running norm estimate, not the true norm).
    double err2 = 0.0, ref2 = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t k = 0; k < n; ++k) {
        const double exact = source.entry(rows[i], cols[k]);
        double approx = 0.0;
        for (std::size_t l = 0; l < aca.rank; ++l)
          approx += aca.u(i, l) * aca.v(k, l);
        err2 += (exact - approx) * (exact - approx);
        ref2 += exact * exact;
      }
    EXPECT_LE(std::sqrt(err2), 10.0 * tol * std::sqrt(ref2)) << "tol " << tol;
    // Far-field Gaussian blocks are very low rank — compression must be real.
    EXPECT_LT(aca.rank, std::min(m, n) / 2);
  }
}

TEST(Aca, ExactOnLowRankBlock) {
  // A symmetric rank-1 source f(i) f(k) must be reproduced essentially
  // exactly at rank 1 (the EntrySource contract requires symmetry — ACA
  // reads columns as row slices of the transposed index).
  class Rank1Source final : public linalg::EntrySource {
   public:
    std::size_t dim() const override { return 40; }
    double entry(std::size_t i, std::size_t k) const override {
      return (1.0 + 0.1 * static_cast<double>(i)) *
             (1.0 + 0.1 * static_cast<double>(k));
    }
  } source;
  std::vector<std::size_t> rows(20), cols(20);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::iota(cols.begin(), cols.end(), std::size_t{20});
  const linalg::AcaResult aca = linalg::aca_compress(
      source, rows.data(), rows.size(), cols.data(), cols.size(), 1e-12, 10);
  EXPECT_TRUE(aca.converged);
  EXPECT_EQ(aca.rank, 1u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t k = 0; k < cols.size(); ++k)
      EXPECT_NEAR(aca.u(i, 0) * aca.v(k, 0), source.entry(rows[i], cols[k]),
                  1e-9);
}

TEST(HMatrix, MatvecMatchesDenseEntries) {
  Rng rng(23);
  const std::size_t n = 600;
  auto [xs, ys] = random_points(n, rng);
  const PointsSource source(xs, ys, 2.33);
  const Matrix dense = materialize(source);

  linalg::HmatOptions options;
  options.leaf_size = 24;
  options.aca_tolerance = 1e-8;
  const linalg::HMatrix hmat(source, xs, ys, options);
  EXPECT_EQ(hmat.dim(), n);
  EXPECT_GT(hmat.stats().lowrank_blocks, 0u);
  EXPECT_GT(hmat.stats().dense_blocks, 0u);
  EXPECT_LT(hmat.stats().compression, 1.0);

  for (int trial = 0; trial < 3; ++trial) {
    const Vector x = rng.normal_vector(n);
    const Vector ref = gemv_fast(dense, x);
    Vector y;
    hmat.apply(x, y);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err += (y[i] - ref[i]) * (y[i] - ref[i]);
      norm += ref[i] * ref[i];
    }
    EXPECT_LE(std::sqrt(err), 1e-6 * std::sqrt(norm));
  }
}

TEST(HMatrix, BuildIsThreadCountInvariant) {
  Rng rng(31);
  const std::size_t n = 400;
  auto [xs, ys] = random_points(n, rng);
  const PointsSource source(xs, ys, 2.33);

  linalg::HmatOptions serial;
  serial.leaf_size = 20;
  serial.aca_tolerance = 1e-7;
  serial.num_threads = 1;
  linalg::HmatOptions threaded = serial;
  threaded.num_threads = 3;
  const linalg::HMatrix a(source, xs, ys, serial);
  linalg::HMatrix b(source, xs, ys, threaded);

  EXPECT_EQ(a.stats().lowrank_blocks, b.stats().lowrank_blocks);
  EXPECT_EQ(a.stats().dense_blocks, b.stats().dense_blocks);
  EXPECT_EQ(a.stats().compressed_bytes, b.stats().compressed_bytes);
  EXPECT_EQ(a.stats().max_rank, b.stats().max_rank);

  // Same factors -> bit-identical serial applies, regardless of how many
  // threads built each operator (the build determinism contract). The
  // threaded-built operator is pinned to serial applies first: apply() is
  // only bit-reproducible per fixed apply thread count.
  b.set_apply_threads(1);
  const Vector x = rng.normal_vector(n);
  Vector ya, yb;
  a.apply(x, ya);
  b.apply(x, yb);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ya[i], yb[i]);

  // And the threaded apply stays within the accuracy bound of the serial
  // one (it reorders the block-partial merge, so bits may differ).
  b.set_apply_threads(3);
  Vector yt;
  b.apply(x, yt);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += (yt[i] - ya[i]) * (yt[i] - ya[i]);
    norm += ya[i] * ya[i];
  }
  EXPECT_LE(std::sqrt(err), 1e-12 * std::sqrt(norm));
}

TEST(HMatrix, BudgetThrowsOverloaded) {
  Rng rng(41);
  const std::size_t n = 300;
  auto [xs, ys] = random_points(n, rng);
  const PointsSource source(xs, ys, 2.33);
  linalg::HmatOptions options;
  options.max_bytes = 1024;  // absurdly small: must trip
  try {
    const linalg::HMatrix hmat(source, xs, ys, options);
    FAIL() << "expected kOverloaded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
}

TEST(DenseKernelOperator, MatchesGemvBitwise) {
  Rng rng(5);
  const std::size_t n = 64;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) a(i, k) = rng.normal();
  const linalg::DenseKernelOperator op(a);
  EXPECT_EQ(op.dim(), n);
  const Vector x = rng.normal_vector(n);
  const Vector ref = gemv_fast(a, x);
  Vector y;
  op.apply(x, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], ref[i]);
}

TEST(ExactKernelOperator, MatchesAssembledGalerkinMatrix) {
  const auto mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 500);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const std::size_t n = mesh.num_triangles();
  const Matrix b = core::assemble_galerkin_matrix(
      mesh, kernel, core::QuadratureRule::kCentroid1);

  const core::ExactKernelOperator op(mesh, kernel);
  EXPECT_EQ(op.dim(), n);
  Rng rng(9);
  const Vector x = rng.normal_vector(n);
  const Vector ref = gemv_fast(b, x);
  Vector y;
  op.apply(x, y);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += (y[i] - ref[i]) * (y[i] - ref[i]);
    norm += ref[i] * ref[i];
  }
  EXPECT_LE(std::sqrt(err), 1e-13 * std::sqrt(norm));

  // Thread-count invariance: the tiled reduction order is fixed, so a
  // threaded apply reproduces the serial bits exactly.
  const core::ExactKernelOperator threaded(mesh, kernel, /*num_threads=*/3);
  Vector yt;
  threaded.apply(x, yt);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(yt[i], y[i]);
}

// The PR acceptance gate: matrix-free eigenvalues match the dense solve to
// <= 1e-6 relative on every reported pair at n <= 2k.
TEST(SolveKleMatrixFree, EigenvaluesMatchDense) {
  const auto mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 1500);
  ASSERT_LE(mesh.num_triangles(), 2000u);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());

  core::KleOptions dense_options;
  dense_options.num_eigenpairs = 25;
  dense_options.backend = core::KleBackend::kDense;
  const core::KleResult dense = core::solve_kle(mesh, kernel, dense_options);

  core::KleOptions mf_options;
  mf_options.num_eigenpairs = 25;
  mf_options.operator_mode = core::OperatorMode::kMatrixFree;
  mf_options.matfree.aca_tolerance = 1e-9;
  core::KleSolveInfo info;
  const core::KleResult mf = core::solve_kle(mesh, kernel, mf_options, &info);

  EXPECT_EQ(info.operator_used, "hmat");
  EXPECT_TRUE(info.hmat_attempted);
  EXPECT_FALSE(info.hmat_failed);
  EXPECT_GT(info.hmat.lowrank_blocks, 0u);

  ASSERT_EQ(mf.num_eigenpairs(), dense.num_eigenpairs());
  const double lead = dense.eigenvalue(0);
  ASSERT_GT(lead, 0.0);
  for (std::size_t j = 0; j < dense.num_eigenpairs(); ++j) {
    const double reference = dense.eigenvalue(j);
    const double got = mf.eigenvalue(j);
    // Relative per-pair gate; pairs that have decayed below the dense
    // solver's own noise floor are compared relative to lambda_0 instead.
    if (reference > 1e-9 * lead) {
      EXPECT_LE(std::abs(got - reference), 1e-6 * reference) << "pair " << j;
    } else {
      EXPECT_LE(std::abs(got - reference), 1e-9 * lead) << "pair " << j;
    }
  }
}

// Fallback hop 1: an impossible memory budget fails the hierarchical build
// (kOverloaded) and the solve silently degrades to the exact matvec.
TEST(SolveKleMatrixFree, BudgetFallsBackToExactOperator) {
  const auto mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 300);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());

  core::KleOptions options;
  options.num_eigenpairs = 10;
  options.operator_mode = core::OperatorMode::kMatrixFree;
  options.matfree.max_bytes = 1024;
  core::KleSolveInfo info;
  const core::KleResult mf = core::solve_kle(mesh, kernel, options, &info);
  EXPECT_TRUE(info.hmat_attempted);
  EXPECT_TRUE(info.hmat_failed);
  EXPECT_EQ(info.operator_used, "exact");
  EXPECT_FALSE(info.hmat_failure_reason.empty());

  core::KleOptions dense_options;
  dense_options.num_eigenpairs = 10;
  dense_options.backend = core::KleBackend::kDense;
  const core::KleResult dense = core::solve_kle(mesh, kernel, dense_options);
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(mf.eigenvalue(j), dense.eigenvalue(j),
                1e-8 * dense.eigenvalue(0));
}

TEST(SolveKleMatrixFree, RejectsNonCentroidQuadrature) {
  const auto mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 100);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  core::KleOptions options;
  options.num_eigenpairs = 5;
  options.operator_mode = core::OperatorMode::kMatrixFree;
  options.quadrature = core::QuadratureRule::kSymmetric3;
  EXPECT_THROW(core::solve_kle(mesh, kernel, options), Error);
}

}  // namespace
}  // namespace sckl
