// Subprocess crash-injection harness for the artifact store.
//
// `drive` mode is the kill-loop: for every store crash point
// (store_write_pre_fsync, store_write_pre_rename, store_write_post_rename,
// store_gc_mid_sweep) it repeatedly forks a child that arms the site and
// runs the real store code until the armed crash_point() _Exit()s it —
// simulating `kill -9` at the worst instants of the publish/sweep
// protocols. After every kill the parent asserts the crash-consistency
// invariant the store promises:
//
//   * every previously committed artifact is still readable and CRC-valid;
//   * no partial file is ever visible under a final <key>.sckl name
//     (pre-rename crashes leave at most an orphaned tmp, post-rename
//     crashes leave a complete committed artifact);
//   * one fsck() pass returns the repository to a provably clean state.
//
// `stampede` mode is the multi-process solve-dedup check: N forked children
// call get_or_compute on the same cold key concurrently; the per-key
// advisory lock must reduce that to exactly one eigensolve (one child
// reports source=solved, all others source=disk).
//
// `mc` mode is the resume kill-loop of the checkpointed Monte Carlo runner
// (ssta/mc_run.h): for each MC crash site (mc_worker_crash at block
// boundaries, mc_ledger_write mid ledger append) and each thread count in
// {1, 2, 8}, children run the checkpointed pipeline with the crash site's
// skip marching forward one hit per fork — killed at the first block, then
// the second, then mid-append of each lease record — resuming the same
// ledger every time until a child survives to completion. The parent then
// resumes once more and asserts the resume invariant: the final statistics
// (mean/M2/min/max, every endpoint accumulator, the full quantile-sketch
// state) are BIT-identical to an uninterrupted reference run.
//
// `mc-dist` mode is the distributed chaos harness of the remote lease
// protocol (serve protocol v3): each scenario forks a coordinator daemon
// (sckl_serve Server running a distributed RunSsta) plus three worker
// processes (serve::run_worker), then injures the fleet —
//
//   worker_kill        SIGKILL every worker at successive progress
//                      milestones while the run is live; the coordinator
//                      reclaims their leases and degrades to local compute;
//   mc_rpc_transient   a worker's RPCs fail transiently; its bounded
//                      jittered retry reconnects and the run completes;
//   mc_worker_stall    a worker wedges past the lease TTL without
//                      heartbeating; the coordinator must expire and
//                      reclaim its lease (asserted via the expiry counter);
//   mc_coordinator_crash  the coordinator _Exit()s right after a durable
//                      ledger append, generation after generation with the
//                      skip marching forward, while the workers ride the
//                      restarts through their reconnect loops.
//
// After every scenario the parent resumes the run's ledger locally and
// asserts the distributed invariant: zero leases recomputed, every lease
// loaded from the ledger, and statistics BIT-identical to an uninterrupted
// single-process reference — kills, stalls, restarts, and duplicated
// publishes cannot move a single bit.
//
// Exit status: 0 when every iteration upholds the invariants, 1 otherwise.
// Registered with ctest at a small iteration count; the CI crash-injection
// job runs >= 50 iterations per site under ASan/UBSan.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/error.h"
#include "field/cholesky_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "obs/metrics.h"
#include "placer/recursive_placer.h"
#include "robust/fault_injection.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/worker.h"
#include "ssta/experiment.h"
#include "ssta/mc_run.h"
#include "store/artifact_store.h"
#include "store/file_lock.h"
#include "store/kle_io.h"
#include "store/recovery.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCKL_HAVE_FORK 1
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SCKL_HAVE_FORK 0
#endif

namespace {

using namespace sckl;
namespace fs = std::filesystem;

/// Small-but-real artifact configuration; `variant` perturbs the kernel
/// parameter so every iteration works on a fresh (cold) content key at
/// identical solve cost.
store::KleArtifactConfig variant_config(std::uint64_t variant) {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {2.0 + 1e-9 * static_cast<double>(variant)};
  config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  config.mesh.target_triangles = 100;
  config.num_eigenpairs = 12;
  return config;
}

kernels::GaussianKernel variant_kernel(std::uint64_t variant) {
  return kernels::GaussianKernel(2.0 + 1e-9 * static_cast<double>(variant));
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++failures;
  }
}

#if SCKL_HAVE_FORK

/// Forks and runs `body` in the child; returns the child's exit status.
/// The child never returns from this function.
template <typename Body>
int run_child(Body&& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    int status = 1;
    try {
      status = body();
    } catch (...) {
      status = 3;
    }
    std::_Exit(status);
  }
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0) {
  }
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
}

/// Reads every committed path; any failure breaks the durability promise.
void check_committed_survive(const std::vector<fs::path>& committed,
                             const std::string& context) {
  for (const fs::path& path : committed) {
    try {
      store::read_kle_file(path.string());
    } catch (const Error& e) {
      check(false, context + ": committed artifact lost: " + path.string() +
                       " (" + e.what() + ")");
    }
  }
}

/// Asserts that every *.sckl file under a final name decodes cleanly — a
/// reader must never observe a torn artifact, crash or no crash.
void check_no_torn_final_files(const fs::path& root,
                               const std::string& context) {
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file() || !store::is_artifact_file(entry.path()))
      continue;
    try {
      store::read_kle_file(entry.path().string());
    } catch (const Error& e) {
      check(false, context + ": torn file under final key name: " +
                       entry.path().string() + " (" + e.what() + ")");
    }
  }
}

int drive_kill_loop(const fs::path& root, int iterations) {
  const std::vector<robust::FaultSite> sites = {
      robust::FaultSite::kStoreWritePreFsync,
      robust::FaultSite::kStoreWritePreRename,
      robust::FaultSite::kStoreWritePostRename,
      robust::FaultSite::kStoreGcMidSweep,
  };

  fs::remove_all(root);
  std::vector<fs::path> committed;
  std::uint64_t variant = 0;

  {
    // Baseline committed artifacts the kill-loop must never lose.
    store::KleArtifactStore store(root);
    for (int i = 0; i < 2; ++i) {
      const store::KleArtifactConfig config = variant_config(variant);
      store.get_or_compute(config, variant_kernel(variant));
      committed.push_back(store.path_for(config));
      ++variant;
    }
  }

  for (const robust::FaultSite site : sites) {
    const std::string site_name = robust::to_string(site);
    for (int iter = 0; iter < iterations; ++iter) {
      const std::string context =
          site_name + " iteration " + std::to_string(iter);
      const std::uint64_t v = variant++;

      int status = 0;
      if (site == robust::FaultSite::kStoreGcMidSweep) {
        // Plant debris, then kill a child mid-gc-sweep.
        std::ofstream(root / ("feedfacefeedface.sckl." +
                              std::to_string(iter) + ".77.tmp"))
            << "partial";
        std::ofstream(root / "deadbeefdeadbeef.sckl.bad") << "evidence";
        status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1);
          store::KleArtifactStore store(root);
          store.gc();
          return 0;  // unreachable when the crash fires
        });
      } else {
        // Kill a writer child mid-publish of a cold key.
        status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1);
          store::KleArtifactStore store(root);
          store.get_or_compute(variant_config(v), variant_kernel(v));
          return 0;  // unreachable when the crash fires
        });
      }
      check(status == robust::kCrashExitCode,
            context + ": child exited " + std::to_string(status) +
                ", expected the armed crash point to kill it");

      // Invariant 1+2: nothing committed is lost, nothing torn is visible.
      check_committed_survive(committed, context);
      check_no_torn_final_files(root, context);
      const fs::path crashed_path =
          root / (store::key_string(store::artifact_key(variant_config(v))) +
                  ".sckl");
      if (site == robust::FaultSite::kStoreWritePostRename) {
        // The rename happened before the kill: the artifact IS committed.
        try {
          store::read_kle_file(crashed_path.string());
          committed.push_back(crashed_path);
        } catch (const Error& e) {
          check(false, context + ": post-rename artifact unreadable: " +
                           std::string(e.what()));
        }
      } else if (site != robust::FaultSite::kStoreGcMidSweep) {
        check(!fs::exists(crashed_path),
              context + ": pre-rename crash left a file under the final key");
      }

      // Invariant 3: one recovery pass returns the store to a clean state.
      store::FsckOptions repair;
      repair.purge_quarantine = true;
      store::fsck(root, repair);
      store::FsckOptions audit;
      audit.repair = false;
      const store::FsckResult after = store::fsck(root, audit);
      check(after.stats.clean(),
            context + ": store not clean after recovery:\n" +
                after.report.to_string());
      check(after.stats.healthy == committed.size(),
            context + ": fsck sees " + std::to_string(after.stats.healthy) +
                " healthy artifacts, expected " +
                std::to_string(committed.size()));
    }
    std::printf("site %-24s %d crash iterations clean\n", site_name.c_str(),
                iterations);
  }
  return failures == 0 ? 0 : 1;
}

// --- mc resume kill-loop ---------------------------------------------------

/// The c17 MC workload used by every mc-mode run: small enough that a full
/// uninterrupted run takes milliseconds, partitioned so a run spans several
/// leases (120 samples / block 8 = 15 blocks, 3 blocks per lease = 5
/// leases, 6 ledger appends).
struct McWorkload {
  McWorkload()
      : netlist(circuit::parse_bench_string(circuit::c17_bench_text(), "c17")),
        placement(placer::place(netlist)),
        library(timing::CellLibrary::default_90nm()),
        engine(netlist, placement, library),
        kernel(kernels::paper_gaussian_c()),
        locations(placement.physical_locations(netlist)),
        sampler(kernel, locations) {}

  ssta::McSstaOptions options(std::size_t threads) const {
    ssta::McSstaOptions options;
    options.num_samples = 120;
    options.block_size = 8;
    options.seed = 99;
    options.sketch_capacity = 32;
    options.num_threads = threads;
    return options;
  }

  ssta::McRunOptions run_options(const fs::path& dir, bool resume) const {
    ssta::McRunOptions run;
    run.run_id = "kill-loop";
    run.ledger_dir = dir;
    run.lease_blocks = 3;
    run.resume = resume;
    run.workload_key = 0xc17;
    return run;
  }

  ssta::ParameterSamplers samplers() const {
    return {&sampler, &sampler, &sampler, &sampler};
  }

  circuit::Netlist netlist;
  placer::Placement placement;
  timing::CellLibrary library;
  timing::StaEngine engine;
  kernels::GaussianKernel kernel;
  std::vector<geometry::Point2> locations;
  field::CholeskyFieldSampler sampler;
};

/// Bitwise comparison of every statistic in the resume invariant.
bool results_bit_identical(const ssta::McSstaResult& a,
                           const ssta::McSstaResult& b) {
  if (!a.worst_delay.state_equals(b.worst_delay)) return false;
  if (!a.worst_delay_sketch.state_equals(b.worst_delay_sketch)) return false;
  if (a.endpoint.size() != b.endpoint.size()) return false;
  for (std::size_t e = 0; e < a.endpoint.size(); ++e)
    if (!a.endpoint[e].state_equals(b.endpoint[e])) return false;
  return true;
}

int drive_mc_kill_loop(const fs::path& root, int min_kills) {
  const McWorkload workload;

  // The uninterrupted reference every crashed-and-resumed run must match
  // bit for bit. Thread count 1 here; the invariant says it cannot matter.
  fs::remove_all(root);
  const ssta::McSstaResult reference = ssta::run_checkpointed_monte_carlo_ssta(
      workload.engine, workload.samplers(), workload.options(1),
      workload.run_options(root / "reference", /*resume=*/false));

  const std::vector<robust::FaultSite> sites = {
      robust::FaultSite::kMcWorkerCrash,
      robust::FaultSite::kMcLedgerWrite,
  };
  for (const robust::FaultSite site : sites) {
    const std::string site_name = robust::to_string(site);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::string context =
          site_name + " at " + std::to_string(threads) + " threads";
      const fs::path dir =
          root / (site_name + "_t" + std::to_string(threads));

      // March the crash forward one armed hit per fork: each child resumes
      // the ledger its predecessor died on, makes a little more progress,
      // and is killed slightly later — until one survives to completion.
      int kills = 0;
      bool survived = false;
      for (std::uint64_t skip = 0; skip < 256; ++skip) {
        const bool resume = skip > 0;
        const int status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1, skip);
          ssta::run_checkpointed_monte_carlo_ssta(
              workload.engine, workload.samplers(),
              workload.options(threads),
              workload.run_options(dir, resume));
          return 0;  // the armed hit was past the end of this run's work
        });
        if (status == 0) {
          survived = true;
          break;
        }
        check(status == robust::kCrashExitCode,
              context + ": child exited " + std::to_string(status) +
                  ", expected crash code " +
                  std::to_string(robust::kCrashExitCode));
        if (status != robust::kCrashExitCode) return 1;  // don't loop on a bug
        ++kills;
      }
      check(survived, context + ": no child survived within the skip budget");
      check(kills >= min_kills,
            context + ": only " + std::to_string(kills) +
                " kill(s) occurred, expected >= " + std::to_string(min_kills));

      // Parent resumes the completed ledger: every lease must load from
      // disk and fold to the reference bits.
      ssta::McRunStats stats;
      const ssta::McSstaResult resumed =
          ssta::run_checkpointed_monte_carlo_ssta(
              workload.engine, workload.samplers(), workload.options(threads),
              workload.run_options(dir, /*resume=*/true), &stats);
      check(stats.leases_claimed == 0,
            context + ": resume of a completed run recomputed " +
                std::to_string(stats.leases_claimed) + " lease(s)");
      check(stats.leases_resumed == stats.leases_total,
            context + ": resumed " + std::to_string(stats.leases_resumed) +
                " of " + std::to_string(stats.leases_total) + " leases");
      check(results_bit_identical(resumed, reference),
            context + ": resumed statistics differ from the uninterrupted "
                      "reference (resume invariant broken)");
      std::printf("site %-16s threads %zu: %3d kills, resume bit-identical\n",
                  site_name.c_str(), threads, kills);
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- distributed mc chaos --------------------------------------------------

/// Lease TTL / heartbeat cadence of every mc-dist scenario: small enough
/// that a stalled worker's lease expires within the test budget, spaced so
/// the ctor's heartbeat*3 < TTL rule holds.
constexpr std::uint64_t kDistTtlMs = 1'500;
constexpr std::uint64_t kDistHeartbeatMs = 200;

/// The workload every mc-dist scenario runs: c880 at a geometry that spans
/// 20 leases (480 samples / block 8 = 60 blocks, 3 per lease), so kills and
/// crashes land mid-run. This config is the single source of truth — the
/// coordinator request, the worker's rebuilt pipeline, and the parent's
/// reference/verification runs must all hash to the same workload key.
ssta::ExperimentConfig dist_config(const fs::path& store_root) {
  ssta::ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 480;
  config.r = 8;
  config.num_eigenpairs = 16;
  config.mesh_area_fraction = 0.01;
  config.seed = 3;
  config.num_threads = 2;
  config.store_root = store_root.string();
  config.lease_ttl_ms = kDistTtlMs;
  config.mc_block_size = 8;
  config.mc_lease_blocks = 3;
  return config;
}

serve::RunSstaRequest dist_request(const ssta::ExperimentConfig& config,
                                   const std::string& run_id, bool resume) {
  serve::RunSstaRequest request;
  request.circuit = config.circuit;
  request.num_samples = config.num_samples;
  request.r = config.r;
  request.num_eigenpairs = config.num_eigenpairs;
  request.mesh_area_fraction = config.mesh_area_fraction;
  request.kernel_c = config.kernel_c;
  request.seed = config.seed;
  request.num_threads = config.num_threads;
  request.run_id = run_id;
  request.resume = resume;
  request.distributed = true;
  request.mc_block_size = config.mc_block_size;
  request.mc_lease_blocks = config.mc_lease_blocks;
  return request;
}

/// Shared state of one mc-dist invocation: the uninterrupted reference the
/// scenarios must reproduce bit for bit, and the pipeline/store the parent
/// uses to verify each scenario's ledger. Building the reference first also
/// warms the KLE artifact on disk, so every forked coordinator generation
/// fetches it instead of re-solving.
struct DistHarness {
  explicit DistHarness(const fs::path& root_in)
      : root(root_in),
        config(dist_config(root_in / "store")),
        sock((fs::temp_directory_path() /
              ("sckl_dist_" + std::to_string(::getpid()) + ".sock"))
                 .string()),
        pipeline(config),
        store(root_in / "store") {
    ssta::KleRunRequest request;
    request.r = config.r;
    request.num_eigenpairs = config.num_eigenpairs;
    request.store = &store;
    request.run_id = "dist-reference";
    reference = pipeline.run_kle(request).ssta;
  }

  fs::path root;
  ssta::ExperimentConfig config;
  std::string sock;  // short /tmp path: sun_path has a ~100 byte limit
  ssta::ExperimentPipeline pipeline;
  store::KleArtifactStore store;
  ssta::McSstaResult reference;
};

/// Forks `body` without waiting (the dist scenarios run a whole fleet).
template <typename Body>
pid_t spawn_child(Body&& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    int status = 1;
    try {
      status = body();
    } catch (...) {
      status = 3;
    }
    std::_Exit(status);
  }
  return pid;
}

int wait_child(pid_t pid) {
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0) {
  }
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
}

/// Body of one coordinator generation: a Server plus an in-process client
/// issuing the distributed RunSsta. On success the child keeps serving
/// until the parent drops the stop file, so workers reliably observe the
/// terminal kComplete instead of racing the daemon's shutdown.
int coordinator_child(const DistHarness& h, const std::string& run_id,
                      bool resume, bool arm_crash, std::uint64_t crash_skip,
                      bool expect_expiry) {
  if (arm_crash)
    robust::FaultInjector::instance().arm(
        robust::FaultSite::kMcCoordinatorCrash, 1, crash_skip);
  serve::ServerOptions options;
  options.unix_path = h.sock;
  options.store_root = (h.root / "store").string();
  options.num_threads = 4;
  options.default_deadline_ms = 120'000;
  options.lease_ttl_ms = kDistTtlMs;
  options.heartbeat_interval_ms = kDistHeartbeatMs;
  serve::Server server(options);
  server.start();
  serve::Client client = serve::Client::connect_unix(h.sock);
  client.set_deadline_ms(120'000);
  client.run_ssta(dist_request(h.config, run_id, resume));
  // The stalled worker's lease must actually have been reclaimed: every
  // path that completes its lease (reject-on-publish, reclaim-by-claim)
  // goes through expire_locked, so a zero counter means the TTL machinery
  // never fired and the scenario proved nothing.
  if (expect_expiry &&
      obs::counter("sckl.ssta.mc.leases_expired").value() == 0)
    return 7;
  std::ofstream(h.root / (run_id + ".done")) << "done";
  for (int i = 0; i < 3'000; ++i) {
    if (fs::exists(h.root / (run_id + ".stop"))) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.stop();
  return 0;
}

/// Body of one worker process. Reports land in a per-worker file so the
/// parent can assert on retries/rejections after the fleet drains.
int worker_child(const DistHarness& h, const std::string& run_id,
                 std::size_t index, robust::FaultSite armed_site,
                 int armed_count) {
  if (armed_count > 0)
    robust::FaultInjector::instance().arm(armed_site, armed_count);
  serve::WorkerOptions options;
  options.unix_path = h.sock;
  options.run_id = run_id;
  options.worker_id = 100 + index;
  options.poll_ms = 25;
  options.rpc_timeout_ms = 3'000;
  options.max_runtime_seconds = 120.0;  // backstop: never hang the harness
  const serve::WorkerReport report = serve::run_worker(options);
  std::ofstream out(h.root / (run_id + ".worker." + std::to_string(index)));
  out << report.leases_computed << ' ' << report.blocks_computed << ' '
      << report.publishes_rejected << ' ' << report.heartbeats << ' '
      << report.rpc_retries << ' ' << (report.run_complete ? 1 : 0) << '\n';
  return report.run_complete ? 0 : 4;
}

struct WorkerOutcome {
  bool found = false;
  std::size_t leases = 0, blocks = 0, rejected = 0, heartbeats = 0,
              retries = 0;
  int complete = 0;
};

WorkerOutcome read_worker_outcome(const DistHarness& h,
                                  const std::string& run_id,
                                  std::size_t index) {
  WorkerOutcome o;
  std::ifstream in(h.root / (run_id + ".worker." + std::to_string(index)));
  if (in >> o.leases >> o.blocks >> o.rejected >> o.heartbeats >> o.retries >>
      o.complete)
    o.found = true;
  return o;
}

/// One RunStatus poll against the coordinator daemon; nullopt while the
/// daemon is down or not yet serving (both normal mid-scenario).
std::optional<serve::RunStatusReply> poll_status(const DistHarness& h,
                                                 const std::string& run_id) {
  try {
    serve::Client client = serve::Client::connect_unix(h.sock);
    client.set_rpc_timeout_ms(2'000);
    serve::RunStatusRequest request;
    request.run_id = run_id;
    return client.run_status(request);
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Lets the coordinator exit its post-run serving loop, then reaps it.
void stop_coordinator(const DistHarness& h, const std::string& run_id,
                      pid_t coordinator, const std::string& context) {
  std::ofstream(h.root / (run_id + ".stop")) << "stop";
  const int status = wait_child(coordinator);
  check(status == 0, context + ": coordinator exited " +
                         std::to_string(status) + ", expected 0" +
                         (status == 7 ? " (no lease expiry was observed)"
                                      : ""));
}

/// The distributed invariant, asserted from the parent after the fleet is
/// gone: resuming the scenario's ledger locally loads every lease from disk
/// (zero lost, zero recomputed — a double-counted lease would double the
/// fold and break the bit comparison) and reproduces the uninterrupted
/// reference statistics exactly.
void verify_dist_run(DistHarness& h, const std::string& run_id,
                     const std::string& context) {
  ssta::KleRunRequest request;
  request.r = h.config.r;
  request.num_eigenpairs = h.config.num_eigenpairs;
  request.store = &h.store;
  request.run_id = run_id;
  request.resume = true;
  const ssta::KleRunOutcome outcome = h.pipeline.run_kle(request);
  check(outcome.mc_run.leases_claimed == 0,
        context + ": resume of the completed run recomputed " +
            std::to_string(outcome.mc_run.leases_claimed) + " lease(s)");
  check(outcome.mc_run.leases_resumed == outcome.mc_run.leases_total,
        context + ": resumed " +
            std::to_string(outcome.mc_run.leases_resumed) + " of " +
            std::to_string(outcome.mc_run.leases_total) + " leases");
  check(results_bit_identical(outcome.ssta, h.reference),
        context + ": distributed statistics differ from the uninterrupted "
                  "reference (distributed invariant broken)");
}

/// SIGKILL each worker at a successive progress milestone while the run is
/// live; the coordinator must reclaim their leases and finish alone.
void scenario_worker_kill(DistHarness& h) {
  const std::string run_id = "dist-worker-kill";
  const std::string context = "mc-dist worker_kill";
  std::vector<pid_t> workers;
  for (std::size_t i = 0; i < 3; ++i)
    workers.push_back(spawn_child([&, i] {
      return worker_child(h, run_id, i, robust::FaultSite::kMcRpcTransient,
                          /*armed_count=*/0);
    }));
  const pid_t coordinator = spawn_child([&] {
    return coordinator_child(h, run_id, /*resume=*/false, /*arm_crash=*/false,
                             0, /*expect_expiry=*/false);
  });

  const std::size_t milestones[3] = {1, 6, 12};
  std::size_t next = 0;
  int killed_while_running = 0;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (next < workers.size() && std::chrono::steady_clock::now() < give_up) {
    const std::optional<serve::RunStatusReply> status =
        poll_status(h, run_id);
    if (status.has_value()) {
      if (status->run_state == serve::RunState::kComplete) break;
      if (status->run_state == serve::RunState::kRunning &&
          status->leases_complete >= milestones[next]) {
        ::kill(workers[next], SIGKILL);
        ++killed_while_running;
        ++next;
        continue;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  check(killed_while_running >= 1,
        context + ": the run finished before any worker could be killed "
                  "mid-run (workload too small for this machine?)");
  for (; next < workers.size(); ++next) ::kill(workers[next], SIGKILL);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const int status = wait_child(workers[i]);
    check(status == 137 || status == 0,
          context + ": worker " + std::to_string(i) + " exited " +
              std::to_string(status) + ", expected SIGKILL (137) or 0");
  }
  stop_coordinator(h, run_id, coordinator, context);
  verify_dist_run(h, run_id, context);
  std::printf("mc-dist worker_kill:          %d worker(s) killed mid-run, "
              "resume bit-identical\n",
              killed_while_running);
}

/// One worker's RPCs fail transiently (armed mc_rpc_transient); its retry
/// loop must absorb them and the whole fleet completes normally.
void scenario_rpc_transient(DistHarness& h) {
  const std::string run_id = "dist-rpc-transient";
  const std::string context = "mc-dist mc_rpc_transient";
  std::vector<pid_t> workers;
  for (std::size_t i = 0; i < 3; ++i)
    workers.push_back(spawn_child([&, i] {
      return worker_child(h, run_id, i, robust::FaultSite::kMcRpcTransient,
                          i == 0 ? 3 : 0);
    }));
  const pid_t coordinator = spawn_child([&] {
    return coordinator_child(h, run_id, /*resume=*/false, /*arm_crash=*/false,
                             0, /*expect_expiry=*/false);
  });
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const int status = wait_child(workers[i]);
    check(status == 0, context + ": worker " + std::to_string(i) +
                           " exited " + std::to_string(status));
  }
  stop_coordinator(h, run_id, coordinator, context);

  const WorkerOutcome faulted = read_worker_outcome(h, run_id, 0);
  check(faulted.found, context + ": no outcome file from the faulted worker");
  check(faulted.retries >= 3,
        context + ": faulted worker absorbed " +
            std::to_string(faulted.retries) + " retries, expected >= 3");
  std::size_t remote_leases = 0;
  for (std::size_t i = 0; i < workers.size(); ++i)
    remote_leases += read_worker_outcome(h, run_id, i).leases;
  check(remote_leases >= 1,
        context + ": no lease was computed remotely — the scenario never "
                  "exercised the distributed path");
  verify_dist_run(h, run_id, context);
  std::printf("mc-dist mc_rpc_transient:     %zu retries absorbed, %zu "
              "remote lease(s), resume bit-identical\n",
              faulted.retries, remote_leases);
}

/// One worker wedges past the lease TTL without heartbeating (armed
/// mc_worker_stall); the coordinator must expire + reclaim its lease, and
/// the duplicate publish after it wakes cannot corrupt the run.
void scenario_worker_stall(DistHarness& h) {
  const std::string run_id = "dist-worker-stall";
  const std::string context = "mc-dist mc_worker_stall";
  std::vector<pid_t> workers;
  for (std::size_t i = 0; i < 3; ++i)
    workers.push_back(spawn_child([&, i] {
      return worker_child(h, run_id, i, robust::FaultSite::kMcWorkerStall,
                          i == 0 ? 1 : 0);
    }));
  const pid_t coordinator = spawn_child([&] {
    return coordinator_child(h, run_id, /*resume=*/false, /*arm_crash=*/false,
                             0, /*expect_expiry=*/true);
  });
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const int status = wait_child(workers[i]);
    check(status == 0, context + ": worker " + std::to_string(i) +
                           " exited " + std::to_string(status));
  }
  stop_coordinator(h, run_id, coordinator, context);
  verify_dist_run(h, run_id, context);
  std::printf("mc-dist mc_worker_stall:      lease expired and reclaimed, "
              "resume bit-identical\n");
}

/// Kill the coordinator right after durable ledger appends, generation
/// after generation with the skip marching forward (mc_coordinator_crash),
/// while the same three workers ride every restart through their reconnect
/// loops. Each crashed generation has already made durable progress, so the
/// marching terminates.
void scenario_coordinator_crash(DistHarness& h) {
  const std::string run_id = "dist-coord-crash";
  const std::string context = "mc-dist mc_coordinator_crash";
  std::vector<pid_t> workers;
  for (std::size_t i = 0; i < 3; ++i)
    workers.push_back(spawn_child([&, i] {
      return worker_child(h, run_id, i, robust::FaultSite::kMcRpcTransient,
                          /*armed_count=*/0);
    }));

  int kills = 0;
  bool survived = false;
  for (std::uint64_t generation = 0; generation < 40; ++generation) {
    const pid_t coordinator = spawn_child([&] {
      return coordinator_child(h, run_id, /*resume=*/generation > 0,
                               /*arm_crash=*/true, /*crash_skip=*/generation,
                               /*expect_expiry=*/false);
    });
    // A crashed generation _Exit()s straight out of commit_locked; a
    // surviving one finishes the run, writes the done file, and keeps
    // serving until stop_coordinator below. Wait for whichever comes first.
    int status = 0;
    for (;;) {
      int wstatus = 0;
      const pid_t reaped = ::waitpid(coordinator, &wstatus, WNOHANG);
      if (reaped == coordinator) {
        status = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus)
                                    : 128 + WTERMSIG(wstatus);
        break;
      }
      if (fs::exists(h.root / (run_id + ".done"))) {
        status = -1;  // alive and serving the terminal state
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (status == robust::kCrashExitCode) {
      ++kills;
      continue;
    }
    check(status == -1, context + ": coordinator generation " +
                            std::to_string(generation) + " exited " +
                            std::to_string(status) +
                            ", expected a crash or a completed run");
    if (status != -1) break;  // don't hang on a broken generation
    // The generation survived: workers observe kComplete and drain.
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const int worker_status = wait_child(workers[i]);
      check(worker_status == 0,
            context + ": worker " + std::to_string(i) + " exited " +
                std::to_string(worker_status) + " across " +
                std::to_string(kills) + " coordinator crash(es)");
    }
    stop_coordinator(h, run_id, coordinator, context);
    survived = true;
    break;
  }
  check(survived, context + ": no generation survived within the budget");
  check(kills >= 2, context + ": only " + std::to_string(kills) +
                        " coordinator kill(s), expected >= 2");
  verify_dist_run(h, run_id, context);
  std::printf("mc-dist mc_coordinator_crash: %d coordinator kill(s), "
              "workers survived, resume bit-identical\n",
              kills);
}

int drive_mc_dist(const fs::path& root) {
  fs::remove_all(root);
  fs::create_directories(root);
  DistHarness h(root);
  scenario_worker_kill(h);
  scenario_rpc_transient(h);
  scenario_worker_stall(h);
  scenario_coordinator_crash(h);
  fs::remove(h.sock);
  return failures == 0 ? 0 : 1;
}

int drive_stampede(const fs::path& root, int num_procs) {
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path outcome_dir = root / "outcomes";
  fs::create_directories(outcome_dir);
  const std::uint64_t v = 424242;

  std::vector<pid_t> children;
  for (int i = 0; i < num_procs; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    if (pid == 0) {
      int status = 1;
      try {
        store::KleArtifactStore store(root / "repo");
        const store::FetchResult fetch =
            store.get_or_compute(variant_config(v), variant_kernel(v));
        std::ofstream(outcome_dir / ("child." + std::to_string(i) + ".txt"))
            << to_string(fetch.source);
        status = 0;
      } catch (...) {
        status = 3;
      }
      std::_Exit(status);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0) {
    }
    check(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0,
          "stampede child did not exit cleanly");
  }

  int solved = 0, disk = 0, other = 0;
  for (int i = 0; i < num_procs; ++i) {
    std::ifstream in(outcome_dir / ("child." + std::to_string(i) + ".txt"));
    std::string source;
    in >> source;
    if (source == "solved") ++solved;
    else if (source == "disk") ++disk;
    else ++other;
  }
  std::printf("stampede: %d processes on one cold key -> %d solved, %d disk "
              "loads, %d other\n",
              num_procs, solved, disk, other);
  check(solved == 1, "expected exactly one solve across the stampede, got " +
                         std::to_string(solved));
  check(disk == num_procs - 1,
        "expected every non-winner to load from disk, got " +
            std::to_string(disk));
  return failures == 0 ? 0 : 1;
}

#endif  // SCKL_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: kill_loop_harness <drive|stampede|mc|mc-dist> "
                 "[--root=DIR] [--iters=N] [--procs=N] [--min-kills=N]\n");
    return 2;
  }
#if !SCKL_HAVE_FORK
  std::printf("kill_loop_harness: fork() unavailable on this platform, "
              "skipping\n");
  return 0;
#else
  const std::string command = flags.positional().front();
  const fs::path root = flags.get_string(
      "root", (fs::temp_directory_path() / "sckl_kill_loop").string());
  robust::FaultInjector::instance().disarm();  // the parent never crashes
  try {
    if (command == "drive")
      return drive_kill_loop(root,
                             static_cast<int>(flags.get_int("iters", 5)));
    if (command == "stampede")
      return drive_stampede(root, static_cast<int>(flags.get_int("procs", 6)));
    if (command == "mc")
      return drive_mc_kill_loop(
          root, static_cast<int>(flags.get_int("min-kills", 3)));
    if (command == "mc-dist") return drive_mc_dist(root);
  } catch (const Error& e) {
    std::fprintf(stderr, "kill_loop_harness: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "kill_loop_harness: unknown command '%s'\n",
               command.c_str());
  return 2;
#endif
}
