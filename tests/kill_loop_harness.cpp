// Subprocess crash-injection harness for the artifact store.
//
// `drive` mode is the kill-loop: for every store crash point
// (store_write_pre_fsync, store_write_pre_rename, store_write_post_rename,
// store_gc_mid_sweep) it repeatedly forks a child that arms the site and
// runs the real store code until the armed crash_point() _Exit()s it —
// simulating `kill -9` at the worst instants of the publish/sweep
// protocols. After every kill the parent asserts the crash-consistency
// invariant the store promises:
//
//   * every previously committed artifact is still readable and CRC-valid;
//   * no partial file is ever visible under a final <key>.sckl name
//     (pre-rename crashes leave at most an orphaned tmp, post-rename
//     crashes leave a complete committed artifact);
//   * one fsck() pass returns the repository to a provably clean state.
//
// `stampede` mode is the multi-process solve-dedup check: N forked children
// call get_or_compute on the same cold key concurrently; the per-key
// advisory lock must reduce that to exactly one eigensolve (one child
// reports source=solved, all others source=disk).
//
// `mc` mode is the resume kill-loop of the checkpointed Monte Carlo runner
// (ssta/mc_run.h): for each MC crash site (mc_worker_crash at block
// boundaries, mc_ledger_write mid ledger append) and each thread count in
// {1, 2, 8}, children run the checkpointed pipeline with the crash site's
// skip marching forward one hit per fork — killed at the first block, then
// the second, then mid-append of each lease record — resuming the same
// ledger every time until a child survives to completion. The parent then
// resumes once more and asserts the resume invariant: the final statistics
// (mean/M2/min/max, every endpoint accumulator, the full quantile-sketch
// state) are BIT-identical to an uninterrupted reference run.
//
// Exit status: 0 when every iteration upholds the invariants, 1 otherwise.
// Registered with ctest at a small iteration count; the CI crash-injection
// job runs >= 50 iterations per site under ASan/UBSan.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/error.h"
#include "field/cholesky_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "placer/recursive_placer.h"
#include "robust/fault_injection.h"
#include "ssta/mc_run.h"
#include "store/artifact_store.h"
#include "store/file_lock.h"
#include "store/kle_io.h"
#include "store/recovery.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCKL_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define SCKL_HAVE_FORK 0
#endif

namespace {

using namespace sckl;
namespace fs = std::filesystem;

/// Small-but-real artifact configuration; `variant` perturbs the kernel
/// parameter so every iteration works on a fresh (cold) content key at
/// identical solve cost.
store::KleArtifactConfig variant_config(std::uint64_t variant) {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {2.0 + 1e-9 * static_cast<double>(variant)};
  config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  config.mesh.target_triangles = 100;
  config.num_eigenpairs = 12;
  return config;
}

kernels::GaussianKernel variant_kernel(std::uint64_t variant) {
  return kernels::GaussianKernel(2.0 + 1e-9 * static_cast<double>(variant));
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++failures;
  }
}

#if SCKL_HAVE_FORK

/// Forks and runs `body` in the child; returns the child's exit status.
/// The child never returns from this function.
template <typename Body>
int run_child(Body&& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    int status = 1;
    try {
      status = body();
    } catch (...) {
      status = 3;
    }
    std::_Exit(status);
  }
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0) {
  }
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
}

/// Reads every committed path; any failure breaks the durability promise.
void check_committed_survive(const std::vector<fs::path>& committed,
                             const std::string& context) {
  for (const fs::path& path : committed) {
    try {
      store::read_kle_file(path.string());
    } catch (const Error& e) {
      check(false, context + ": committed artifact lost: " + path.string() +
                       " (" + e.what() + ")");
    }
  }
}

/// Asserts that every *.sckl file under a final name decodes cleanly — a
/// reader must never observe a torn artifact, crash or no crash.
void check_no_torn_final_files(const fs::path& root,
                               const std::string& context) {
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file() || !store::is_artifact_file(entry.path()))
      continue;
    try {
      store::read_kle_file(entry.path().string());
    } catch (const Error& e) {
      check(false, context + ": torn file under final key name: " +
                       entry.path().string() + " (" + e.what() + ")");
    }
  }
}

int drive_kill_loop(const fs::path& root, int iterations) {
  const std::vector<robust::FaultSite> sites = {
      robust::FaultSite::kStoreWritePreFsync,
      robust::FaultSite::kStoreWritePreRename,
      robust::FaultSite::kStoreWritePostRename,
      robust::FaultSite::kStoreGcMidSweep,
  };

  fs::remove_all(root);
  std::vector<fs::path> committed;
  std::uint64_t variant = 0;

  {
    // Baseline committed artifacts the kill-loop must never lose.
    store::KleArtifactStore store(root);
    for (int i = 0; i < 2; ++i) {
      const store::KleArtifactConfig config = variant_config(variant);
      store.get_or_compute(config, variant_kernel(variant));
      committed.push_back(store.path_for(config));
      ++variant;
    }
  }

  for (const robust::FaultSite site : sites) {
    const std::string site_name = robust::to_string(site);
    for (int iter = 0; iter < iterations; ++iter) {
      const std::string context =
          site_name + " iteration " + std::to_string(iter);
      const std::uint64_t v = variant++;

      int status = 0;
      if (site == robust::FaultSite::kStoreGcMidSweep) {
        // Plant debris, then kill a child mid-gc-sweep.
        std::ofstream(root / ("feedfacefeedface.sckl." +
                              std::to_string(iter) + ".77.tmp"))
            << "partial";
        std::ofstream(root / "deadbeefdeadbeef.sckl.bad") << "evidence";
        status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1);
          store::KleArtifactStore store(root);
          store.gc();
          return 0;  // unreachable when the crash fires
        });
      } else {
        // Kill a writer child mid-publish of a cold key.
        status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1);
          store::KleArtifactStore store(root);
          store.get_or_compute(variant_config(v), variant_kernel(v));
          return 0;  // unreachable when the crash fires
        });
      }
      check(status == robust::kCrashExitCode,
            context + ": child exited " + std::to_string(status) +
                ", expected the armed crash point to kill it");

      // Invariant 1+2: nothing committed is lost, nothing torn is visible.
      check_committed_survive(committed, context);
      check_no_torn_final_files(root, context);
      const fs::path crashed_path =
          root / (store::key_string(store::artifact_key(variant_config(v))) +
                  ".sckl");
      if (site == robust::FaultSite::kStoreWritePostRename) {
        // The rename happened before the kill: the artifact IS committed.
        try {
          store::read_kle_file(crashed_path.string());
          committed.push_back(crashed_path);
        } catch (const Error& e) {
          check(false, context + ": post-rename artifact unreadable: " +
                           std::string(e.what()));
        }
      } else if (site != robust::FaultSite::kStoreGcMidSweep) {
        check(!fs::exists(crashed_path),
              context + ": pre-rename crash left a file under the final key");
      }

      // Invariant 3: one recovery pass returns the store to a clean state.
      store::FsckOptions repair;
      repair.purge_quarantine = true;
      store::fsck(root, repair);
      store::FsckOptions audit;
      audit.repair = false;
      const store::FsckResult after = store::fsck(root, audit);
      check(after.stats.clean(),
            context + ": store not clean after recovery:\n" +
                after.report.to_string());
      check(after.stats.healthy == committed.size(),
            context + ": fsck sees " + std::to_string(after.stats.healthy) +
                " healthy artifacts, expected " +
                std::to_string(committed.size()));
    }
    std::printf("site %-24s %d crash iterations clean\n", site_name.c_str(),
                iterations);
  }
  return failures == 0 ? 0 : 1;
}

// --- mc resume kill-loop ---------------------------------------------------

/// The c17 MC workload used by every mc-mode run: small enough that a full
/// uninterrupted run takes milliseconds, partitioned so a run spans several
/// leases (120 samples / block 8 = 15 blocks, 3 blocks per lease = 5
/// leases, 6 ledger appends).
struct McWorkload {
  McWorkload()
      : netlist(circuit::parse_bench_string(circuit::c17_bench_text(), "c17")),
        placement(placer::place(netlist)),
        library(timing::CellLibrary::default_90nm()),
        engine(netlist, placement, library),
        kernel(kernels::paper_gaussian_c()),
        locations(placement.physical_locations(netlist)),
        sampler(kernel, locations) {}

  ssta::McSstaOptions options(std::size_t threads) const {
    ssta::McSstaOptions options;
    options.num_samples = 120;
    options.block_size = 8;
    options.seed = 99;
    options.sketch_capacity = 32;
    options.num_threads = threads;
    return options;
  }

  ssta::McRunOptions run_options(const fs::path& dir, bool resume) const {
    ssta::McRunOptions run;
    run.run_id = "kill-loop";
    run.ledger_dir = dir;
    run.lease_blocks = 3;
    run.resume = resume;
    run.workload_key = 0xc17;
    return run;
  }

  ssta::ParameterSamplers samplers() const {
    return {&sampler, &sampler, &sampler, &sampler};
  }

  circuit::Netlist netlist;
  placer::Placement placement;
  timing::CellLibrary library;
  timing::StaEngine engine;
  kernels::GaussianKernel kernel;
  std::vector<geometry::Point2> locations;
  field::CholeskyFieldSampler sampler;
};

/// Bitwise comparison of every statistic in the resume invariant.
bool results_bit_identical(const ssta::McSstaResult& a,
                           const ssta::McSstaResult& b) {
  if (!a.worst_delay.state_equals(b.worst_delay)) return false;
  if (!a.worst_delay_sketch.state_equals(b.worst_delay_sketch)) return false;
  if (a.endpoint.size() != b.endpoint.size()) return false;
  for (std::size_t e = 0; e < a.endpoint.size(); ++e)
    if (!a.endpoint[e].state_equals(b.endpoint[e])) return false;
  return true;
}

int drive_mc_kill_loop(const fs::path& root, int min_kills) {
  const McWorkload workload;

  // The uninterrupted reference every crashed-and-resumed run must match
  // bit for bit. Thread count 1 here; the invariant says it cannot matter.
  fs::remove_all(root);
  const ssta::McSstaResult reference = ssta::run_checkpointed_monte_carlo_ssta(
      workload.engine, workload.samplers(), workload.options(1),
      workload.run_options(root / "reference", /*resume=*/false));

  const std::vector<robust::FaultSite> sites = {
      robust::FaultSite::kMcWorkerCrash,
      robust::FaultSite::kMcLedgerWrite,
  };
  for (const robust::FaultSite site : sites) {
    const std::string site_name = robust::to_string(site);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::string context =
          site_name + " at " + std::to_string(threads) + " threads";
      const fs::path dir =
          root / (site_name + "_t" + std::to_string(threads));

      // March the crash forward one armed hit per fork: each child resumes
      // the ledger its predecessor died on, makes a little more progress,
      // and is killed slightly later — until one survives to completion.
      int kills = 0;
      bool survived = false;
      for (std::uint64_t skip = 0; skip < 256; ++skip) {
        const bool resume = skip > 0;
        const int status = run_child([&] {
          robust::FaultInjector::instance().arm(site, 1, skip);
          ssta::run_checkpointed_monte_carlo_ssta(
              workload.engine, workload.samplers(),
              workload.options(threads),
              workload.run_options(dir, resume));
          return 0;  // the armed hit was past the end of this run's work
        });
        if (status == 0) {
          survived = true;
          break;
        }
        check(status == robust::kCrashExitCode,
              context + ": child exited " + std::to_string(status) +
                  ", expected crash code " +
                  std::to_string(robust::kCrashExitCode));
        if (status != robust::kCrashExitCode) return 1;  // don't loop on a bug
        ++kills;
      }
      check(survived, context + ": no child survived within the skip budget");
      check(kills >= min_kills,
            context + ": only " + std::to_string(kills) +
                " kill(s) occurred, expected >= " + std::to_string(min_kills));

      // Parent resumes the completed ledger: every lease must load from
      // disk and fold to the reference bits.
      ssta::McRunStats stats;
      const ssta::McSstaResult resumed =
          ssta::run_checkpointed_monte_carlo_ssta(
              workload.engine, workload.samplers(), workload.options(threads),
              workload.run_options(dir, /*resume=*/true), &stats);
      check(stats.leases_claimed == 0,
            context + ": resume of a completed run recomputed " +
                std::to_string(stats.leases_claimed) + " lease(s)");
      check(stats.leases_resumed == stats.leases_total,
            context + ": resumed " + std::to_string(stats.leases_resumed) +
                " of " + std::to_string(stats.leases_total) + " leases");
      check(results_bit_identical(resumed, reference),
            context + ": resumed statistics differ from the uninterrupted "
                      "reference (resume invariant broken)");
      std::printf("site %-16s threads %zu: %3d kills, resume bit-identical\n",
                  site_name.c_str(), threads, kills);
    }
  }
  return failures == 0 ? 0 : 1;
}

int drive_stampede(const fs::path& root, int num_procs) {
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path outcome_dir = root / "outcomes";
  fs::create_directories(outcome_dir);
  const std::uint64_t v = 424242;

  std::vector<pid_t> children;
  for (int i = 0; i < num_procs; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    if (pid == 0) {
      int status = 1;
      try {
        store::KleArtifactStore store(root / "repo");
        const store::FetchResult fetch =
            store.get_or_compute(variant_config(v), variant_kernel(v));
        std::ofstream(outcome_dir / ("child." + std::to_string(i) + ".txt"))
            << to_string(fetch.source);
        status = 0;
      } catch (...) {
        status = 3;
      }
      std::_Exit(status);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0) {
    }
    check(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0,
          "stampede child did not exit cleanly");
  }

  int solved = 0, disk = 0, other = 0;
  for (int i = 0; i < num_procs; ++i) {
    std::ifstream in(outcome_dir / ("child." + std::to_string(i) + ".txt"));
    std::string source;
    in >> source;
    if (source == "solved") ++solved;
    else if (source == "disk") ++disk;
    else ++other;
  }
  std::printf("stampede: %d processes on one cold key -> %d solved, %d disk "
              "loads, %d other\n",
              num_procs, solved, disk, other);
  check(solved == 1, "expected exactly one solve across the stampede, got " +
                         std::to_string(solved));
  check(disk == num_procs - 1,
        "expected every non-winner to load from disk, got " +
            std::to_string(disk));
  return failures == 0 ? 0 : 1;
}

#endif  // SCKL_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: kill_loop_harness <drive|stampede|mc> [--root=DIR] "
                 "[--iters=N] [--procs=N] [--min-kills=N]\n");
    return 2;
  }
#if !SCKL_HAVE_FORK
  std::printf("kill_loop_harness: fork() unavailable on this platform, "
              "skipping\n");
  return 0;
#else
  const std::string command = flags.positional().front();
  const fs::path root = flags.get_string(
      "root", (fs::temp_directory_path() / "sckl_kill_loop").string());
  robust::FaultInjector::instance().disarm();  // the parent never crashes
  try {
    if (command == "drive")
      return drive_kill_loop(root,
                             static_cast<int>(flags.get_int("iters", 5)));
    if (command == "stampede")
      return drive_stampede(root, static_cast<int>(flags.get_int("procs", 6)));
    if (command == "mc")
      return drive_mc_kill_loop(
          root, static_cast<int>(flags.get_int("min-kills", 3)));
  } catch (const Error& e) {
    std::fprintf(stderr, "kill_loop_harness: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "kill_loop_harness: unknown command '%s'\n",
               command.c_str());
  return 2;
#endif
}
