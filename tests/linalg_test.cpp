// Tests for src/linalg: matrix container, BLAS kernels, Cholesky, the
// symmetric eigensolvers (QL, Jacobi, Lanczos) against each other and
// against analytically known spectra.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace sckl::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

// Random symmetric positive-definite matrix A = B B^T + n*I.
Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix b = random_matrix(n, n, rng);
  Matrix a = gemm_bt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 3), Error);
}

TEST(Matrix, TransposeIdentityRowsColumns) {
  Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Vector col = m.column(1);
  EXPECT_DOUBLE_EQ(col[1], 5.0);
  const Vector row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), Error);
  EXPECT_THROW(Matrix::from_rows({}), Error);
}

TEST(Matrix, SymmetryAndNorms) {
  Matrix s = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  EXPECT_TRUE(is_symmetric(s));
  s(0, 1) = 1.1;
  EXPECT_FALSE(is_symmetric(s));
  const Matrix m = Matrix::from_rows({{3.0, 4.0}});
  EXPECT_NEAR(frobenius_norm(m), 5.0, 1e-12);
}

TEST(Blas, DotNormAxpyScale) {
  Vector x = {1.0, 2.0, 2.0};
  Vector y = {3.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 1.0);
  EXPECT_DOUBLE_EQ(norm2(x), 3.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_THROW(dot(x, Vector{1.0}), Error);
}

TEST(Blas, GemvAgainstHandComputed) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const Vector x = {1.0, -1.0};
  const Vector y = gemv(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
  const Vector z = gemv_transposed(a, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 9.0);
  EXPECT_DOUBLE_EQ(z[1], 12.0);
}

TEST(Blas, GemmMatchesManualProduct) {
  Rng rng(3);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(6, 5, rng);
  const Matrix c = gemm(a, b);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 6; ++k) expected += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), expected, 1e-12);
    }
}

TEST(Blas, GemmBtEqualsGemmWithTranspose) {
  Rng rng(4);
  const Matrix a = random_matrix(3, 7, rng);
  const Matrix b = random_matrix(5, 7, rng);
  const Matrix direct = gemm_bt(a, b);
  const Matrix via_transpose = gemm(a, b.transposed());
  EXPECT_LT(direct.max_abs_diff(via_transpose), 1e-12);
}

TEST(Blas, GramMatchesAtA) {
  Rng rng(5);
  const Matrix a = random_matrix(6, 4, rng);
  const Matrix g = gram(a);
  const Matrix expected = gemm(a.transposed(), a);
  EXPECT_LT(g.max_abs_diff(expected), 1e-12);
  EXPECT_TRUE(is_symmetric(g, 1e-12));
}

TEST(Cholesky, ReconstructsInput) {
  Rng rng(6);
  const Matrix a = random_spd(12, rng);
  const CholeskyFactor f = cholesky(a);
  const Matrix rebuilt = gemm_bt(f.lower, f.lower);
  EXPECT_LT(rebuilt.max_abs_diff(a) / frobenius_norm(a), 1e-12);
  // Strict upper triangle of L is zero.
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = i + 1; j < 12; ++j)
      EXPECT_EQ(f.lower(i, j), 0.0);
}

TEST(Cholesky, SolveInvertsMultiplication) {
  Rng rng(7);
  const Matrix a = random_spd(9, rng);
  const CholeskyFactor f = cholesky(a);
  const Vector x_true = rng.normal_vector(9);
  const Vector b = gemv(a, x_true);
  const Vector x = f.solve(b);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix bad = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalue -1
  EXPECT_THROW(cholesky(bad), Error);
  EXPECT_FALSE(try_cholesky(bad).has_value());
}

TEST(Cholesky, LogDeterminant) {
  const Matrix a = Matrix::from_rows({{4.0, 0.0}, {0.0, 9.0}});
  const CholeskyFactor f = cholesky(a);
  EXPECT_NEAR(f.log_determinant(), std::log(36.0), 1e-12);
}

TEST(Cholesky, JitterRecoversSemidefinite) {
  // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
  Matrix a(3, 3);
  const Vector v = {1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v[i] * v[j];
  const JitteredCholesky jc = cholesky_with_jitter(a);
  EXPECT_GT(jc.jitter, 0.0);
  const Matrix rebuilt = gemm_bt(jc.factor.lower, jc.factor.lower);
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-4);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  const Matrix a = Matrix::from_rows(
      {{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 2.0}});
  const SymmetricEigenResult r = symmetric_eigen(a);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], -1.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const SymmetricEigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

// Property check used by several suites: A V = V diag(values), V orthonormal.
void expect_valid_decomposition(const Matrix& a,
                                const SymmetricEigenResult& r, double tol) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < r.values.size(); ++j) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = r.vectors(i, j);
    const Vector av = gemv(a, v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], r.values[j] * v[i], tol) << "pair " << j;
  }
  const Matrix vtv = gram(r.vectors);
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(r.values.size())), tol);
}

TEST(SymmetricEigen, RandomMatrixSatisfiesDefinition) {
  Rng rng(8);
  const std::size_t n = 30;
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = 0.5 * (a(i, j) + a(j, i));
      a(j, i) = a(i, j);
    }
  const SymmetricEigenResult r = symmetric_eigen(a);
  expect_valid_decomposition(a, r, 1e-9);
  // Sorted descending.
  for (std::size_t j = 1; j < n; ++j)
    EXPECT_GE(r.values[j - 1], r.values[j] - 1e-12);
  // Trace preserved.
  double trace = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += r.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(SymmetricEigen, EigenvaluesOnlyMatchesFull) {
  Rng rng(9);
  const Matrix a = random_spd(20, rng);
  const SymmetricEigenResult full = symmetric_eigen(a);
  const Vector values = symmetric_eigenvalues(a);
  ASSERT_EQ(values.size(), full.values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], full.values[i], 1e-8 * std::abs(values[0]));
}

TEST(SymmetricEigen, SizeOneMatrix) {
  const Matrix a = Matrix::from_rows({{5.0}});
  const SymmetricEigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.values[0], 5.0, 1e-15);
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0, 1e-15);
}

TEST(TridiagonalEigen, LaplacianHasKnownSpectrum) {
  // Tridiagonal (-1, 2, -1) of size n: eigenvalues 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 12;
  Vector d(n, 2.0);
  Vector e(n - 1, -1.0);
  const SymmetricEigenResult r = tridiagonal_eigen(d, e);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(n - k) * M_PI /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(r.values[k], expected, 1e-10);
  }
}

TEST(TridiagonalEigen, EigenvaluesOnlyAgrees) {
  Vector d = {1.0, -2.0, 0.5, 4.0};
  Vector e = {0.3, -0.7, 1.1};
  const SymmetricEigenResult full = tridiagonal_eigen(d, e);
  const Vector values = tridiagonal_eigenvalues(d, e);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], full.values[i], 1e-12);
}

TEST(JacobiEigen, AgreesWithQlSolver) {
  Rng rng(10);
  const Matrix a = random_spd(16, rng);
  const SymmetricEigenResult ql = symmetric_eigen(a);
  const SymmetricEigenResult jac = jacobi_eigen(a);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(ql.values[i], jac.values[i], 1e-9 * ql.values[0]);
  expect_valid_decomposition(a, jac, 1e-9);
}

TEST(Lanczos, TopPairsMatchDenseSolver) {
  Rng rng(11);
  const Matrix a = random_spd(60, rng);
  const SymmetricEigenResult dense = symmetric_eigen(a);
  LanczosOptions options;
  options.num_eigenpairs = 8;
  const SymmetricEigenResult lz = lanczos_largest(a, options);
  ASSERT_EQ(lz.values.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(lz.values[i], dense.values[i], 1e-7 * dense.values[0]);
  // Ritz vectors satisfy the eigen equation.
  for (std::size_t j = 0; j < 8; ++j) {
    Vector v(60);
    for (std::size_t i = 0; i < 60; ++i) v[i] = lz.vectors(i, j);
    const Vector av = gemv(a, v);
    for (std::size_t i = 0; i < 60; ++i)
      EXPECT_NEAR(av[i], lz.values[j] * v[i], 1e-6 * dense.values[0]);
  }
}

TEST(Lanczos, MatrixFreeOperatorInterface) {
  // Operator: diagonal {10, 9, ..., 1} without materializing a matrix.
  const std::size_t n = 10;
  const MatVec apply = [n](const Vector& x, Vector& y) {
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<double>(n - i) * x[i];
  };
  LanczosOptions options;
  options.num_eigenpairs = 3;
  const SymmetricEigenResult r = lanczos_largest(apply, n, options);
  EXPECT_NEAR(r.values[0], 10.0, 1e-9);
  EXPECT_NEAR(r.values[1], 9.0, 1e-9);
  EXPECT_NEAR(r.values[2], 8.0, 1e-9);
}

TEST(Lanczos, HandlesRepeatedEigenvaluesViaRestart) {
  // Identity-like operator: every direction is invariant; needs restarts.
  Matrix a = Matrix::identity(12);
  a(0, 0) = 2.0;
  LanczosOptions options;
  options.num_eigenpairs = 4;
  const SymmetricEigenResult r = lanczos_largest(a, options);
  EXPECT_NEAR(r.values[0], 2.0, 1e-9);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_NEAR(r.values[i], 1.0, 1e-9);
}

}  // namespace
}  // namespace sckl::linalg
