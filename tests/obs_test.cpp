// Observability layer: span nesting and cross-thread parenting, metrics
// shard-fold correctness under concurrency, the disabled-mode
// zero-allocation guarantee, and the sckl-trace-v1 JSON exporter.
//
// This suite runs under the TSan CI job: the span shards, counter shards,
// and histogram CAS loops must all be clean under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

// Global allocation counter for the zero-allocation check. Counting is
// always on; the test reads the delta across a disabled-tracing window.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace sckl {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace_enable(true);
    obs::trace_reset();
  }
  void TearDown() override { obs::trace_enable(false); }

  std::map<std::string, obs::SpanRecord> by_name() {
    std::map<std::string, obs::SpanRecord> out;
    for (const obs::SpanRecord& r : obs::trace_snapshot()) out[r.name] = r;
    return out;
  }
};

TEST_F(TraceFixture, SpansNestWithinOneThread) {
  {
    obs::Span outer("outer");
    {
      obs::Span middle("middle");
      obs::Span inner("inner");
    }
    obs::Span sibling("sibling");
  }
  auto spans = by_name();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans["outer"].parent, 0u);
  EXPECT_EQ(spans["middle"].parent, spans["outer"].id);
  EXPECT_EQ(spans["inner"].parent, spans["middle"].id);
  EXPECT_EQ(spans["sibling"].parent, spans["outer"].id);
  EXPECT_GE(spans["outer"].wall_ns, spans["middle"].wall_ns);
}

TEST_F(TraceFixture, SpanRecordsWallAndCpuTime) {
  {
    obs::Span span("busy");
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + std::sqrt(double(i));
  }
  auto spans = by_name();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans["busy"].wall_ns, 0);
  // CPU time of a compute loop tracks wall time (same order of magnitude).
  EXPECT_GT(spans["busy"].cpu_ns, spans["busy"].wall_ns / 20);
}

TEST_F(TraceFixture, WorkerSpansParentAcrossThreadPool) {
  // The mc_ssta pattern: capture the dispatching span's id, hand it to every
  // pool worker, and check the tree stitches together across threads.
  std::uint64_t dispatch_id = 0;
  {
    obs::Span dispatch("dispatch");
    dispatch_id = obs::Span::current_id();
    ASSERT_EQ(dispatch_id, dispatch.id());
    ThreadPool pool(4);
    pool.run([&](std::size_t) {
      obs::Span worker_span("worker", dispatch_id);
      obs::Span child("worker_child");  // implicit: nests under worker_span
    });
  }
  const auto spans = obs::trace_snapshot();
  std::size_t workers = 0;
  std::size_t children = 0;
  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& r : spans) by_id[r.id] = &r;
  for (const auto& r : spans) {
    if (std::string(r.name) == "worker") {
      ++workers;
      EXPECT_EQ(r.parent, dispatch_id);
    }
    if (std::string(r.name) == "worker_child") {
      ++children;
      ASSERT_TRUE(by_id.count(r.parent));
      EXPECT_STREQ(by_id[r.parent]->name, "worker");
      // The implicit parent lives on the same thread; the explicit-parent
      // stitch is what crosses threads.
      EXPECT_EQ(by_id[r.parent]->thread, r.thread);
    }
  }
  EXPECT_EQ(workers, 4u);
  EXPECT_EQ(children, 4u);
}

TEST_F(TraceFixture, DisabledSpansRecordNothingAndCurrentIdIsZero) {
  obs::trace_enable(false);
  {
    obs::Span span("ghost");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(obs::Span::current_id(), 0u);
  }
  obs::trace_enable(true);
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST_F(TraceFixture, DisabledSpansAllocateNothing) {
  obs::trace_enable(false);
  // Warm up thread-local state on this thread first.
  { obs::Span warm("warm"); }
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    obs::Span span("hot_path");
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST_F(TraceFixture, DisabledSpanOverheadIsNearZero) {
  obs::trace_enable(false);
  obs::Stopwatch sw;
  for (int i = 0; i < 1000000; ++i) {
    obs::Span span("overhead_probe");
  }
  // One relaxed load per construction: even a debug/sanitizer build clears
  // this very generous bound by orders of magnitude.
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(MetricsTest, CounterFoldsShardsAcrossConcurrentIncrements) {
  obs::Counter& c = obs::counter("sckl.test.concurrent_counter");
  const std::uint64_t base = c.value();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value() - base,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, CounterHandleIsStableAndAdditionsAllocateNothing) {
  obs::Counter& c = obs::counter("sckl.test.alloc_free_counter");
  EXPECT_EQ(&c, &obs::counter("sckl.test.alloc_free_counter"));
  c.add(1);  // touch the thread-local shard index once
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) c.add(1);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(MetricsTest, GaugeStoresLastWrite) {
  obs::Gauge& g = obs::gauge("sckl.test.gauge");
  g.set(2258.0);
  EXPECT_DOUBLE_EQ(g.value(), 2258.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(MetricsTest, HistogramTracksCountSumMinMaxAndQuantiles) {
  obs::Histogram& h = obs::histogram("sckl.test.histogram");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.sum, 500500.0, 1e-9);
  EXPECT_NEAR(snap.mean, 500.5, 1e-9);
  // Log2 buckets give an upper-bound estimate within one power of two.
  EXPECT_GE(snap.quantile(0.5), 500.0);
  EXPECT_LE(snap.quantile(0.5), 1024.0);
  EXPECT_GE(snap.quantile(0.99), snap.quantile(0.5));
}

TEST(MetricsTest, HistogramConcurrentRecordsKeepExactCountAndSum) {
  obs::Histogram& h = obs::histogram("sckl.test.histogram_mt");
  const obs::HistogramSnapshot base = h.snapshot();
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kRecords; ++i) h.record(2.0);
    });
  }
  for (auto& t : threads) t.join();
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count - base.count,
            static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_NEAR(snap.sum - base.sum, 2.0 * kThreads * kRecords, 1e-6);
}

TEST(MetricsTest, StandardMetricsAreRegisteredUpFront) {
  obs::register_standard_metrics();
  const std::vector<obs::MetricRow> rows = obs::metrics_snapshot();
  const auto present = [&](const char* name) {
    return std::any_of(rows.begin(), rows.end(), [&](const obs::MetricRow& r) {
      return r.name == name;
    });
  };
  // A run that never touches the store still exports the store vocabulary.
  EXPECT_TRUE(present("sckl.store.cache.hits"));
  EXPECT_TRUE(present("sckl.store.cache.misses"));
  EXPECT_TRUE(present("sckl.linalg.lanczos.iterations"));
  EXPECT_TRUE(present("sckl.ssta.mc.blocks"));
}

class JsonFixture : public TraceFixture {};

TEST_F(JsonFixture, TraceJsonRoundTripsSchemaSpansAndMetrics) {
  {
    obs::Span outer("json_outer");
    obs::Span inner("json_inner");
  }
  obs::counter("sckl.test.json_counter").add(7);
  obs::gauge("sckl.test.json_gauge").set(3.25);
  obs::histogram("sckl.test.json_histogram").record(42.0);

  const std::string doc = obs::trace_json_string();
  // Stable schema marker.
  EXPECT_NE(doc.find("\"schema\": \"sckl-trace-v1\""), std::string::npos);

  // Spans round-trip: both names present, and the inner span's parent field
  // carries the outer span's id.
  auto spans = by_name();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(doc.find("\"name\": \"json_outer\""), std::string::npos);
  const std::string inner_entry =
      "\"parent\": " + std::to_string(spans["json_outer"].id) +
      ", \"name\": \"json_inner\"";
  EXPECT_NE(doc.find(inner_entry), std::string::npos);

  // Metrics round-trip with kind and value.
  EXPECT_NE(doc.find("\"name\": \"sckl.test.json_counter\", \"kind\": "
                     "\"counter\", \"count\": 7"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"sckl.test.json_gauge\", \"kind\": "
                     "\"gauge\", \"count\": 0, \"value\": 3.25"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"sckl.test.json_histogram\", \"kind\": "
                     "\"histogram\", \"count\": 1"),
            std::string::npos);

  // Structural sanity: braces and brackets balance, so any JSON parser can
  // consume the document.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(JsonFixture, WriteTraceJsonProducesTheSameDocumentOnDisk) {
  { obs::Span span("disk_span"); }
  const std::string path = ::testing::TempDir() + "/sckl_obs_test_trace.json";
  ASSERT_TRUE(obs::write_trace_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string from_disk;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    from_disk.append(buffer, n);
  std::fclose(f);
  EXPECT_EQ(from_disk, obs::trace_json_string());
  std::remove(path.c_str());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  obs::Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(sw.seconds(), 0.0);
  const double first = sw.seconds();
  const double second = sw.seconds();
  EXPECT_LE(first, second);  // monotone across calls
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(TraceEnvTest, ParsesTruthyAndFalsyValues) {
  // Only observable without mutating the real environment by checking the
  // current value is handled (unset in test runs -> false).
  if (std::getenv("SCKL_TRACE") == nullptr) {
    EXPECT_FALSE(obs::trace_env_requested());
  }
}

}  // namespace
}  // namespace sckl
