// Tests for kernel extraction from (synthetic) measurement data — the
// simulated Xiong/Liu workflow: sample a known field at test sites, bin the
// empirical correlogram, fit a kernel family, recover the ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "field/cholesky_sampler.h"
#include "kernels/extraction.h"
#include "kernels/kernel_library.h"

namespace sckl::kernels {
namespace {

using geometry::Point2;

std::vector<Point2> random_sites(std::size_t count, Rng& rng) {
  std::vector<Point2> sites(count);
  for (auto& s : sites) {
    s.x = rng.uniform(-1.0, 1.0);
    s.y = rng.uniform(-1.0, 1.0);
  }
  return sites;
}

TEST(Correlogram, RecoversKernelShape) {
  const GaussianKernel truth(2.5);
  Rng rng(5);
  const auto sites = random_sites(60, rng);
  const field::CholeskyFieldSampler sampler(truth, sites);
  linalg::Matrix measurements;
  sampler.sample_block(field::SampleRange{0, 4000}, StreamKey{5, 0},
                       measurements);  // 4000 "dies"

  const auto bins = empirical_correlogram(measurements, sites, 12, 2.0);
  ASSERT_GT(bins.size(), 6u);
  for (const auto& bin : bins) {
    EXPECT_NEAR(bin.correlation, truth.radial(bin.distance), 0.08)
        << "at v=" << bin.distance;
    EXPECT_GT(bin.num_pairs, 0u);
  }
  // Monotone decay within noise: first bin far above last bin.
  EXPECT_GT(bins.front().correlation, bins.back().correlation + 0.3);
}

TEST(Correlogram, InputValidation) {
  linalg::Matrix tiny(2, 3);
  const std::vector<Point2> sites = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_THROW(empirical_correlogram(tiny, sites, 4, 1.0), Error);  // dies<3
  linalg::Matrix ok(5, 2);
  EXPECT_THROW(empirical_correlogram(ok, sites, 4, 1.0), Error);  // mismatch
  linalg::Matrix good(5, 3);
  EXPECT_THROW(empirical_correlogram(good, sites, 0, 1.0), Error);
}

TEST(CorrelogramFit, RecoversDecayParameter) {
  const double c_true = 2.5;
  const GaussianKernel truth(c_true);
  Rng rng(6);
  const auto sites = random_sites(80, rng);
  const field::CholeskyFieldSampler sampler(truth, sites);
  linalg::Matrix measurements;
  sampler.sample_block(field::SampleRange{0, 6000}, StreamKey{6, 0},
                       measurements);
  const auto bins = empirical_correlogram(measurements, sites, 14, 2.2);

  const auto gaussian_family = [](double c) {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  const CorrelogramFit fit =
      fit_correlogram(bins, gaussian_family, 0.2, 20.0);
  EXPECT_NEAR(fit.parameter, c_true, 0.35);
  EXPECT_LT(fit.rmse, 0.05);
}

TEST(CorrelogramFit, PrefersTheTrueFamily) {
  // Fit both Gaussian and exponential families to Gaussian-kernel data;
  // the Gaussian family must fit better (model selection as in [1]).
  const GaussianKernel truth(2.5);
  Rng rng(7);
  const auto sites = random_sites(70, rng);
  const field::CholeskyFieldSampler sampler(truth, sites);
  linalg::Matrix measurements;
  sampler.sample_block(field::SampleRange{0, 6000}, StreamKey{7, 0},
                       measurements);
  const auto bins = empirical_correlogram(measurements, sites, 14, 2.2);

  const auto gaussian_family = [](double c) {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  const auto exponential_family = [](double c) {
    return [c](double v) { return std::exp(-c * v); };
  };
  const CorrelogramFit g = fit_correlogram(bins, gaussian_family, 0.2, 20.0);
  const CorrelogramFit e =
      fit_correlogram(bins, exponential_family, 0.2, 20.0);
  EXPECT_LT(g.rmse, e.rmse);
}

TEST(CorrelogramFit, ValidatesInput) {
  const auto family = [](double c) {
    return [c](double v) { return std::exp(-c * v); };
  };
  EXPECT_THROW(fit_correlogram({}, family, 0.1, 1.0), Error);
  const std::vector<CorrelogramBin> bins = {{0.5, 0.5, 10}};
  EXPECT_THROW(fit_correlogram(bins, family, -1.0, 1.0), Error);
}

}  // namespace
}  // namespace sckl::kernels
