// Cross-module integration tests: the full paper pipeline assembled by hand
// (kernel fit -> mesh -> KLE -> truncation -> samplers -> Monte Carlo STA),
// checking the relationships the paper's experiments rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/synthetic.h"
#include "common/rng.h"
#include "obs/stopwatch.h"
#include "core/kle_solver.h"
#include "core/truncation.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/mc_ssta.h"

namespace sckl {
namespace {

TEST(Integration, PaperTruncationRuleYieldsAboutTwentyFiveRvs) {
  // The paper's headline: the Gaussian kernel on the unit die, meshed at
  // max-area 0.1%, truncates to r = 25 under the 1% criterion with m = 200
  // computed pairs. Validate the full chain on a slightly coarser mesh
  // (m = 120 keeps this test fast) — r must land in the low tens.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh =
      mesh::paper_mesh(geometry::BoundingBox::unit_die(), 0.004);
  core::KleOptions options;
  options.num_eigenpairs = 120;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);
  const std::size_t r =
      core::select_truncation(kle.eigenvalues(), mesh.num_triangles(), 0.01);
  EXPECT_GE(r, 10u);
  EXPECT_LE(r, 60u);
}

TEST(Integration, KleAndCholeskyProduceMatchingDelayDistributions) {
  // Two independent sampling mechanisms, one timer: worst-delay mean/sigma
  // must agree within Monte Carlo noise (the core claim of Table 1).
  circuit::SyntheticSpec spec;
  spec.name = "mini";
  spec.num_gates = 150;
  spec.seed = 31;
  const circuit::Netlist netlist = circuit::synthetic_circuit(spec);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const auto locations = placement.physical_locations(netlist);

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const field::CholeskyFieldSampler reference(kernel, locations);

  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 800);
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 50;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const field::KleFieldSampler reduced(kle, 25, locations);

  ssta::McSstaOptions options;
  options.num_samples = 1500;
  const ssta::ParameterSamplers mc{&reference, &reference, &reference,
                                   &reference};
  const ssta::ParameterSamplers kl{&reduced, &reduced, &reduced, &reduced};
  const ssta::McSstaResult a = run_monte_carlo_ssta(engine, mc, options);
  const ssta::McSstaResult b = run_monte_carlo_ssta(engine, kl, options);

  EXPECT_NEAR(b.worst_delay.mean(), a.worst_delay.mean(),
              0.01 * a.worst_delay.mean());
  EXPECT_NEAR(b.worst_delay.stddev(), a.worst_delay.stddev(),
              0.20 * a.worst_delay.stddev());
  // The headline dimensionality reduction: latent 25 vs N_g = 150.
  EXPECT_EQ(reduced.latent_dimension(), 25u);
  EXPECT_EQ(reference.latent_dimension(), 150u);
}

TEST(Integration, IgnoringSpatialCorrelationChangesSigma) {
  // Control experiment: an independent-per-gate sampler (white noise) must
  // yield a *different* worst-delay sigma than the correlated reference —
  // this is why spatial correlation modeling matters at all (Sec. 1).
  circuit::SyntheticSpec spec;
  spec.name = "mini2";
  spec.num_gates = 200;
  spec.seed = 41;
  const circuit::Netlist netlist = circuit::synthetic_circuit(spec);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const auto locations = placement.physical_locations(netlist);

  const kernels::GaussianKernel correlated_kernel(kernels::paper_gaussian_c());
  // Nearly-white kernel: correlation collapses within tiny distances.
  const kernels::GaussianKernel white_kernel(4000.0);
  const field::CholeskyFieldSampler correlated(correlated_kernel, locations);
  const field::CholeskyFieldSampler white(white_kernel, locations);

  ssta::McSstaOptions options;
  options.num_samples = 1500;
  const ssta::McSstaResult rc = run_monte_carlo_ssta(
      engine, {&correlated, &correlated, &correlated, &correlated}, options);
  const ssta::McSstaResult rw = run_monte_carlo_ssta(
      engine, {&white, &white, &white, &white}, options);
  // Correlated variation produces a wider worst-delay distribution (path
  // delays add near-coherently when gates track each other).
  EXPECT_GT(rc.worst_delay.stddev(), 1.5 * rw.worst_delay.stddev());
}

TEST(Integration, SpeedAdvantageGrowsWithGateCount) {
  // Algorithm 2's per-sample cost is O(N_g r) vs Algorithm 1's O(N_g^2):
  // the sampling-time ratio must grow with N_g (Table 1's trend).
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 600);
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 40;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);

  double previous_ratio = 0.0;
  for (std::size_t gates : {200u, 800u}) {
    circuit::SyntheticSpec spec;
    spec.num_gates = gates;
    spec.seed = 51;
    const circuit::Netlist netlist = circuit::synthetic_circuit(spec);
    const placer::Placement placement = placer::place(netlist);
    const auto locations = placement.physical_locations(netlist);
    const field::CholeskyFieldSampler dense(kernel, locations);
    const field::KleFieldSampler reduced(kle, 25, locations);

    const field::SampleRange range{0, 400};
    const StreamKey key{7, 0};
    linalg::Matrix block;
    // Min-of-reps, not sum: the batched GEMM path made both samplers fast
    // enough that a single preemption on a busy runner would otherwise
    // swamp the measurement; the minimum approximates the uncontended cost.
    const auto min_time = [&](const field::FieldSampler& sampler) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 5; ++rep) {
        obs::Stopwatch timer;
        sampler.sample_block(range, key, block);
        best = std::min(best, timer.seconds());
      }
      return best;
    };
    const double dense_time = min_time(dense);
    const double reduced_time = min_time(reduced);
    const double ratio = dense_time / std::max(reduced_time, 1e-9);
    EXPECT_GT(ratio, previous_ratio);
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 2.0);  // 800 gates vs r=25: clear advantage
}

}  // namespace
}  // namespace sckl
