// Tests for src/linalg/gemm: the batched sampling GEMM and its runtime
// SIMD dispatch. The load-bearing property is the determinism contract
// (gemm.h): every output element is ONE std::fma chain over k in strictly
// ascending order, so a naive per-element fma loop is not merely a
// tolerance reference — it predicts the exact bits of every kernel at
// every dispatch target, for every blocking/packing decision.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"

namespace sckl::linalg {
namespace {

/// Forces one dispatch target for the lifetime of the scope.
class ForcedTarget {
 public:
  explicit ForcedTarget(SimdTarget target) { set_simd_target(target); }
  ~ForcedTarget() { reset_simd_target(); }
};

/// Targets available on the running machine, scalar always included.
std::vector<SimdTarget> supported_targets() {
  std::vector<SimdTarget> targets{SimdTarget::kScalar};
  if (simd_target_supported(SimdTarget::kAvx2))
    targets.push_back(SimdTarget::kAvx2);
  if (simd_target_supported(SimdTarget::kAvx512))
    targets.push_back(SimdTarget::kAvx512);
  return targets;
}

Matrix random_matrix(std::size_t rows, std::size_t cols,
                     std::uint64_t seed) {
  const CounterRng rng(StreamKey{seed, 0});
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    rng.normal_row(i, 0, cols, m.row_ptr(i));
  return m;
}

/// The contract's reference: c(i,j) = fma(a(i,k), b(k,j), ...) folded over
/// ascending k, starting from the prior c(i,j).
Matrix reference_gemm_add(const Matrix& a, const Matrix& b, Matrix c) {
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = c(i, j);
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc = std::fma(a(i, k), b(k, j), acc);
      c(i, j) = acc;
    }
  return c;
}

void expect_bit_equal(const Matrix& got, const Matrix& want,
                      const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (std::size_t i = 0; i < want.rows(); ++i)
    ASSERT_EQ(std::memcmp(got.row_ptr(i), want.row_ptr(i),
                          want.cols() * sizeof(double)),
              0)
        << label << ": row " << i << " differs";
}

struct Shape {
  std::size_t m, k, n;
};

// Ragged shapes crossing every kernel boundary: 4-row micro-tile tails,
// sub-register column tails for both the 8-wide AVX2/scalar and 32-wide
// AVX-512 panels, multiple kc panels (k > 256), and multiple jc panels
// (n > 512).
const Shape kShapes[] = {{1, 1, 1},     {3, 25, 1669}, {64, 25, 1669},
                         {7, 300, 513}, {4, 8, 32},    {5, 257, 33},
                         {2, 600, 1025}, {9, 3, 7},    {13, 31, 100}};

TEST(Gemm, MatchesFmaChainReferenceAtEveryTarget) {
  for (const SimdTarget target : supported_targets()) {
    const ForcedTarget forced(target);
    for (const Shape& s : kShapes) {
      const Matrix a = random_matrix(s.m, s.k, 11);
      const Matrix b = random_matrix(s.k, s.n, 22);
      Matrix c;
      gemm_into(a, b, c);
      expect_bit_equal(c, reference_gemm_add(a, b, Matrix(s.m, s.n)),
                       simd_target_name(target));
    }
  }
}

TEST(Gemm, AddAccumulatesIntoExistingChain) {
  for (const SimdTarget target : supported_targets()) {
    const ForcedTarget forced(target);
    const Matrix a = random_matrix(6, 40, 1);
    const Matrix b = random_matrix(40, 77, 2);
    Matrix c = random_matrix(6, 77, 3);
    const Matrix want = reference_gemm_add(a, b, c);
    gemm_add(a, b, c);
    expect_bit_equal(c, want, simd_target_name(target));
  }
}

TEST(Gemm, AllTargetsProduceIdenticalBits) {
  // The cross-target guarantee the samplers rely on: forcing the kernels
  // down to scalar (as CI does via SCKL_SIMD=scalar) must not move a bit.
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, 5);
    const Matrix b = random_matrix(s.k, s.n, 6);
    Matrix reference;
    {
      const ForcedTarget forced(SimdTarget::kScalar);
      gemm_into(a, b, reference);
    }
    for (const SimdTarget target : supported_targets()) {
      const ForcedTarget forced(target);
      Matrix c;
      gemm_into(a, b, c);
      expect_bit_equal(c, reference, simd_target_name(target));
    }
  }
}

TEST(Gemm, EmptyInnerDimensionYieldsZeros) {
  const Matrix a(3, 0);
  const Matrix b(0, 5);
  Matrix c;
  gemm_into(a, b, c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 5u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(c(i, j), 0.0);
}

TEST(Gemm, RejectsShapeMismatchAndAliasing) {
  const Matrix a = random_matrix(3, 4, 7);
  const Matrix b = random_matrix(5, 2, 8);  // inner dim 4 != 5
  Matrix c;
  EXPECT_THROW(gemm_into(a, b, c), Error);
  Matrix d = random_matrix(3, 3, 9);
  EXPECT_THROW(gemm_into(d, d, d), Error);  // c aliases an input
  Matrix e = random_matrix(3, 4, 10);       // gemm_add: wrong c shape
  Matrix wrong(2, 2);
  const Matrix f = random_matrix(4, 2, 11);
  EXPECT_THROW(gemm_add(e, f, wrong), Error);
}

TEST(Gemv, MatchesSingleRowGemmAtEveryTarget) {
  // gemv_fast's dot8 interleave is a DIFFERENT (but fixed) reduction
  // order from the gemm chain, so the guarantee is per-target determinism
  // and cross-target bit-identity, not bit-equality with gemm.
  const Matrix a = random_matrix(37, 203, 12);
  Vector x(203);
  const CounterRng rng(StreamKey{13, 0});
  rng.normal_row(0, 0, x.size(), x.data());

  Vector reference;
  {
    const ForcedTarget forced(SimdTarget::kScalar);
    reference = gemv_fast(a, x);
  }
  ASSERT_EQ(reference.size(), 37u);
  for (const SimdTarget target : supported_targets()) {
    const ForcedTarget forced(target);
    const Vector y = gemv_fast(a, x);
    ASSERT_EQ(y.size(), reference.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(y[i], reference[i]) << simd_target_name(target) << " row "
                                    << i;
    // Tolerance sanity vs the plain chain (the orders differ only in
    // rounding): catches transposed/offset indexing bugs.
    for (std::size_t i = 0; i < y.size(); ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc = std::fma(a(i, k), x[k], acc);
      EXPECT_NEAR(y[i], acc, 1e-9 * std::max(1.0, std::abs(acc)));
    }
  }
}

TEST(Gemv, TransposedMatchesGemmRowExactly) {
  // KleField::reconstruct(vector) must agree bit-for-bit with row 0 of
  // reconstruct_block on the same latents — that is exactly
  // gemv_transposed_fast(op_t, x) == gemm(x_row, op_t).
  const Matrix op_t = random_matrix(25, 1669, 14);
  Matrix x_row(1, 25);
  const CounterRng rng(StreamKey{15, 0});
  rng.normal_row(0, 0, 25, x_row.row_ptr(0));
  Vector x(x_row.row_ptr(0), x_row.row_ptr(0) + 25);

  for (const SimdTarget target : supported_targets()) {
    const ForcedTarget forced(target);
    Matrix block;
    gemm_into(x_row, op_t, block);
    const Vector y = gemv_transposed_fast(op_t, x);
    ASSERT_EQ(y.size(), 1669u);
    for (std::size_t j = 0; j < y.size(); ++j)
      ASSERT_EQ(y[j], block(0, j)) << simd_target_name(target) << " col "
                                   << j;
  }
}

TEST(Dispatch, TargetNamesAndForcingRoundTrip) {
  EXPECT_STREQ(simd_target_name(SimdTarget::kScalar), "scalar");
  EXPECT_STREQ(simd_target_name(SimdTarget::kAvx2), "avx2");
  EXPECT_STREQ(simd_target_name(SimdTarget::kAvx512), "avx512");
  EXPECT_TRUE(simd_target_supported(SimdTarget::kScalar));

  const SimdTarget ambient = active_simd_target();
  for (const SimdTarget target : supported_targets()) {
    set_simd_target(target);
    EXPECT_EQ(active_simd_target(), target);
  }
  reset_simd_target();
  EXPECT_EQ(active_simd_target(), ambient);

  if (!simd_target_supported(SimdTarget::kAvx512)) {
    EXPECT_THROW(set_simd_target(SimdTarget::kAvx512), Error);
  }
}

TEST(Dispatch, DetectedTargetIsSupported) {
  EXPECT_TRUE(simd_target_supported(detected_simd_target()));
  EXPECT_TRUE(simd_target_supported(active_simd_target()));
}

}  // namespace
}  // namespace sckl::linalg
