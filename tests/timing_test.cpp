// Tests for src/timing: Elmore on hand-computed RC trees, PERI/Bakoglu
// slew, NLDM interpolation, the rank-one quadratic statistical model, the
// synthetic cell library, and the STA engine on known circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bench_parser.h"
#include "common/error.h"
#include "placer/recursive_placer.h"
#include "timing/cell_library.h"
#include "timing/nldm.h"
#include "timing/rc_tree.h"
#include "timing/sta.h"
#include "timing/stat_gate_model.h"

namespace sckl::timing {
namespace {

TEST(RcTree, SingleSegmentElmore) {
  // Root - R=2 - node(C=3): delay = 2 * 3 = 6.
  RcTree tree;
  const std::size_t n1 = tree.add_node(0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(tree.elmore_delay_to(n1), 6.0);
  EXPECT_DOUBLE_EQ(tree.total_capacitance(), 3.0);
}

TEST(RcTree, ChainElmoreHandComputed) {
  // Root - R1=1 - a(C=2) - R2=3 - b(C=4):
  // delay(a) = 1 * (2 + 4) = 6; delay(b) = 6 + 3 * 4 = 18.
  RcTree tree;
  const std::size_t a = tree.add_node(0, 1.0, 2.0);
  const std::size_t b = tree.add_node(a, 3.0, 4.0);
  const auto d = tree.elmore_delays();
  EXPECT_DOUBLE_EQ(d[a], 6.0);
  EXPECT_DOUBLE_EQ(d[b], 18.0);
}

TEST(RcTree, BranchingTreeSharesTrunkDelay) {
  // Root - R1=2 - t(C=1) with two branches: t - R=1 - x(C=5), t - R=4 - y(C=3).
  RcTree tree;
  const std::size_t t = tree.add_node(0, 2.0, 1.0);
  const std::size_t x = tree.add_node(t, 1.0, 5.0);
  const std::size_t y = tree.add_node(t, 4.0, 3.0);
  const auto d = tree.elmore_delays();
  const double trunk = 2.0 * (1.0 + 5.0 + 3.0);  // R1 * all downstream C
  EXPECT_DOUBLE_EQ(d[t], trunk);
  EXPECT_DOUBLE_EQ(d[x], trunk + 1.0 * 5.0);
  EXPECT_DOUBLE_EQ(d[y], trunk + 4.0 * 3.0);
}

TEST(RcTree, AddCapacitanceAffectsUpstreamDelay) {
  RcTree tree;
  const std::size_t a = tree.add_node(0, 1.0, 1.0);
  const double before = tree.elmore_delay_to(a);
  tree.add_capacitance(a, 2.0);
  EXPECT_DOUBLE_EQ(tree.elmore_delay_to(a), before + 1.0 * 2.0);
}

TEST(RcTree, InputValidation) {
  RcTree tree;
  EXPECT_THROW(tree.add_node(5, 1.0, 1.0), Error);
  EXPECT_THROW(tree.add_node(0, -1.0, 1.0), Error);
  EXPECT_THROW(tree.add_capacitance(3, 1.0), Error);
}

TEST(Slew, BakogluAndPeriComposition) {
  EXPECT_NEAR(bakoglu_step_slew(10.0), std::log(9.0) * 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(peri_slew(3.0, 4.0), 5.0);
  // Zero wire: slew passes through unchanged.
  EXPECT_DOUBLE_EQ(wire_output_slew(7.0, 0.0), 7.0);
  // Monotone in both arguments.
  EXPECT_GT(wire_output_slew(7.0, 5.0), 7.0);
  EXPECT_GT(wire_output_slew(9.0, 5.0), wire_output_slew(7.0, 5.0));
}

TEST(Nldm, ExactAtGridPointsAndBilinearBetween) {
  const NldmTable table({10.0, 20.0}, {1.0, 3.0},
                        {{5.0, 9.0}, {7.0, 15.0}});
  EXPECT_DOUBLE_EQ(table.lookup(10.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(table.lookup(20.0, 3.0), 15.0);
  // Center: average of the four corners.
  EXPECT_DOUBLE_EQ(table.lookup(15.0, 2.0), 9.0);
  // Edge midpoints.
  EXPECT_DOUBLE_EQ(table.lookup(10.0, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(table.lookup(15.0, 1.0), 6.0);
}

TEST(Nldm, ExtrapolatesLinearlyOutsideGrid) {
  const NldmTable table({10.0, 20.0}, {1.0, 3.0},
                        {{5.0, 9.0}, {7.0, 15.0}});
  // Below the slew axis: continue the first-segment slope.
  EXPECT_DOUBLE_EQ(table.lookup(0.0, 1.0), 3.0);
  // Beyond the load axis at slew 10: slope (9-5)/2 = 2 per load unit.
  EXPECT_DOUBLE_EQ(table.lookup(10.0, 5.0), 13.0);
}

TEST(Nldm, ValidatesConstruction) {
  EXPECT_THROW(NldmTable({2.0, 1.0}, {1.0}, {{1.0}, {2.0}}), Error);
  EXPECT_THROW(NldmTable({1.0}, {1.0, 2.0}, {{1.0}}), Error);
  EXPECT_THROW(NldmTable({}, {1.0}, {}), Error);
}

TEST(RankOneQuadratic, FactorArithmetic) {
  RankOneQuadratic s;
  s.linear = {0.1, -0.05, 0.0, 0.0};
  s.direction = {1.0, 0.0, 0.0, 0.0};
  s.quadratic = 0.01;
  EXPECT_DOUBLE_EQ(s.factor({0, 0, 0, 0}), 1.0);
  EXPECT_NEAR(s.factor({1, 0, 0, 0}), 1.0 + 0.1 + 0.01, 1e-12);
  EXPECT_NEAR(s.factor({1, 2, 0, 0}), 1.0 + 0.1 - 0.1 + 0.01, 1e-12);
  // At -100 sigma the quadratic term dominates: 1 - 10 + 100 = 91.
  EXPECT_DOUBLE_EQ(s.factor({-100, 0, 0, 0}, 0.2), 91.0);
  RankOneQuadratic pure_linear;
  pure_linear.linear = {-0.5, 0, 0, 0};
  EXPECT_DOUBLE_EQ(pure_linear.factor({10, 0, 0, 0}, 0.2), 0.2);
}

TEST(StatParameter, NamesAreStable) {
  EXPECT_STREQ(stat_parameter_name(kParamL), "L");
  EXPECT_STREQ(stat_parameter_name(kParamTox), "tox");
}

TEST(CellLibrary, DefaultLibraryCoversAllFunctions) {
  const CellLibrary lib = CellLibrary::default_90nm();
  using circuit::CellFunction;
  for (CellFunction f :
       {CellFunction::kBuf, CellFunction::kInv, CellFunction::kAnd,
        CellFunction::kNand, CellFunction::kOr, CellFunction::kNor,
        CellFunction::kXor, CellFunction::kXnor, CellFunction::kDff}) {
    const TimingCell& cell = lib.cell_for(f, 2);
    EXPECT_GT(cell.input_cap, 0.0);
    EXPECT_GT(cell.delay.lookup(40.0, 10.0), 0.0);
  }
  // Wide gates clamp to the largest characterized arity.
  const TimingCell& wide = lib.cell_for(circuit::CellFunction::kNand, 9);
  EXPECT_EQ(wide.arity, 4u);
  // No cells for pads.
  EXPECT_THROW(lib.cell_for(circuit::CellFunction::kInput, 0), Error);
}

TEST(CellLibrary, DelayIncreasesWithLoadAndArity) {
  const CellLibrary lib = CellLibrary::default_90nm();
  const TimingCell& nand2 = lib.cell_for(circuit::CellFunction::kNand, 2);
  const TimingCell& nand4 = lib.cell_for(circuit::CellFunction::kNand, 4);
  EXPECT_GT(nand2.delay.lookup(40.0, 30.0), nand2.delay.lookup(40.0, 5.0));
  EXPECT_GT(nand4.delay.lookup(40.0, 10.0), nand2.delay.lookup(40.0, 10.0));
  EXPECT_GT(nand2.output_slew.lookup(40.0, 30.0),
            nand2.output_slew.lookup(40.0, 5.0));
}

TEST(CellLibrary, RejectsDuplicates) {
  CellLibrary lib = CellLibrary::default_90nm();
  TimingCell duplicate;
  duplicate.function = circuit::CellFunction::kInv;
  duplicate.arity = 1;
  duplicate.name = "INV_DUP";
  EXPECT_THROW(lib.add_cell(duplicate), Error);
}

class StaC17Test : public ::testing::Test {
 protected:
  StaC17Test()
      : netlist_(circuit::parse_bench_string(circuit::c17_bench_text(),
                                             "c17")),
        placement_(placer::place(netlist_)),
        library_(CellLibrary::default_90nm()),
        engine_(netlist_, placement_, library_) {}

  circuit::Netlist netlist_;
  placer::Placement placement_;
  CellLibrary library_;
  StaEngine engine_;
};

TEST_F(StaC17Test, NominalDelayIsPlausible) {
  const StaResult r = engine_.run_nominal();
  ASSERT_EQ(r.endpoint_arrival.size(), 2u);
  // Three NAND levels plus wires. Note the wires are huge for this setup:
  // 6 gates spread over the full normalized die (~2 mm of routing per net
  // at 200 fF/mm), so several hundred ps per stage is expected.
  EXPECT_GT(r.worst_delay, 20.0);
  EXPECT_LT(r.worst_delay, 20000.0);
  for (double a : r.endpoint_arrival) {
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, r.worst_delay);
  }
  EXPECT_EQ(engine_.depth(), 4u);
}

TEST_F(StaC17Test, SlowerParametersSlowTheCircuit) {
  const std::vector<double> plus_sigma(netlist_.num_physical_gates(), 2.0);
  const std::vector<double> zeros(netlist_.num_physical_gates(), 0.0);
  // +2 sigma on L (the dominant positive sensitivity) slows every gate.
  const StaResult nominal = engine_.run_nominal();
  const StaResult slow = engine_.run(
      {plus_sigma.data(), zeros.data(), zeros.data(), zeros.data()});
  EXPECT_GT(slow.worst_delay, nominal.worst_delay * 1.02);
  // Wider devices (+W) speed it up.
  const StaResult fast = engine_.run(
      {zeros.data(), plus_sigma.data(), zeros.data(), zeros.data()});
  EXPECT_LT(fast.worst_delay, nominal.worst_delay);
}

TEST_F(StaC17Test, DeterministicAcrossRuns) {
  const StaResult a = engine_.run_nominal();
  const StaResult b = engine_.run_nominal();
  EXPECT_EQ(a.worst_delay, b.worst_delay);
}

TEST(StaEngine, SequentialCircuitHasDffEndpoints) {
  circuit::Netlist n("seq");
  n.add_gate("pi", circuit::CellFunction::kInput, {});
  n.add_gate("g1", circuit::CellFunction::kInv, {"pi"});
  n.add_gate("ff", circuit::CellFunction::kDff, {"g1"});
  n.add_gate("g2", circuit::CellFunction::kInv, {"ff"});
  n.add_gate("g2_po", circuit::CellFunction::kOutput, {"g2"});
  n.finalize();
  const placer::Placement p = placer::place(n);
  const CellLibrary lib = CellLibrary::default_90nm();
  const StaEngine engine(n, p, lib);
  EXPECT_EQ(engine.num_endpoints(), 2u);  // PO + DFF D pin
  const StaResult r = engine.run_nominal();
  // The DFF launches with its clk->Q delay, so the PO path is non-zero
  // even though the D path has just one inverter.
  for (double a : r.endpoint_arrival) EXPECT_GT(a, 0.0);
}

TEST(StaEngine, LongerWiresIncreaseDelay) {
  // Same netlist placed on a tiny vs a huge die: wire delay must grow.
  const circuit::Netlist n =
      circuit::parse_bench_string(circuit::c17_bench_text(), "c17");
  const CellLibrary lib = CellLibrary::default_90nm();
  const placer::Placement small_die =
      placer::place(n, {{-0.1, -0.1}, {0.1, 0.1}});
  const placer::Placement big_die =
      placer::place(n, {{-4.0, -4.0}, {4.0, 4.0}});
  const StaEngine engine_small(n, small_die, lib);
  const StaEngine engine_big(n, big_die, lib);
  EXPECT_GT(engine_big.run_nominal().worst_delay,
            engine_small.run_nominal().worst_delay);
}

}  // namespace
}  // namespace sckl::timing
