// Tests for the higher-order extension: generalized symmetric eigensolver
// and the P1 (piecewise-linear) Galerkin KLE the paper mentions in Sec. 4.2.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/analytic_kle.h"
#include "core/p1_galerkin.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "linalg/blas.h"
#include "linalg/generalized_eigen.h"
#include "mesh/structured_mesher.h"

namespace sckl {
namespace {

using geometry::BoundingBox;
using linalg::Matrix;
using linalg::Vector;

Matrix random_spd(std::size_t n, Rng& rng, double ridge) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  Matrix a = linalg::gemm_bt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += ridge;
  return a;
}

TEST(TriangularSolve, ForwardAndBackwardInvertCholesky) {
  Rng rng(3);
  const Matrix m = random_spd(8, rng, 8.0);
  const linalg::CholeskyFactor f = linalg::cholesky(m);
  Matrix rhs(8, 2);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 2; ++j) rhs(i, j) = rng.normal();
  Matrix x = rhs;
  linalg::solve_lower_triangular_inplace(f.lower, x);
  // L x should reproduce rhs.
  const Matrix lx = linalg::gemm(f.lower, x);
  EXPECT_LT(lx.max_abs_diff(rhs), 1e-10);

  Matrix y = rhs;
  linalg::solve_lower_transposed_inplace(f.lower, y);
  const Matrix lty = linalg::gemm(f.lower.transposed(), y);
  EXPECT_LT(lty.max_abs_diff(rhs), 1e-10);
}

TEST(GeneralizedEigen, ReducesToOrdinaryWhenMIsIdentity) {
  Rng rng(4);
  Matrix a = random_spd(10, rng, 2.0);
  const Matrix m = Matrix::identity(10);
  const auto general = linalg::generalized_symmetric_eigen(a, m);
  const auto ordinary = linalg::symmetric_eigen(a);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(general.values[i], ordinary.values[i],
                1e-9 * ordinary.values[0]);
}

TEST(GeneralizedEigen, SatisfiesDefinitionAndMOrthonormality) {
  Rng rng(5);
  const Matrix a = random_spd(12, rng, 1.0);
  const Matrix m = random_spd(12, rng, 14.0);
  const auto result = linalg::generalized_symmetric_eigen(a, m);
  for (std::size_t j = 0; j < 12; ++j) {
    Vector d(12);
    for (std::size_t i = 0; i < 12; ++i) d[i] = result.vectors(i, j);
    const Vector ad = linalg::gemv(a, d);
    const Vector md = linalg::gemv(m, d);
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_NEAR(ad[i], result.values[j] * md[i],
                  1e-8 * std::abs(result.values[0]))
          << "pair " << j;
  }
  // d_i^T M d_j = delta_ij.
  for (std::size_t p = 0; p < 12; ++p) {
    Vector dp(12);
    for (std::size_t i = 0; i < 12; ++i) dp[i] = result.vectors(i, p);
    const Vector mdp = linalg::gemv(m, dp);
    for (std::size_t q = p; q < 12; ++q) {
      Vector dq(12);
      for (std::size_t i = 0; i < 12; ++i) dq[i] = result.vectors(i, q);
      EXPECT_NEAR(linalg::dot(dq, mdp), p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(GeneralizedEigen, RejectsIndefiniteMass) {
  const Matrix a = Matrix::identity(2);
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_THROW(linalg::generalized_symmetric_eigen(a, m), Error);
}

TEST(P1Mass, RowSumsIntegrateHatFunctions) {
  // sum_w M_vw = int phi_v = (1/3) * area of the triangles touching v;
  // the grand total is the domain area.
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 5, 5, mesh::StructuredPattern::kDiagonal);
  const linalg::Matrix m = core::assemble_p1_mass_matrix(mesh);
  double total = 0.0;
  for (std::size_t v = 0; v < m.rows(); ++v)
    for (std::size_t w = 0; w < m.cols(); ++w) total += m(v, w);
  EXPECT_NEAR(total, 4.0, 1e-10);
  EXPECT_TRUE(linalg::is_symmetric(m, 1e-12));
}

TEST(P1Kernel, RejectsCentroidRule) {
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 3, 3, mesh::StructuredPattern::kDiagonal);
  const kernels::GaussianKernel kernel(2.0);
  EXPECT_THROW(core::assemble_p1_kernel_matrix(
                   mesh, kernel, core::QuadratureRule::kCentroid1),
               Error);
}

TEST(P1Kernel, TotalVarianceMatchesDomainArea) {
  // For a normalized kernel, sum over all eigenvalues of the P1 KLE also
  // approximates area(D): check via the trace identity
  // trace(M^{-1} K) = sum lambda, using the solver's full spectrum.
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 6, 6, mesh::StructuredPattern::kDiagonal);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  core::P1KleOptions options;
  options.num_eigenpairs = mesh.num_vertices();
  const core::P1KleResult kle = core::solve_p1_kle(mesh, kernel, options);
  double sum = 0.0;
  for (std::size_t j = 0; j < kle.num_eigenpairs(); ++j)
    sum += kle.eigenvalue(j);
  EXPECT_NEAR(sum, 4.0, 0.15);  // quadrature error only
}

TEST(P1Kle, MatchesAnalyticSeparableKernel) {
  const double c = 1.0;
  const kernels::SeparableL1Kernel kernel(c);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 10, 10, mesh::StructuredPattern::kCross);
  core::P1KleOptions options;
  options.num_eigenpairs = 6;
  const core::P1KleResult kle = core::solve_p1_kle(mesh, kernel, options);
  const auto analytic = core::analytic_separable_kle_2d(c, 1.0, 6);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(kle.eigenvalue(j), analytic[j].lambda,
                0.02 * analytic[0].lambda)
        << "pair " << j;
}

TEST(P1Kle, MoreAccurateThanP0AtEqualMesh) {
  // The headline of the extension: on the same mesh, the P1 eigenvalues
  // are closer to the analytic values than the P0 ones.
  const double c = 1.0;
  const kernels::SeparableL1Kernel kernel(c);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 8, 8, mesh::StructuredPattern::kCross);
  const auto analytic = core::analytic_separable_kle_2d(c, 1.0, 5);

  core::KleOptions p0_options;
  p0_options.num_eigenpairs = 5;
  p0_options.backend = core::KleBackend::kDense;
  const core::KleResult p0 = core::solve_kle(mesh, kernel, p0_options);

  core::P1KleOptions p1_options;
  p1_options.num_eigenpairs = 5;
  const core::P1KleResult p1 = core::solve_p1_kle(mesh, kernel, p1_options);

  double p0_error = 0.0;
  double p1_error = 0.0;
  for (std::size_t j = 0; j < 5; ++j) {
    p0_error = std::max(p0_error,
                        std::abs(p0.eigenvalue(j) - analytic[j].lambda));
    p1_error = std::max(p1_error,
                        std::abs(p1.eigenvalue(j) - analytic[j].lambda));
  }
  EXPECT_LT(p1_error, p0_error);
}

TEST(P1Kle, EigenfunctionIsContinuousAcrossEdges) {
  const kernels::GaussianKernel kernel(2.33);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 6, 6, mesh::StructuredPattern::kDiagonal);
  core::P1KleOptions options;
  options.num_eigenpairs = 3;
  const core::P1KleResult kle = core::solve_p1_kle(mesh, kernel, options);
  // Sample along a line crossing many elements; adjacent samples must vary
  // smoothly (no O(1) jumps as with the P0 basis).
  double previous = kle.eigenfunction_value(0, {-0.9, 0.05});
  for (double x = -0.9 + 0.01; x <= 0.9; x += 0.01) {
    const double value = kle.eigenfunction_value(0, {x, 0.05});
    EXPECT_LT(std::abs(value - previous), 0.05) << "at x=" << x;
    previous = value;
  }
}

TEST(P1Kle, KernelReconstructionBeatsP0Pointwise) {
  // Continuity pays off where the P0 basis has its staircase error: at
  // arbitrary (non-centroid) evaluation points.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::structured_mesh(
      BoundingBox::unit_die(), 8, 8, mesh::StructuredPattern::kCross);

  core::KleOptions p0_options;
  p0_options.num_eigenpairs = 25;
  p0_options.backend = core::KleBackend::kDense;
  const core::KleResult p0 = core::solve_kle(mesh, kernel, p0_options);
  core::P1KleOptions p1_options;
  p1_options.num_eigenpairs = 25;
  const core::P1KleResult p1 = core::solve_p1_kle(mesh, kernel, p1_options);

  const geometry::Point2 origin{0.013, -0.021};  // deliberately off-centroid
  double p0_worst = 0.0;
  double p1_worst = 0.0;
  Rng rng(11);
  for (int probe = 0; probe < 300; ++probe) {
    const geometry::Point2 p{rng.uniform(-0.95, 0.95),
                             rng.uniform(-0.95, 0.95)};
    const double truth = kernel(p, origin);
    p0_worst = std::max(p0_worst,
                        std::abs(p0.reconstruct_kernel(p, origin, 25) - truth));
    p1_worst = std::max(p1_worst,
                        std::abs(p1.reconstruct_kernel(p, origin, 25) - truth));
  }
  EXPECT_LT(p1_worst, p0_worst);
  EXPECT_LT(p1_worst, 0.05);
}

}  // namespace
}  // namespace sckl
