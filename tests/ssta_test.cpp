// Tests for src/ssta: the Monte Carlo harness bookkeeping and a small
// end-to-end experiment checking the paper's headline claims in miniature
// (KLE statistics track the Cholesky reference).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "linalg/gemm.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "robust/fault_injection.h"
#include "ssta/experiment.h"
#include "ssta/lease_ledger.h"
#include "ssta/mc_run.h"
#include "ssta/mc_ssta.h"
#include "store/file_lock.h"
#include "store/record_log.h"

namespace sckl::ssta {
namespace {

class McSstaTest : public ::testing::Test {
 protected:
  McSstaTest()
      : netlist_(circuit::parse_bench_string(circuit::c17_bench_text(),
                                             "c17")),
        placement_(placer::place(netlist_)),
        library_(timing::CellLibrary::default_90nm()),
        engine_(netlist_, placement_, library_),
        kernel_(kernels::paper_gaussian_c()),
        locations_(placement_.physical_locations(netlist_)),
        sampler_(kernel_, locations_) {}

  circuit::Netlist netlist_;
  placer::Placement placement_;
  timing::CellLibrary library_;
  timing::StaEngine engine_;
  kernels::GaussianKernel kernel_;
  std::vector<geometry::Point2> locations_;
  field::CholeskyFieldSampler sampler_;
};

TEST_F(McSstaTest, CollectsRequestedSampleCount) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 500;
  options.block_size = 64;  // exercises a partial last block
  const McSstaResult r = run_monte_carlo_ssta(engine_, samplers, options);
  EXPECT_EQ(r.worst_delay.count(), 500u);
  ASSERT_EQ(r.endpoint.size(), engine_.num_endpoints());
  for (const auto& e : r.endpoint) EXPECT_EQ(e.count(), 500u);
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_GE(r.sampling_seconds, 0.0);
  EXPECT_GE(r.sta_seconds, 0.0);
}

TEST_F(McSstaTest, MeanNearNominalAndPositiveSigma) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 3000;
  const McSstaResult r = run_monte_carlo_ssta(engine_, samplers, options);
  const double nominal = engine_.run_nominal().worst_delay;
  // With few-percent sensitivities the mean sits near nominal and sigma is
  // a few percent of it.
  EXPECT_NEAR(r.worst_delay.mean(), nominal, 0.15 * nominal);
  EXPECT_GT(r.worst_delay.stddev(), 0.005 * nominal);
  EXPECT_LT(r.worst_delay.stddev(), 0.5 * nominal);
}

TEST_F(McSstaTest, DeterministicInSeed) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 100;
  const McSstaResult a = run_monte_carlo_ssta(engine_, samplers, options);
  const McSstaResult b = run_monte_carlo_ssta(engine_, samplers, options);
  EXPECT_DOUBLE_EQ(a.worst_delay.mean(), b.worst_delay.mean());
  EXPECT_DOUBLE_EQ(a.worst_delay.stddev(), b.worst_delay.stddev());
}

TEST_F(McSstaTest, ValidatesConfiguration) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions bad;
  bad.num_samples = 0;
  EXPECT_THROW(run_monte_carlo_ssta(engine_, samplers, bad), Error);
  const ParameterSamplers missing{&sampler_, nullptr, &sampler_, &sampler_};
  EXPECT_THROW(run_monte_carlo_ssta(engine_, missing, {}), Error);
}

TEST(Experiment, SmallCircuitKleTracksReference) {
  // End-to-end miniature of a Table 1 row on the smallest paper circuit
  // with few samples; statistical errors must land in single-digit percent.
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 400;
  config.r = 25;
  config.seed = 3;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.num_gates, 383u);
  EXPECT_GT(result.mesh_triangles, 1000u);
  EXPECT_GT(result.mc_sigma, 0.0);
  EXPECT_GT(result.kle_sigma, 0.0);
  // Mean errors are tiny (paper: <= 0.109%); allow sampling noise at N=400.
  EXPECT_LT(result.e_mu_percent, 2.0);
  // Sigma error: paper <= 5.7% at 100K samples; N=400 noise floor is
  // ~1/sqrt(2*400) ~ 3.5% per estimate, so stay generous.
  EXPECT_LT(result.e_sigma_percent, 25.0);
  EXPECT_GT(result.speedup, 0.0);
  EXPECT_FALSE(result.endpoint_sigma_error.empty());
  EXPECT_GE(result.mean_endpoint_sigma_error(), 0.0);
}

TEST(Experiment, PipelineReusesReference) {
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 120;
  ExperimentPipeline pipeline(config);
  const McSstaResult& first = pipeline.reference();
  const McSstaResult& second = pipeline.reference();
  EXPECT_EQ(&first, &second);  // cached
  EXPECT_EQ(first.worst_delay.count(), 120u);
  EXPECT_GT(pipeline.num_gates(), 0u);

  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 400);
  KleRunRequest request;
  request.r = 10;
  request.num_eigenpairs = 20;
  request.mesh = &mesh;
  const KleRunOutcome outcome = pipeline.run_kle(request);
  EXPECT_EQ(outcome.ssta.worst_delay.count(), 120u);
  EXPECT_GE(outcome.setup_seconds, 0.0);
  EXPECT_FALSE(outcome.from_store);
  EXPECT_EQ(outcome.mesh_triangles, mesh.num_triangles());
}

TEST(Experiment, RunKleRejectsAmbiguousProvenance) {
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 8;
  ExperimentPipeline pipeline(config);
  KleRunRequest neither;  // no mesh, no store
  EXPECT_THROW(pipeline.run_kle(neither), Error);
}

// --- determinism of the parallel block pipeline ----------------------------

class ParallelDeterminismTest : public McSstaTest {
 protected:
  McSstaResult run_with(std::size_t threads, std::size_t block_size) {
    const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                     &sampler_};
    McSstaOptions options;
    options.num_samples = 300;
    options.block_size = block_size;
    options.seed = 42;
    options.keep_samples = true;
    options.num_threads = threads;
    return run_monte_carlo_ssta(engine_, samplers, options);
  }
};

TEST_F(ParallelDeterminismTest, ThreadCountDoesNotChangeAnyBit) {
  const McSstaResult serial = run_with(1, 32);
  EXPECT_EQ(serial.threads_used, 1u);
  for (const std::size_t threads : {2u, 8u}) {
    const McSstaResult parallel = run_with(threads, 32);
    EXPECT_GT(parallel.threads_used, 1u);
    // Bit-equality, not tolerance: every retained sample and the merged
    // moments must be identical to the serial run.
    ASSERT_EQ(parallel.worst_delay_samples.size(),
              serial.worst_delay_samples.size());
    for (std::size_t i = 0; i < serial.worst_delay_samples.size(); ++i)
      ASSERT_EQ(parallel.worst_delay_samples[i],
                serial.worst_delay_samples[i])
          << "sample " << i << " at " << threads << " threads";
    EXPECT_EQ(parallel.worst_delay.mean(), serial.worst_delay.mean());
    EXPECT_EQ(parallel.worst_delay.stddev(), serial.worst_delay.stddev());
    ASSERT_EQ(parallel.endpoint.size(), serial.endpoint.size());
    for (std::size_t e = 0; e < serial.endpoint.size(); ++e) {
      EXPECT_EQ(parallel.endpoint[e].mean(), serial.endpoint[e].mean());
      EXPECT_EQ(parallel.endpoint[e].stddev(), serial.endpoint[e].stddev());
    }
  }
}

TEST_F(ParallelDeterminismTest, RetainedSamplesAreBlockSizeInvariant) {
  // Index-addressed draws: sample i never depends on how the run was cut
  // into blocks. (Merged moments are accumulated per block, so they are
  // guaranteed invariant across thread counts, not across block sizes.)
  const McSstaResult small_blocks = run_with(1, 32);
  const McSstaResult large_blocks = run_with(1, 256);
  ASSERT_EQ(small_blocks.worst_delay_samples.size(),
            large_blocks.worst_delay_samples.size());
  for (std::size_t i = 0; i < small_blocks.worst_delay_samples.size(); ++i)
    ASSERT_EQ(small_blocks.worst_delay_samples[i],
              large_blocks.worst_delay_samples[i])
        << "sample " << i;
}

TEST_F(ParallelDeterminismTest, DispatchTargetDoesNotChangeAnyBit) {
  // End-to-end determinism across SIMD kernel sets: the whole MC pipeline
  // (batched latents -> GEMM reconstruct -> STA) forced down to the scalar
  // kernels must retain sample bits identical to every SIMD target, and
  // that invariance must hold under threading at the same time.
  linalg::set_simd_target(linalg::SimdTarget::kScalar);
  const McSstaResult scalar = run_with(1, 32);
  linalg::reset_simd_target();
  for (const linalg::SimdTarget target :
       {linalg::SimdTarget::kAvx2, linalg::SimdTarget::kAvx512}) {
    if (!linalg::simd_target_supported(target)) continue;
    linalg::set_simd_target(target);
    const McSstaResult serial = run_with(1, 32);
    const McSstaResult threaded = run_with(8, 32);
    linalg::reset_simd_target();
    ASSERT_EQ(serial.worst_delay_samples.size(),
              scalar.worst_delay_samples.size());
    for (std::size_t i = 0; i < scalar.worst_delay_samples.size(); ++i) {
      ASSERT_EQ(serial.worst_delay_samples[i],
                scalar.worst_delay_samples[i])
          << linalg::simd_target_name(target) << " sample " << i;
      ASSERT_EQ(threaded.worst_delay_samples[i],
                scalar.worst_delay_samples[i])
          << linalg::simd_target_name(target) << " threaded sample " << i;
    }
    EXPECT_EQ(serial.worst_delay.mean(), scalar.worst_delay.mean());
    EXPECT_EQ(serial.worst_delay.stddev(), scalar.worst_delay.stddev());
  }
}

TEST_F(ParallelDeterminismTest, ThreadCapIsNumBlocks) {
  // 300 samples at block_size 256 = 2 blocks; asking for 8 threads must
  // resolve to at most 2 workers.
  const McSstaResult r = run_with(8, 256);
  EXPECT_LE(r.threads_used, 2u);
  EXPECT_EQ(r.worst_delay.count(), 300u);
}

// --- checkpointed (crash-safe, resumable) runner ---------------------------

class CheckpointedMcTest : public McSstaTest {
 protected:
  ParameterSamplers samplers() {
    return {&sampler_, &sampler_, &sampler_, &sampler_};
  }

  /// 200 samples in 13 blocks of 16, 3 blocks per lease -> 5 leases.
  static McSstaOptions mc_options(std::size_t threads = 1) {
    McSstaOptions options;
    options.num_samples = 200;
    options.block_size = 16;
    options.seed = 7;
    options.sketch_capacity = 64;
    options.num_threads = threads;
    return options;
  }

  static std::filesystem::path scratch_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("sckl_mc_" + name);
    std::filesystem::remove_all(dir);
    return dir;
  }

  static McRunOptions run_options(const std::filesystem::path& dir,
                                  bool resume = false) {
    McRunOptions run;
    run.run_id = "test-run";
    run.ledger_dir = dir;
    run.lease_blocks = 3;
    run.resume = resume;
    run.workload_key = 0xc17c17;
    return run;
  }

  /// The resume invariant: bitwise identity of every statistic.
  static void expect_state_equal(const McSstaResult& a, const McSstaResult& b) {
    EXPECT_TRUE(a.worst_delay.state_equals(b.worst_delay));
    EXPECT_TRUE(a.worst_delay_sketch.state_equals(b.worst_delay_sketch));
    ASSERT_EQ(a.endpoint.size(), b.endpoint.size());
    for (std::size_t e = 0; e < a.endpoint.size(); ++e)
      EXPECT_TRUE(a.endpoint[e].state_equals(b.endpoint[e])) << "endpoint " << e;
  }
};

TEST_F(CheckpointedMcTest, MatchesUninterruptedRunAcrossThreadCounts) {
  const std::filesystem::path ref_dir = scratch_dir("threads_ref");
  McRunStats ref_stats;
  const McSstaResult reference = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(ref_dir), &ref_stats);
  EXPECT_EQ(reference.worst_delay.count(), 200u);
  EXPECT_EQ(ref_stats.leases_total, 5u);
  EXPECT_EQ(ref_stats.leases_claimed, 5u);
  EXPECT_EQ(ref_stats.leases_resumed, 0u);
  // Header record + one record per lease.
  EXPECT_EQ(ref_stats.ledger_appends, 6u);
  EXPECT_EQ(reference.worst_delay_sketch.count(), 200u);

  // Lease claiming is dynamic, but the fold order is fixed: any thread
  // count produces the identical bits.
  for (const std::size_t threads : {2u, 8u}) {
    const std::filesystem::path dir =
        scratch_dir("threads_" + std::to_string(threads));
    const McSstaResult parallel = run_checkpointed_monte_carlo_ssta(
        engine_, samplers(), mc_options(threads), run_options(dir));
    expect_state_equal(parallel, reference);
  }

  // Sanity against the plain runner: the lease-level fold nesting differs,
  // so identity is statistical (tight), not bitwise.
  const McSstaResult plain =
      run_monte_carlo_ssta(engine_, samplers(), mc_options(1));
  EXPECT_NEAR(plain.worst_delay.mean(), reference.worst_delay.mean(),
              1e-9 * plain.worst_delay.mean());
  EXPECT_NEAR(plain.worst_delay.stddev(), reference.worst_delay.stddev(),
              1e-6 * plain.worst_delay.stddev());
}

TEST_F(CheckpointedMcTest, CancelledRunResumesToIdenticalBits) {
  const std::filesystem::path ref_dir = scratch_dir("cancel_ref");
  const McSstaResult reference = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(ref_dir));

  const std::filesystem::path dir = scratch_dir("cancel");
  McSstaOptions cancelling = mc_options(1);
  std::atomic<int> polls{0};
  // Poll 1 (before the first claim) passes; poll 2 cancels: exactly one
  // lease completes and is durable.
  cancelling.cancelled = [&polls] { return ++polls >= 2; };
  try {
    run_checkpointed_monte_carlo_ssta(engine_, samplers(), cancelling,
                                      run_options(dir));
    FAIL() << "cancelled run did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }

  McRunStats resumed_stats;
  const McSstaResult resumed = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(dir, /*resume=*/true),
      &resumed_stats);
  EXPECT_EQ(resumed_stats.leases_resumed, 1u);
  EXPECT_EQ(resumed_stats.leases_claimed, 4u);
  expect_state_equal(resumed, reference);
}

TEST_F(CheckpointedMcTest, ResumingACompleteRunRecomputesNothing) {
  const std::filesystem::path dir = scratch_dir("complete");
  const McSstaResult first = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(dir));
  McRunStats stats;
  const McSstaResult again = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(dir, /*resume=*/true),
      &stats);
  EXPECT_EQ(stats.leases_resumed, 5u);
  EXPECT_EQ(stats.leases_claimed, 0u);
  EXPECT_EQ(stats.ledger_appends, 0u);
  expect_state_equal(again, first);
}

TEST_F(CheckpointedMcTest, ExpiredLeaseIsReclaimedAndRecomputedIdentically) {
  const std::filesystem::path ref_dir = scratch_dir("expire_ref");
  const McSstaResult reference = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(ref_dir));

  // The fault site makes the first publish find its claim expired; the
  // worker loop reclaims and recomputes the lease deterministically.
  const std::filesystem::path dir = scratch_dir("expire");
  robust::ScopedFaultPlan plan("mc_lease_expire:1");
  McRunStats stats;
  const McSstaResult result = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(dir), &stats);
  EXPECT_EQ(stats.leases_expired, 1u);
  EXPECT_EQ(stats.leases_recomputed, 1u);
  EXPECT_EQ(stats.leases_claimed, 6u);  // 5 leases + 1 reclaim
  expect_state_equal(result, reference);
}

TEST_F(CheckpointedMcTest, RejectsMismatchedWorkloadOrOptions) {
  const std::filesystem::path dir = scratch_dir("mismatch");
  run_checkpointed_monte_carlo_ssta(engine_, samplers(), mc_options(1),
                                    run_options(dir));

  McRunOptions other_workload = run_options(dir, /*resume=*/true);
  other_workload.workload_key = 0xbad;
  try {
    run_checkpointed_monte_carlo_ssta(engine_, samplers(), mc_options(1),
                                      other_workload);
    FAIL() << "foreign workload accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
  }

  McSstaOptions other_samples = mc_options(1);
  other_samples.num_samples = 300;
  EXPECT_THROW(run_checkpointed_monte_carlo_ssta(engine_, samplers(),
                                                 other_samples,
                                                 run_options(dir, true)),
               Error);

  McSstaOptions other_sketch = mc_options(1);
  other_sketch.sketch_capacity = 128;
  EXPECT_THROW(run_checkpointed_monte_carlo_ssta(engine_, samplers(),
                                                 other_sketch,
                                                 run_options(dir, true)),
               Error);
}

TEST_F(CheckpointedMcTest, FreshRunRefusesALedgerWithCompletedLeases) {
  const std::filesystem::path dir = scratch_dir("fresh_guard");
  run_checkpointed_monte_carlo_ssta(engine_, samplers(), mc_options(1),
                                    run_options(dir));
  try {
    run_checkpointed_monte_carlo_ssta(engine_, samplers(), mc_options(1),
                                      run_options(dir, /*resume=*/false));
    FAIL() << "fresh run silently continued an existing ledger";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
    EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos);
  }
}

TEST_F(CheckpointedMcTest, ValidatesRunIdAndRejectsKeepSamples) {
  const std::filesystem::path dir = scratch_dir("validate");
  for (const std::string bad : {"", "..", "a/b", "x y", "../escape"}) {
    McRunOptions run = run_options(dir);
    run.run_id = bad;
    EXPECT_THROW(run_checkpointed_monte_carlo_ssta(engine_, samplers(),
                                                   mc_options(1), run),
                 Error)
        << "run_id '" << bad << "' accepted";
  }
  McSstaOptions keep = mc_options(1);
  keep.keep_samples = true;
  EXPECT_THROW(run_checkpointed_monte_carlo_ssta(engine_, samplers(), keep,
                                                 run_options(dir)),
               Error);
}

TEST_F(CheckpointedMcTest, ConcurrentRunnerIsRejectedWhileLockIsHeld) {
  const std::filesystem::path dir = scratch_dir("locked");
  std::filesystem::create_directories(dir);
  const store::FileLock held = store::FileLock::acquire(
      dir / "test-run.lock", store::FileLock::Mode::kExclusive);
  try {
    run_checkpointed_monte_carlo_ssta(engine_, samplers(), mc_options(1),
                                      run_options(dir));
    FAIL() << "second writer admitted while the lock was held";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
}

TEST_F(CheckpointedMcTest, SketchReportsTailQuantiles) {
  const std::filesystem::path dir = scratch_dir("tails");
  const McSstaResult r = run_checkpointed_monte_carlo_ssta(
      engine_, samplers(), mc_options(1), run_options(dir));
  const QuantileSketch& sketch = r.worst_delay_sketch;
  EXPECT_EQ(sketch.count(), 200u);
  EXPECT_DOUBLE_EQ(sketch.min(), r.worst_delay.min());
  EXPECT_DOUBLE_EQ(sketch.max(), r.worst_delay.max());
  const double p50 = sketch.quantile(0.5);
  const double p99 = sketch.quantile(0.99);
  const double p999 = sketch.quantile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, sketch.max());
  EXPECT_GE(p99, r.worst_delay.mean());  // the tail sits above the mean
}

// --- the remote half of the lease state machine ----------------------------

class LeaseCoordinatorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kEndpoints = 2;

  /// 3 leases of 2 blocks over a fresh ledger file.
  LeaseCoordinator make_coordinator(const std::string& name,
                                    double ttl_seconds) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("sckl_lease_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<Lease> leases(3);
    for (std::size_t l = 0; l < 3; ++l) {
      leases[l].first_block = 2 * l;
      leases[l].num_blocks = 2;
    }
    return LeaseCoordinator(std::move(leases),
                            store::RecordLog::open(dir / "ledger.log"),
                            ttl_seconds, kEndpoints, stats_);
  }

  static detail::BlockPartial make_partial(std::size_t endpoints = kEndpoints) {
    detail::BlockPartial p;
    p.worst_delay.add(1.0);
    p.worst_delay_sketch.add(1.0);
    p.endpoint.resize(endpoints);
    for (RunningStats& e : p.endpoint) e.add(0.5);
    return p;
  }

  McRunStats stats_;
};

TEST_F(LeaseCoordinatorTest, RemoteClaimHeartbeatPublishRoundTrip) {
  LeaseCoordinator coord = make_coordinator("roundtrip", /*ttl=*/30.0);
  EXPECT_THROW(coord.claim_remote(/*worker=*/0, 1), Error);

  const std::vector<ClaimedLease> claimed = coord.claim_remote(7, 2);
  ASSERT_EQ(claimed.size(), 2u);
  EXPECT_EQ(claimed[0].index, 0u);
  EXPECT_EQ(claimed[0].first_block, 0u);
  EXPECT_EQ(claimed[0].num_blocks, 2u);
  EXPECT_EQ(claimed[1].index, 1u);
  EXPECT_EQ(stats_.leases_remote_claimed, 2u);
  EXPECT_EQ(coord.progress().claimed, 2u);

  // Heartbeats only extend the claimer's own leases.
  EXPECT_EQ(coord.heartbeat(7), 2u);
  EXPECT_EQ(coord.heartbeat(99), 0u);

  // Wire-supplied geometry is validated against the lease table before the
  // partial can touch the ledger.
  const detail::BlockPartial partial = make_partial();
  EXPECT_THROW(coord.publish_remote(7, /*index=*/5, 0, 2, partial), Error);
  EXPECT_THROW(coord.publish_remote(7, /*index=*/0, 1, 2, partial), Error);
  EXPECT_THROW(
      coord.publish_remote(7, 0, 0, 2, make_partial(kEndpoints + 1)), Error);

  EXPECT_TRUE(coord.publish_remote(7, 0, 0, 2, partial));
  EXPECT_EQ(stats_.leases_remote_published, 1u);
  // A duplicate publish of a complete lease carries identical bits by
  // construction: silently deduped, not an error, not a second commit.
  EXPECT_TRUE(coord.publish_remote(42, 0, 0, 2, partial));
  EXPECT_EQ(stats_.leases_remote_published, 1u);
  EXPECT_EQ(stats_.ledger_appends, 1u);
  // Publishing a lease nobody holds is refused: claim again.
  EXPECT_FALSE(coord.publish_remote(7, 2, 4, 2, partial));
  EXPECT_EQ(coord.progress().complete, 1u);
  EXPECT_FALSE(coord.all_complete());
}

TEST_F(LeaseCoordinatorTest, ExpiredRemoteClaimIsReclaimedAndRecommitted) {
  LeaseCoordinator coord = make_coordinator("expiry", /*ttl=*/0.05);
  ASSERT_EQ(coord.claim_remote(7, 1).size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // The claim timed out without a heartbeat: the late publish is refused
  // and the lease goes back to Available.
  EXPECT_FALSE(coord.publish_remote(7, 0, 0, 2, make_partial()));
  EXPECT_GE(stats_.leases_expired, 1u);
  EXPECT_EQ(coord.progress().claimed, 0u);
  // An expired heartbeat does not revive the claim either.
  EXPECT_EQ(coord.heartbeat(7), 0u);

  // A re-claimer commits the identical bits; the recompute is counted.
  const std::vector<ClaimedLease> again = coord.claim_remote(8, 1);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].index, 0u);
  EXPECT_TRUE(coord.publish_remote(8, 0, 0, 2, make_partial()));
  EXPECT_EQ(stats_.leases_recomputed, 1u);
  EXPECT_EQ(coord.progress().complete, 1u);
}

TEST_F(LeaseCoordinatorTest, RemoteActivityWakesTheCoordinatorWait) {
  LeaseCoordinator coord = make_coordinator("activity", /*ttl=*/30.0);
  std::uint64_t last_seen = coord.activity_count();
  // Silence: the wait times out, the cue for the local fallback to compute.
  EXPECT_FALSE(coord.wait_for_remote_activity(last_seen, 0.01));
  // A remote claim bumps the activity counter and wakes the waiter.
  std::thread claimer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    coord.claim_remote(7, 1);
  });
  EXPECT_TRUE(coord.wait_for_remote_activity(last_seen, 5.0));
  claimer.join();
  EXPECT_EQ(last_seen, coord.activity_count());
}

}  // namespace
}  // namespace sckl::ssta
