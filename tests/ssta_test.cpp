// Tests for src/ssta: the Monte Carlo harness bookkeeping and a small
// end-to-end experiment checking the paper's headline claims in miniature
// (KLE statistics track the Cholesky reference).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bench_parser.h"
#include "circuit/synthetic.h"
#include "common/error.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/experiment.h"
#include "ssta/mc_ssta.h"

namespace sckl::ssta {
namespace {

class McSstaTest : public ::testing::Test {
 protected:
  McSstaTest()
      : netlist_(circuit::parse_bench_string(circuit::c17_bench_text(),
                                             "c17")),
        placement_(placer::place(netlist_)),
        library_(timing::CellLibrary::default_90nm()),
        engine_(netlist_, placement_, library_),
        kernel_(kernels::paper_gaussian_c()),
        locations_(placement_.physical_locations(netlist_)),
        sampler_(kernel_, locations_) {}

  circuit::Netlist netlist_;
  placer::Placement placement_;
  timing::CellLibrary library_;
  timing::StaEngine engine_;
  kernels::GaussianKernel kernel_;
  std::vector<geometry::Point2> locations_;
  field::CholeskyFieldSampler sampler_;
};

TEST_F(McSstaTest, CollectsRequestedSampleCount) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 500;
  options.block_size = 64;  // exercises a partial last block
  const McSstaResult r = run_monte_carlo_ssta(engine_, samplers, options);
  EXPECT_EQ(r.worst_delay.count(), 500u);
  ASSERT_EQ(r.endpoint.size(), engine_.num_endpoints());
  for (const auto& e : r.endpoint) EXPECT_EQ(e.count(), 500u);
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_GE(r.sampling_seconds, 0.0);
  EXPECT_GE(r.sta_seconds, 0.0);
}

TEST_F(McSstaTest, MeanNearNominalAndPositiveSigma) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 3000;
  const McSstaResult r = run_monte_carlo_ssta(engine_, samplers, options);
  const double nominal = engine_.run_nominal().worst_delay;
  // With few-percent sensitivities the mean sits near nominal and sigma is
  // a few percent of it.
  EXPECT_NEAR(r.worst_delay.mean(), nominal, 0.15 * nominal);
  EXPECT_GT(r.worst_delay.stddev(), 0.005 * nominal);
  EXPECT_LT(r.worst_delay.stddev(), 0.5 * nominal);
}

TEST_F(McSstaTest, DeterministicInSeed) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions options;
  options.num_samples = 100;
  const McSstaResult a = run_monte_carlo_ssta(engine_, samplers, options);
  const McSstaResult b = run_monte_carlo_ssta(engine_, samplers, options);
  EXPECT_DOUBLE_EQ(a.worst_delay.mean(), b.worst_delay.mean());
  EXPECT_DOUBLE_EQ(a.worst_delay.stddev(), b.worst_delay.stddev());
}

TEST_F(McSstaTest, ValidatesConfiguration) {
  const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                   &sampler_};
  McSstaOptions bad;
  bad.num_samples = 0;
  EXPECT_THROW(run_monte_carlo_ssta(engine_, samplers, bad), Error);
  const ParameterSamplers missing{&sampler_, nullptr, &sampler_, &sampler_};
  EXPECT_THROW(run_monte_carlo_ssta(engine_, missing, {}), Error);
}

TEST(Experiment, SmallCircuitKleTracksReference) {
  // End-to-end miniature of a Table 1 row on the smallest paper circuit
  // with few samples; statistical errors must land in single-digit percent.
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 400;
  config.r = 25;
  config.seed = 3;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.num_gates, 383u);
  EXPECT_GT(result.mesh_triangles, 1000u);
  EXPECT_GT(result.mc_sigma, 0.0);
  EXPECT_GT(result.kle_sigma, 0.0);
  // Mean errors are tiny (paper: <= 0.109%); allow sampling noise at N=400.
  EXPECT_LT(result.e_mu_percent, 2.0);
  // Sigma error: paper <= 5.7% at 100K samples; N=400 noise floor is
  // ~1/sqrt(2*400) ~ 3.5% per estimate, so stay generous.
  EXPECT_LT(result.e_sigma_percent, 25.0);
  EXPECT_GT(result.speedup, 0.0);
  EXPECT_FALSE(result.endpoint_sigma_error.empty());
  EXPECT_GE(result.mean_endpoint_sigma_error(), 0.0);
}

TEST(Experiment, PipelineReusesReference) {
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 120;
  ExperimentPipeline pipeline(config);
  const McSstaResult& first = pipeline.reference();
  const McSstaResult& second = pipeline.reference();
  EXPECT_EQ(&first, &second);  // cached
  EXPECT_EQ(first.worst_delay.count(), 120u);
  EXPECT_GT(pipeline.num_gates(), 0u);

  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), 400);
  KleRunRequest request;
  request.r = 10;
  request.num_eigenpairs = 20;
  request.mesh = &mesh;
  const KleRunOutcome outcome = pipeline.run_kle(request);
  EXPECT_EQ(outcome.ssta.worst_delay.count(), 120u);
  EXPECT_GE(outcome.setup_seconds, 0.0);
  EXPECT_FALSE(outcome.from_store);
  EXPECT_EQ(outcome.mesh_triangles, mesh.num_triangles());
}

TEST(Experiment, RunKleRejectsAmbiguousProvenance) {
  ExperimentConfig config;
  config.circuit = "c880";
  config.num_samples = 8;
  ExperimentPipeline pipeline(config);
  KleRunRequest neither;  // no mesh, no store
  EXPECT_THROW(pipeline.run_kle(neither), Error);
}

// --- determinism of the parallel block pipeline ----------------------------

class ParallelDeterminismTest : public McSstaTest {
 protected:
  McSstaResult run_with(std::size_t threads, std::size_t block_size) {
    const ParameterSamplers samplers{&sampler_, &sampler_, &sampler_,
                                     &sampler_};
    McSstaOptions options;
    options.num_samples = 300;
    options.block_size = block_size;
    options.seed = 42;
    options.keep_samples = true;
    options.num_threads = threads;
    return run_monte_carlo_ssta(engine_, samplers, options);
  }
};

TEST_F(ParallelDeterminismTest, ThreadCountDoesNotChangeAnyBit) {
  const McSstaResult serial = run_with(1, 32);
  EXPECT_EQ(serial.threads_used, 1u);
  for (const std::size_t threads : {2u, 8u}) {
    const McSstaResult parallel = run_with(threads, 32);
    EXPECT_GT(parallel.threads_used, 1u);
    // Bit-equality, not tolerance: every retained sample and the merged
    // moments must be identical to the serial run.
    ASSERT_EQ(parallel.worst_delay_samples.size(),
              serial.worst_delay_samples.size());
    for (std::size_t i = 0; i < serial.worst_delay_samples.size(); ++i)
      ASSERT_EQ(parallel.worst_delay_samples[i],
                serial.worst_delay_samples[i])
          << "sample " << i << " at " << threads << " threads";
    EXPECT_EQ(parallel.worst_delay.mean(), serial.worst_delay.mean());
    EXPECT_EQ(parallel.worst_delay.stddev(), serial.worst_delay.stddev());
    ASSERT_EQ(parallel.endpoint.size(), serial.endpoint.size());
    for (std::size_t e = 0; e < serial.endpoint.size(); ++e) {
      EXPECT_EQ(parallel.endpoint[e].mean(), serial.endpoint[e].mean());
      EXPECT_EQ(parallel.endpoint[e].stddev(), serial.endpoint[e].stddev());
    }
  }
}

TEST_F(ParallelDeterminismTest, RetainedSamplesAreBlockSizeInvariant) {
  // Index-addressed draws: sample i never depends on how the run was cut
  // into blocks. (Merged moments are accumulated per block, so they are
  // guaranteed invariant across thread counts, not across block sizes.)
  const McSstaResult small_blocks = run_with(1, 32);
  const McSstaResult large_blocks = run_with(1, 256);
  ASSERT_EQ(small_blocks.worst_delay_samples.size(),
            large_blocks.worst_delay_samples.size());
  for (std::size_t i = 0; i < small_blocks.worst_delay_samples.size(); ++i)
    ASSERT_EQ(small_blocks.worst_delay_samples[i],
              large_blocks.worst_delay_samples[i])
        << "sample " << i;
}

TEST_F(ParallelDeterminismTest, ThreadCapIsNumBlocks) {
  // 300 samples at block_size 256 = 2 blocks; asking for 8 threads must
  // resolve to at most 2 workers.
  const McSstaResult r = run_with(8, 256);
  EXPECT_LE(r.threads_used, 2u);
  EXPECT_EQ(r.worst_delay.count(), 300u);
}

}  // namespace
}  // namespace sckl::ssta
