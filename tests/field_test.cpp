// Tests for src/field: both samplers must reproduce the kernel's covariance
// empirically (Algorithm 1 exactly, Algorithm 2 up to truncation error),
// the latent-dimension bookkeeping that drives the paper's speedup, and the
// index-addressed draw contract (sample i depends only on (key, i)).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/covariance_estimate.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "linalg/gemm.h"
#include "mesh/structured_mesher.h"

namespace sckl::field {
namespace {

using geometry::BoundingBox;
using geometry::Point2;

std::vector<Point2> test_locations() {
  return {{0.0, 0.0},  {0.1, 0.05},  {-0.5, 0.5}, {0.8, -0.7},
          {-0.9, -0.9}, {0.45, 0.45}, {0.5, -0.5}, {-0.2, 0.7}};
}

TEST(CholeskySampler, LatentDimensionIsGateCount) {
  const kernels::GaussianKernel kernel(2.33);
  const CholeskyFieldSampler sampler(kernel, test_locations());
  EXPECT_EQ(sampler.num_locations(), 8u);
  EXPECT_EQ(sampler.latent_dimension(), 8u);
}

TEST(CholeskySampler, EmpiricalCovarianceMatchesKernel) {
  const kernels::GaussianKernel kernel(2.33);
  const auto locations = test_locations();
  const CholeskyFieldSampler sampler(kernel, locations);
  const linalg::Matrix cov =
      empirical_covariance(sampler, 60000, StreamKey{21, 0});
  const CovarianceErrorSummary s =
      compare_covariance(cov, kernel, locations);
  // Monte Carlo noise at 60K samples: ~1/sqrt(N) ~ 0.004; allow 4x.
  EXPECT_LT(s.max_abs_error, 0.03);
  EXPECT_LT(s.max_diag_error, 0.03);
}

TEST(CholeskySampler, HandlesNearSingularGram) {
  // Two nearly coincident points make the Gram matrix numerically
  // semi-definite; the jitter path must absorb it.
  std::vector<Point2> locations = {{0.0, 0.0}, {1e-9, 0.0}, {0.5, 0.5}};
  const kernels::GaussianKernel kernel(2.0);
  const CholeskyFieldSampler sampler(kernel, locations);
  linalg::Matrix block;
  sampler.sample_block(SampleRange{0, 100}, StreamKey{22, 0}, block);
  // Coincident points get (essentially) identical samples.
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(block(i, 0), block(i, 1), 1e-3);
}

TEST(CholeskySampler, RejectsEmptyLocations) {
  const kernels::GaussianKernel kernel(2.0);
  EXPECT_THROW(CholeskyFieldSampler(kernel, {}), Error);
}

class KleSamplerTest : public ::testing::Test {
 protected:
  KleSamplerTest()
      : kernel_(kernels::paper_gaussian_c()),
        mesh_(mesh::structured_mesh(BoundingBox::unit_die(), 14, 14,
                                    mesh::StructuredPattern::kCross)) {}

  core::KleResult solve(std::size_t pairs) {
    core::KleOptions options;
    options.num_eigenpairs = pairs;
    return core::solve_kle(mesh_, kernel_, options);
  }

  kernels::GaussianKernel kernel_;
  mesh::TriMesh mesh_;
};

TEST_F(KleSamplerTest, LatentDimensionIsR) {
  const core::KleResult kle = solve(30);
  const KleFieldSampler sampler(kle, 25, test_locations());
  EXPECT_EQ(sampler.latent_dimension(), 25u);
  EXPECT_EQ(sampler.num_locations(), 8u);
}

TEST_F(KleSamplerTest, EmpiricalCovarianceMatchesKernelUpToTruncation) {
  const core::KleResult kle = solve(40);
  const auto locations = test_locations();
  const KleFieldSampler sampler(kle, 40, locations);
  const linalg::Matrix cov =
      empirical_covariance(sampler, 60000, StreamKey{23, 0});
  const CovarianceErrorSummary s =
      compare_covariance(cov, kernel_, locations);
  // Truncation (r=40 on a coarse mesh) + the piecewise-constant basis error
  // at off-centroid gate locations (O(h) ~ 0.1 here) + MC noise; the paper's
  // finer mesh pushes this to the few-percent level.
  EXPECT_LT(s.max_abs_error, 0.13);
}

TEST_F(KleSamplerTest, TruncationErrorDecreasesWithR) {
  const core::KleResult kle = solve(40);
  const auto locations = test_locations();
  const KleFieldSampler small(kle, 4, locations);
  const KleFieldSampler large(kle, 40, locations);
  const auto err_small = compare_covariance(
      empirical_covariance(small, 40000, StreamKey{24, 0}), kernel_,
      locations);
  const auto err_large = compare_covariance(
      empirical_covariance(large, 40000, StreamKey{24, 0}), kernel_,
      locations);
  EXPECT_GT(err_small.max_abs_error, err_large.max_abs_error);
}

TEST_F(KleSamplerTest, SampleBlockIsDeterministicInKey) {
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  linalg::Matrix a;
  linalg::Matrix b;
  sampler.sample_block(SampleRange{0, 16}, StreamKey{25, 0}, a);
  sampler.sample_block(SampleRange{0, 16}, StreamKey{25, 0}, b);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST_F(KleSamplerTest, SampleIsIndexAddressedAcrossBlockBoundaries) {
  // The core stateless-draw contract: row i of the stream depends only on
  // (key, i), never on where the block containing it started.
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  linalg::Matrix whole;
  linalg::Matrix tail;
  sampler.sample_block(SampleRange{0, 16}, StreamKey{25, 3}, whole);
  sampler.sample_block(SampleRange{8, 8}, StreamKey{25, 3}, tail);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t c = 0; c < sampler.num_locations(); ++c)
      EXPECT_EQ(tail(i, c), whole(8 + i, c)) << "row " << i << " col " << c;
}

TEST_F(KleSamplerTest, DistinctKeysGiveDistinctStreams) {
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  linalg::Matrix a;
  linalg::Matrix b;
  linalg::Matrix c;
  sampler.sample_block(SampleRange{0, 4}, StreamKey{25, 0}, a);
  sampler.sample_block(SampleRange{0, 4}, StreamKey{25, 1}, b);
  sampler.sample_block(SampleRange{0, 4}, StreamKey{26, 0}, c);
  EXPECT_GT(a.max_abs_diff(b), 0.0);
  EXPECT_GT(a.max_abs_diff(c), 0.0);
}

TEST_F(KleSamplerTest, NearbyLocationsAreStronglyCorrelated) {
  const core::KleResult kle = solve(40);
  const std::vector<Point2> locations = {
      {0.0, 0.0}, {0.05, 0.0}, {0.9, 0.9}};  // two close, one far
  const KleFieldSampler sampler(kle, 40, locations);
  linalg::Matrix block;
  sampler.sample_block(SampleRange{0, 20000}, StreamKey{26, 0}, block);
  CovarianceAccumulator close_pair;
  CovarianceAccumulator far_pair;
  for (std::size_t i = 0; i < 20000; ++i) {
    close_pair.add(block(i, 0), block(i, 1));
    far_pair.add(block(i, 0), block(i, 2));
  }
  EXPECT_GT(close_pair.correlation(), 0.9);
  EXPECT_LT(std::abs(far_pair.correlation()), 0.2);
}

TEST_F(KleSamplerTest, StagedStagesComposeToSampleBlock) {
  // The staged API contract: sample_block is exactly latent_block followed
  // by reconstruct — bit-for-bit, so callers that manage their own latent
  // scratch (mc_ssta, serve) stay on the composed path's stream.
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  const SampleRange range{5, 16};
  const StreamKey key{27, 2};
  linalg::Matrix composed;
  sampler.sample_block(range, key, composed);

  linalg::Matrix xi;
  sampler.latent_block(range, key, xi);
  EXPECT_EQ(xi.rows(), 16u);
  EXPECT_EQ(xi.cols(), sampler.latent_dimension());
  linalg::Matrix staged;
  sampler.reconstruct(xi, staged);
  ASSERT_EQ(staged.rows(), composed.rows());
  ASSERT_EQ(staged.cols(), composed.cols());
  EXPECT_EQ(staged.max_abs_diff(composed), 0.0);

  // Latents are the raw counter-RNG draws: row i of xi is the normal row
  // at index range.first + i, independent of the sampler's operator.
  const CounterRng rng(key);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t c = 0; c < sampler.latent_dimension(); ++c)
      ASSERT_EQ(xi(i, c), rng.normal(range.first + i, c));
}

TEST_F(KleSamplerTest, ReconstructRejectsLatentDimensionMismatch) {
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  linalg::Matrix xi(4, 7);  // wrong: latent_dimension is 10
  xi.fill(0.0);
  linalg::Matrix out;
  EXPECT_THROW(sampler.reconstruct(xi, out), Error);
}

TEST_F(KleSamplerTest, SampleBitsInvariantAcrossDispatchTargets) {
  // The determinism contract of linalg/gemm: forcing the scalar kernels
  // (CI runs whole suites under SCKL_SIMD=scalar) must reproduce the SIMD
  // sample stream exactly.
  const core::KleResult kle = solve(20);
  const KleFieldSampler sampler(kle, 10, test_locations());
  const SampleRange range{0, 33};
  const StreamKey key{28, 0};
  linalg::Matrix reference;
  {
    linalg::set_simd_target(linalg::SimdTarget::kScalar);
    sampler.sample_block(range, key, reference);
    linalg::reset_simd_target();
  }
  for (const linalg::SimdTarget target :
       {linalg::SimdTarget::kScalar, linalg::SimdTarget::kAvx2,
        linalg::SimdTarget::kAvx512}) {
    if (!linalg::simd_target_supported(target)) continue;
    linalg::set_simd_target(target);
    linalg::Matrix block;
    sampler.sample_block(range, key, block);
    linalg::reset_simd_target();
    EXPECT_EQ(block.max_abs_diff(reference), 0.0)
        << linalg::simd_target_name(target);
  }
}

TEST(CholeskySampler, StagedStagesComposeToSampleBlock) {
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const CholeskyFieldSampler sampler(kernel, test_locations());
  const SampleRange range{3, 12};
  const StreamKey key{29, 1};
  linalg::Matrix composed;
  sampler.sample_block(range, key, composed);
  linalg::Matrix xi;
  sampler.latent_block(range, key, xi);
  linalg::Matrix staged;
  sampler.reconstruct(xi, staged);
  EXPECT_EQ(staged.max_abs_diff(composed), 0.0);
}

TEST(CovarianceEstimate, RejectsTooFewSamples) {
  const kernels::GaussianKernel kernel(2.0);
  const CholeskyFieldSampler sampler(kernel, test_locations());
  EXPECT_THROW(empirical_covariance(sampler, 1, StreamKey{27, 0}), Error);
}

TEST(CovarianceEstimate, CompareRejectsShapeMismatch) {
  const kernels::GaussianKernel kernel(2.0);
  const linalg::Matrix wrong(3, 3);
  EXPECT_THROW(compare_covariance(wrong, kernel, test_locations()), Error);
}

}  // namespace
}  // namespace sckl::field
