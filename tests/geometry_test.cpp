// Tests for src/geometry: predicates, triangle metrics, and the spatial
// grid point-location index.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "geometry/point2.h"
#include "geometry/spatial_grid.h"
#include "geometry/triangle.h"

namespace sckl::geometry {
namespace {

TEST(Point2, ArithmeticAndDistances) {
  const Point2 a{1.0, 2.0};
  const Point2 b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
  const Point2 c = a + b;
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  const Point2 d = 2.0 * a;
  EXPECT_DOUBLE_EQ(d.y, 4.0);
  EXPECT_TRUE((a - a) == (Point2{0.0, 0.0}));
}

TEST(BoundingBox, ContainsAndDimensions) {
  const BoundingBox box = BoundingBox::unit_die();
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.area(), 4.0);
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({-1.0, 1.0}));  // boundary inclusive
  EXPECT_FALSE(box.contains({1.01, 0.0}));
}

TEST(Orientation, SignConvention) {
  EXPECT_GT(orientation({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW positive
  EXPECT_LT(orientation({0, 0}, {0, 1}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(TriangleMetrics, AreaCentroidLongestSide) {
  const Triangle t{{Point2{0, 0}, Point2{4, 0}, Point2{0, 3}}};
  EXPECT_DOUBLE_EQ(triangle_area(t), 6.0);
  EXPECT_DOUBLE_EQ(longest_side(t), 5.0);
  const Point2 c = t.centroid();
  EXPECT_NEAR(c.x, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(TriangleMetrics, AnglesOfKnownTriangles) {
  const Triangle right{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  EXPECT_NEAR(min_angle_degrees(right), 45.0, 1e-9);
  const Triangle equilateral{
      {Point2{0, 0}, Point2{1, 0}, Point2{0.5, std::sqrt(3.0) / 2.0}}};
  EXPECT_NEAR(min_angle_degrees(equilateral), 60.0, 1e-9);
  const Triangle sliver{{Point2{0, 0}, Point2{10, 0}, Point2{5, 0.1}}};
  EXPECT_LT(min_angle_degrees(sliver), 2.0);
}

TEST(PointInTriangle, InsideOutsideBoundary) {
  const Triangle t{{Point2{0, 0}, Point2{2, 0}, Point2{0, 2}}};
  EXPECT_TRUE(point_in_triangle(t, {0.5, 0.5}));
  EXPECT_TRUE(point_in_triangle(t, {0.0, 0.0}));   // vertex
  EXPECT_TRUE(point_in_triangle(t, {1.0, 0.0}));   // edge
  EXPECT_FALSE(point_in_triangle(t, {1.5, 1.5}));
  EXPECT_FALSE(point_in_triangle(t, {-0.1, 0.5}));
  // Winding must not matter.
  const Triangle cw{{Point2{0, 0}, Point2{0, 2}, Point2{2, 0}}};
  EXPECT_TRUE(point_in_triangle(cw, {0.5, 0.5}));
}

TEST(Circumcircle, UnitCircleMembership) {
  // Triangle inscribed in the unit circle (CCW).
  const Point2 a{1, 0};
  const Point2 b{0, 1};
  const Point2 c{-1, 0};
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.0, -0.5}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.5}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.0}));  // on circle: strict
}

TEST(Circumcenter, EquidistantFromVertices) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Triangle t{{Point2{rng.uniform(-1, 1), rng.uniform(-1, 1)},
                Point2{rng.uniform(-1, 1), rng.uniform(-1, 1)},
                Point2{rng.uniform(-1, 1), rng.uniform(-1, 1)}}};
    if (triangle_area(t) < 1e-3) continue;
    const Point2 center = circumcenter(t);
    const double r0 = distance(center, t.p[0]);
    EXPECT_NEAR(distance(center, t.p[1]), r0, 1e-9);
    EXPECT_NEAR(distance(center, t.p[2]), r0, 1e-9);
  }
}

TEST(Circumcenter, ThrowsOnDegenerate) {
  const Triangle collinear{{Point2{0, 0}, Point2{1, 1}, Point2{2, 2}}};
  EXPECT_THROW(circumcenter(collinear), Error);
}

TEST(Barycentric, SumsToOneAndLocates) {
  const Triangle t{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  const auto w = barycentric(t, {0.25, 0.25});
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
  for (double v : w) EXPECT_GT(v, 0.0);
  const auto at_vertex = barycentric(t, {0.0, 0.0});
  EXPECT_NEAR(at_vertex[0], 1.0, 1e-12);
}

class SpatialGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 2x2 grid of unit squares, each split into 2 triangles => 8 triangles.
    for (int gy = 0; gy < 2; ++gy) {
      for (int gx = 0; gx < 2; ++gx) {
        const double x0 = gx;
        const double y0 = gy;
        triangles_.push_back(
            {{Point2{x0, y0}, Point2{x0 + 1, y0}, Point2{x0 + 1, y0 + 1}}});
        triangles_.push_back(
            {{Point2{x0, y0}, Point2{x0 + 1, y0 + 1}, Point2{x0, y0 + 1}}});
      }
    }
  }
  std::vector<Triangle> triangles_;
  BoundingBox bounds_{{0.0, 0.0}, {2.0, 2.0}};
};

TEST_F(SpatialGridTest, FindsContainingTriangle) {
  const SpatialGrid grid(triangles_, bounds_);
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const Point2 centroid = triangles_[t].centroid();
    const auto hit = grid.find_containing(centroid);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(point_in_triangle(triangles_[*hit], centroid));
  }
}

TEST_F(SpatialGridTest, MissesOutsidePoints) {
  const SpatialGrid grid(triangles_, bounds_);
  EXPECT_FALSE(grid.find_containing({1.0, 2.5}).has_value());
  // ... but the fallback still returns a nearest triangle.
  const std::size_t nearest = grid.find_containing_or_nearest({1.0, 2.5});
  EXPECT_LT(nearest, triangles_.size());
}

TEST_F(SpatialGridTest, RandomQueriesAgreeWithBruteForce) {
  const SpatialGrid grid(triangles_, bounds_, 5);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Point2 q{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
    const std::size_t found = grid.find_containing_or_nearest(q);
    EXPECT_TRUE(point_in_triangle(triangles_[found], q, 1e-9))
        << "query (" << q.x << ", " << q.y << ")";
  }
}

TEST_F(SpatialGridTest, RejectsEmptyInput) {
  EXPECT_THROW(SpatialGrid({}, bounds_), Error);
  EXPECT_THROW(SpatialGrid(triangles_, BoundingBox{{0, 0}, {0, 1}}), Error);
}

}  // namespace
}  // namespace sckl::geometry
