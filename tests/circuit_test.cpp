// Tests for src/circuit: netlist construction/validation, the ISCAS .bench
// parser and writer (round-trip), the synthetic circuit generator (exact
// paper gate counts), and levelization with sequential cuts.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/bench_parser.h"
#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "circuit/synthetic.h"
#include "common/error.h"

namespace sckl::circuit {
namespace {

TEST(Netlist, BuildAndQuery) {
  Netlist n("t");
  n.add_gate("a", CellFunction::kInput, {});
  n.add_gate("b", CellFunction::kInput, {});
  n.add_gate("g", CellFunction::kNand, {"a", "b"});
  n.add_gate("g_po", CellFunction::kOutput, {"g"});
  n.finalize();
  EXPECT_EQ(n.num_gates_total(), 4u);
  EXPECT_EQ(n.num_physical_gates(), 1u);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_TRUE(n.flip_flops().empty());
  const Gate& g = n.gate(n.index_of("g"));
  EXPECT_EQ(g.fanin.size(), 2u);
  EXPECT_EQ(g.fanout.size(), 1u);
  EXPECT_TRUE(n.contains("a"));
  EXPECT_FALSE(n.contains("zz"));
  EXPECT_THROW(n.index_of("zz"), Error);
}

TEST(Netlist, ForwardReferencesResolveAtFinalize) {
  Netlist n("t");
  n.add_gate("pi", CellFunction::kInput, {});
  n.add_gate("ff", CellFunction::kDff, {"late"});  // defined below
  n.add_gate("late", CellFunction::kInv, {"ff"});
  n.add_gate("late_po", CellFunction::kOutput, {"late"});
  EXPECT_NO_THROW(n.finalize());
  EXPECT_EQ(n.flip_flops().size(), 1u);
}

TEST(Netlist, ValidationErrors) {
  {
    Netlist n;
    n.add_gate("a", CellFunction::kInput, {});
    EXPECT_THROW(n.add_gate("a", CellFunction::kInput, {}), Error);  // dup
  }
  {
    Netlist n;
    n.add_gate("a", CellFunction::kInput, {});
    n.add_gate("g", CellFunction::kInv, {"missing"});
    n.add_gate("g_po", CellFunction::kOutput, {"g"});
    EXPECT_THROW(n.finalize(), Error);  // dangling reference
  }
  {
    Netlist n;
    n.add_gate("a", CellFunction::kInput, {});
    n.add_gate("g", CellFunction::kNand, {"a"});  // arity violation
    n.add_gate("g_po", CellFunction::kOutput, {"g"});
    EXPECT_THROW(n.finalize(), Error);
  }
  {
    Netlist n;
    n.add_gate("g", CellFunction::kBuf, {"g"});
    EXPECT_THROW(n.finalize(), Error);  // no PIs
  }
}

TEST(BenchParser, ParsesEmbeddedC17) {
  const Netlist c17 = parse_bench_string(c17_bench_text(), "c17");
  EXPECT_EQ(c17.primary_inputs().size(), 5u);
  EXPECT_EQ(c17.primary_outputs().size(), 2u);
  EXPECT_EQ(c17.num_physical_gates(), 6u);  // six NAND2s
  for (std::size_t g : c17.physical_gates()) {
    EXPECT_EQ(c17.gate(g).function, CellFunction::kNand);
    EXPECT_EQ(c17.gate(g).fanin.size(), 2u);
  }
}

TEST(BenchParser, RoundTripPreservesStructure) {
  const Netlist original = parse_bench_string(c17_bench_text(), "c17");
  const std::string text = write_bench(original);
  const Netlist reparsed = parse_bench_string(text, "c17rt");
  EXPECT_EQ(reparsed.num_gates_total(), original.num_gates_total());
  EXPECT_EQ(reparsed.num_physical_gates(), original.num_physical_gates());
  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
}

TEST(BenchParser, HandlesCommentsWhitespaceAndDff) {
  const std::string text = R"(
# a sequential fragment
INPUT( x )
OUTPUT(q)
q = DFF( g1 )   # state
g1 = NOT(x)
)";
  const Netlist n = parse_bench_string(text);
  EXPECT_EQ(n.flip_flops().size(), 1u);
  EXPECT_EQ(n.num_physical_gates(), 2u);
}

TEST(BenchParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_bench_string("FOO(x)\n"), Error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = BLORP(a)\nOUTPUT(g)\n"),
               Error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = NAND(a, )\nOUTPUT(g)\n"),
               Error);
  EXPECT_THROW(parse_bench_file("/nonexistent/path.bench"), Error);
}

TEST(Synthetic, ExactGateCount) {
  for (std::size_t target : {10u, 100u, 383u, 2307u}) {
    SyntheticSpec spec;
    spec.num_gates = target;
    spec.seed = 5;
    const Netlist n = synthetic_circuit(spec);
    EXPECT_EQ(n.num_physical_gates(), target) << "target " << target;
  }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_gates = 200;
  spec.seed = 11;
  const Netlist a = synthetic_circuit(spec);
  const Netlist b = synthetic_circuit(spec);
  EXPECT_EQ(write_bench(a), write_bench(b));
  spec.seed = 12;
  const Netlist c = synthetic_circuit(spec);
  EXPECT_NE(write_bench(a), write_bench(c));
}

TEST(Synthetic, SequentialFractionRespected) {
  SyntheticSpec spec;
  spec.num_gates = 1000;
  spec.dff_fraction = 0.15;
  const Netlist n = synthetic_circuit(spec);
  EXPECT_NEAR(static_cast<double>(n.flip_flops().size()), 150.0, 1.0);
  EXPECT_EQ(n.num_physical_gates(), 1000u);
}

TEST(Synthetic, GeneratedCircuitsAreLevelizable) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    SyntheticSpec spec;
    spec.num_gates = 500;
    spec.dff_fraction = 0.2;
    spec.seed = seed;
    const Netlist n = synthetic_circuit(spec);
    const Levelization lv = levelize(n);
    EXPECT_EQ(lv.topological_order.size(), n.num_gates_total());
    EXPECT_GT(lv.depth, 3u);  // non-trivial logic depth
  }
}

TEST(Synthetic, PaperTableMatchesPaperGateCounts) {
  const auto& table = paper_circuit_table();
  ASSERT_EQ(table.size(), 14u);
  EXPECT_STREQ(table.front().name, "c880");
  EXPECT_EQ(table.front().num_gates, 383u);
  EXPECT_STREQ(table.back().name, "s38417");
  EXPECT_EQ(table.back().num_gates, 22179u);
  // Spot-build one of each kind.
  const Netlist comb = make_paper_circuit("c880");
  EXPECT_EQ(comb.num_physical_gates(), 383u);
  EXPECT_TRUE(comb.flip_flops().empty());
  const Netlist seq = make_paper_circuit("s5378");
  EXPECT_EQ(seq.num_physical_gates(), 2779u);
  EXPECT_FALSE(seq.flip_flops().empty());
  EXPECT_THROW(make_paper_circuit("c9999"), Error);
}

TEST(Levelize, DepthOfC17IsKnown) {
  const Netlist c17 = parse_bench_string(c17_bench_text(), "c17");
  const Levelization lv = levelize(c17);
  // c17: NAND levels 1..3 (gate 22 = NAND(10@1, 16@2)) plus the PO
  // pseudo-gates at level 4.
  EXPECT_EQ(lv.depth, 4u);
  EXPECT_EQ(lv.endpoints.size(), 2u);  // two POs, no DFFs
  // Topological property: every gate appears after all its fanins (modulo
  // DFF cuts, absent here).
  std::vector<std::size_t> position(c17.num_gates_total());
  for (std::size_t i = 0; i < lv.topological_order.size(); ++i)
    position[lv.topological_order[i]] = i;
  for (std::size_t g = 0; g < c17.num_gates_total(); ++g)
    for (std::size_t f : c17.gate(g).fanin)
      EXPECT_LT(position[f], position[g]);
}

TEST(Levelize, DffCutsCombinationalLoop) {
  // A feedback loop through a DFF must levelize fine.
  Netlist n("loop");
  n.add_gate("pi", CellFunction::kInput, {});
  n.add_gate("ff", CellFunction::kDff, {"g"});
  n.add_gate("g", CellFunction::kNand, {"pi", "ff"});
  n.add_gate("g_po", CellFunction::kOutput, {"g"});
  n.finalize();
  const Levelization lv = levelize(n);
  EXPECT_EQ(lv.topological_order.size(), 4u);
  // Endpoints: the PO and the DFF D pin.
  EXPECT_EQ(lv.endpoints.size(), 2u);
}

TEST(Levelize, DetectsCombinationalCycle) {
  Netlist n("cyc");
  n.add_gate("pi", CellFunction::kInput, {});
  n.add_gate("a", CellFunction::kNand, {"pi", "b"});
  n.add_gate("b", CellFunction::kNand, {"pi", "a"});
  n.add_gate("a_po", CellFunction::kOutput, {"a"});
  n.finalize();
  EXPECT_THROW(levelize(n), Error);
}

}  // namespace
}  // namespace sckl::circuit
