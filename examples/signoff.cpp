// Statistical sign-off: the flow a designer would actually run with this
// library.
//
//   1. Build + place the design, run nominal STA; inspect the critical
//      path and the slack histogram at the target period.
//   2. Build the spatial-correlation model (kernel -> mesh -> KLE).
//   3. One canonical SSTA pass: worst-delay distribution, per-mode
//      variance attribution (PCE), and the period that meets 3-sigma yield.
//   4. Spot-check with a short Monte Carlo run.
//
// Usage: ./examples/signoff [--circuit=c880] [--period=0]
#include <cstdio>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "placer/recursive_placer.h"
#include "ssta/canonical.h"
#include "ssta/mc_ssta.h"
#include "ssta/pce.h"
#include "ssta/yield.h"
#include "timing/critical_path.h"
#include "timing/slack.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const std::string name = flags.get_string("circuit", "c880");

  // 1. Deterministic timing.
  const circuit::Netlist netlist = circuit::make_paper_circuit(name);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  timing::StaTrace trace;
  const timing::StaResult nominal = engine.run_nominal(&trace);
  std::printf("== %s: %zu gates, nominal worst delay %.1f ps ==\n\n",
              name.c_str(), netlist.num_physical_gates(),
              nominal.worst_delay);

  const timing::CriticalPath path =
      timing::extract_critical_path(engine, nominal, trace);
  std::printf("%s\n", timing::format_critical_path(netlist, path).c_str());

  const double period = flags.get_double("period", 0.0) > 0.0
                            ? flags.get_double("period", 0.0)
                            : 1.05 * nominal.worst_delay;
  const timing::SlackReport slacks =
      timing::compute_slacks(engine, trace, period);
  std::printf("slack at T = %.1f ps: worst %.1f ps, %zu negative-slack "
              "gates\n\n",
              period, slacks.worst_slack, slacks.num_negative);

  // 2. Spatial correlation model.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = 50;
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const auto locations = placement.physical_locations(netlist);
  const field::KleFieldSampler sampler(kle, 25, locations);
  const linalg::Matrix& g = sampler.field().location_operator();

  // 3. Canonical SSTA + attribution + yield.
  const ssta::CanonicalSstaResult canonical =
      ssta::run_canonical_ssta(engine, {&g, &g, &g, &g});
  std::printf("canonical SSTA (%.1f ms): worst delay %.1f ps +/- %.1f ps\n",
              canonical.seconds * 1e3, canonical.worst_delay.mean(),
              canonical.worst_delay.sigma());
  std::printf("statistical yield at T = %.1f ps: %.2f%%\n", period,
              100.0 * ssta::canonical_yield(canonical.worst_delay, period));
  std::printf("period for 3-sigma (99.865%%) yield: %.1f ps\n\n",
              ssta::canonical_period_for_yield(canonical.worst_delay,
                                               0.99865));

  ssta::PceOptions pce_options;
  pce_options.dims_per_parameter = 3;
  pce_options.num_samples = 600;
  const ssta::PceAnalysis pce =
      fit_worst_delay_pce(engine, {&g, &g, &g, &g}, pce_options);
  std::printf("variance attribution (PCE, %zu dims, fit %.1f ms):\n",
              pce.model.num_dimensions(), pce.fit_seconds * 1e3);
  for (std::size_t d = 0; d < pce.model.num_dimensions(); ++d) {
    const auto [param, mode] = pce.dimension_origin[d];
    const double fraction = pce.model.main_effect_fraction(d);
    if (fraction < 0.01) continue;
    std::printf("  %-3s KLE mode %zu: %5.1f%% of variance\n",
                timing::stat_parameter_name(param), mode + 1,
                100.0 * fraction);
  }
  std::printf("  interactions: %.1f%%  | unexplained: %.1f%%\n\n",
              100.0 * pce.model.interaction_fraction(),
              100.0 * pce.model.residual_variance() /
                  pce.model.variance());

  // 4. Monte Carlo spot check.
  ssta::McSstaOptions mc_options;
  mc_options.num_samples = 1000;
  mc_options.keep_samples = true;
  const ssta::McSstaResult mc = run_monte_carlo_ssta(
      engine, {&sampler, &sampler, &sampler, &sampler}, mc_options);
  std::printf("Monte Carlo spot check (%zu samples): mean %.1f ps, sigma "
              "%.1f ps, empirical yield at T %.2f%%\n",
              mc_options.num_samples, mc.worst_delay.mean(),
              mc.worst_delay.stddev(),
              100.0 * ssta::empirical_yield(mc.worst_delay_samples, period));
  return 0;
}
