// The sckl_serve daemon and its command-line client.
//
//   sckl_serve serve    --socket=PATH [--tcp] [--port=0] --root=DIR
//                       [--threads=0] [--max-queue=64] [--deadline-ms=30000]
//                       [--max-sample-rows=1048576] [--block-samples=2048]
//                       [--batch-limit=8]
//                       [--batch-window-ms=0] [--drain-ms=2000]
//                       [--lease-ttl=300000] [--heartbeat-ms=1000]
//       Runs the daemon until SIGTERM/SIGINT or a shutdown request, then
//       drains gracefully and exits 0.
//   sckl_serve ping     --socket=PATH | --port=P
//       Hello round-trip; prints the server identification.
//   sckl_serve stats    --socket=PATH | --port=P
//       Prints the server's sckl-serve-stats-v1 JSON document.
//   sckl_serve solve    --socket=PATH | --port=P [--kernel=gaussian]
//                       [--c=VALUE] [--pairs=50] [--area-fraction=0.001]
//                       [--mesh-seed=8]
//       Asks the server to solve (or re-serve) one KLE; prints provenance.
//   sckl_serve work     --socket=PATH | --port=P --run-id=NAME
//                       [--worker-id=N] [--max-leases=1] [--poll-ms=200]
//                       [--rpc-timeout-ms=5000] [--max-runtime=0]
//       Runs a distributed Monte Carlo worker against a coordinator that
//       started (or will start) a RunSsta with distributed=1 under the
//       same run id; prints a one-line report when the run completes.
//   sckl_serve shutdown --socket=PATH | --port=P
//       Asks the server to shut down gracefully.
//
// The serve subcommand participates in tracing like every other binary
// (--trace / --trace-json=PATH / SCKL_TRACE); the trace report flushes
// after the drain completes, so a SIGTERM still produces the exports.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/error.h"
#include "kernels/kernel_fit.h"
#include "obs/export.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/worker.h"

namespace {

using namespace sckl;

serve::Client connect(const CliFlags& flags) {
  if (flags.has("port"))
    return serve::Client::connect_tcp(
        static_cast<std::uint16_t>(flags.get_int("port", 0)));
  return serve::Client::connect_unix(
      flags.get_string("socket", "/tmp/sckl_serve.sock"));
}

store::KleArtifactConfig solve_config(const CliFlags& flags) {
  store::KleArtifactConfig config;
  config.kernel_id = flags.get_string("kernel", "gaussian");
  const double c = flags.get_double("c", 0.0);
  config.kernel_params = {c > 0.0 ? c : kernels::paper_gaussian_c()};
  config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  config.mesh.area_fraction = flags.get_double("area-fraction", 0.001);
  config.mesh.mesher_seed =
      static_cast<std::uint64_t>(flags.get_int("mesh-seed", 8));
  config.num_eigenpairs =
      static_cast<std::uint64_t>(flags.get_int("pairs", 50));
  return config;
}

int cmd_serve(const CliFlags& flags) {
  serve::ServerOptions options;
  options.unix_path = flags.get_string("socket", "/tmp/sckl_serve.sock");
  options.tcp = flags.get_bool("tcp", false) || flags.has("port");
  options.tcp_port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  options.store_root = flags.get_string("root", ".sckl-store");
  options.num_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  options.max_queue =
      static_cast<std::size_t>(flags.get_int("max-queue", 64));
  options.default_deadline_ms = static_cast<std::uint32_t>(flags.get_int(
      "deadline-ms", static_cast<long>(options.default_deadline_ms)));
  options.max_sample_rows = static_cast<std::size_t>(flags.get_int(
      "max-sample-rows", static_cast<long>(options.max_sample_rows)));
  if (flags.has("block-samples")) {
    // Shared --block-samples spelling (common/cli ExperimentFlagSet): the
    // per-chunk row count of streamed sample replies. An explicit value is
    // validated against the server's cap; the Server ctor silently clamps
    // only the built-in default.
    options.sample_chunk_rows = static_cast<std::size_t>(
        flags.get_int("block-samples",
                      static_cast<long>(options.sample_chunk_rows)));
    require(options.sample_chunk_rows >= 1,
            "serve: --block-samples must be at least 1");
    require(options.sample_chunk_rows <= options.max_sample_rows,
            "serve: --block-samples exceeds --max-sample-rows");
  }
  options.batch_limit =
      static_cast<std::size_t>(flags.get_int("batch-limit", 8));
  options.batch_window_ms =
      static_cast<int>(flags.get_int("batch-window-ms", 0));
  options.drain_ms = static_cast<int>(flags.get_int("drain-ms", 2000));
  options.lease_ttl_ms = static_cast<std::uint64_t>(flags.get_int(
      "lease-ttl", static_cast<long>(options.lease_ttl_ms)));
  options.heartbeat_interval_ms = static_cast<std::uint64_t>(flags.get_int(
      "heartbeat-ms", static_cast<long>(options.heartbeat_interval_ms)));
  return serve::run_daemon(options);
}

int cmd_ping(const CliFlags& flags) {
  serve::Client client = connect(flags);
  const serve::HelloReply hello = client.hello();
  std::printf("%s (protocol v%u)\n", hello.server.c_str(),
              hello.protocol_version);
  return 0;
}

int cmd_stats(const CliFlags& flags) {
  serve::Client client = connect(flags);
  std::printf("%s", client.stats().json.c_str());
  return 0;
}

int cmd_solve(const CliFlags& flags) {
  serve::Client client = connect(flags);
  serve::SolveKleRequest request;
  request.config = solve_config(flags);
  const serve::SolveKleReply reply = client.solve_kle(request);
  std::printf("solve: key=%s source=%s wall=%.4fs triangles=%llu "
              "eigenpairs=%llu\n",
              store::key_string(reply.key).c_str(),
              to_string(static_cast<store::FetchSource>(reply.source)),
              reply.seconds,
              static_cast<unsigned long long>(reply.mesh_triangles),
              static_cast<unsigned long long>(reply.num_eigenpairs));
  return 0;
}

int cmd_work(const CliFlags& flags) {
  serve::WorkerOptions options;
  if (flags.has("port"))
    options.tcp_port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  else
    options.unix_path = flags.get_string("socket", "/tmp/sckl_serve.sock");
  options.run_id = flags.get_string("run-id", "");
  options.worker_id =
      static_cast<std::uint64_t>(flags.get_int("worker-id", 0));
  options.max_leases_per_claim =
      static_cast<std::size_t>(flags.get_int("max-leases", 1));
  options.poll_ms = static_cast<int>(flags.get_int("poll-ms", 200));
  options.rpc_timeout_ms =
      static_cast<int>(flags.get_int("rpc-timeout-ms", 5000));
  options.max_runtime_seconds = flags.get_double("max-runtime", 0.0);
  const serve::WorkerReport report = serve::run_worker(options);
  std::printf("worker %llu: leases=%zu blocks=%zu rejected=%zu "
              "heartbeats=%zu retries=%zu complete=%d\n",
              static_cast<unsigned long long>(report.worker_id),
              report.leases_computed, report.blocks_computed,
              report.publishes_rejected, report.heartbeats,
              report.rpc_retries, report.run_complete ? 1 : 0);
  return report.run_complete ? 0 : 3;
}

int cmd_shutdown(const CliFlags& flags) {
  serve::Client client = connect(flags);
  client.shutdown_server();
  std::printf("shutdown acknowledged\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sckl_serve <serve|ping|stats|solve|work|shutdown> "
                 "[--socket=PATH | --port=P] [options]\n");
    return 2;
  }
  const std::string command = flags.positional().front();
  try {
    if (command == "serve") return cmd_serve(flags);
    if (command == "ping") return cmd_ping(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "solve") return cmd_solve(flags);
    if (command == "work") return cmd_work(flags);
    if (command == "shutdown") return cmd_shutdown(flags);
    std::fprintf(stderr, "sckl_serve: unknown command '%s'\n",
                 command.c_str());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "sckl_serve: %s\n", e.what());
    return 1;
  }
}
