// Measurement-driven kernel extraction — the upstream half of the paper's
// flow, simulated end to end:
//
//   1. "Measure": sample a known ground-truth field (Gaussian kernel) at
//      scattered test sites across many synthetic dies, with measurement
//      noise.
//   2. Extract the empirical correlogram (Liu [16]).
//   3. Fit valid kernel families to it and select the best (Xiong [1]).
//   4. Feed the extracted kernel into the KLE machinery and verify the
//      downstream truncation (r) matches what the true kernel gives.
//
// Usage: ./examples/measurement_extraction [--dies=3000] [--sites=80]
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "core/truncation.h"
#include "field/cholesky_sampler.h"
#include "kernels/extraction.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto dies = static_cast<std::size_t>(flags.get_int("dies", 3000));
  const auto num_sites = static_cast<std::size_t>(flags.get_int("sites", 80));
  const double noise = flags.get_double("noise", 0.1);

  // 1. Ground truth and synthetic measurement campaign.
  const double c_true = kernels::paper_gaussian_c();
  const kernels::GaussianKernel truth(c_true);
  Rng rng(2026);
  std::vector<geometry::Point2> sites(num_sites);
  for (auto& s : sites) {
    s.x = rng.uniform(-1.0, 1.0);
    s.y = rng.uniform(-1.0, 1.0);
  }
  const field::CholeskyFieldSampler fab(truth, sites);
  linalg::Matrix measurements;
  fab.sample_block(field::SampleRange{0, dies}, StreamKey{2026, 0},
                   measurements);
  for (std::size_t d = 0; d < dies; ++d)  // metrology noise
    for (std::size_t s = 0; s < num_sites; ++s)
      measurements(d, s) += noise * rng.normal();
  std::printf("ground truth: %s; %zu dies x %zu sites, %.0f%% noise\n",
              truth.name().c_str(), dies, num_sites, 100.0 * noise);

  // 2. Correlogram.
  const auto bins =
      kernels::empirical_correlogram(measurements, sites, 14, 2.2);
  TextTable correlogram;
  correlogram.set_header({"distance", "empirical corr", "true corr",
                          "pairs"});
  for (const auto& bin : bins)
    correlogram.add_row({format_double(bin.distance, 3),
                         format_double(bin.correlation, 4),
                         format_double(truth.radial(bin.distance), 4),
                         std::to_string(bin.num_pairs)});
  std::printf("\n%s", correlogram.to_string().c_str());
  std::printf("# note the nugget: measurement noise deflates all "
              "correlations by ~1/(1+noise^2)\n");

  // 3. Family fits.
  const auto gaussian_family = [](double cc) {
    return [cc](double v) { return std::exp(-cc * v * v); };
  };
  const auto exponential_family = [](double cc) {
    return [cc](double v) { return std::exp(-cc * v); };
  };
  const auto g = kernels::fit_correlogram(bins, gaussian_family, 0.2, 30.0);
  const auto e =
      kernels::fit_correlogram(bins, exponential_family, 0.2, 30.0);
  std::printf("\nfits: gaussian c=%.3f (rmse %.4f) | exponential c=%.3f "
              "(rmse %.4f)\n",
              g.parameter, g.rmse, e.parameter, e.rmse);
  std::printf("selected: %s family (true c = %.3f)\n",
              g.rmse < e.rmse ? "gaussian" : "exponential", c_true);

  // 4. Downstream check: the extracted kernel gives the same truncation.
  const kernels::GaussianKernel extracted(g.parameter);
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions options;
  options.num_eigenpairs = 200;
  const core::KleResult kle_true = core::solve_kle(mesh, truth, options);
  const core::KleResult kle_fit = core::solve_kle(mesh, extracted, options);
  const std::size_t r_true = core::select_truncation(
      kle_true.eigenvalues(), mesh.num_triangles(), 0.01);
  const std::size_t r_fit = core::select_truncation(
      kle_fit.eigenvalues(), mesh.num_triangles(), 0.01);
  std::printf("\ntruncation with the true kernel: r = %zu; with the "
              "extracted kernel: r = %zu\n",
              r_true, r_fit);
  return 0;
}
