// Quickstart: the complete KLE workflow in ~50 lines.
//
//  1. Describe the intra-die spatial correlation with a covariance kernel.
//  2. Mesh the (normalized) die.
//  3. Solve the KLE numerically (Galerkin + centroid quadrature).
//  4. Pick the truncation r with the paper's 1%-variance rule.
//  5. Sample the random field from just r independent normals.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/kle_field.h"
#include "core/kle_solver.h"
#include "core/truncation.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main() {
  using namespace sckl;

  // 1. The paper's Gaussian kernel, with its decay rate fitted in 2-D to
  //    the measurement-backed linear correlation model.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  std::printf("kernel: %s\n", kernel.name().c_str());

  // 2. Quality-triangulate the normalized die [-1,1]^2, max element area
  //    0.1%% of the die (the paper's Triangle configuration).
  const mesh::TriMesh mesh = mesh::paper_mesh();
  std::printf("mesh:   n = %zu triangles, min angle %.1f deg\n",
              mesh.num_triangles(), mesh.quality().min_angle_degrees);

  // 3. Compute the top 200 KLE eigenpairs (the paper computes m = 200; the
  //    truncation rule needs the tail bound lambda_m (n - m) to be small).
  core::KleOptions options;
  options.num_eigenpairs = 200;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);
  std::printf("kle:    lambda_1 = %.4f, lambda_10 = %.4f, lambda_200 = %.2e\n",
              kle.eigenvalue(0), kle.eigenvalue(9), kle.eigenvalue(199));

  // 4. Truncate with the paper's criterion (1% discarded-variance bound).
  const std::size_t r =
      core::select_truncation(kle.eigenvalues(), mesh.num_triangles(), 0.01);
  std::printf("trunc:  r = %zu random variables represent the whole die\n",
              r);

  // 5. Reconstruct the field at a few device locations from an r-dim draw.
  const std::vector<geometry::Point2> devices = {
      {-0.8, -0.8}, {-0.75, -0.8}, {0.0, 0.0}, {0.8, 0.8}};
  const core::KleField field(kle, r, devices);
  Rng rng(1);
  linalg::Vector values;
  field.reconstruct(rng.normal_vector(r), values);
  std::printf("sample: normalized parameter values at 4 devices:\n");
  for (std::size_t i = 0; i < devices.size(); ++i)
    std::printf("        (%5.2f, %5.2f) -> %+.4f\n", devices[i].x,
                devices[i].y, values[i]);
  std::printf("        (the first two devices are neighbors: their values"
              " track; the far corners do not)\n");
  return 0;
}
