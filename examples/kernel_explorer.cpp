// Kernel explorer: compare the covariance-kernel families the paper
// discusses — decay profiles, physical validity (the eq. 2 PSD criterion),
// and how fast their KLE spectra decay (which determines how few random
// variables r a field needs).
//
// Usage: ./examples/kernel_explorer [--n=400] [--modes=30]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "kernels/psd_check.h"
#include "mesh/structured_mesher.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 400));
  const auto modes = static_cast<std::size_t>(flags.get_int("modes", 30));

  const double c = kernels::paper_gaussian_c();
  std::vector<std::unique_ptr<kernels::CovarianceKernel>> zoo;
  zoo.push_back(std::make_unique<kernels::GaussianKernel>(c));
  zoo.push_back(std::make_unique<kernels::ExponentialKernel>(1.5));
  zoo.push_back(std::make_unique<kernels::SeparableL1Kernel>(1.0));
  zoo.push_back(std::make_unique<kernels::MaternKernel>(3.0, 2.5));
  zoo.push_back(std::make_unique<kernels::SphericalKernel>(1.2));
  zoo.push_back(std::make_unique<kernels::LinearConeKernel>(1.0));
  zoo.push_back(std::make_unique<kernels::RadialMagnitudeKernel>(1.5));

  // 1. Validity: sampled Gram-matrix PSD check (eq. 2).
  std::printf("# Physical validity (sampled PSD check, 120 points/trial)\n");
  TextTable validity;
  validity.set_header({"kernel", "min rel eigenvalue", "valid"});
  for (const auto& k : zoo) {
    const auto result = kernels::check_positive_semidefinite(
        *k, geometry::BoundingBox::unit_die(), 6, 120);
    validity.add_row({k->name(),
                      format_scientific(result.min_relative_eigenvalue),
                      result.passed ? "yes" : "NO"});
  }
  std::fputs(validity.to_string().c_str(), stdout);
  std::printf("# note: the isotropic linear cone fails in 2-D, exactly as "
              "[1] warns\n\n");

  // 2. Decay profiles.
  std::printf("# Correlation vs separation\n");
  TextTable profile;
  std::vector<std::string> header = {"v"};
  for (const auto& k : zoo) header.push_back(k->name());
  profile.set_header(header);
  for (double v = 0.0; v <= 2.0 + 1e-9; v += 0.25) {
    std::vector<double> row = {v};
    for (const auto& k : zoo) row.push_back((*k)({0, 0}, {v, 0}));
    profile.add_numeric_row(row, 3);
  }
  std::fputs(profile.to_string().c_str(), stdout);

  // 3. KLE spectrum decay for the valid kernels: how many RVs a field
  //    needs to capture 95% of the variance (trace = die area = 4).
  std::printf("\n# KLE spectrum decay (n = %zu basis triangles)\n", n);
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), n, mesh::StructuredPattern::kCross);
  TextTable spectra;
  spectra.set_header(
      {"kernel", "lambda_1", "lambda_10", "r for 95% variance"});
  for (const auto& k : zoo) {
    const auto psd = kernels::check_positive_semidefinite(*k);
    if (!psd.passed) continue;  // skip invalid kernels
    core::KleOptions options;
    options.num_eigenpairs = std::min(modes * 4, mesh.num_triangles());
    const core::KleResult kle = core::solve_kle(mesh, *k, options);
    double sum = 0.0;
    std::size_t r95 = options.num_eigenpairs;
    for (std::size_t j = 0; j < options.num_eigenpairs; ++j) {
      sum += kle.eigenvalue(j);
      if (sum >= 0.95 * 4.0) {
        r95 = j + 1;
        break;
      }
    }
    spectra.add_row({k->name(), format_double(kle.eigenvalue(0), 3),
                     format_double(kle.eigenvalue(9), 4),
                     r95 == options.num_eigenpairs
                         ? ">" + std::to_string(r95)
                         : std::to_string(r95)});
  }
  std::fputs(spectra.to_string().c_str(), stdout);
  std::printf("# smoother kernels -> faster eigen-decay -> fewer RVs; this "
              "is why the Gaussian kernel truncates at r ~ 25\n");
  return 0;
}
