// Mesh-convergence study: Theorem 2 in practice. The Galerkin eigenvalues
// computed with the centroid rule converge as the mesh refines; against the
// analytic eigenvalues of the separable exponential kernel the error falls
// roughly linearly in h (the longest triangle side), as the paper proves.
//
// Usage: ./examples/mesh_convergence [--modes=6] [--c=1.0]
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/analytic_kle.h"
#include "core/kle_solver.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto modes = static_cast<std::size_t>(flags.get_int("modes", 6));
  const double c = flags.get_double("c", 1.0);

  const kernels::SeparableL1Kernel kernel(c);
  const auto analytic = core::analytic_separable_kle_2d(c, 1.0, modes);
  std::printf("# Galerkin vs analytic eigenvalues, separable exp kernel "
              "(c=%g), %zu modes\n",
              c, modes);

  TextTable table;
  table.set_header({"grid", "n", "h", "max rel error", "order"});
  double previous_error = 0.0;
  double previous_h = 0.0;
  for (std::size_t grid : {4u, 8u, 16u, 32u}) {
    const mesh::TriMesh mesh =
        mesh::structured_mesh(geometry::BoundingBox::unit_die(), grid, grid,
                              mesh::StructuredPattern::kCross);
    core::KleOptions options;
    options.num_eigenpairs = modes;
    const core::KleResult kle = core::solve_kle(mesh, kernel, options);
    double worst = 0.0;
    for (std::size_t j = 0; j < modes; ++j)
      worst = std::max(worst, std::abs(kle.eigenvalue(j) -
                                       analytic[j].lambda) /
                                  analytic[0].lambda);
    const double h = mesh.quality().max_side;
    std::string order = "-";
    if (previous_error > 0.0)
      order = format_double(
          std::log(previous_error / worst) / std::log(previous_h / h), 2);
    table.add_row({std::to_string(grid) + "x" + std::to_string(grid),
                   std::to_string(mesh.num_triangles()), format_double(h, 4),
                   format_scientific(worst), order});
    previous_error = worst;
    previous_h = h;
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("# observed order ~1 or better: the linear-in-h convergence "
              "of Theorem 2\n");
  return 0;
}
