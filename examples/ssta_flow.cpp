// Full SSTA flow on a benchmark circuit — the paper's Sec. 5 pipeline as a
// user would run it:
//   netlist -> recursive min-cut placement -> STA engine
//   kernel -> mesh -> KLE -> reduced sampler
//   Monte Carlo SSTA with Algorithm 1 (reference) and Algorithm 2 (KLE),
//   then a side-by-side report.
//
// With --store=DIR the solved KLE is fetched through the artifact store
// (kle_store_tool's repository format): the first run pays the eigensolve
// and persists it, later runs load the artifact from disk in milliseconds —
// the paper's offline-decompose / online-sample split.
//
// --validate runs core::check_kle_health on the KLE and prints the report;
// --strict additionally escalates warnings (solver fallback, out-of-mesh
// gates, health findings) to a non-zero exit instead of recovering silently.
//
// Usage: ./examples/ssta_flow [--circuit=c880] [--samples=500] [--r=25]
//                             [--store=/path/to/repo] [--fsck]
//                             [--validate] [--strict]
#include <cstdio>
#include <memory>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "core/kle_health.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "placer/recursive_placer.h"
#include "placer/wireload.h"
#include "ssta/mc_ssta.h"
#include "store/artifact_store.h"
#include "timing/critical_path.h"
#include "timing/sta.h"

namespace {

int run(const sckl::CliFlags& flags) {
  using namespace sckl;
  const std::string name = flags.get_string("circuit", "c880");
  const std::string store_root = flags.get_string("store", "");
  // Sigma-vs-sigma comparisons have a ~1/sqrt(N) noise floor; 1000 samples
  // put it at ~3%.
  const auto samples =
      static_cast<std::size_t>(flags.get_int("samples", 1000));
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));
  const bool strict = flags.get_bool("strict", false);
  const bool validate = strict || flags.get_bool("validate", false);

  // Netlist + placement + timer.
  const circuit::Netlist netlist = circuit::make_paper_circuit(name);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  std::printf("circuit %s: %zu gates, depth %zu, %zu endpoints, HPWL %.1f\n",
              name.c_str(), netlist.num_physical_gates(), engine.depth(),
              engine.num_endpoints(), placer::total_hpwl(netlist, placement));
  timing::StaTrace trace;
  const timing::StaResult nominal = engine.run_nominal(&trace);
  std::printf("nominal worst delay: %.1f ps\n", nominal.worst_delay);
  const timing::CriticalPath critical =
      timing::extract_critical_path(engine, nominal, trace);
  std::printf("nominal critical path: %zu stages from '%s'\n\n",
              critical.steps.size(),
              netlist.gate(critical.steps.front().gate).name.c_str());

  // Spatial correlation model + the two samplers.
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const auto locations = placement.physical_locations(netlist);
  const field::CholeskyFieldSampler dense(kernel, locations);

  const std::size_t num_eigenpairs = std::max<std::size_t>(2 * r, 50);
  std::unique_ptr<field::KleFieldSampler> reduced_ptr;
  std::shared_ptr<const store::StoredKleResult> artifact;  // keeps mesh alive
  std::unique_ptr<mesh::TriMesh> owned_mesh;
  std::size_t num_triangles = 0;
  robust::HealthReport health;
  core::KleSolveInfo solve_info;
  if (!store_root.empty()) {
    // Warm path: memory -> <store>/<hash>.sckl -> solve-and-persist.
    // --fsck first runs the crash-recovery pass over the repository, reaping
    // debris a previously killed writer may have left.
    store::StoreOptions store_options;
    store_options.fsck_on_open = flags.get_bool("fsck", false);
    store::KleArtifactStore store(store_root, store_options);
    store::KleArtifactConfig config;
    store::describe_kernel(kernel, config.kernel_id, config.kernel_params);
    config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
    config.num_eigenpairs = num_eigenpairs;
    const store::FetchResult fetch = store.get_or_compute(config, kernel);
    artifact = fetch.artifact;
    num_triangles = artifact->mesh().num_triangles();
    reduced_ptr =
        std::make_unique<field::KleFieldSampler>(*artifact, r, locations);
    std::printf("KLE artifact %s: source=%s fetch=%.3fs (%s)\n",
                store.path_for(config).c_str(), to_string(fetch.source),
                fetch.seconds, to_string(store.cache_stats()).c_str());
    const store::StoreHealth store_health = store.health();
    if (store_health.total() > 0)
      std::printf("store faults: %s\n", to_string(store_health).c_str());
    if (validate) health = core::check_kle_health(artifact->kle());
  } else {
    Stopwatch solve;
    owned_mesh = std::make_unique<mesh::TriMesh>(mesh::paper_mesh());
    core::KleOptions kle_options;
    kle_options.num_eigenpairs = num_eigenpairs;
    const core::KleResult kle =
        core::solve_kle(*owned_mesh, kernel, kle_options, &solve_info);
    num_triangles = owned_mesh->num_triangles();
    reduced_ptr = std::make_unique<field::KleFieldSampler>(kle, r, locations);
    std::printf("KLE solved fresh in %.3fs (pass --store=DIR to persist)\n",
                solve.seconds());
    if (validate) health = core::check_kle_health(kle);
  }
  const field::KleFieldSampler& reduced = *reduced_ptr;
  if (solve_info.fallback)
    std::printf("KLE solver fallback: %s\n", solve_info.fallback_reason.c_str());
  if (reduced.out_of_mesh_count() > 0)
    std::printf("out-of-mesh gates: %zu resolved to the nearest triangle\n",
                reduced.out_of_mesh_count());
  if (validate) {
    if (solve_info.fallback)
      health.add(robust::Severity::kWarning, "solver_fallback",
                 solve_info.fallback_reason);
    if (reduced.out_of_mesh_count() > 0)
      health.add(robust::Severity::kWarning, "out_of_mesh",
                 std::to_string(reduced.out_of_mesh_count()) +
                     " gate(s) resolved to the nearest mesh triangle");
    std::printf("KLE health (worst: %s):\n%s", to_string(health.worst()),
                health.to_string().c_str());
    if (strict) health.throw_if_fatal(robust::Severity::kWarning);
  }
  std::printf("samplers: Algorithm 1 latent dim %zu | Algorithm 2 latent "
              "dim %zu (n = %zu triangles)\n\n",
              dense.latent_dimension(), reduced.latent_dimension(),
              num_triangles);

  // Monte Carlo SSTA, both ways, same timer.
  ssta::McSstaOptions options;
  options.num_samples = samples;
  const ssta::McSstaResult mc = run_monte_carlo_ssta(
      engine, {&dense, &dense, &dense, &dense}, options);
  const ssta::McSstaResult kl = run_monte_carlo_ssta(
      engine, {&reduced, &reduced, &reduced, &reduced}, options);

  std::printf("%-28s %14s %14s\n", "", "Algorithm 1", "Algorithm 2 (KLE)");
  std::printf("%-28s %14.2f %14.2f\n", "worst delay mean (ps)",
              mc.worst_delay.mean(), kl.worst_delay.mean());
  std::printf("%-28s %14.3f %14.3f\n", "worst delay sigma (ps)",
              mc.worst_delay.stddev(), kl.worst_delay.stddev());
  std::printf("%-28s %14.3f %14.3f\n", "sampling time (s)",
              mc.sampling_seconds, kl.sampling_seconds);
  std::printf("%-28s %14.3f %14.3f\n", "STA time (s)", mc.sta_seconds,
              kl.sta_seconds);
  const double e_mu = 100.0 *
                      std::abs(kl.worst_delay.mean() - mc.worst_delay.mean()) /
                      mc.worst_delay.mean();
  const double e_sigma =
      100.0 *
      std::abs(kl.worst_delay.stddev() - mc.worst_delay.stddev()) /
      mc.worst_delay.stddev();
  std::printf("\ne_mu = %.3f%%   e_sigma = %.3f%%   sampling speedup = %.2fx\n",
              e_mu, e_sigma,
              mc.sampling_seconds / std::max(kl.sampling_seconds, 1e-9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const sckl::CliFlags flags(argc, argv);
  try {
    return run(flags);
  } catch (const sckl::Error& e) {
    std::fprintf(stderr, "ssta_flow: %s\n", e.what());
    return 1;
  }
}
