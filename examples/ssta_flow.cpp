// Full SSTA flow on a benchmark circuit — the paper's Sec. 5 pipeline as a
// user would run it:
//   netlist -> recursive min-cut placement -> STA engine
//   kernel -> mesh -> KLE -> reduced sampler
//   Monte Carlo SSTA with Algorithm 1 (reference) and Algorithm 2 (KLE),
//   then a side-by-side report.
//
// With --store=DIR the solved KLE is fetched through the artifact store
// (kle_store_tool's repository format): the first run pays the eigensolve
// and persists it, later runs load the artifact from disk in milliseconds —
// the paper's offline-decompose / online-sample split.
//
// --validate runs core::check_kle_health on the KLE and prints the report;
// --strict additionally escalates warnings (solver fallback, out-of-mesh
// gates, health findings) to a non-zero exit instead of recovering silently.
//
// SCKL_TRACE=1 (or --trace) prints a span tree + metrics table on stderr at
// exit; --trace-json=PATH additionally writes the sckl-trace-v1 JSON.
//
// --run-id=NAME (with --store) runs the KLE-side Monte Carlo through the
// checkpointed runner: completed leases are persisted to the run ledger
// under <store>/mc_runs, so a killed run loses at most one lease of work.
// Re-running with the same --run-id plus --resume loads the completed
// leases and recomputes only the rest — the final statistics are
// bit-identical to an uninterrupted run.
//
// Usage: ./examples/ssta_flow [--circuit=c880] [--samples=1000] [--r=25]
//                             [--seed=1] [--threads=K]
//                             [--store=/path/to/repo] [--fsck]
//                             [--run-id=NAME] [--resume]
//                             [--validate] [--strict]
//                             [--trace] [--trace-json=PATH]
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/cli.h"
#include "mesh/refine.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "placer/wireload.h"
#include "ssta/experiment.h"
#include "store/artifact_store.h"
#include "timing/critical_path.h"

namespace {

int run(const sckl::CliFlags& flags) {
  using namespace sckl;
  obs::Span root("ssta_flow");
  ssta::ExperimentConfig config;
  config.circuit = "c880";
  // Sigma-vs-sigma comparisons have a ~1/sqrt(N) noise floor; 1000 samples
  // put it at ~3%.
  config.num_samples = 1000;
  ssta::add_experiment_flags(flags, config);
  const bool validate = config.validate_kle || config.strict;

  ssta::ExperimentPipeline pipeline(config);
  const timing::StaEngine& engine = pipeline.engine();
  const circuit::Netlist& netlist = engine.netlist();
  std::printf("circuit %s: %zu gates, depth %zu, %zu endpoints, HPWL %.1f\n",
              config.circuit.c_str(), netlist.num_physical_gates(),
              engine.depth(), engine.num_endpoints(),
              placer::total_hpwl(netlist, pipeline.placement()));
  timing::StaTrace trace;
  const auto [nominal, critical] = [&] {
    obs::Span nominal_span("ssta_flow.nominal_sta");
    const timing::StaResult result = engine.run_nominal(&trace);
    return std::make_pair(result,
                          timing::extract_critical_path(engine, result, trace));
  }();
  std::printf("nominal worst delay: %.1f ps\n", nominal.worst_delay);
  std::printf("nominal critical path: %zu stages from '%s'\n\n",
              critical.steps.size(),
              netlist.gate(critical.steps.front().gate).name.c_str());

  // Algorithm 2 run: fresh KLE solve, or fetch through the artifact store.
  // --fsck first runs the crash-recovery pass over the repository, reaping
  // debris a previously killed writer may have left.
  ssta::KleRunRequest request;
  request.r = config.r;
  request.num_eigenpairs = config.num_eigenpairs != 0
                               ? config.num_eigenpairs
                               : std::max<std::size_t>(2 * config.r, 50);
  request.validate = validate;
  request.run_id = config.run_id;
  request.resume = config.resume;
  request.matrix_free = config.matrix_free;
  request.aca_tolerance = config.aca_tolerance;
  std::unique_ptr<store::KleArtifactStore> store;
  std::unique_ptr<mesh::TriMesh> owned_mesh;
  if (!config.store_root.empty()) {
    store::StoreOptions store_options;
    store_options.fsck_on_open = flags.get_bool("fsck", false);
    store = std::make_unique<store::KleArtifactStore>(config.store_root,
                                                      store_options);
    request.store = store.get();
  } else {
    owned_mesh = std::make_unique<mesh::TriMesh>(
        mesh::paper_mesh(geometry::BoundingBox::unit_die(),
                         config.mesh_area_fraction, config.seed + 7));
    request.mesh = owned_mesh.get();
  }
  const ssta::KleRunOutcome outcome = pipeline.run_kle(request);
  if (outcome.from_store) {
    std::printf("KLE artifact: source=%s fetch=%.3fs (%s)\n",
                to_string(outcome.source), outcome.setup_seconds,
                to_string(store->cache_stats()).c_str());
    const store::StoreHealth store_health = store->health();
    if (store_health.total() > 0)
      std::printf("store faults: %s\n", to_string(store_health).c_str());
  } else {
    std::printf("KLE solved fresh in %.3fs (pass --store=DIR to persist)\n",
                outcome.setup_seconds);
  }
  if (outcome.info.solve.fallback)
    std::printf("KLE solver fallback: %s\n",
                outcome.info.solve.fallback_reason.c_str());
  if (outcome.info.out_of_mesh_gates > 0)
    std::printf("out-of-mesh gates: %zu resolved to the nearest triangle\n",
                outcome.info.out_of_mesh_gates);
  if (validate) {
    const robust::HealthReport health = ssta::fold_kle_health(outcome.info);
    std::printf("KLE health (worst: %s):\n%s", to_string(health.worst()),
                health.to_string().c_str());
    if (config.strict) health.throw_if_fatal(robust::Severity::kWarning);
  }
  if (outcome.checkpointed) {
    const ssta::McRunStats& cp = outcome.mc_run;
    std::printf("checkpointed run '%s': %zu lease(s) — %zu resumed from the "
                "ledger, %zu computed (%zu expired, %zu recomputed), "
                "%zu ledger append(s)%s\n",
                config.run_id.c_str(), cp.leases_total, cp.leases_resumed,
                cp.leases_claimed, cp.leases_expired, cp.leases_recomputed,
                cp.ledger_appends,
                cp.recovered_torn_tail ? " [torn tail recovered]" : "");
  }
  std::printf("samplers: Algorithm 1 latent dim %zu | Algorithm 2 latent "
              "dim %zu (n = %zu triangles)\n\n",
              pipeline.num_gates(), config.r, outcome.mesh_triangles);

  // Both runs shared the same engine and timer; the reference (Algorithm 1)
  // is computed on demand and cached by the pipeline.
  const ssta::McSstaResult& mc = pipeline.reference();
  const ssta::McSstaResult& kl = outcome.ssta;
  std::printf("Monte Carlo: %zu samples on %zu thread(s)\n", config.num_samples,
              kl.threads_used);
  std::printf("%-28s %14s %14s\n", "", "Algorithm 1", "Algorithm 2 (KLE)");
  std::printf("%-28s %14.2f %14.2f\n", "worst delay mean (ps)",
              mc.worst_delay.mean(), kl.worst_delay.mean());
  std::printf("%-28s %14.3f %14.3f\n", "worst delay sigma (ps)",
              mc.worst_delay.stddev(), kl.worst_delay.stddev());
  std::printf("%-28s %14.3f %14.3f\n", "sampling time (s)",
              mc.sampling_seconds, kl.sampling_seconds);
  std::printf("%-28s %14.3f %14.3f\n", "STA time (s)", mc.sta_seconds,
              kl.sta_seconds);
  // Full-distribution view from the mergeable quantile sketch: the tail the
  // two-moment summary cannot show (exact while samples <= sketch capacity).
  const struct { const char* label; double q; } kQuantiles[] = {
      {"worst delay p50 (ps)", 0.5},
      {"worst delay p95 (ps)", 0.95},
      {"worst delay p99 (ps)", 0.99},
      {"worst delay p99.9 (ps)", 0.999},
  };
  for (const auto& row : kQuantiles)
    std::printf("%-28s %14.2f %14.2f\n", row.label,
                mc.worst_delay_sketch.quantile(row.q),
                kl.worst_delay_sketch.quantile(row.q));
  const double e_mu = 100.0 *
                      std::abs(kl.worst_delay.mean() - mc.worst_delay.mean()) /
                      mc.worst_delay.mean();
  const double e_sigma =
      100.0 *
      std::abs(kl.worst_delay.stddev() - mc.worst_delay.stddev()) /
      mc.worst_delay.stddev();
  std::printf("\ne_mu = %.3f%%   e_sigma = %.3f%%   sampling speedup = %.2fx\n",
              e_mu, e_sigma,
              mc.sampling_seconds / std::max(kl.sampling_seconds, 1e-9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const sckl::CliFlags flags(argc, argv);
  const sckl::ExperimentFlagSet set = sckl::parse_experiment_flags(flags);
  // Constructed before run() so every span (including the root) closes
  // before the session exports at scope exit.
  sckl::obs::TraceSession session(set.trace, set.trace_json);
  try {
    return run(flags);
  } catch (const sckl::Error& e) {
    std::fprintf(stderr, "ssta_flow: %s\n", e.what());
    return 1;
  }
}
