// Offline artifact-repository management CLI — the "decompose once" half of
// the paper's offline/online split (Algorithm 2 consumes what this builds).
//
//   kle_store_tool build   --root=DIR [--kernel=gaussian] [--c=VALUE]
//                          [--mesh=paper|cross|diagonal] [--triangles=1546]
//                          [--area-fraction=0.001] [--mesh-seed=1]
//                          [--pairs=50] [--quadrature=1|3|7] [--force]
//       Solves (or re-serves) the configured KLE into the repository and
//       reports cold-vs-warm wall time.
//   kle_store_tool inspect --root=DIR --key=HEX   (or: inspect FILE.sckl)
//       Validates one artifact and prints its header, mesh size, and
//       leading eigenvalues.
//   kle_store_tool ls      --root=DIR
//       Lists artifacts with file sizes; quarantined .sckl.bad files are
//       flagged.
//   kle_store_tool gc      --root=DIR [--dry-run] [--tmp-age=SECONDS]
//       Deletes orphaned tmp files, stale lock files, corrupt/mismatched
//       artifacts, and quarantined .sckl.bad files. --dry-run prints the
//       deletion plan (path + reason) without touching anything; --tmp-age
//       keeps tmp files younger than the given age (an in-flight writer on
//       another host may still own them).
//   kle_store_tool fsck    --root=DIR [--report-only] [--purge-quarantine]
//                          [--tmp-age=SECONDS]
//       Startup-recovery pass: reaps orphaned tmp files and stale locks,
//       quarantines CRC-invalid or misnamed artifacts to .sckl.bad, and
//       prints the severity-graded health report. --report-only classifies
//       without repairing; exit status is non-zero when problems remain.
//   kle_store_tool lock-status --root=DIR
//       Shows every lock file in the repository and whether a living
//       process currently holds its flock.
//
// build/inspect accept --validate (run core::check_kle_health on the
// artifact and print the report) and --strict (additionally exit non-zero
// when the report has findings of kWarning or worse).
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "obs/export.h"
#include "common/error.h"
#include "obs/stopwatch.h"
#include "core/kle_health.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "store/artifact_store.h"
#include "store/file_lock.h"
#include "store/recovery.h"

namespace {

using namespace sckl;

std::unique_ptr<kernels::CovarianceKernel> make_kernel(const CliFlags& flags) {
  const std::string family = flags.get_string("kernel", "gaussian");
  const double c = flags.get_double("c", 0.0);
  if (family == "gaussian")
    return std::make_unique<kernels::GaussianKernel>(
        c > 0.0 ? c : kernels::paper_gaussian_c());
  if (family == "exponential")
    return std::make_unique<kernels::ExponentialKernel>(c > 0.0 ? c : 1.0);
  if (family == "separable_l1")
    return std::make_unique<kernels::SeparableL1Kernel>(c > 0.0 ? c : 1.0);
  if (family == "matern")
    return std::make_unique<kernels::MaternKernel>(
        flags.get_double("b", 2.0), flags.get_double("s", 2.0));
  if (family == "linear_cone")
    return std::make_unique<kernels::LinearConeKernel>(
        flags.get_double("rho", 1.0));
  throw Error("unknown --kernel family '" + family +
              "' (gaussian, exponential, separable_l1, matern, linear_cone)");
}

store::KleArtifactConfig make_config(const CliFlags& flags,
                                     const kernels::CovarianceKernel& kernel) {
  store::KleArtifactConfig config;
  store::describe_kernel(kernel, config.kernel_id, config.kernel_params);
  const std::string mesh = flags.get_string("mesh", "cross");
  if (mesh == "paper") {
    config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  } else if (mesh == "cross") {
    config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  } else if (mesh == "diagonal") {
    config.mesh.kind = store::MeshSpec::Kind::kStructuredDiagonal;
  } else {
    throw Error("unknown --mesh '" + mesh + "' (paper, cross, diagonal)");
  }
  config.mesh.target_triangles =
      static_cast<std::uint64_t>(flags.get_int("triangles", 1546));
  config.mesh.area_fraction = flags.get_double("area-fraction", 0.001);
  config.mesh.mesher_seed =
      static_cast<std::uint64_t>(flags.get_int("mesh-seed", 1));
  const long quadrature = flags.get_int("quadrature", 1);
  config.quadrature = quadrature == 7   ? core::QuadratureRule::kSymmetric7
                      : quadrature == 3 ? core::QuadratureRule::kSymmetric3
                                        : core::QuadratureRule::kCentroid1;
  config.num_eigenpairs =
      static_cast<std::uint64_t>(flags.get_int("pairs", 50));
  return config;
}

void print_artifact(const store::StoredKleResult& artifact) {
  const store::KleArtifactConfig& config = artifact.config();
  std::printf("  key          %s\n",
              store::key_string(store::artifact_key(config)).c_str());
  std::printf("  kernel       %s (", config.kernel_id.c_str());
  for (std::size_t i = 0; i < config.kernel_params.size(); ++i)
    std::printf("%s%.17g", i ? ", " : "", config.kernel_params[i]);
  std::printf(")\n");
  std::printf("  die          [%g, %g] x [%g, %g]\n", config.die.min.x,
              config.die.max.x, config.die.min.y, config.die.max.y);
  std::printf("  mesh         kind=%u target=%llu area_fraction=%g seed=%llu "
              "-> %zu triangles, %zu vertices\n",
              static_cast<unsigned>(config.mesh.kind),
              static_cast<unsigned long long>(config.mesh.target_triangles),
              config.mesh.area_fraction,
              static_cast<unsigned long long>(config.mesh.mesher_seed),
              artifact.mesh().num_triangles(), artifact.mesh().num_vertices());
  std::printf("  quadrature   %u-point\n",
              config.quadrature == core::QuadratureRule::kSymmetric7   ? 7u
              : config.quadrature == core::QuadratureRule::kSymmetric3 ? 3u
                                                                       : 1u);
  const auto& lambda = artifact.kle().eigenvalues();
  std::printf("  eigenpairs   %zu computed (requested %llu)\n", lambda.size(),
              static_cast<unsigned long long>(config.num_eigenpairs));
  std::printf("  lambda[0..4] ");
  for (std::size_t j = 0; j < lambda.size() && j < 5; ++j)
    std::printf("%s%.6g", j ? ", " : "", lambda[j]);
  std::printf("\n  memory       ~%.2f MiB resident\n",
              static_cast<double>(artifact.approximate_bytes()) / (1 << 20));
}

/// Shared --validate/--strict handling (the common ExperimentFlagSet
/// vocabulary): prints the health report and, in strict mode, throws
/// (exit 1 via main's catch) on warnings or worse.
void validate_artifact(const CliFlags& flags,
                       const store::StoredKleResult& artifact) {
  const ExperimentFlagSet shared = parse_experiment_flags(flags);
  const bool strict = shared.strict;
  if (!strict && !shared.validate) return;
  const robust::HealthReport report = core::check_kle_health(artifact.kle());
  std::printf("health (worst: %s):\n%s", to_string(report.worst()),
              report.to_string().c_str());
  if (strict) report.throw_if_fatal(robust::Severity::kWarning);
}

int cmd_build(const CliFlags& flags, const std::string& root) {
  const auto kernel = make_kernel(flags);
  const store::KleArtifactConfig config = make_config(flags, *kernel);
  store::KleArtifactStore store(root);
  if (flags.get_bool("force", false)) {
    std::error_code ec;
    std::filesystem::remove(store.path_for(config), ec);
  }
  const store::FetchResult first = store.get_or_compute(config, *kernel);
  std::printf("build: source=%s wall=%.4fs -> %s\n", to_string(first.source),
              first.seconds, store.path_for(config).c_str());
  // Time the two warm paths: in-process memory hit, then a fresh store
  // instance forcing a disk load.
  const store::FetchResult memory_hit = store.get_or_compute(config, *kernel);
  store::KleArtifactStore cold_store(root);
  const store::FetchResult disk_hit = cold_store.get_or_compute(config, *kernel);
  std::printf("warm:  memory=%.6fs disk=%.6fs", memory_hit.seconds,
              disk_hit.seconds);
  if (first.source == store::FetchSource::kSolved && disk_hit.seconds > 0.0)
    std::printf("  (cold solve / warm disk load = %.0fx)",
                first.seconds / disk_hit.seconds);
  std::printf("\ncache: %s\n", to_string(store.cache_stats()).c_str());
  const store::StoreHealth health = store.health();
  if (health.total() > 0)
    std::printf("store faults: %s\n", to_string(health).c_str());
  print_artifact(*first.artifact);
  validate_artifact(flags, *first.artifact);
  return 0;
}

int cmd_inspect(const CliFlags& flags, const std::string& root) {
  std::string path;
  if (flags.has("key")) {
    path = (std::filesystem::path(root) /
            (flags.get_string("key", "") + ".sckl")).string();
  } else if (flags.positional().size() > 1) {
    path = flags.positional()[1];
  } else {
    std::fprintf(stderr, "inspect: need --root+--key or a .sckl file path\n");
    return 2;
  }
  const store::StoredKleResult artifact = store::read_kle_file(path);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  std::printf("%s: valid (%llu bytes on disk)\n", path.c_str(),
              static_cast<unsigned long long>(ec ? 0 : bytes));
  print_artifact(artifact);
  validate_artifact(flags, artifact);
  return 0;
}

int cmd_ls(const std::string& root) {
  store::KleArtifactStore store(root);
  const auto entries = store.ls();
  std::size_t quarantined = 0;
  for (const auto& entry : entries) {
    std::printf("%s  %12llu bytes%s\n", entry.key.c_str(),
                static_cast<unsigned long long>(entry.file_bytes),
                entry.quarantined ? "  [QUARANTINED]" : "");
    if (entry.quarantined) ++quarantined;
  }
  std::printf("%zu artifact(s) in %s", entries.size(), root.c_str());
  if (quarantined > 0)
    std::printf(" (%zu quarantined — run gc to purge)", quarantined);
  std::printf("\n");
  return 0;
}

int cmd_gc(const CliFlags& flags, const std::string& root) {
  store::KleArtifactStore store(root);
  store::GcOptions options;
  options.dry_run = flags.get_bool("dry-run", false);
  options.tmp_max_age_seconds = flags.get_double("tmp-age", 0.0);
  const store::GcReport report = store.gc(options);
  for (const auto& candidate : report.candidates)
    std::printf("  %-18s %s\n", (candidate.reason + ":").c_str(),
                candidate.path.c_str());
  if (options.dry_run)
    std::printf("gc --dry-run: would remove %zu file(s) from %s\n",
                report.candidates.size(), root.c_str());
  else
    std::printf("gc: removed %zu file(s) from %s\n", report.removed,
                root.c_str());
  return 0;
}

int cmd_fsck(const CliFlags& flags, const std::string& root) {
  store::FsckOptions options;
  options.repair = !flags.get_bool("report-only", false);
  options.purge_quarantine = flags.get_bool("purge-quarantine", false);
  options.tmp_max_age_seconds = flags.get_double("tmp-age", 0.0);
  const store::FsckResult result = store::fsck(root, options);
  std::printf("%s", result.report.to_string().c_str());
  std::printf("fsck %s: %zu scanned, %zu healthy, %zu tmp, %zu stale locks, "
              "%zu corrupt, %zu mismatched, %zu quarantined, %zu unreadable, "
              "%zu repaired\n",
              options.repair ? "(repair)" : "(report-only)",
              result.stats.scanned, result.stats.healthy,
              result.stats.orphaned_tmp, result.stats.stale_locks,
              result.stats.corrupt, result.stats.mismatched,
              result.stats.quarantined, result.stats.unreadable,
              result.stats.repaired);
  // Repair mode fixed (or quarantined) everything it safely could; only
  // unreadable files remain a live problem. Report-only flags any debris.
  const bool ok =
      options.repair ? result.stats.unreadable == 0 : result.stats.clean();
  return ok ? 0 : 1;
}

int cmd_lock_status(const std::string& root) {
  std::size_t locks = 0, held = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::filesystem::path(root))) {
    if (!entry.is_regular_file() || !store::is_lock_file(entry.path()))
      continue;
    ++locks;
    const bool live = store::lock_is_held(entry.path());
    if (live) ++held;
    std::printf("%-24s %s\n", entry.path().filename().c_str(),
                live ? "HELD" : "stale (no living holder)");
  }
  std::printf("%zu lock file(s), %zu currently held\n", locks, held);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: kle_store_tool <build|inspect|ls|gc|fsck|lock-status> "
                 "--root=DIR [options]\n");
    return 2;
  }
  const std::string command = flags.positional().front();
  const std::string root = flags.get_string("root", ".sckl-store");
  try {
    if (command == "build") return cmd_build(flags, root);
    if (command == "inspect") return cmd_inspect(flags, root);
    if (command == "ls") return cmd_ls(root);
    if (command == "gc") return cmd_gc(flags, root);
    if (command == "fsck") return cmd_fsck(flags, root);
    if (command == "lock-status") return cmd_lock_status(root);
    std::fprintf(stderr, "kle_store_tool: unknown command '%s'\n",
                 command.c_str());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "kle_store_tool: %s\n", e.what());
    return 1;
  }
}
