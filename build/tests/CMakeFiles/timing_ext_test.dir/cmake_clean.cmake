file(REMOVE_RECURSE
  "CMakeFiles/timing_ext_test.dir/timing_ext_test.cpp.o"
  "CMakeFiles/timing_ext_test.dir/timing_ext_test.cpp.o.d"
  "timing_ext_test"
  "timing_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
