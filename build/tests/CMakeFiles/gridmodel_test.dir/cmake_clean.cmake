file(REMOVE_RECURSE
  "CMakeFiles/gridmodel_test.dir/gridmodel_test.cpp.o"
  "CMakeFiles/gridmodel_test.dir/gridmodel_test.cpp.o.d"
  "gridmodel_test"
  "gridmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
