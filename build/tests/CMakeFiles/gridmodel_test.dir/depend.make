# Empty dependencies file for gridmodel_test.
# This may be replaced when dependencies are built.
