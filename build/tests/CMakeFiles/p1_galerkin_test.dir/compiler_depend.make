# Empty compiler generated dependencies file for p1_galerkin_test.
# This may be replaced when dependencies are built.
