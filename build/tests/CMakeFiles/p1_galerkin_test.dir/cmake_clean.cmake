file(REMOVE_RECURSE
  "CMakeFiles/p1_galerkin_test.dir/p1_galerkin_test.cpp.o"
  "CMakeFiles/p1_galerkin_test.dir/p1_galerkin_test.cpp.o.d"
  "p1_galerkin_test"
  "p1_galerkin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p1_galerkin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
