file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quadrature.dir/bench_ablation_quadrature.cpp.o"
  "CMakeFiles/bench_ablation_quadrature.dir/bench_ablation_quadrature.cpp.o.d"
  "bench_ablation_quadrature"
  "bench_ablation_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
