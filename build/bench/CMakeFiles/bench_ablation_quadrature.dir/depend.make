# Empty dependencies file for bench_ablation_quadrature.
# This may be replaced when dependencies are built.
