# Empty compiler generated dependencies file for bench_ext_p1_basis.
# This may be replaced when dependencies are built.
