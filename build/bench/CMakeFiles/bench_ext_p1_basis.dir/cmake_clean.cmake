file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_p1_basis.dir/bench_ext_p1_basis.cpp.o"
  "CMakeFiles/bench_ext_p1_basis.dir/bench_ext_p1_basis.cpp.o.d"
  "bench_ext_p1_basis"
  "bench_ext_p1_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_p1_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
