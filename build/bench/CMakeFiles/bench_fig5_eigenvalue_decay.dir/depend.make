# Empty dependencies file for bench_fig5_eigenvalue_decay.
# This may be replaced when dependencies are built.
