file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_eigenvalue_decay.dir/bench_fig5_eigenvalue_decay.cpp.o"
  "CMakeFiles/bench_fig5_eigenvalue_decay.dir/bench_fig5_eigenvalue_decay.cpp.o.d"
  "bench_fig5_eigenvalue_decay"
  "bench_fig5_eigenvalue_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eigenvalue_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
