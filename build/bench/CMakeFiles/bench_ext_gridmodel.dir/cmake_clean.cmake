file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gridmodel.dir/bench_ext_gridmodel.cpp.o"
  "CMakeFiles/bench_ext_gridmodel.dir/bench_ext_gridmodel.cpp.o.d"
  "bench_ext_gridmodel"
  "bench_ext_gridmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gridmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
