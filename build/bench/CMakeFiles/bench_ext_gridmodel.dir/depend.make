# Empty dependencies file for bench_ext_gridmodel.
# This may be replaced when dependencies are built.
