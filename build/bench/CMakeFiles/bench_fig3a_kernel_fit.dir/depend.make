# Empty dependencies file for bench_fig3a_kernel_fit.
# This may be replaced when dependencies are built.
