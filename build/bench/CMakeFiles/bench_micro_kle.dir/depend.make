# Empty dependencies file for bench_micro_kle.
# This may be replaced when dependencies are built.
