file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kle.dir/bench_micro_kle.cpp.o"
  "CMakeFiles/bench_micro_kle.dir/bench_micro_kle.cpp.o.d"
  "bench_micro_kle"
  "bench_micro_kle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
