# Empty dependencies file for bench_fig1_kernel.
# This may be replaced when dependencies are built.
