file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_reconstruction.dir/bench_fig3b_reconstruction.cpp.o"
  "CMakeFiles/bench_fig3b_reconstruction.dir/bench_fig3b_reconstruction.cpp.o.d"
  "bench_fig3b_reconstruction"
  "bench_fig3b_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
