file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_eigenfunctions.dir/bench_fig4_eigenfunctions.cpp.o"
  "CMakeFiles/bench_fig4_eigenfunctions.dir/bench_fig4_eigenfunctions.cpp.o.d"
  "bench_fig4_eigenfunctions"
  "bench_fig4_eigenfunctions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_eigenfunctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
