# Empty dependencies file for bench_fig4_eigenfunctions.
# This may be replaced when dependencies are built.
