file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ssta.dir/bench_table1_ssta.cpp.o"
  "CMakeFiles/bench_table1_ssta.dir/bench_table1_ssta.cpp.o.d"
  "bench_table1_ssta"
  "bench_table1_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
