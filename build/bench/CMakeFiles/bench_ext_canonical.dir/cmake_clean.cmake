file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_canonical.dir/bench_ext_canonical.cpp.o"
  "CMakeFiles/bench_ext_canonical.dir/bench_ext_canonical.cpp.o.d"
  "bench_ext_canonical"
  "bench_ext_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
