# Empty dependencies file for bench_ext_canonical.
# This may be replaced when dependencies are built.
