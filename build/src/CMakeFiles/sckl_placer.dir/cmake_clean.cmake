file(REMOVE_RECURSE
  "CMakeFiles/sckl_placer.dir/placer/fm_partitioner.cpp.o"
  "CMakeFiles/sckl_placer.dir/placer/fm_partitioner.cpp.o.d"
  "CMakeFiles/sckl_placer.dir/placer/hypergraph.cpp.o"
  "CMakeFiles/sckl_placer.dir/placer/hypergraph.cpp.o.d"
  "CMakeFiles/sckl_placer.dir/placer/recursive_placer.cpp.o"
  "CMakeFiles/sckl_placer.dir/placer/recursive_placer.cpp.o.d"
  "CMakeFiles/sckl_placer.dir/placer/wireload.cpp.o"
  "CMakeFiles/sckl_placer.dir/placer/wireload.cpp.o.d"
  "libsckl_placer.a"
  "libsckl_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
