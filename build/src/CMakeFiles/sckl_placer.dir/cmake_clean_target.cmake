file(REMOVE_RECURSE
  "libsckl_placer.a"
)
