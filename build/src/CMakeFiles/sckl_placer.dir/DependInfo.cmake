
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placer/fm_partitioner.cpp" "src/CMakeFiles/sckl_placer.dir/placer/fm_partitioner.cpp.o" "gcc" "src/CMakeFiles/sckl_placer.dir/placer/fm_partitioner.cpp.o.d"
  "/root/repo/src/placer/hypergraph.cpp" "src/CMakeFiles/sckl_placer.dir/placer/hypergraph.cpp.o" "gcc" "src/CMakeFiles/sckl_placer.dir/placer/hypergraph.cpp.o.d"
  "/root/repo/src/placer/recursive_placer.cpp" "src/CMakeFiles/sckl_placer.dir/placer/recursive_placer.cpp.o" "gcc" "src/CMakeFiles/sckl_placer.dir/placer/recursive_placer.cpp.o.d"
  "/root/repo/src/placer/wireload.cpp" "src/CMakeFiles/sckl_placer.dir/placer/wireload.cpp.o" "gcc" "src/CMakeFiles/sckl_placer.dir/placer/wireload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
