# Empty dependencies file for sckl_placer.
# This may be replaced when dependencies are built.
