file(REMOVE_RECURSE
  "libsckl_circuit.a"
)
