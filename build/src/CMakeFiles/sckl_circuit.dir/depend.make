# Empty dependencies file for sckl_circuit.
# This may be replaced when dependencies are built.
