file(REMOVE_RECURSE
  "CMakeFiles/sckl_circuit.dir/circuit/bench_parser.cpp.o"
  "CMakeFiles/sckl_circuit.dir/circuit/bench_parser.cpp.o.d"
  "CMakeFiles/sckl_circuit.dir/circuit/levelize.cpp.o"
  "CMakeFiles/sckl_circuit.dir/circuit/levelize.cpp.o.d"
  "CMakeFiles/sckl_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/sckl_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/sckl_circuit.dir/circuit/synthetic.cpp.o"
  "CMakeFiles/sckl_circuit.dir/circuit/synthetic.cpp.o.d"
  "libsckl_circuit.a"
  "libsckl_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
