
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_parser.cpp" "src/CMakeFiles/sckl_circuit.dir/circuit/bench_parser.cpp.o" "gcc" "src/CMakeFiles/sckl_circuit.dir/circuit/bench_parser.cpp.o.d"
  "/root/repo/src/circuit/levelize.cpp" "src/CMakeFiles/sckl_circuit.dir/circuit/levelize.cpp.o" "gcc" "src/CMakeFiles/sckl_circuit.dir/circuit/levelize.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/sckl_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/sckl_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/synthetic.cpp" "src/CMakeFiles/sckl_circuit.dir/circuit/synthetic.cpp.o" "gcc" "src/CMakeFiles/sckl_circuit.dir/circuit/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
