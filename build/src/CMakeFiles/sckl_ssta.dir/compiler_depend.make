# Empty compiler generated dependencies file for sckl_ssta.
# This may be replaced when dependencies are built.
