
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssta/canonical.cpp" "src/CMakeFiles/sckl_ssta.dir/ssta/canonical.cpp.o" "gcc" "src/CMakeFiles/sckl_ssta.dir/ssta/canonical.cpp.o.d"
  "/root/repo/src/ssta/experiment.cpp" "src/CMakeFiles/sckl_ssta.dir/ssta/experiment.cpp.o" "gcc" "src/CMakeFiles/sckl_ssta.dir/ssta/experiment.cpp.o.d"
  "/root/repo/src/ssta/mc_ssta.cpp" "src/CMakeFiles/sckl_ssta.dir/ssta/mc_ssta.cpp.o" "gcc" "src/CMakeFiles/sckl_ssta.dir/ssta/mc_ssta.cpp.o.d"
  "/root/repo/src/ssta/pce.cpp" "src/CMakeFiles/sckl_ssta.dir/ssta/pce.cpp.o" "gcc" "src/CMakeFiles/sckl_ssta.dir/ssta/pce.cpp.o.d"
  "/root/repo/src/ssta/yield.cpp" "src/CMakeFiles/sckl_ssta.dir/ssta/yield.cpp.o" "gcc" "src/CMakeFiles/sckl_ssta.dir/ssta/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_field.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_placer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
