file(REMOVE_RECURSE
  "CMakeFiles/sckl_ssta.dir/ssta/canonical.cpp.o"
  "CMakeFiles/sckl_ssta.dir/ssta/canonical.cpp.o.d"
  "CMakeFiles/sckl_ssta.dir/ssta/experiment.cpp.o"
  "CMakeFiles/sckl_ssta.dir/ssta/experiment.cpp.o.d"
  "CMakeFiles/sckl_ssta.dir/ssta/mc_ssta.cpp.o"
  "CMakeFiles/sckl_ssta.dir/ssta/mc_ssta.cpp.o.d"
  "CMakeFiles/sckl_ssta.dir/ssta/pce.cpp.o"
  "CMakeFiles/sckl_ssta.dir/ssta/pce.cpp.o.d"
  "CMakeFiles/sckl_ssta.dir/ssta/yield.cpp.o"
  "CMakeFiles/sckl_ssta.dir/ssta/yield.cpp.o.d"
  "libsckl_ssta.a"
  "libsckl_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
