file(REMOVE_RECURSE
  "libsckl_ssta.a"
)
