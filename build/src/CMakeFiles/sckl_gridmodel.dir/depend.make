# Empty dependencies file for sckl_gridmodel.
# This may be replaced when dependencies are built.
