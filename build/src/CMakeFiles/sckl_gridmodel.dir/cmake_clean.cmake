file(REMOVE_RECURSE
  "CMakeFiles/sckl_gridmodel.dir/gridmodel/grid_model.cpp.o"
  "CMakeFiles/sckl_gridmodel.dir/gridmodel/grid_model.cpp.o.d"
  "libsckl_gridmodel.a"
  "libsckl_gridmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_gridmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
