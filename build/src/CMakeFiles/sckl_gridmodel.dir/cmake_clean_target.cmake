file(REMOVE_RECURSE
  "libsckl_gridmodel.a"
)
