# Empty dependencies file for sckl_core.
# This may be replaced when dependencies are built.
