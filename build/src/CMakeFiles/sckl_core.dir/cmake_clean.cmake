file(REMOVE_RECURSE
  "CMakeFiles/sckl_core.dir/core/analytic_kle.cpp.o"
  "CMakeFiles/sckl_core.dir/core/analytic_kle.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/galerkin.cpp.o"
  "CMakeFiles/sckl_core.dir/core/galerkin.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/kle_field.cpp.o"
  "CMakeFiles/sckl_core.dir/core/kle_field.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/kle_solver.cpp.o"
  "CMakeFiles/sckl_core.dir/core/kle_solver.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/p1_galerkin.cpp.o"
  "CMakeFiles/sckl_core.dir/core/p1_galerkin.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/quadrature.cpp.o"
  "CMakeFiles/sckl_core.dir/core/quadrature.cpp.o.d"
  "CMakeFiles/sckl_core.dir/core/truncation.cpp.o"
  "CMakeFiles/sckl_core.dir/core/truncation.cpp.o.d"
  "libsckl_core.a"
  "libsckl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
