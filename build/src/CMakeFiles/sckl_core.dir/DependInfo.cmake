
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic_kle.cpp" "src/CMakeFiles/sckl_core.dir/core/analytic_kle.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/analytic_kle.cpp.o.d"
  "/root/repo/src/core/galerkin.cpp" "src/CMakeFiles/sckl_core.dir/core/galerkin.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/galerkin.cpp.o.d"
  "/root/repo/src/core/kle_field.cpp" "src/CMakeFiles/sckl_core.dir/core/kle_field.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/kle_field.cpp.o.d"
  "/root/repo/src/core/kle_solver.cpp" "src/CMakeFiles/sckl_core.dir/core/kle_solver.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/kle_solver.cpp.o.d"
  "/root/repo/src/core/p1_galerkin.cpp" "src/CMakeFiles/sckl_core.dir/core/p1_galerkin.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/p1_galerkin.cpp.o.d"
  "/root/repo/src/core/quadrature.cpp" "src/CMakeFiles/sckl_core.dir/core/quadrature.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/quadrature.cpp.o.d"
  "/root/repo/src/core/truncation.cpp" "src/CMakeFiles/sckl_core.dir/core/truncation.cpp.o" "gcc" "src/CMakeFiles/sckl_core.dir/core/truncation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
