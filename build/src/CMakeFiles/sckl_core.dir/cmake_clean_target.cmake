file(REMOVE_RECURSE
  "libsckl_core.a"
)
