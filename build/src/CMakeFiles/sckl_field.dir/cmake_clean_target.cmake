file(REMOVE_RECURSE
  "libsckl_field.a"
)
