file(REMOVE_RECURSE
  "CMakeFiles/sckl_field.dir/field/cholesky_sampler.cpp.o"
  "CMakeFiles/sckl_field.dir/field/cholesky_sampler.cpp.o.d"
  "CMakeFiles/sckl_field.dir/field/covariance_estimate.cpp.o"
  "CMakeFiles/sckl_field.dir/field/covariance_estimate.cpp.o.d"
  "CMakeFiles/sckl_field.dir/field/kle_sampler.cpp.o"
  "CMakeFiles/sckl_field.dir/field/kle_sampler.cpp.o.d"
  "CMakeFiles/sckl_field.dir/field/lhs.cpp.o"
  "CMakeFiles/sckl_field.dir/field/lhs.cpp.o.d"
  "libsckl_field.a"
  "libsckl_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
