
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/cholesky_sampler.cpp" "src/CMakeFiles/sckl_field.dir/field/cholesky_sampler.cpp.o" "gcc" "src/CMakeFiles/sckl_field.dir/field/cholesky_sampler.cpp.o.d"
  "/root/repo/src/field/covariance_estimate.cpp" "src/CMakeFiles/sckl_field.dir/field/covariance_estimate.cpp.o" "gcc" "src/CMakeFiles/sckl_field.dir/field/covariance_estimate.cpp.o.d"
  "/root/repo/src/field/kle_sampler.cpp" "src/CMakeFiles/sckl_field.dir/field/kle_sampler.cpp.o" "gcc" "src/CMakeFiles/sckl_field.dir/field/kle_sampler.cpp.o.d"
  "/root/repo/src/field/lhs.cpp" "src/CMakeFiles/sckl_field.dir/field/lhs.cpp.o" "gcc" "src/CMakeFiles/sckl_field.dir/field/lhs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
