# Empty compiler generated dependencies file for sckl_field.
# This may be replaced when dependencies are built.
