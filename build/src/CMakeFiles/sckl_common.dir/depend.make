# Empty dependencies file for sckl_common.
# This may be replaced when dependencies are built.
