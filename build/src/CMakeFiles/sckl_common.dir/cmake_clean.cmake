file(REMOVE_RECURSE
  "CMakeFiles/sckl_common.dir/common/cli.cpp.o"
  "CMakeFiles/sckl_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/sckl_common.dir/common/error.cpp.o"
  "CMakeFiles/sckl_common.dir/common/error.cpp.o.d"
  "CMakeFiles/sckl_common.dir/common/rng.cpp.o"
  "CMakeFiles/sckl_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/sckl_common.dir/common/statistics.cpp.o"
  "CMakeFiles/sckl_common.dir/common/statistics.cpp.o.d"
  "CMakeFiles/sckl_common.dir/common/table.cpp.o"
  "CMakeFiles/sckl_common.dir/common/table.cpp.o.d"
  "libsckl_common.a"
  "libsckl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
