file(REMOVE_RECURSE
  "libsckl_common.a"
)
