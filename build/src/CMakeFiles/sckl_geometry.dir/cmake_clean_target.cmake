file(REMOVE_RECURSE
  "libsckl_geometry.a"
)
