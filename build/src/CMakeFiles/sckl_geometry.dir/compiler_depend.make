# Empty compiler generated dependencies file for sckl_geometry.
# This may be replaced when dependencies are built.
