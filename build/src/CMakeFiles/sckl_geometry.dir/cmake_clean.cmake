file(REMOVE_RECURSE
  "CMakeFiles/sckl_geometry.dir/geometry/spatial_grid.cpp.o"
  "CMakeFiles/sckl_geometry.dir/geometry/spatial_grid.cpp.o.d"
  "CMakeFiles/sckl_geometry.dir/geometry/triangle.cpp.o"
  "CMakeFiles/sckl_geometry.dir/geometry/triangle.cpp.o.d"
  "libsckl_geometry.a"
  "libsckl_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
