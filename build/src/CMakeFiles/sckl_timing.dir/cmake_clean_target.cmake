file(REMOVE_RECURSE
  "libsckl_timing.a"
)
