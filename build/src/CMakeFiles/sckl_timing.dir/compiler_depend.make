# Empty compiler generated dependencies file for sckl_timing.
# This may be replaced when dependencies are built.
