
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/cell_library.cpp" "src/CMakeFiles/sckl_timing.dir/timing/cell_library.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/cell_library.cpp.o.d"
  "/root/repo/src/timing/critical_path.cpp" "src/CMakeFiles/sckl_timing.dir/timing/critical_path.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/critical_path.cpp.o.d"
  "/root/repo/src/timing/library_io.cpp" "src/CMakeFiles/sckl_timing.dir/timing/library_io.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/library_io.cpp.o.d"
  "/root/repo/src/timing/nldm.cpp" "src/CMakeFiles/sckl_timing.dir/timing/nldm.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/nldm.cpp.o.d"
  "/root/repo/src/timing/rc_tree.cpp" "src/CMakeFiles/sckl_timing.dir/timing/rc_tree.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/rc_tree.cpp.o.d"
  "/root/repo/src/timing/slack.cpp" "src/CMakeFiles/sckl_timing.dir/timing/slack.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/slack.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/sckl_timing.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/sta.cpp.o.d"
  "/root/repo/src/timing/stat_gate_model.cpp" "src/CMakeFiles/sckl_timing.dir/timing/stat_gate_model.cpp.o" "gcc" "src/CMakeFiles/sckl_timing.dir/timing/stat_gate_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_placer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
