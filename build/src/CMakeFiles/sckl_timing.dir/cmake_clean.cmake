file(REMOVE_RECURSE
  "CMakeFiles/sckl_timing.dir/timing/cell_library.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/cell_library.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/critical_path.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/critical_path.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/library_io.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/library_io.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/nldm.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/nldm.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/rc_tree.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/rc_tree.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/slack.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/slack.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/sta.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/sta.cpp.o.d"
  "CMakeFiles/sckl_timing.dir/timing/stat_gate_model.cpp.o"
  "CMakeFiles/sckl_timing.dir/timing/stat_gate_model.cpp.o.d"
  "libsckl_timing.a"
  "libsckl_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
