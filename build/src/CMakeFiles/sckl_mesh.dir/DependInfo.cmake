
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/delaunay.cpp" "src/CMakeFiles/sckl_mesh.dir/mesh/delaunay.cpp.o" "gcc" "src/CMakeFiles/sckl_mesh.dir/mesh/delaunay.cpp.o.d"
  "/root/repo/src/mesh/refine.cpp" "src/CMakeFiles/sckl_mesh.dir/mesh/refine.cpp.o" "gcc" "src/CMakeFiles/sckl_mesh.dir/mesh/refine.cpp.o.d"
  "/root/repo/src/mesh/structured_mesher.cpp" "src/CMakeFiles/sckl_mesh.dir/mesh/structured_mesher.cpp.o" "gcc" "src/CMakeFiles/sckl_mesh.dir/mesh/structured_mesher.cpp.o.d"
  "/root/repo/src/mesh/tri_mesh.cpp" "src/CMakeFiles/sckl_mesh.dir/mesh/tri_mesh.cpp.o" "gcc" "src/CMakeFiles/sckl_mesh.dir/mesh/tri_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
