# Empty dependencies file for sckl_mesh.
# This may be replaced when dependencies are built.
