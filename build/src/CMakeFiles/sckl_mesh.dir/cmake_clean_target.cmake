file(REMOVE_RECURSE
  "libsckl_mesh.a"
)
