file(REMOVE_RECURSE
  "CMakeFiles/sckl_mesh.dir/mesh/delaunay.cpp.o"
  "CMakeFiles/sckl_mesh.dir/mesh/delaunay.cpp.o.d"
  "CMakeFiles/sckl_mesh.dir/mesh/refine.cpp.o"
  "CMakeFiles/sckl_mesh.dir/mesh/refine.cpp.o.d"
  "CMakeFiles/sckl_mesh.dir/mesh/structured_mesher.cpp.o"
  "CMakeFiles/sckl_mesh.dir/mesh/structured_mesher.cpp.o.d"
  "CMakeFiles/sckl_mesh.dir/mesh/tri_mesh.cpp.o"
  "CMakeFiles/sckl_mesh.dir/mesh/tri_mesh.cpp.o.d"
  "libsckl_mesh.a"
  "libsckl_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
