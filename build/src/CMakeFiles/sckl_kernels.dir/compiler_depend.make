# Empty compiler generated dependencies file for sckl_kernels.
# This may be replaced when dependencies are built.
