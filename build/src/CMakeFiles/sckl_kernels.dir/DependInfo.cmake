
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/covariance_kernel.cpp" "src/CMakeFiles/sckl_kernels.dir/kernels/covariance_kernel.cpp.o" "gcc" "src/CMakeFiles/sckl_kernels.dir/kernels/covariance_kernel.cpp.o.d"
  "/root/repo/src/kernels/extraction.cpp" "src/CMakeFiles/sckl_kernels.dir/kernels/extraction.cpp.o" "gcc" "src/CMakeFiles/sckl_kernels.dir/kernels/extraction.cpp.o.d"
  "/root/repo/src/kernels/kernel_fit.cpp" "src/CMakeFiles/sckl_kernels.dir/kernels/kernel_fit.cpp.o" "gcc" "src/CMakeFiles/sckl_kernels.dir/kernels/kernel_fit.cpp.o.d"
  "/root/repo/src/kernels/kernel_library.cpp" "src/CMakeFiles/sckl_kernels.dir/kernels/kernel_library.cpp.o" "gcc" "src/CMakeFiles/sckl_kernels.dir/kernels/kernel_library.cpp.o.d"
  "/root/repo/src/kernels/psd_check.cpp" "src/CMakeFiles/sckl_kernels.dir/kernels/psd_check.cpp.o" "gcc" "src/CMakeFiles/sckl_kernels.dir/kernels/psd_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
