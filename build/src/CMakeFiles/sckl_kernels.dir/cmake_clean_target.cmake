file(REMOVE_RECURSE
  "libsckl_kernels.a"
)
