file(REMOVE_RECURSE
  "CMakeFiles/sckl_kernels.dir/kernels/covariance_kernel.cpp.o"
  "CMakeFiles/sckl_kernels.dir/kernels/covariance_kernel.cpp.o.d"
  "CMakeFiles/sckl_kernels.dir/kernels/extraction.cpp.o"
  "CMakeFiles/sckl_kernels.dir/kernels/extraction.cpp.o.d"
  "CMakeFiles/sckl_kernels.dir/kernels/kernel_fit.cpp.o"
  "CMakeFiles/sckl_kernels.dir/kernels/kernel_fit.cpp.o.d"
  "CMakeFiles/sckl_kernels.dir/kernels/kernel_library.cpp.o"
  "CMakeFiles/sckl_kernels.dir/kernels/kernel_library.cpp.o.d"
  "CMakeFiles/sckl_kernels.dir/kernels/psd_check.cpp.o"
  "CMakeFiles/sckl_kernels.dir/kernels/psd_check.cpp.o.d"
  "libsckl_kernels.a"
  "libsckl_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
