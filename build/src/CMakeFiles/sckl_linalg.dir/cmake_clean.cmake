file(REMOVE_RECURSE
  "CMakeFiles/sckl_linalg.dir/linalg/blas.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/blas.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/generalized_eigen.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/generalized_eigen.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/jacobi_eigen.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/lanczos.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/lanczos.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/sckl_linalg.dir/linalg/symmetric_eigen.cpp.o"
  "CMakeFiles/sckl_linalg.dir/linalg/symmetric_eigen.cpp.o.d"
  "libsckl_linalg.a"
  "libsckl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sckl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
