# Empty compiler generated dependencies file for sckl_linalg.
# This may be replaced when dependencies are built.
