
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/blas.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/blas.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/generalized_eigen.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/generalized_eigen.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/generalized_eigen.cpp.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/lanczos.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cpp" "src/CMakeFiles/sckl_linalg.dir/linalg/symmetric_eigen.cpp.o" "gcc" "src/CMakeFiles/sckl_linalg.dir/linalg/symmetric_eigen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sckl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
