file(REMOVE_RECURSE
  "libsckl_linalg.a"
)
