# Empty dependencies file for ssta_flow.
# This may be replaced when dependencies are built.
