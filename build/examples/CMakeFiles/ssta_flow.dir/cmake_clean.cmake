file(REMOVE_RECURSE
  "CMakeFiles/ssta_flow.dir/ssta_flow.cpp.o"
  "CMakeFiles/ssta_flow.dir/ssta_flow.cpp.o.d"
  "ssta_flow"
  "ssta_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
