file(REMOVE_RECURSE
  "CMakeFiles/mesh_convergence.dir/mesh_convergence.cpp.o"
  "CMakeFiles/mesh_convergence.dir/mesh_convergence.cpp.o.d"
  "mesh_convergence"
  "mesh_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
