file(REMOVE_RECURSE
  "CMakeFiles/measurement_extraction.dir/measurement_extraction.cpp.o"
  "CMakeFiles/measurement_extraction.dir/measurement_extraction.cpp.o.d"
  "measurement_extraction"
  "measurement_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
