# Empty dependencies file for measurement_extraction.
# This may be replaced when dependencies are built.
