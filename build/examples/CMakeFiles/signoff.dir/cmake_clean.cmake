file(REMOVE_RECURSE
  "CMakeFiles/signoff.dir/signoff.cpp.o"
  "CMakeFiles/signoff.dir/signoff.cpp.o.d"
  "signoff"
  "signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
