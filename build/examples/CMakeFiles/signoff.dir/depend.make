# Empty dependencies file for signoff.
# This may be replaced when dependencies are built.
