// Ablation bench for the design choices the paper calls out in Sec. 4:
//  1. Quadrature order: the paper uses the 1-point centroid rule (eq. 21)
//     and notes higher-order rules "would result in more accurate
//     estimates". Quantify: eigenvalue error vs the analytic solution of
//     the separable L1 exponential kernel for 1/3/7-point rules.
//  2. Mesh family: structured diagonal vs structured cross vs refined
//     Delaunay, eigenvalue accuracy at comparable n.
//  3. Eigensolver backend: dense QL vs Lanczos agreement and runtime.
//  4. Kernel realism: the analytically-convenient radial-magnitude kernel
//     of [2] vs the Gaussian — spatial correlation structure at equal
//     nominal decay (the paper's Sec. 3.1 criticism, quantified).
//
// Flags: --n=576 --modes=8 --c=1.0
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "obs/export.h"
#include "obs/stopwatch.h"
#include "common/table.h"
#include "core/analytic_kle.h"
#include "core/kle_solver.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 576));
  const auto modes = static_cast<std::size_t>(flags.get_int("modes", 8));
  const double c = flags.get_double("c", 1.0);

  const kernels::SeparableL1Kernel kernel(c);
  const auto analytic = core::analytic_separable_kle_2d(c, 1.0, modes);

  auto max_eigenvalue_error = [&](const mesh::TriMesh& mesh,
                                  core::QuadratureRule rule) {
    core::KleOptions options;
    options.num_eigenpairs = modes;
    options.quadrature = rule;
    const core::KleResult kle = core::solve_kle(mesh, kernel, options);
    double worst = 0.0;
    for (std::size_t j = 0; j < modes; ++j)
      worst = std::max(worst, std::abs(kle.eigenvalue(j) -
                                       analytic[j].lambda) /
                                  analytic[0].lambda);
    return worst;
  };

  // 1. Quadrature order sweep on the same mesh.
  std::printf("# Ablation 1: quadrature order (separable L1 kernel, "
              "analytic reference, n ~ %zu)\n", n);
  const mesh::TriMesh base = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), n, mesh::StructuredPattern::kCross);
  TextTable quad;
  quad.set_header({"rule", "max rel eigenvalue error", "assembly cost"});
  for (const auto& [rule, name] :
       {std::pair{core::QuadratureRule::kCentroid1, "centroid-1 (paper)"},
        std::pair{core::QuadratureRule::kSymmetric3, "symmetric-3"},
        std::pair{core::QuadratureRule::kSymmetric7, "symmetric-7"}}) {
    obs::Stopwatch sw;
    const double error = max_eigenvalue_error(base, rule);
    quad.add_row({name, format_scientific(error),
                  format_double(sw.seconds(), 2) + "s"});
  }
  std::fputs(quad.to_string().c_str(), stdout);

  // 2. Mesh family sweep at the centroid rule.
  std::printf("\n# Ablation 2: mesh family (centroid rule)\n");
  TextTable mesh_table;
  mesh_table.set_header({"mesh", "n", "min angle", "max rel error"});
  const mesh::TriMesh diag = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), n,
      mesh::StructuredPattern::kDiagonal);
  const mesh::TriMesh cross = base;
  const mesh::TriMesh delaunay = mesh::refined_delaunay_mesh(
      geometry::BoundingBox::unit_die(),
      {.max_area = 4.0 / static_cast<double>(n) * 2.0, .seed = 5});
  for (const auto& [mesh_ref, name] :
       {std::pair<const mesh::TriMesh&, const char*>{diag, "structured diag"},
        {cross, "structured cross"},
        {delaunay, "refined Delaunay"}}) {
    mesh_table.add_row(
        {name, std::to_string(mesh_ref.num_triangles()),
         format_double(mesh_ref.quality().min_angle_degrees, 1),
         format_scientific(max_eigenvalue_error(
             mesh_ref, core::QuadratureRule::kCentroid1))});
  }
  std::fputs(mesh_table.to_string().c_str(), stdout);

  // 3. Backend agreement + runtime.
  std::printf("\n# Ablation 3: eigensolver backend (Gaussian kernel)\n");
  const kernels::GaussianKernel gauss(2.33);
  TextTable backend;
  backend.set_header({"backend", "lambda_1", "lambda_25", "seconds"});
  for (const auto& [kind, name] :
       {std::pair{core::KleBackend::kDense, "dense QL"},
        std::pair{core::KleBackend::kLanczos, "Lanczos"}}) {
    core::KleOptions options;
    options.num_eigenpairs = 25;
    options.backend = kind;
    obs::Stopwatch sw;
    const core::KleResult kle = core::solve_kle(base, gauss, options);
    backend.add_row({name, format_scientific(kle.eigenvalue(0)),
                     format_scientific(kle.eigenvalue(24)),
                     format_double(sw.seconds(), 3)});
  }
  std::fputs(backend.to_string().c_str(), stdout);

  // 4. Kernel realism: correlation between equidistant point pairs.
  std::printf("\n# Ablation 4: radial-magnitude kernel [2] vs Gaussian — "
              "correlation of two pairs at equal separation sqrt(2)\n");
  const kernels::RadialMagnitudeKernel radial(2.33);
  TextTable realism;
  realism.set_header({"kernel", "K((1,0),(0,1))", "K((0.5,0),(0.5,1.41))"});
  realism.add_row({"gaussian",
                   format_double(gauss({1, 0}, {0, 1}), 4),
                   format_double(gauss({0.5, 0}, {0.5, 1.4142}), 4)});
  realism.add_row({"radial-magnitude [2]",
                   format_double(radial({1, 0}, {0, 1}), 4),
                   format_double(radial({0.5, 0}, {0.5, 1.4142}), 4)});
  std::fputs(realism.to_string().c_str(), stdout);
  std::printf("# the [2] kernel reports perfect correlation for the first "
              "pair (same radius) — physically wrong, as Sec. 3.1 argues\n");
  return 0;
}
