// Fig. 1 of the paper:
//  (a) the Gaussian covariance kernel K(x, 0) over the normalized die,
//  (b) two random outcomes of the normalized parameter field across the
//      chip, drawn from the KLE of that kernel.
// Prints both as grid series (x, y, value) suitable for surface plotting.
//
// Flags: --c=<decay> (default: the paper's 2-D linear-cone fit)
//        --grid=<points per axis> (default 17)
//        --r=<eigenpairs for the outcome sampler> (default 25)
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/kle_field.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const double c = flags.get_double("c", kernels::paper_gaussian_c());
  const long grid = flags.get_int("grid", 17);
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));

  const kernels::GaussianKernel kernel(c);
  std::printf("# Fig 1(a): %s over D = [-1,1]^2, x fixed at the origin\n",
              kernel.name().c_str());

  TextTable surface;
  surface.set_header({"y1", "y2", "K(0, y)"});
  for (long i = 0; i < grid; ++i) {
    for (long j = 0; j < grid; ++j) {
      const double y1 = -1.0 + 2.0 * static_cast<double>(i) /
                                   static_cast<double>(grid - 1);
      const double y2 = -1.0 + 2.0 * static_cast<double>(j) /
                                   static_cast<double>(grid - 1);
      surface.add_numeric_row({y1, y2, kernel({0.0, 0.0}, {y1, y2})});
    }
  }
  std::fputs(surface.to_string().c_str(), stdout);

  std::printf("\n# Fig 1(b): two outcomes of the normalized field (r = %zu"
              " KLE random variables)\n",
              r);
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions options;
  options.num_eigenpairs = r;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);

  std::vector<geometry::Point2> probes;
  for (long i = 0; i < grid; ++i)
    for (long j = 0; j < grid; ++j)
      probes.push_back({-0.99 + 1.98 * static_cast<double>(i) /
                                    static_cast<double>(grid - 1),
                        -0.99 + 1.98 * static_cast<double>(j) /
                                    static_cast<double>(grid - 1)});
  const core::KleField field(kle, r, probes);

  Rng rng(flags.get_int("seed", 2008));
  TextTable outcomes;
  outcomes.set_header({"x", "y", "outcome1", "outcome2"});
  linalg::Vector sample1;
  linalg::Vector sample2;
  field.reconstruct(rng.normal_vector(r), sample1);
  field.reconstruct(rng.normal_vector(r), sample2);
  for (std::size_t p = 0; p < probes.size(); ++p)
    outcomes.add_numeric_row(
        {probes[p].x, probes[p].y, sample1[p], sample2[p]});
  std::fputs(outcomes.to_string().c_str(), stdout);
  std::printf("\n# mesh: n = %zu triangles, min angle %.1f deg\n",
              mesh.num_triangles(), mesh.quality().min_angle_degrees);
  return 0;
}
