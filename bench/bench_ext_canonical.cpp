// Extension bench: canonical first-order SSTA vs Monte Carlo SSTA.
//
// The paper positions the KLE's uncorrelated RVs as the natural parameter
// basis for block-based SSTA engines [5][6]; this bench runs our canonical
// (Clark-max) engine on that basis and compares distribution accuracy and
// runtime against the Monte Carlo reference across the ISCAS set:
//   - mean/sigma relative errors of the worst-delay distribution,
//   - one canonical propagation vs N Monte Carlo evaluations.
//
// Flags: --samples=2000 --r=25 --max-gates=3000
#include <cmath>
#include <cstdio>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "placer/recursive_placer.h"
#include "ssta/canonical.h"
#include "ssta/mc_ssta.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("samples", 1000));
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));
  const auto max_gates =
      static_cast<std::size_t>(flags.get_int("max-gates", 2500));

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = std::max<std::size_t>(2 * r, 50);
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);

  std::printf("# Canonical SSTA (Clark max on %zu KLE RVs x 4 parameters) "
              "vs Monte Carlo (%zu samples)\n",
              r, samples);
  TextTable table;
  table.set_header({"Circuit", "Ng", "MC mean", "canon mean", "e_mu(%)",
                    "MC sigma", "canon sigma", "e_sigma(%)", "MC(s)",
                    "canon(s)"});

  for (const auto& info : circuit::paper_circuit_table()) {
    if (info.num_gates > max_gates) continue;
    const circuit::Netlist netlist = circuit::make_paper_circuit(info.name);
    const placer::Placement placement = placer::place(netlist);
    const timing::CellLibrary library = timing::CellLibrary::default_90nm();
    const timing::StaEngine engine(netlist, placement, library);
    const auto locations = placement.physical_locations(netlist);
    const field::KleFieldSampler sampler(kle, r, locations);
    const linalg::Matrix& g = sampler.field().location_operator();

    const ssta::CanonicalSstaResult canonical =
        ssta::run_canonical_ssta(engine, {&g, &g, &g, &g});

    ssta::McSstaOptions mc_options;
    mc_options.num_samples = samples;
    const ssta::McSstaResult mc = run_monte_carlo_ssta(
        engine, {&sampler, &sampler, &sampler, &sampler}, mc_options);
    const double mc_time = mc.sampling_seconds + mc.sta_seconds;

    table.add_row(
        {info.name, std::to_string(info.num_gates),
         format_double(mc.worst_delay.mean(), 1),
         format_double(canonical.worst_delay.mean(), 1),
         format_double(100.0 *
                           std::abs(canonical.worst_delay.mean() -
                                    mc.worst_delay.mean()) /
                           mc.worst_delay.mean(),
                       3),
         format_double(mc.worst_delay.stddev(), 2),
         format_double(canonical.worst_delay.sigma(), 2),
         format_double(100.0 *
                           std::abs(canonical.worst_delay.sigma() -
                                    mc.worst_delay.stddev()) /
                           mc.worst_delay.stddev(),
                       2),
         format_double(mc_time, 3), format_double(canonical.seconds, 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("# expectations: e_mu ~ fraction of a percent (Clark max bias"
              " + linearization), e_sigma single-digit percent, canonical"
              " runtime orders of magnitude below MC\n");
  return 0;
}
