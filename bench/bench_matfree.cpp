// Matrix-free KLE scaling bench (DESIGN.md §14): demonstrates the
// hierarchical operator solving eigenpairs at triangle counts far past the
// dense ceiling, under a bounded memory footprint, and measures what that
// costs.
//
// Modes:
//   bench_matfree --smoke [--json=PATH] [--max-rss-mb=MB]
//     CI gate. (1) Accuracy: at n ~ 1.5k, matrix-free eigenvalues must match
//     the densely assembled Lanczos solve to <= 1e-6 relative on every
//     reported pair. (2) Memory: a matrix-free solve at n ~ 2e4 — past the
//     point where the dense matrix alone would be 3.2 GB — must finish with
//     process peak RSS (getrusage) under the ceiling. Exit code 1 on any
//     violation, so ctest/CI fail loudly.
//
//   bench_matfree --sizes=10000,100000,1000000 [--pairs=M] [--json=PATH]
//     Scaling sweep: one matrix-free solve per n, recording build/solve wall
//     time, compression statistics, peak RSS, and (for sizes where the dense
//     assembly is still feasible, <= --dense-max-n) the max relative
//     eigenvalue error against the assembled-matrix Lanczos reference.
//
// Every measurement appends one JSON-lines record to --json with machine
// context (hardware threads, SCKL_THREADS, governor), feeding the
// BENCH_matfree.json perf trajectory and the EXPERIMENTS.md accuracy table.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/cli.h"
#include "common/machine.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"
#include "obs/stopwatch.h"

namespace {

using namespace sckl;

/// Peak resident set size of this process in MiB (0 when unknown).
double max_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

struct SolveRecord {
  std::size_t n = 0;
  std::size_t pairs = 0;
  std::string op;          // which operator produced the spectrum
  double build_solve_s = 0.0;
  std::size_t iterations = 0;
  core::KleSolveInfo info;
  linalg::Vector eigenvalues;
  double lambda_err_max_rel = -1.0;  // vs dense reference; -1 = not measured
};

/// One matrix-free solve on a structured mesh of ~target triangles.
SolveRecord matfree_solve(std::size_t target, std::size_t pairs,
                          double aca_tol, std::size_t leaf,
                          std::size_t max_subspace) {
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), target);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());

  core::KleOptions options;
  options.num_eigenpairs = pairs;
  options.operator_mode = core::OperatorMode::kMatrixFree;
  options.matfree.aca_tolerance = aca_tol;
  options.matfree.leaf_size = leaf;
  options.matfree.lanczos_max_subspace = max_subspace;

  SolveRecord record;
  record.n = mesh.num_triangles();
  record.pairs = pairs;
  obs::Stopwatch timer;
  const core::KleResult kle =
      core::solve_kle(mesh, kernel, options, &record.info);
  record.build_solve_s = timer.seconds();
  record.op = record.info.operator_used;
  record.iterations = record.info.lanczos.iterations;
  record.eigenvalues = kle.eigenvalues();
  return record;
}

/// Max relative eigenvalue error vs the densely assembled Lanczos solve on
/// the same mesh size.
///
/// The square-die Gaussian spectrum has exactly degenerate pairs (symmetric
/// mode swaps), and single-vector Lanczos sees only one Ritz copy of an
/// exact multiplicity while the ACA-perturbed operator has the degeneracy
/// split so both copies surface. A positional pair-by-pair comparison
/// therefore breaks at any cluster straddling the truncation cut. Instead,
/// the dense reference is solved with guard pairs past the cut and each
/// matrix-free eigenvalue is scored against the closest reference value —
/// every converged Ritz value is provably within its residual of *some*
/// exact eigenvalue, so closest-match measures operator accuracy without
/// the multiplicity-ordering artifact. Pairs decayed below 1e-9 * lambda_0
/// are compared against lambda_0 instead (they sit inside both solvers'
/// noise floors).
double dense_reference_error(const SolveRecord& record, std::size_t target) {
  const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
      geometry::BoundingBox::unit_die(), target);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  constexpr std::size_t kGuardPairs = 6;
  core::KleOptions options;
  options.num_eigenpairs =
      std::min(record.pairs + kGuardPairs, mesh.num_triangles());
  options.backend = core::KleBackend::kLanczos;
  const core::KleResult dense = core::solve_kle(mesh, kernel, options);

  const double lead = dense.eigenvalue(0);
  double worst = 0.0;
  for (std::size_t j = 0; j < record.pairs; ++j) {
    const double got = record.eigenvalues[j];
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < dense.num_eigenpairs(); ++k) {
      const double ref = dense.eigenvalue(k);
      const double scale = ref > 1e-9 * lead ? ref : lead;
      best = std::min(best, std::abs(got - ref) / scale);
    }
    worst = std::max(worst, best);
  }
  return worst;
}

void append_json(std::FILE* json, const SolveRecord& r, double rss_mb,
                 double aca_tol, const std::string& machine) {
  if (json == nullptr) return;
  const auto& h = r.info.hmat;
  std::fprintf(
      json,
      "{\"bench\": \"matfree\", \"n\": %zu, \"pairs\": %zu, "
      "\"operator\": \"%s\", \"aca_tol\": %.3g, \"wall_s\": %.3f, "
      "\"iterations\": %zu, \"lowrank_blocks\": %zu, \"dense_blocks\": %zu, "
      "\"compressed_mb\": %.1f, \"compression\": %.3g, \"mean_rank\": %.1f, "
      "\"max_rank\": %zu, \"rank_cap_hits\": %zu, \"max_rss_mb\": %.1f, "
      "\"lambda0\": %.6g, \"lambda_err_max_rel\": %.3g%s}\n",
      r.n, r.pairs, r.op.c_str(), aca_tol, r.build_solve_s, r.iterations,
      h.lowrank_blocks, h.dense_blocks,
      static_cast<double>(h.compressed_bytes) / (1024.0 * 1024.0),
      h.compression, h.mean_rank, h.max_rank, h.rank_cap_hits, rss_mb,
      r.eigenvalues.empty() ? 0.0 : r.eigenvalues[0], r.lambda_err_max_rel,
      machine.empty() ? "" : (", " + machine).c_str());
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    sizes.push_back(static_cast<std::size_t>(
        std::strtoul(csv.substr(start, end - start).c_str(), nullptr, 10)));
    start = end + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const std::size_t pairs =
      static_cast<std::size_t>(flags.get_int("pairs", 8));
  const double aca_tol = flags.get_double("aca-tol", 1e-8);
  const std::size_t leaf =
      static_cast<std::size_t>(flags.get_int("leaf", 64));
  const std::size_t max_subspace =
      static_cast<std::size_t>(flags.get_int("max-subspace", 0));
  const double rss_ceiling_mb = flags.get_double("max-rss-mb", 1500.0);
  const std::size_t dense_max_n =
      static_cast<std::size_t>(flags.get_int("dense-max-n", 20'000));
  const std::string json_path = flags.get_string("json", "");

  std::FILE* json = nullptr;
  if (!json_path.empty()) {
    json = std::fopen(json_path.c_str(), "a");
    if (json == nullptr) {
      std::fprintf(stderr, "bench_matfree: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  const std::string machine =
      machine_context_json_fields(read_machine_context());
  bool failed = false;

  if (smoke) {
    // Gate 1: eigenvalue accuracy against the dense-assembled solve.
    SolveRecord small = matfree_solve(1500, 25, 1e-9, 24, 0);
    small.lambda_err_max_rel = dense_reference_error(small, 1500);
    std::printf("[accuracy] n=%zu operator=%s wall=%.2fs "
                "max_rel_lambda_err=%.3g\n",
                small.n, small.op.c_str(), small.build_solve_s,
                small.lambda_err_max_rel);
    if (small.op != "hmat" || small.lambda_err_max_rel > 1e-6) {
      std::fprintf(stderr,
                   "bench_matfree: accuracy gate FAILED (operator %s, max "
                   "relative eigenvalue error %.3g > 1e-6)\n",
                   small.op.c_str(), small.lambda_err_max_rel);
      failed = true;
    }
    append_json(json, small, max_rss_mb(), 1e-9, machine);

    // Gate 2: bounded memory past the dense ceiling. At n ~ 2e4 the dense
    // matrix alone would be 8 n^2 ~ 3.2 GB; peak RSS must stay far under.
    SolveRecord big = matfree_solve(20'000, pairs, aca_tol, leaf, 64);
    const double rss = max_rss_mb();
    std::printf("[memory]   n=%zu operator=%s wall=%.2fs peak_rss=%.0fMiB "
                "(ceiling %.0f)\n",
                big.n, big.op.c_str(), big.build_solve_s, rss, rss_ceiling_mb);
    if (big.op != "hmat" || (rss > 0.0 && rss > rss_ceiling_mb)) {
      std::fprintf(stderr,
                   "bench_matfree: memory gate FAILED (operator %s, peak "
                   "RSS %.0f MiB > ceiling %.0f MiB)\n",
                   big.op.c_str(), rss, rss_ceiling_mb);
      failed = true;
    }
    append_json(json, big, rss, aca_tol, machine);
  } else {
    const std::vector<std::size_t> sizes =
        parse_sizes(flags.get_string("sizes", "10000,100000,1000000"));
    for (const std::size_t n : sizes) {
      SolveRecord record = matfree_solve(n, pairs, aca_tol, leaf,
                                         max_subspace);
      if (record.n <= dense_max_n)
        record.lambda_err_max_rel = dense_reference_error(record, n);
      const double rss = max_rss_mb();
      std::printf(
          "n=%zu operator=%s wall=%.2fs iters=%zu compressed=%.1fMiB "
          "(%.4fx dense) peak_rss=%.0fMiB lambda_err=%.3g\n",
          record.n, record.op.c_str(), record.build_solve_s,
          record.iterations,
          static_cast<double>(record.info.hmat.compressed_bytes) /
              (1024.0 * 1024.0),
          record.info.hmat.compression, rss, record.lambda_err_max_rel);
      append_json(json, record, rss, aca_tol, machine);
    }
  }

  if (json != nullptr) std::fclose(json);
  return failed ? 1 : 0;
}
