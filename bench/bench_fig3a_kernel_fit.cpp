// Fig. 3(a) of the paper: best fits of the Gaussian and exponential kernel
// families to the measurement-supported linear (cone) kernel of Friedberg
// [12] in 1-D, plus the 2-D radially-weighted fit the paper uses to choose
// the Gaussian decay rate c. Prints the fitted parameters, the integrated
// squared errors (Gaussian must win, as in the paper), and the three
// profiles as a plottable series.
//
// Flags: --rho=<cone radius> (default 1 = half the normalized chip length)
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"

int main(int argc, char** argv) {
  using namespace sckl;
  using kernels::FitWeight;
  using kernels::RadialProfile;

  const CliFlags flags(argc, argv);
  const double rho = flags.get_double("rho", 1.0);
  const double v_max = 2.0;  // plotted separation range, as in Fig. 3a

  const kernels::LinearConeKernel cone(rho);
  const RadialProfile target = [&cone](double v) { return cone.radial(v); };
  const auto gaussian_family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  const auto exponential_family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v); };
  };

  const auto g1 = kernels::fit_radial_parameter(gaussian_family, target,
                                                v_max, 0.05, 50.0);
  const auto e1 = kernels::fit_radial_parameter(exponential_family, target,
                                                v_max, 0.05, 50.0);
  std::printf("# Fig 3(a): 1-D least-squares fits to linear cone (rho=%g)\n",
              rho);
  TextTable fits;
  fits.set_header({"family", "fitted c", "integrated SSE"});
  fits.add_row({"gaussian", format_double(g1.parameter),
                format_scientific(g1.sse)});
  fits.add_row({"exponential", format_double(e1.parameter),
                format_scientific(e1.sse)});
  std::fputs(fits.to_string().c_str(), stdout);
  std::printf("# paper claim check: gaussian SSE %s exponential SSE\n\n",
              g1.sse < e1.sse ? "<" : ">=(UNEXPECTED)");

  TextTable profiles;
  profiles.set_header({"v", "linear", "gaussian_fit", "exponential_fit"});
  for (double v = 0.0; v <= v_max + 1e-9; v += 0.05)
    profiles.add_numeric_row({v, target(v), gaussian_family(g1.parameter)(v),
                              exponential_family(e1.parameter)(v)});
  std::fputs(profiles.to_string().c_str(), stdout);

  const double c2d = kernels::paper_gaussian_c(rho);
  std::printf("\n# 2-D (radially weighted) Gaussian fit used by the paper's"
              " experiments: c = %.4f\n",
              c2d);
  return 0;
}
