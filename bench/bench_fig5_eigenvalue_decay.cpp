// Fig. 5 of the paper: the rapid decay of the KLE eigenvalues of the
// Gaussian kernel, and the truncation rule
//   lambda_200 (n - 200) + sum_{i=r+1}^{200} lambda_i <= 0.01 sum_{i=1}^r lambda_i
// that selects r = 25 on the paper's setup. Prints the first m eigenvalues,
// the discarded-variance bound per candidate r, and the selected r.
//
// Flags: --m=200 --epsilon=0.01 --area-fraction=0.001 --c=<decay>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "core/truncation.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto m = static_cast<std::size_t>(flags.get_int("m", 200));
  const double epsilon = flags.get_double("epsilon", 0.01);
  const double area_fraction = flags.get_double("area-fraction", 0.001);
  const double c = flags.get_double("c", kernels::paper_gaussian_c());

  const kernels::GaussianKernel kernel(c);
  const mesh::TriMesh mesh =
      mesh::paper_mesh(geometry::BoundingBox::unit_die(), area_fraction);
  std::printf("# Fig 5: eigenvalue decay of %s, n=%zu, m=%zu computed\n",
              kernel.name().c_str(), mesh.num_triangles(), m);

  core::KleOptions options;
  options.num_eigenpairs = m;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);

  TextTable decay;
  decay.set_header({"j", "lambda_j"});
  for (std::size_t j = 0; j < kle.num_eigenpairs(); ++j)
    decay.add_row({std::to_string(j + 1),
                   format_scientific(kle.eigenvalue(j), 6)});
  std::fputs(decay.to_string().c_str(), stdout);

  const std::size_t r = core::select_truncation(
      kle.eigenvalues(), mesh.num_triangles(), epsilon);
  std::printf("\n# truncation-rule trace (epsilon = %g):\n", epsilon);
  TextTable trace;
  trace.set_header({"r", "discarded bound", "retained", "ratio"});
  double retained = 0.0;
  for (std::size_t rr = 1; rr <= std::min<std::size_t>(m, r + 10); ++rr) {
    retained += kle.eigenvalue(rr - 1);
    const double bound = core::discarded_variance_bound(
        kle.eigenvalues(), mesh.num_triangles(), rr);
    trace.add_row({std::to_string(rr), format_scientific(bound),
                   format_double(retained), format_scientific(bound / retained)});
  }
  std::fputs(trace.to_string().c_str(), stdout);
  std::printf("\n# selected r = %zu   (paper: r = 25 at n = 1546)\n", r);
  return 0;
}
