// Extension bench: P0 (paper) vs P1 (higher-order) Galerkin basis.
//
// Sec. 4.2 of the paper claims higher-order bases "would result in more
// accurate estimates of the eigenpairs" at no structural cost. Quantified
// here on the separable L1 exponential kernel (the analytic oracle):
//   - eigenvalue error vs mesh resolution for both bases,
//   - pointwise kernel reconstruction error at off-centroid locations
//     (where P0 pays its O(h) staircase penalty),
//   - assembly + solve runtime.
//
// Flags: --modes=6 --c=1.0
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "obs/export.h"
#include "common/rng.h"
#include "obs/stopwatch.h"
#include "common/table.h"
#include "core/analytic_kle.h"
#include "core/kle_solver.h"
#include "core/p1_galerkin.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  const auto modes = static_cast<std::size_t>(flags.get_int("modes", 6));
  const double c = flags.get_double("c", 1.0);

  const kernels::SeparableL1Kernel kernel(c);
  const auto analytic = core::analytic_separable_kle_2d(c, 1.0, modes);

  std::printf("# P0 vs P1 Galerkin: eigenvalue error vs analytic "
              "(separable exp kernel, c=%g, %zu modes)\n",
              c, modes);
  TextTable table;
  table.set_header({"grid", "P0 n", "P0 err", "P0 time", "P1 verts",
                    "P1 err", "P1 time"});
  for (std::size_t grid : {4u, 8u, 12u, 16u}) {
    const mesh::TriMesh mesh =
        mesh::structured_mesh(geometry::BoundingBox::unit_die(), grid, grid,
                              mesh::StructuredPattern::kCross);
    obs::Stopwatch t0;
    core::KleOptions p0_options;
    p0_options.num_eigenpairs = modes;
    p0_options.backend = core::KleBackend::kDense;
    const core::KleResult p0 = core::solve_kle(mesh, kernel, p0_options);
    const double p0_time = t0.seconds();

    obs::Stopwatch t1;
    core::P1KleOptions p1_options;
    p1_options.num_eigenpairs = modes;
    const core::P1KleResult p1 = core::solve_p1_kle(mesh, kernel, p1_options);
    const double p1_time = t1.seconds();

    double p0_err = 0.0;
    double p1_err = 0.0;
    for (std::size_t j = 0; j < modes; ++j) {
      p0_err = std::max(p0_err, std::abs(p0.eigenvalue(j) -
                                         analytic[j].lambda) /
                                    analytic[0].lambda);
      p1_err = std::max(p1_err, std::abs(p1.eigenvalue(j) -
                                         analytic[j].lambda) /
                                    analytic[0].lambda);
    }
    table.add_row({std::to_string(grid) + "x" + std::to_string(grid),
                   std::to_string(mesh.num_triangles()),
                   format_scientific(p0_err),
                   format_double(p0_time, 3) + "s",
                   std::to_string(mesh.num_vertices()),
                   format_scientific(p1_err),
                   format_double(p1_time, 3) + "s"});
  }
  std::printf("%s", table.to_string().c_str());

  // Pointwise reconstruction at random (off-centroid) probes.
  std::printf("\n# pointwise kernel reconstruction error, 25 eigenpairs, "
              "grid 10x10 cross, 400 random probe pairs\n");
  const kernels::GaussianKernel gauss(2.7974);
  const mesh::TriMesh mesh = mesh::structured_mesh(
      geometry::BoundingBox::unit_die(), 10, 10,
      mesh::StructuredPattern::kCross);
  core::KleOptions p0_options;
  p0_options.num_eigenpairs = 25;
  p0_options.backend = core::KleBackend::kDense;
  const core::KleResult p0 = core::solve_kle(mesh, gauss, p0_options);
  core::P1KleOptions p1_options;
  p1_options.num_eigenpairs = 25;
  const core::P1KleResult p1 = core::solve_p1_kle(mesh, gauss, p1_options);
  Rng rng(3);
  double p0_worst = 0.0;
  double p1_worst = 0.0;
  for (int probe = 0; probe < 400; ++probe) {
    const geometry::Point2 x{rng.uniform(-0.95, 0.95),
                             rng.uniform(-0.95, 0.95)};
    const geometry::Point2 y{rng.uniform(-0.95, 0.95),
                             rng.uniform(-0.95, 0.95)};
    const double truth = gauss(x, y);
    p0_worst =
        std::max(p0_worst, std::abs(p0.reconstruct_kernel(x, y, 25) - truth));
    p1_worst =
        std::max(p1_worst, std::abs(p1.reconstruct_kernel(x, y, 25) - truth));
  }
  std::printf("P0 max |err| = %.4f   P1 max |err| = %.4f\n", p0_worst,
              p1_worst);
  std::printf("# P1's continuous eigenfunctions remove the O(h) staircase "
              "of the piecewise-constant basis\n");
  return 0;
}
