// Extension bench: timing yield and sampling-scheme variance reduction.
//
// Part 1 — yield curves: P(delay <= T) from (a) retained Monte Carlo
// samples and (b) the canonical SSTA's normal model, swept across the
// distribution. Agreement in the body, mild divergence in the upper tail
// (max-of-normals is right-skewed) is the expected picture.
//
// Part 2 — Latin hypercube vs plain Monte Carlo: spread of the worst-delay
// sigma estimate across repetitions at equal sample budget. LHS stratifies
// the r-dimensional KLE space, which is exactly where low-dimensional
// sampling pays off.
//
// Flags: --circuit=c880 --samples=1500 --r=25 --reps=12
#include <cmath>
#include <cstdio>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "field/kle_sampler.h"
#include "field/lhs.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "placer/recursive_placer.h"
#include "ssta/canonical.h"
#include "ssta/mc_ssta.h"
#include "ssta/yield.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const std::string circuit_name = flags.get_string("circuit", "c880");
  const auto samples =
      static_cast<std::size_t>(flags.get_int("samples", 1500));
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));
  const int reps = static_cast<int>(flags.get_int("reps", 12));

  const circuit::Netlist netlist = circuit::make_paper_circuit(circuit_name);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const auto locations = placement.physical_locations(netlist);

  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = std::max<std::size_t>(2 * r, 50);
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const field::KleFieldSampler sampler(kle, r, locations);

  // Part 1: yield curves.
  ssta::McSstaOptions options;
  options.num_samples = samples;
  options.keep_samples = true;
  const ssta::McSstaResult mc = run_monte_carlo_ssta(
      engine, {&sampler, &sampler, &sampler, &sampler}, options);
  const linalg::Matrix& g = sampler.field().location_operator();
  const ssta::CanonicalSstaResult canonical =
      ssta::run_canonical_ssta(engine, {&g, &g, &g, &g});

  std::printf("# %s: yield curves, %zu MC samples vs canonical normal\n",
              circuit_name.c_str(), samples);
  const auto empirical =
      ssta::empirical_yield_curve(mc.worst_delay_samples, 15);
  const auto parametric =
      ssta::canonical_yield_curve(canonical.worst_delay, empirical);
  TextTable curve;
  curve.set_header({"T (ps)", "MC yield", "canonical yield"});
  for (std::size_t i = 0; i < empirical.size(); ++i)
    curve.add_numeric_row({empirical[i].period, empirical[i].yield,
                           parametric[i].yield});
  std::fputs(curve.to_string().c_str(), stdout);
  std::printf("# canonical 99.87%% (3-sigma) period: %.1f ps | empirical "
              "99.87%% quantile: %.1f ps\n\n",
              ssta::canonical_period_for_yield(canonical.worst_delay,
                                               0.99865),
              quantile(mc.worst_delay_samples, 0.99865));

  // Part 2: LHS vs plain MC spread of the sigma estimate. Use the reduced
  // sampler directly so the latent space is the r-dimensional one.
  std::printf("# sigma-estimate spread over %d repetitions, %zu samples "
              "each (xi sampling scheme comparison, first parameter only)\n",
              reps, samples / 4);
  const std::size_t n_rep = samples / 4;
  RunningStats plain_sigmas;
  RunningStats lhs_sigmas;
  for (int rep = 0; rep < reps; ++rep) {
    const StreamKey key{500 + static_cast<std::uint64_t>(rep), 0};
    // Plain: sampler's own normal draws.
    linalg::Matrix block;
    sampler.sample_block(field::SampleRange{0, n_rep}, key, block);
    RunningStats plain_stat;
    for (std::size_t i = 0; i < n_rep; ++i) {
      timing::ParameterView view{block.row_ptr(i), block.row_ptr(i),
                                 block.row_ptr(i), block.row_ptr(i)};
      plain_stat.add(engine.run(view).worst_delay);
    }
    plain_sigmas.add(plain_stat.stddev());
    // LHS: stratified xi, same reconstruction (parameter_id 1 keeps the
    // stream distinct from the plain draw above).
    linalg::Matrix xi;
    field::latin_hypercube_normal(
        n_rep, r, StreamKey{500 + static_cast<std::uint64_t>(rep), 1}, xi);
    const linalg::Matrix lhs_block = sampler.field().reconstruct_block(xi);
    RunningStats lhs_stat;
    for (std::size_t i = 0; i < n_rep; ++i) {
      timing::ParameterView view{lhs_block.row_ptr(i), lhs_block.row_ptr(i),
                                 lhs_block.row_ptr(i), lhs_block.row_ptr(i)};
      lhs_stat.add(engine.run(view).worst_delay);
    }
    lhs_sigmas.add(lhs_stat.stddev());
  }
  TextTable spread;
  spread.set_header({"scheme", "mean sigma-hat", "spread of sigma-hat"});
  spread.add_row({"plain MC", format_double(plain_sigmas.mean(), 2),
                  format_double(plain_sigmas.stddev(), 3)});
  spread.add_row({"Latin hypercube", format_double(lhs_sigmas.mean(), 2),
                  format_double(lhs_sigmas.stddev(), 3)});
  std::fputs(spread.to_string().c_str(), stdout);
  std::printf("# note: this scheme uses one shared field across the four "
              "parameters, so sigma-hat levels differ from Part 1\n");
  return 0;
}
