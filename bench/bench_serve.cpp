// Load generator for the sckl_serve daemon: N concurrent clients issuing
// SampleBlock requests at an open-loop arrival rate (requests are scheduled
// on a fixed clock, not after the previous reply — queueing delay shows up
// as latency instead of silently throttling the offered load).
//
//   bench_serve [--socket=PATH] [--clients=8] [--qps=2000] [--seconds=2]
//               [--rows=16] [--locations=128] [--r=10] [--smoke]
//               [--json=BENCH_serve.json]
//
// Without --socket an in-process server is started on a private unix
// socket backed by a throwaway store root, the workload KLE is pre-solved,
// and the server is torn down afterwards — the default mode used by CI.
// --smoke shrinks the run to a correctness-sized load.
//
// Reported: achieved QPS, latency p50/p99/p99.9 (microseconds), error
// count, and the server's sampler-cache hit rate; --json appends one
// JSON-lines record of the same plus machine context (hardware threads,
// SCKL_THREADS) to the given path.
//
//   bench_serve --dist [--samples=512] [--smoke] [--json=BENCH_mc_dist.json]
//
// Distributed Monte Carlo scaling sweep: one in-process coordinator daemon
// runs the same checkpointed SSTA workload with 0 (plain local run), 1, 2,
// and 4 in-process workers; every configuration must produce bit-identical
// statistics (the index-addressed sampling invariant), and the JSON-lines
// records report wall time plus how many leases the remote workers
// computed. On a single-core container this measures coordination
// overhead, not speedup — the interesting numbers are the remote-lease
// share and the invariant holding.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/machine.h"
#include "kernels/kernel_fit.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/worker.h"

namespace {

using namespace sckl;
using Clock = std::chrono::steady_clock;

store::KleArtifactConfig workload_config() {
  store::KleArtifactConfig config;
  config.kernel_id = "gaussian";
  config.kernel_params = {kernels::paper_gaussian_c()};
  config.mesh.kind = store::MeshSpec::Kind::kPaperRefined;
  config.mesh.area_fraction = 0.01;  // ~200 triangles: solve in milliseconds
  config.mesh.mesher_seed = 8;
  config.num_eigenpairs = 20;
  return config;
}

serve::SampleBlockRequest workload_request(std::size_t rows,
                                           std::size_t locations,
                                           std::uint64_t r) {
  serve::SampleBlockRequest request;
  request.config = workload_config();
  request.r = r;
  request.locations.reserve(locations);
  // Deterministic pseudo-grid of sample locations on the unit die.
  for (std::size_t i = 0; i < locations; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(locations);
    request.locations.push_back({0.5 + 0.45 * std::cos(6.28318 * t) * (1.0 - t),
                                 0.5 + 0.45 * std::sin(6.28318 * t) * (1.0 - t)});
  }
  request.range = {0, rows};
  request.stream = {42, 0};
  return request;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] * (1.0 - frac) + sorted_us[hi] * frac;
}

/// --dist: the distributed Monte Carlo scaling sweep (see the file header).
int run_dist_bench(const CliFlags& flags) {
  const bool smoke = flags.get_bool("smoke", false);
  const std::size_t samples =
      static_cast<std::size_t>(flags.get_int("samples", smoke ? 128 : 512));
  const std::string json_path = flags.get_string("json", "");
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{0, 2}
            : std::vector<std::size_t>{0, 1, 2, 4};

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "sckl_bench_dist";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  serve::ServerOptions options;
  options.unix_path = (scratch / "bench.sock").string();
  options.store_root = (scratch / "store").string();
  // The coordinator RunSsta parks on one handler thread for its whole
  // duration; claims/publishes/heartbeats from every worker need their own.
  options.num_threads = 8;
  options.default_deadline_ms = 600'000;
  serve::Server server(options);
  server.start();

  const auto request_for = [&](const std::string& run_id, bool distributed) {
    serve::RunSstaRequest request;
    request.circuit = "c880";
    request.num_samples = static_cast<std::uint64_t>(samples);
    request.r = 8;
    request.num_eigenpairs = 16;
    request.mesh_area_fraction = 0.01;
    request.seed = 3;
    request.num_threads = 1;
    request.run_id = run_id;
    request.distributed = distributed;
    request.mc_block_size = 8;
    request.mc_lease_blocks = 2;
    return request;
  };
  const std::size_t leases_total = ((samples + 7) / 8 + 1) / 2;

  int exit_code = 0;
  try {
    serve::RunSstaReply baseline;
    std::FILE* json = nullptr;
    if (!json_path.empty()) {
      json = std::fopen(json_path.c_str(), "a");
      if (json == nullptr) {
        std::fprintf(stderr, "bench_serve: cannot open %s\n",
                     json_path.c_str());
        server.stop();
        return 1;
      }
    }
    const std::string machine =
        machine_context_json_fields(read_machine_context());

    for (const std::size_t workers : worker_counts) {
      const std::string run_id =
          "bench-dist-w" + std::to_string(workers);
      std::vector<serve::WorkerReport> reports(workers);
      std::vector<std::thread> threads;
      for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          serve::WorkerOptions wopts;
          wopts.unix_path = options.unix_path;
          wopts.run_id = run_id;
          wopts.worker_id = 100 + w;
          wopts.poll_ms = 25;
          wopts.max_runtime_seconds = 600.0;
          try {
            reports[w] = serve::run_worker(wopts);
          } catch (const Error&) {
            // A worker that dies mid-bench just shifts its leases to the
            // coordinator's local fallback; the run still completes.
          }
        });
      }

      serve::Client client = serve::Client::connect_unix(options.unix_path);
      const Clock::time_point begin = Clock::now();
      const serve::RunSstaReply reply =
          client.run_ssta(request_for(run_id, workers > 0));
      const double wall =
          std::chrono::duration<double>(Clock::now() - begin).count();
      for (std::thread& t : threads) t.join();

      std::size_t remote_leases = 0;
      std::size_t remote_blocks = 0;
      for (const serve::WorkerReport& report : reports) {
        remote_leases += report.leases_computed;
        remote_blocks += report.blocks_computed;
      }

      if (workers == 0) {
        baseline = reply;
      } else if (reply.mean != baseline.mean ||
                 reply.sigma != baseline.sigma ||
                 reply.p99 != baseline.p99) {
        // The whole point of index-addressed sampling: worker count must
        // never move a bit.
        std::fprintf(stderr,
                     "bench_serve: statistics moved with %zu workers "
                     "(mean %.17g vs %.17g)\n",
                     workers, reply.mean, baseline.mean);
        exit_code = 1;
      }

      std::printf("bench_dist: workers=%zu samples=%zu wall=%.3fs "
                  "remote_leases=%zu/%zu mean=%.6f\n",
                  workers, samples, wall, remote_leases, leases_total,
                  reply.mean);
      if (json != nullptr)
        std::fprintf(
            json,
            "{\"bench\": \"mc_dist_scaling\", \"workers\": %zu, "
            "\"samples\": %zu, \"leases_total\": %zu, "
            "\"remote_leases\": %zu, \"remote_blocks\": %zu, "
            "\"wall_seconds\": %.4f, \"mean\": %.17g, \"sigma\": %.17g, "
            "\"bit_identical\": %s, %s}\n",
            workers, samples, leases_total, remote_leases, remote_blocks,
            wall, reply.mean, reply.sigma,
            workers == 0 || exit_code == 0 ? "true" : "false",
            machine.c_str());
    }
    if (json != nullptr) std::fclose(json);
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    exit_code = 1;
  }
  server.stop();
  std::filesystem::remove_all(scratch);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  if (flags.get_bool("dist", false)) return run_dist_bench(flags);
  const bool smoke = flags.get_bool("smoke", false);
  const std::size_t clients =
      static_cast<std::size_t>(flags.get_int("clients", smoke ? 4 : 8));
  const double qps = flags.get_double("qps", smoke ? 400.0 : 2000.0);
  const double seconds = flags.get_double("seconds", smoke ? 0.5 : 2.0);
  const std::size_t rows =
      static_cast<std::size_t>(flags.get_int("rows", 16));
  const std::size_t locations =
      static_cast<std::size_t>(flags.get_int("locations", 128));
  const std::uint64_t r = static_cast<std::uint64_t>(flags.get_int("r", 10));
  const std::string json_path = flags.get_string("json", "");
  std::string socket_path = flags.get_string("socket", "");

  // In-process server unless pointed at an external one.
  std::unique_ptr<serve::Server> server;
  std::filesystem::path scratch;
  if (socket_path.empty()) {
    scratch = std::filesystem::temp_directory_path() / "sckl_bench_serve";
    std::filesystem::remove_all(scratch);
    std::filesystem::create_directories(scratch);
    serve::ServerOptions options;
    options.unix_path = (scratch / "bench.sock").string();
    options.store_root = (scratch / "store").string();
    options.max_queue = 4096;  // measure latency, not admission control
    server = std::make_unique<serve::Server>(options);
    server->start();
    socket_path = options.unix_path;
  }

  try {
    // Pre-solve the workload KLE so the measured section is pure serving.
    serve::Client warmup = serve::Client::connect_unix(socket_path);
    serve::SolveKleRequest solve;
    solve.config = workload_config();
    warmup.solve_kle(solve);
    const serve::SampleBlockRequest request =
        workload_request(rows, locations, r);
    warmup.sample_block(request);  // constructs + caches the sampler

    // Open-loop schedule: request i fires at start + i/qps, client
    // k owns the indices i = k (mod clients).
    const std::size_t total =
        static_cast<std::size_t>(qps * seconds);
    const double interval_s = 1.0 / qps;
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<std::size_t> errors{0};
    std::vector<std::thread> threads;
    const Clock::time_point start =
        Clock::now() + std::chrono::milliseconds(50);  // connect headroom
    for (std::size_t k = 0; k < clients; ++k) {
      threads.emplace_back([&, k] {
        try {
          serve::Client client = serve::Client::connect_unix(socket_path);
          for (std::size_t i = k; i < total; i += clients) {
            const Clock::time_point fire =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(interval_s *
                                                          static_cast<double>(i)));
            std::this_thread::sleep_until(fire);
            try {
              client.sample_block(request);
              const double us =
                  std::chrono::duration<double, std::micro>(Clock::now() - fire)
                      .count();
              latencies[k].push_back(us);
            } catch (const Error&) {
              errors.fetch_add(1);
            }
          }
        } catch (const Error&) {
          errors.fetch_add(1);  // connect failure: this client sits out
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> all;
    for (const auto& per_client : latencies)
      all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());
    const double achieved_qps = static_cast<double>(all.size()) / elapsed;
    const double p50 = percentile(all, 0.50);
    const double p99 = percentile(all, 0.99);
    const double p999 = percentile(all, 0.999);

    double hit_rate = -1.0;
    if (server != nullptr)
      hit_rate = server->sampler_cache_stats().hit_rate();

    std::printf("bench_serve: clients=%zu offered=%.0f qps over %.2fs "
                "(rows=%zu locations=%zu r=%llu)\n",
                clients, qps, seconds, rows, locations,
                static_cast<unsigned long long>(r));
    std::printf("  completed %zu requests (%zu errors): %.0f qps achieved\n",
                all.size(), errors.load(), achieved_qps);
    std::printf("  latency us: p50=%.1f p99=%.1f p99.9=%.1f\n", p50, p99, p999);

    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "a");
      if (f == nullptr) {
        std::fprintf(stderr, "bench_serve: cannot open %s\n",
                     json_path.c_str());
        return 1;
      }
      // Machine context (hardware threads, SCKL_THREADS, cpufreq governor)
      // travels with every record, as bench_micro_kle --json-mc does:
      // latency percentiles are not comparable across unknown machines.
      const std::string machine =
          machine_context_json_fields(read_machine_context());
      std::fprintf(
          f,
          "{\"bench\": \"serve_sample_block_load\", \"clients\": %zu, "
          "\"offered_qps\": %.1f, \"seconds\": %.2f, \"rows\": %zu, "
          "\"locations\": %zu, \"r\": %llu, \"completed\": %zu, "
          "\"errors\": %zu, \"qps\": %.1f, \"p50_us\": %.1f, "
          "\"p99_us\": %.1f, \"p999_us\": %.1f, "
          "\"sampler_cache_hit_rate\": %.4f, %s}\n",
          clients, qps, seconds, rows, locations,
          static_cast<unsigned long long>(r), all.size(), errors.load(),
          achieved_qps, p50, p99, p999, hit_rate, machine.c_str());
      std::fclose(f);
    }

    // Correctness floor even in smoke mode: the bench fails when a
    // meaningful fraction of the offered load errored out.
    const bool ok = errors.load() * 10 < total && !all.empty();
    if (server != nullptr) {
      server->stop();
      server.reset();
      std::filesystem::remove_all(scratch);
    }
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    if (server != nullptr) server->stop();
    return 1;
  }
}
