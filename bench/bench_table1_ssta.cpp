// Table 1 of the paper: percentage mismatch in worst-delay mean (e_mu) and
// standard deviation (e_sigma) between the Monte Carlo STA (Algorithm 1,
// dense Cholesky) and the covariance-kernel STA (Algorithm 2, r = 25 KLE),
// plus the speedup, across the ISCAS85/89 benchmark set.
//
// Scaling note (see EXPERIMENTS.md): the paper used 100K samples on a
// 2.8 GHz dual-core Opteron; this bench defaults to fewer samples and the
// first 9 circuits so a single-core run finishes in minutes. Use
// --all --samples=<N> to widen. The *shape* — tiny e_mu, few-percent
// e_sigma, speedup growing with N_g — is the reproduction target.
//
// With --store=DIR solved KLEs are served from an artifact-store repository:
// the first bench run is cold (solves + persists, KLEsrc column "solved"),
// every later run loads from disk/memory and the KLEsetup column collapses
// to the file-load time — warm-vs-cold timing in one flag.
//
// Flags: --samples=400 --r=25 --max-gates=6000 --all --circuits=c880,c1355
//        --store=/path/to/repo
#include <cstdio>
#include <sstream>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/table.h"
#include "ssta/experiment.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto samples = static_cast<std::size_t>(flags.get_int("samples", 400));
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));
  const bool all = flags.get_bool("all", false);
  const auto max_gates = static_cast<std::size_t>(
      flags.get_int("max-gates", all ? 25000 : 6000));
  const std::string only = flags.get_string("circuits", "");
  const std::string store_root = flags.get_string("store", "");

  std::printf("# Table 1: MC STA (Algorithm 1) vs covariance-kernel STA "
              "(Algorithm 2), %zu samples each, r = %zu\n",
              samples, r);
  TextTable table;
  table.set_header({"Circuit", "Ng", "e_mu(%)", "e_sigma(%)", "Speedup",
                    "MCsetup(s)", "KLEsetup(s)", "MCrun(s)", "KLErun(s)",
                    "KLEsrc"});

  for (const auto& info : circuit::paper_circuit_table()) {
    if (info.num_gates > max_gates) continue;
    if (!only.empty() && only.find(info.name) == std::string::npos) continue;

    ssta::ExperimentConfig config;
    config.circuit = info.name;
    config.num_samples = samples;
    config.r = r;
    config.seed = 1;
    config.store_root = store_root;
    const ssta::ExperimentResult result = ssta::run_experiment(config);
    table.add_row({result.circuit, std::to_string(result.num_gates),
                   format_double(result.e_mu_percent, 3),
                   format_double(result.e_sigma_percent, 3),
                   format_double(result.speedup, 2),
                   format_double(result.mc_setup_seconds, 2),
                   format_double(result.kle_setup_seconds, 2),
                   format_double(result.mc_run_seconds, 2),
                   format_double(result.kle_run_seconds, 2),
                   result.kle_source.empty() ? "fresh" : result.kle_source});
    // Stream rows as they complete (long-running bench).
    std::printf("%s", table.to_string().c_str());
    std::printf("...\n");
  }
  std::printf("\n# final:\n%s", table.to_string().c_str());
  std::printf("# paper (100K samples): e_mu <= 0.109%%, e_sigma <= 5.7%%, "
              "speedup 0.29 -> 10.65 growing with Ng\n");
  return 0;
}
