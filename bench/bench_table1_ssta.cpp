// Table 1 of the paper: percentage mismatch in worst-delay mean (e_mu) and
// standard deviation (e_sigma) between the Monte Carlo STA (Algorithm 1,
// dense Cholesky) and the covariance-kernel STA (Algorithm 2, r = 25 KLE),
// plus the speedup, across the ISCAS85/89 benchmark set.
//
// Scaling note (see EXPERIMENTS.md): the paper used 100K samples on a
// 2.8 GHz dual-core Opteron; this bench defaults to fewer samples and the
// first 9 circuits so a single-core run finishes in minutes. Use
// --all --samples=<N> to widen. The *shape* — tiny e_mu, few-percent
// e_sigma, speedup growing with N_g — is the reproduction target.
//
// With --store=DIR solved KLEs are served from an artifact-store repository:
// the first bench run is cold (solves + persists, KLEsrc column "solved"),
// every later run loads from disk/memory and the KLEsetup column collapses
// to the file-load time — warm-vs-cold timing in one flag.
//
// Flags: --samples=400 --r=25 --seed=1 --threads=K --max-gates=6000 --all
//        --circuits=c880,c1355 --store=/path/to/repo
#include <cstdio>
#include <sstream>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "obs/export.h"
#include "common/table.h"
#include "ssta/experiment.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  // The shared experiment flag vocabulary (--samples, --r, --seed,
  // --threads, --store, ...) plus this bench's own sweep controls.
  ssta::ExperimentConfig base;
  base.num_samples = 400;
  base.r = 25;
  base.seed = 1;
  ssta::add_experiment_flags(flags, base);
  const bool all = flags.get_bool("all", false);
  const auto max_gates = static_cast<std::size_t>(
      flags.get_int("max-gates", all ? 25000 : 6000));
  const std::string only = flags.get_string("circuits", "");

  std::printf("# Table 1: MC STA (Algorithm 1) vs covariance-kernel STA "
              "(Algorithm 2), %zu samples each, r = %zu\n",
              base.num_samples, base.r);
  TextTable table;
  table.set_header({"Circuit", "Ng", "e_mu(%)", "e_sigma(%)", "Speedup",
                    "MCsetup(s)", "KLEsetup(s)", "MCrun(s)", "KLErun(s)",
                    "KLEsrc"});

  std::size_t threads_used = 0;
  for (const auto& info : circuit::paper_circuit_table()) {
    if (info.num_gates > max_gates) continue;
    if (!only.empty() && only.find(info.name) == std::string::npos) continue;

    ssta::ExperimentConfig config = base;
    config.circuit = info.name;
    const ssta::ExperimentResult result = ssta::run_experiment(config);
    threads_used = result.threads_used;
    table.add_row({result.circuit, std::to_string(result.num_gates),
                   format_double(result.e_mu_percent, 3),
                   format_double(result.e_sigma_percent, 3),
                   format_double(result.speedup, 2),
                   format_double(result.mc_setup_seconds, 2),
                   format_double(result.kle_setup_seconds, 2),
                   format_double(result.mc_run_seconds, 2),
                   format_double(result.kle_run_seconds, 2),
                   result.kle_source.empty() ? "fresh" : result.kle_source});
    // Stream rows as they complete (long-running bench).
    std::printf("%s", table.to_string().c_str());
    std::printf("...\n");
  }
  std::printf("\n# final:\n%s", table.to_string().c_str());
  if (threads_used > 0)
    std::printf("# Monte Carlo worker threads: %zu\n", threads_used);
  std::printf("# paper (100K samples): e_mu <= 0.109%%, e_sigma <= 5.7%%, "
              "speedup 0.29 -> 10.65 growing with Ng\n");
  return 0;
}
