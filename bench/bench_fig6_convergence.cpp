// Fig. 6 of the paper: relative error in the covariance-kernel STA estimate
// of the delay standard deviation at every circuit output, averaged over
// the outputs of a c1908-sized circuit (880 gates), as a function of
//  (a) the number of eigenpairs r at fixed mesh size, and
//  (b) the number of mesh triangles n at fixed r = 25.
// The reference is the Cholesky Monte Carlo STA (Algorithm 1) with the
// same sample budget.
//
// Flags: --circuit=c1908 --samples=1500 --r-max=25 --seed=1 --threads=K
//        (paper: 100K samples; scale down for a single-core run)
#include <cstdio>

#include "common/cli.h"
#include "obs/export.h"
#include "common/statistics.h"
#include "common/table.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"
#include "ssta/experiment.h"

namespace {

// Mean relative sigma error across endpoints vs the cached reference.
double endpoint_error(const sckl::ssta::McSstaResult& reference,
                      const sckl::ssta::McSstaResult& candidate) {
  sckl::RunningStats error;
  for (std::size_t e = 0; e < reference.endpoint.size(); ++e) {
    const double ref_sigma = reference.endpoint[e].stddev();
    if (ref_sigma <= 0.0) continue;
    error.add(std::abs(candidate.endpoint[e].stddev() - ref_sigma) /
              ref_sigma);
  }
  return error.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const ExperimentFlagSet fset = parse_experiment_flags(flags);
  obs::TraceSession trace_session(fset.trace, fset.trace_json);
  ssta::ExperimentConfig config;
  config.circuit = "c1908";
  // Noise floor of a sigma-vs-sigma comparison is ~1/sqrt(N); 2000 samples
  // put it at ~2.2% (the paper's 100K reference sat at ~0.3%).
  config.num_samples = 1500;
  ssta::add_experiment_flags(flags, config);
  const auto r_max = static_cast<std::size_t>(flags.get_int("r-max", 25));

  ssta::ExperimentPipeline pipeline(config);
  std::printf("# Fig 6: circuit %s (%zu gates), %zu samples/run, reference ="
              " Cholesky MC STA\n",
              config.circuit.c_str(), pipeline.num_gates(),
              config.num_samples);
  const ssta::McSstaResult& reference = pipeline.reference();
  std::printf("# reference worst delay: mean %.2f ps, sigma %.3f ps\n\n",
              reference.worst_delay.mean(), reference.worst_delay.stddev());

  // (a) error vs r at the paper mesh.
  const mesh::TriMesh paper = mesh::paper_mesh(
      geometry::BoundingBox::unit_die(), 0.001, config.seed + 7);
  std::printf("# Fig 6(a): error vs eigenpairs r (n = %zu)\n",
              paper.num_triangles());
  TextTable by_r;
  by_r.set_header({"r", "avg sigma_d error (%)"});
  for (std::size_t r : {1u, 2u, 4u, 6u, 9u, 12u, 16u, 20u, 25u}) {
    if (r > r_max) break;
    ssta::KleRunRequest request;
    request.r = r;
    request.num_eigenpairs = std::max<std::size_t>(2 * r, 30);
    request.mesh = &paper;
    request.matrix_free = config.matrix_free;
    request.aca_tolerance = config.aca_tolerance;
    const ssta::McSstaResult result = pipeline.run_kle(request).ssta;
    by_r.add_row({std::to_string(r),
                  format_double(100.0 * endpoint_error(reference, result), 3)});
  }
  std::fputs(by_r.to_string().c_str(), stdout);

  // (b) error vs n at r = 25 (structured meshes give exact n control).
  std::printf("\n# Fig 6(b): error vs triangles n (r = %zu)\n", r_max);
  TextTable by_n;
  by_n.set_header({"n", "avg sigma_d error (%)"});
  for (std::size_t target : {64u, 144u, 324u, 576u, 1024u, 1600u}) {
    const mesh::TriMesh mesh = mesh::structured_mesh_for_count(
        geometry::BoundingBox::unit_die(), target,
        mesh::StructuredPattern::kCross);
    ssta::KleRunRequest request;
    request.r = std::min(r_max, mesh.num_triangles());
    request.num_eigenpairs = std::max<std::size_t>(2 * r_max, 50);
    request.mesh = &mesh;
    request.matrix_free = config.matrix_free;
    request.aca_tolerance = config.aca_tolerance;
    const ssta::McSstaResult result = pipeline.run_kle(request).ssta;
    by_n.add_row({std::to_string(mesh.num_triangles()),
                  format_double(100.0 * endpoint_error(reference, result), 3)});
  }
  std::fputs(by_n.to_string().c_str(), stdout);
  std::printf("\n# paper: errors < 2.8%% at (r, n) = (25, 1546), decreasing"
              " in both r and n (noise floor from the finite MC reference)\n");
  return 0;
}
