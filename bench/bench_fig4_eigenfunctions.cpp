// Fig. 4 of the paper: the first two eigenfunctions of the Gaussian kernel
// on the die — the "Fourier-series type behavior" where higher
// eigenfunctions capture higher spatial frequencies of the correlation.
// Prints f_1 and f_2 over a probe grid, plus an orthonormality check.
//
// Flags: --count=2 --grid=17 --c=<decay>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto count = static_cast<std::size_t>(flags.get_int("count", 2));
  const long grid = flags.get_int("grid", 17);
  const double c = flags.get_double("c", kernels::paper_gaussian_c());

  const kernels::GaussianKernel kernel(c);
  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions options;
  options.num_eigenpairs = count;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);

  std::printf("# Fig 4: first %zu eigenfunctions of %s on n=%zu triangles\n",
              count, kernel.name().c_str(), mesh.num_triangles());
  TextTable table;
  std::vector<std::string> header = {"x", "y"};
  for (std::size_t j = 0; j < count; ++j)
    header.push_back("f" + std::to_string(j + 1));
  table.set_header(header);
  for (long i = 0; i < grid; ++i) {
    for (long k = 0; k < grid; ++k) {
      const double x = -0.98 + 1.96 * static_cast<double>(i) /
                                   static_cast<double>(grid - 1);
      const double y = -0.98 + 1.96 * static_cast<double>(k) /
                                   static_cast<double>(grid - 1);
      std::vector<double> row = {x, y};
      for (std::size_t j = 0; j < count; ++j)
        row.push_back(kle.eigenfunction_value(j, {x, y}));
      table.add_numeric_row(row);
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Orthonormality diagnostics (mesh inner product).
  std::printf("\n# eigenvalues and Phi-norms:\n");
  TextTable diag;
  diag.set_header({"j", "lambda_j", "<f_j, f_j>"});
  for (std::size_t j = 0; j < count; ++j) {
    double norm = 0.0;
    for (std::size_t t = 0; t < mesh.num_triangles(); ++t)
      norm += kle.coefficient(t, j) * kle.coefficient(t, j) * mesh.area(t);
    diag.add_numeric_row({static_cast<double>(j + 1), kle.eigenvalue(j),
                          norm});
  }
  std::fputs(diag.to_string().c_str(), stdout);
  return 0;
}
