// Fig. 3(b) of the paper: error in reconstructing the 2-D Gaussian kernel
// from r = 25 numerically computed eigenpairs on the paper's mesh (max
// triangle area 0.1% of the die -> n ~ 1546). The paper reports a maximum
// error magnitude of 0.016. Prints the error surface K_hat(y,0) - K(y,0)
// and the max |error|.
//
// Flags: --r=25 --grid=21 --area-fraction=0.001 --c=<decay>
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));
  const long grid = flags.get_int("grid", 21);
  const double area_fraction = flags.get_double("area-fraction", 0.001);
  const double c = flags.get_double("c", kernels::paper_gaussian_c());

  const kernels::GaussianKernel kernel(c);
  const mesh::TriMesh mesh =
      mesh::paper_mesh(geometry::BoundingBox::unit_die(), area_fraction);
  std::printf("# Fig 3(b): kernel reconstruction from r=%zu eigenpairs\n",
              r);
  std::printf("# mesh: n=%zu triangles (paper: 1546), min angle %.1f deg, "
              "max area %.5f\n",
              mesh.num_triangles(), mesh.quality().min_angle_degrees,
              mesh.quality().max_area);

  core::KleOptions options;
  options.num_eigenpairs = r;
  const core::KleResult kle = core::solve_kle(mesh, kernel, options);

  // Like the paper's figure, the error is evaluated on the mesh itself
  // (triangle centroids): the piecewise-constant representation is exact to
  // O(h^2) there. The printed grid subsamples centroids for plotting; the
  // max scans all of them.
  TextTable table;
  table.set_header({"y1", "y2", "error"});
  double worst = 0.0;
  const geometry::Point2 origin =
      mesh.centroid(kle.triangle_of({0.0, 0.0}));
  const std::size_t stride =
      std::max<std::size_t>(1, mesh.num_triangles() /
                                   static_cast<std::size_t>(grid * grid));
  for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
    const geometry::Point2 y = mesh.centroid(t);
    const double error =
        kle.reconstruct_kernel(y, origin, r) - kernel(y, origin);
    worst = std::max(worst, std::abs(error));
    if (t % stride == 0) table.add_numeric_row({y.x, y.y, error});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n# max |error| over all centroids = %.4f   "
              "(paper: 0.016 at n=1546, r=25)\n",
              worst);
  return 0;
}
