// Extension bench: grid+PCA baseline (Sec. 2.1) vs the KLE model.
//
// The paper's core argument is that the grid model is ad hoc: its accuracy
// is capped by the grid resolution (gates sharing a cell are perfectly
// correlated) and the "right" resolution is unknowable a priori. This bench
// quantifies that on the SSTA task: for several grid resolutions and the
// KLE at the same reduced dimension r, compare worst-delay sigma against
// the dense Cholesky reference on one circuit.
//
// Flags: --circuit=c1908 --samples=2000 --r=25
#include <cmath>
#include <cstdio>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "gridmodel/grid_model.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "placer/recursive_placer.h"
#include "ssta/mc_ssta.h"

int main(int argc, char** argv) {
  using namespace sckl;
  const CliFlags flags(argc, argv);
  const std::string circuit_name = flags.get_string("circuit", "c1908");
  const auto samples =
      static_cast<std::size_t>(flags.get_int("samples", 1200));
  const auto r = static_cast<std::size_t>(flags.get_int("r", 25));

  const circuit::Netlist netlist = circuit::make_paper_circuit(circuit_name);
  const placer::Placement placement = placer::place(netlist);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(netlist, placement, library);
  const auto locations = placement.physical_locations(netlist);
  const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());

  ssta::McSstaOptions options;
  options.num_samples = samples;

  // Reference: exact covariance at the gate locations.
  const field::CholeskyFieldSampler reference_sampler(kernel, locations);
  const ssta::McSstaResult reference = run_monte_carlo_ssta(
      engine,
      {&reference_sampler, &reference_sampler, &reference_sampler,
       &reference_sampler},
      options);
  std::printf("# %s (%zu gates), %zu samples; reference sigma = %.3f ps\n",
              circuit_name.c_str(), netlist.num_physical_gates(), samples,
              reference.worst_delay.stddev());

  TextTable table;
  table.set_header({"model", "RVs", "sigma (ps)", "e_sigma(%)"});
  auto report = [&](const std::string& name, std::size_t rvs,
                    const ssta::McSstaResult& run) {
    table.add_row(
        {name, std::to_string(rvs), format_double(run.worst_delay.stddev(), 3),
         format_double(100.0 *
                           std::abs(run.worst_delay.stddev() -
                                    reference.worst_delay.stddev()) /
                           reference.worst_delay.stddev(),
                       2)});
  };

  for (std::size_t cells : {2u, 4u, 6u, 10u, 16u}) {
    const gridmodel::GridCorrelationModel model(
        kernel, geometry::BoundingBox::unit_die(), cells);
    const std::size_t rr = std::min<std::size_t>(r, model.num_cells());
    const gridmodel::GridPcaSampler sampler(model, rr, locations);
    const ssta::McSstaResult run = run_monte_carlo_ssta(
        engine, {&sampler, &sampler, &sampler, &sampler}, options);
    report("grid " + std::to_string(cells) + "x" + std::to_string(cells),
           rr, run);
  }

  const mesh::TriMesh mesh = mesh::paper_mesh();
  core::KleOptions kle_options;
  kle_options.num_eigenpairs = std::max<std::size_t>(2 * r, 50);
  const core::KleResult kle = core::solve_kle(mesh, kernel, kle_options);
  const field::KleFieldSampler kle_sampler(kle, r, locations);
  const ssta::McSstaResult kle_run = run_monte_carlo_ssta(
      engine, {&kle_sampler, &kle_sampler, &kle_sampler, &kle_sampler},
      options);
  report("KLE (n=" + std::to_string(mesh.num_triangles()) + ")", r, kle_run);

  std::printf("%s", table.to_string().c_str());
  std::printf("# coarse grids distort sigma (intra-cell gates perfectly "
              "correlated); the KLE needs no resolution choice\n");
  return 0;
}
