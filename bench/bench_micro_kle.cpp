// Micro-benchmarks (google-benchmark) for the method's building blocks:
//  - Galerkin assembly cost vs mesh size n,
//  - eigensolve cost: dense QL vs Lanczos top-r (the paper's MATLAB eigs
//    took 11.2 s for 200 pairs at n = 1546),
//  - per-sample generation throughput: Algorithm 1 (O(N_g^2)) vs
//    Algorithm 2 (O(N_g r)) — the source of Table 1's speedup,
//  - STA evaluation cost per sample.
#include <benchmark/benchmark.h>

#include "circuit/synthetic.h"
#include "common/rng.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/mc_ssta.h"
#include "timing/sta.h"

namespace {

using namespace sckl;

const kernels::GaussianKernel& paper_kernel() {
  static const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  return kernel;
}

mesh::TriMesh mesh_of(std::size_t n) {
  return mesh::structured_mesh_for_count(geometry::BoundingBox::unit_die(),
                                         n, mesh::StructuredPattern::kCross);
}

void BM_GalerkinAssembly(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::assemble_galerkin_matrix(mesh, paper_kernel()));
  }
  state.SetComplexityN(static_cast<long>(mesh.num_triangles()));
}
BENCHMARK(BM_GalerkinAssembly)->Arg(256)->Arg(576)->Arg(1024)->Arg(1600)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_EigensolveDense(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::KleOptions options;
    options.num_eigenpairs = 25;
    options.backend = core::KleBackend::kDense;
    benchmark::DoNotOptimize(core::solve_kle(mesh, paper_kernel(), options));
  }
}
BENCHMARK(BM_EigensolveDense)->Arg(256)->Arg(576)
    ->Unit(benchmark::kMillisecond);

void BM_EigensolveLanczos(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::KleOptions options;
    options.num_eigenpairs = 25;
    options.backend = core::KleBackend::kLanczos;
    benchmark::DoNotOptimize(core::solve_kle(mesh, paper_kernel(), options));
  }
}
BENCHMARK(BM_EigensolveLanczos)->Arg(256)->Arg(576)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

struct SamplerFixture {
  SamplerFixture(std::size_t gates, std::size_t r)
      : netlist(circuit::synthetic_circuit(
            {.name = "bench", .num_gates = gates, .seed = 3})),
        placement(placer::place(netlist)),
        locations(placement.physical_locations(netlist)),
        mesh(mesh_of(900)),
        kle([this] {
          core::KleOptions options;
          options.num_eigenpairs = 50;
          return core::solve_kle(mesh, paper_kernel(), options);
        }()),
        cholesky(paper_kernel(), locations),
        reduced(kle, r, locations) {}

  circuit::Netlist netlist;
  placer::Placement placement;
  std::vector<geometry::Point2> locations;
  mesh::TriMesh mesh;
  core::KleResult kle;
  field::CholeskyFieldSampler cholesky;
  field::KleFieldSampler reduced;
};

SamplerFixture& fixture_for(std::size_t gates) {
  static std::map<std::size_t, std::unique_ptr<SamplerFixture>> cache;
  auto& slot = cache[gates];
  if (!slot) slot = std::make_unique<SamplerFixture>(gates, 25);
  return *slot;
}

void BM_SampleBlockCholesky(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  linalg::Matrix block;
  for (auto _ : state) {
    fx.cholesky.sample_block(64, rng, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampleBlockCholesky)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMillisecond);

void BM_SampleBlockKle(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  linalg::Matrix block;
  for (auto _ : state) {
    fx.reduced.sample_block(64, rng, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampleBlockKle)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMillisecond);

void BM_StaEvaluation(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(fx.netlist, fx.placement, library);
  Rng rng(6);
  linalg::Matrix block;
  fx.reduced.sample_block(1, rng, block);
  const timing::ParameterView view{block.row_ptr(0), block.row_ptr(0),
                                   block.row_ptr(0), block.row_ptr(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(view));
  }
}
BENCHMARK(BM_StaEvaluation)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
