// Micro-benchmarks (google-benchmark) for the method's building blocks:
//  - Galerkin assembly cost vs mesh size n,
//  - eigensolve cost: dense QL vs Lanczos top-r (the paper's MATLAB eigs
//    took 11.2 s for 200 pairs at n = 1546),
//  - per-sample generation throughput: Algorithm 1 (O(N_g^2)) vs
//    Algorithm 2 (O(N_g r)) — the source of Table 1's speedup,
//  - STA evaluation cost per sample,
//  - artifact-store cold solve vs warm load (the offline/online split).
//
// --json=PATH additionally times the artifact store on a 1600-triangle mesh
// (cold Galerkin+eigensolve+persist, warm disk load, warm memory hit) and
// appends one {"bench": ..., "wall_ms": ...} JSON record per measurement to
// PATH — the input of the BENCH_*.json perf trajectory. Combine with
// --benchmark_filter=NONE to emit only the JSON records.
//
// --trace / --trace-json=PATH / SCKL_TRACE=1 arm the observability layer;
// when tracing is active each --json/--json-mc payload also gains one
// {"bench": "...", "trace": <sckl-trace-v1>} record so the per-phase
// breakdown travels with the perf numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>

#include "circuit/synthetic.h"
#include "common/cli.h"
#include "common/machine.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "core/kle_solver.h"
#include "field/cholesky_sampler.h"
#include "field/kle_sampler.h"
#include "kernels/kernel_fit.h"
#include "kernels/kernel_library.h"
#include "linalg/gemm.h"
#include "mesh/structured_mesher.h"
#include "placer/recursive_placer.h"
#include "ssta/mc_ssta.h"
#include "store/artifact_store.h"
#include "timing/sta.h"

namespace {

using namespace sckl;

const kernels::GaussianKernel& paper_kernel() {
  static const kernels::GaussianKernel kernel(kernels::paper_gaussian_c());
  return kernel;
}

/// One JSON-lines record per line: flatten the pretty-printed trace document
/// so the embedding record stays single-line.
std::string compact_trace_json() {
  std::string doc = obs::trace_json_string();
  for (char& c : doc) {
    if (c == '\n') c = ' ';
  }
  return doc;
}

mesh::TriMesh mesh_of(std::size_t n) {
  return mesh::structured_mesh_for_count(geometry::BoundingBox::unit_die(),
                                         n, mesh::StructuredPattern::kCross);
}

void BM_GalerkinAssembly(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::assemble_galerkin_matrix(mesh, paper_kernel()));
  }
  state.SetComplexityN(static_cast<long>(mesh.num_triangles()));
}
BENCHMARK(BM_GalerkinAssembly)->Arg(256)->Arg(576)->Arg(1024)->Arg(1600)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_EigensolveDense(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::KleOptions options;
    options.num_eigenpairs = 25;
    options.backend = core::KleBackend::kDense;
    benchmark::DoNotOptimize(core::solve_kle(mesh, paper_kernel(), options));
  }
}
BENCHMARK(BM_EigensolveDense)->Arg(256)->Arg(576)
    ->Unit(benchmark::kMillisecond);

void BM_EigensolveLanczos(benchmark::State& state) {
  const mesh::TriMesh mesh = mesh_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::KleOptions options;
    options.num_eigenpairs = 25;
    options.backend = core::KleBackend::kLanczos;
    benchmark::DoNotOptimize(core::solve_kle(mesh, paper_kernel(), options));
  }
}
BENCHMARK(BM_EigensolveLanczos)->Arg(256)->Arg(576)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

struct SamplerFixture {
  SamplerFixture(std::size_t gates, std::size_t r)
      : netlist(circuit::synthetic_circuit(
            {.name = "bench", .num_gates = gates, .seed = 3})),
        placement(placer::place(netlist)),
        locations(placement.physical_locations(netlist)),
        mesh(mesh_of(900)),
        kle([this] {
          core::KleOptions options;
          options.num_eigenpairs = 50;
          return core::solve_kle(mesh, paper_kernel(), options);
        }()),
        cholesky(paper_kernel(), locations),
        reduced(kle, r, locations) {}

  circuit::Netlist netlist;
  placer::Placement placement;
  std::vector<geometry::Point2> locations;
  mesh::TriMesh mesh;
  core::KleResult kle;
  field::CholeskyFieldSampler cholesky;
  field::KleFieldSampler reduced;
};

SamplerFixture& fixture_for(std::size_t gates) {
  static std::map<std::size_t, std::unique_ptr<SamplerFixture>> cache;
  auto& slot = cache[gates];
  if (!slot) slot = std::make_unique<SamplerFixture>(gates, 25);
  return *slot;
}

void BM_SampleBlockCholesky(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  const StreamKey key{5, 0};
  std::uint64_t first = 0;
  linalg::Matrix block;
  for (auto _ : state) {
    fx.cholesky.sample_block(field::SampleRange{first, 64}, key, block);
    first += 64;  // walk the stream like a real MC run would
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampleBlockCholesky)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMillisecond);

void BM_SampleBlockKle(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  const StreamKey key{5, 0};
  std::uint64_t first = 0;
  linalg::Matrix block;
  for (auto _ : state) {
    fx.reduced.sample_block(field::SampleRange{first, 64}, key, block);
    first += 64;
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampleBlockKle)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMillisecond);

void BM_StaEvaluation(benchmark::State& state) {
  SamplerFixture& fx = fixture_for(static_cast<std::size_t>(state.range(0)));
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(fx.netlist, fx.placement, library);
  linalg::Matrix block;
  fx.reduced.sample_block(field::SampleRange{0, 1}, StreamKey{6, 0}, block);
  const timing::ParameterView view{block.row_ptr(0), block.row_ptr(0),
                                   block.row_ptr(0), block.row_ptr(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(view));
  }
}
BENCHMARK(BM_StaEvaluation)->Arg(383)->Arg(880)->Arg(1669)
    ->Unit(benchmark::kMicrosecond);

void BM_ArtifactDiskLoad(benchmark::State& state) {
  // Pre-build one artifact, then measure the warm disk path in isolation.
  const auto root =
      std::filesystem::temp_directory_path() / "sckl_bench_micro_store";
  store::KleArtifactConfig config;
  std::string id;
  std::vector<double> params;
  store::describe_kernel(paper_kernel(), id, params);
  config.kernel_id = id;
  config.kernel_params = params;
  config.mesh.target_triangles = static_cast<std::uint64_t>(state.range(0));
  config.num_eigenpairs = 50;
  store::KleArtifactStore builder(root);
  builder.get_or_compute(config, paper_kernel());
  const std::string path = builder.path_for(config).string();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::read_kle_file(path));
  }
}
BENCHMARK(BM_ArtifactDiskLoad)->Arg(576)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

/// Appends cold/warm artifact-store records to `json_path` and reports the
/// headline speedup on stdout. Returns false when the acceptance floor
/// (warm disk >= 50x faster than cold solve at n >= 1000) is missed.
bool emit_store_json(const std::string& json_path) {
  const auto root =
      std::filesystem::temp_directory_path() / "sckl_bench_store_json";
  std::filesystem::remove_all(root);

  store::KleArtifactConfig config;
  std::string id;
  std::vector<double> params;
  store::describe_kernel(paper_kernel(), id, params);
  config.kernel_id = id;
  config.kernel_params = params;
  config.mesh.kind = store::MeshSpec::Kind::kStructuredCross;
  config.mesh.target_triangles = 1546;  // cross split lands on 1600
  config.num_eigenpairs = 50;

  store::KleArtifactStore cold_store(root);
  const store::FetchResult cold = cold_store.get_or_compute(config, paper_kernel());
  store::KleArtifactStore warm_store(root);
  const store::FetchResult disk = warm_store.get_or_compute(config, paper_kernel());
  const store::FetchResult memory = warm_store.get_or_compute(config, paper_kernel());
  const std::size_t triangles = cold.artifact->mesh().num_triangles();

  std::FILE* f = std::fopen(json_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_kle: cannot open %s\n", json_path.c_str());
    return false;
  }
  const auto record = [&](const char* name, double wall_ms) {
    std::fprintf(f,
                 "{\"bench\": \"%s\", \"wall_ms\": %.6f, \"triangles\": %zu, "
                 "\"eigenpairs\": %llu}\n",
                 name, wall_ms, triangles,
                 static_cast<unsigned long long>(config.num_eigenpairs));
  };
  record("kle_cold_solve_and_persist", cold.seconds * 1e3);
  record("kle_store_warm_disk_load", disk.seconds * 1e3);
  record("kle_store_warm_memory_hit", memory.seconds * 1e3);
  if (obs::trace_enabled())
    std::fprintf(f, "{\"bench\": \"store_trace\", \"trace\": %s}\n",
                 compact_trace_json().c_str());
  std::fclose(f);

  const double speedup = cold.seconds / std::max(disk.seconds, 1e-12);
  std::printf("artifact store @ n=%zu: cold=%.1fms disk=%.3fms memory=%.4fms "
              "(cold/disk = %.0fx)\ncache: %s\n",
              triangles, cold.seconds * 1e3, disk.seconds * 1e3,
              memory.seconds * 1e3, speedup,
              to_string(warm_store.cache_stats()).c_str());
  std::filesystem::remove_all(root);
  return cold.source == store::FetchSource::kSolved &&
         disk.source == store::FetchSource::kDisk &&
         memory.source == store::FetchSource::kMemory && speedup >= 50.0;
}

/// The KLE sampling throughput recorded by this bench before the batched
/// GEMM redesign (BENCH_mc_parallel.json history); the gate below requires
/// a 10x improvement over it on multi-core machines.
constexpr double kKleBaselineSamplesPerSec = 46244.0;

/// Appends Monte Carlo SSTA records to `json_path`:
///  - machine + SIMD-dispatch context (every record carries "simd_target"
///    and "hw_threads" so trajectories across heterogeneous runners stay
///    interpretable),
///  - time-budgeted sampler throughput for the Cholesky and KLE block
///    generators (budgeted, not fixed-count: the O(N_g^2) Cholesky path
///    would otherwise dominate the bench wall time),
///  - a KLE throughput gate at 10x the pre-GEMM baseline (warning-only on
///    single-hardware-thread machines, where CI containers land),
///  - bit-identity checks across block shapes and scalar-vs-SIMD dispatch,
///  - thread-scaling runs at 1/2/8 workers plus a block-size-invariance
///    run, each bit-compared against the serial result (the determinism
///    contract of the parallel block pipeline).
/// Throughput scaling depends on the machine's core count — records are
/// honest measurements, not asserted; determinism and the (multi-core)
/// throughput gate are.
bool emit_mc_parallel_json(const std::string& json_path,
                           std::size_t block_samples) {
  SamplerFixture& fx = fixture_for(1669);
  const timing::CellLibrary library = timing::CellLibrary::default_90nm();
  const timing::StaEngine engine(fx.netlist, fx.placement, library);
  const ssta::ParameterSamplers samplers{&fx.reduced, &fx.reduced,
                                         &fx.reduced, &fx.reduced};
  const std::size_t mc_block = block_samples > 0 ? block_samples : 64;

  std::FILE* f = std::fopen(json_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_kle: cannot open %s\n",
                 json_path.c_str());
    return false;
  }

  const MachineContext machine = read_machine_context();
  // Shared context fields appended to every record: which kernel set the
  // dispatcher picked (detected, or forced via SCKL_SIMD) and how many
  // hardware threads the run had.
  const std::string ctx =
      std::string("\"simd_target\": \"") +
      linalg::simd_target_name(linalg::active_simd_target()) +
      "\", \"hw_threads\": " + std::to_string(machine.hardware_threads);

  // Machine context first: thread-scaling numbers are meaningless without
  // knowing how many cores the run actually had available (and whether the
  // cpufreq governor was pinning or scaling them).
  std::fprintf(f,
               "{\"bench\": \"mc_parallel_machine\", %s, "
               "\"resolved_auto_threads\": %zu, %s}\n",
               machine_context_json_fields(machine).c_str(),
               ThreadPool::resolve_num_threads(0), ctx.c_str());

  // Pure sampling throughput of the two block generators (no STA), the
  // quantity the batched-GEMM redesign exists to improve. Each generator
  // gets a fixed time budget and as many blocks as fit.
  const auto timed_rate = [](field::FieldSampler& sampler, std::size_t chunk,
                             double budget_seconds) {
    linalg::Matrix block;
    std::uint64_t first = 0;
    obs::Stopwatch timer;
    do {
      sampler.sample_block(field::SampleRange{first, chunk}, StreamKey{5, 0},
                           block);
      first += chunk;
    } while (timer.seconds() < budget_seconds);
    benchmark::DoNotOptimize(block.data());
    return std::pair<double, double>(static_cast<double>(first),
                                     timer.seconds());
  };
  const auto [chol_n, chol_s] = timed_rate(fx.cholesky, 64, 0.25);
  const std::size_t kle_chunk = block_samples > 0 ? block_samples : 2048;
  const auto [kle_n, kle_s] = timed_rate(fx.reduced, kle_chunk, 0.25);
  const double chol_rate = chol_n / chol_s;
  const double kle_rate = kle_n / kle_s;
  std::fprintf(f,
               "{\"bench\": \"sample_block_cholesky_1669\", \"wall_ms\": "
               "%.6f, \"samples\": %.0f, \"samples_per_sec\": %.1f, %s}\n",
               chol_s * 1e3, chol_n, chol_rate, ctx.c_str());
  std::fprintf(f,
               "{\"bench\": \"sample_block_kle_1669\", \"wall_ms\": %.6f, "
               "\"samples\": %.0f, \"samples_per_sec\": %.1f, %s}\n",
               kle_s * 1e3, kle_n, kle_rate, ctx.c_str());
  std::printf("sampling @ 1669 gates: cholesky %.0f samples/s, kle (r=25) "
              "%.0f samples/s\n",
              chol_rate, kle_rate);

  // Throughput gate: the batched hot path must clear 10x the pre-GEMM
  // KLE rate. Enforced only with real parallel memory bandwidth to spare —
  // on single-hardware-thread containers the record is advisory.
  const bool gate_enforced = machine.hardware_threads > 1;
  const bool gate_pass = kle_rate >= 10.0 * kKleBaselineSamplesPerSec;
  std::fprintf(f,
               "{\"bench\": \"kle_throughput_gate\", \"samples_per_sec\": "
               "%.1f, \"baseline_samples_per_sec\": %.1f, \"speedup\": %.2f, "
               "\"pass\": %s, \"enforced\": %s, %s}\n",
               kle_rate, kKleBaselineSamplesPerSec,
               kle_rate / kKleBaselineSamplesPerSec,
               gate_pass ? "true" : "false",
               gate_enforced ? "true" : "false", ctx.c_str());
  if (!gate_pass)
    std::fprintf(stderr,
                 "bench_micro_kle: KLE throughput %.0f samples/s is below "
                 "10x baseline (%.0f)%s\n",
                 kle_rate, 10.0 * kKleBaselineSamplesPerSec,
                 gate_enforced ? "" : " [advisory: single hardware thread]");

  // Bit-identity of the staged sampler across block shapes and dispatch
  // targets: rows [0, 1024) produced in one block, in 64-row blocks, in
  // ragged 257-row blocks, and (when SIMD is active) with the scalar
  // kernels forced, must all carry identical bits.
  bool deterministic = true;
  {
    const StreamKey key{7, 1};
    const std::size_t rows = 1024;
    const std::size_t cols = fx.reduced.num_locations();
    linalg::Matrix whole;
    fx.reduced.sample_block(field::SampleRange{0, rows}, key, whole);

    bool shapes_identical = true;
    linalg::Matrix part;
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{257}}) {
      for (std::uint64_t first = 0; first < rows; first += chunk) {
        const std::size_t count =
            std::min<std::size_t>(chunk, rows - first);
        fx.reduced.sample_block(field::SampleRange{first, count}, key, part);
        for (std::size_t i = 0; i < count; ++i)
          shapes_identical =
              shapes_identical &&
              std::memcmp(whole.row_ptr(first + i), part.row_ptr(i),
                          cols * sizeof(double)) == 0;
      }
    }

    bool targets_identical = true;
    const linalg::SimdTarget active = linalg::active_simd_target();
    if (active != linalg::SimdTarget::kScalar) {
      linalg::set_simd_target(linalg::SimdTarget::kScalar);
      linalg::Matrix forced;
      fx.reduced.sample_block(field::SampleRange{0, rows}, key, forced);
      linalg::reset_simd_target();
      for (std::size_t i = 0; i < rows; ++i)
        targets_identical =
            targets_identical &&
            std::memcmp(whole.row_ptr(i), forced.row_ptr(i),
                        cols * sizeof(double)) == 0;
    }
    deterministic = shapes_identical && targets_identical;
    std::fprintf(f,
                 "{\"bench\": \"sample_block_bit_identity\", "
                 "\"block_shapes_identical\": %s, "
                 "\"scalar_vs_simd_identical\": %s, %s}\n",
                 shapes_identical ? "true" : "false",
                 targets_identical ? "true" : "false", ctx.c_str());
    std::printf("sample bit-identity: block shapes %s, scalar vs %s %s\n",
                shapes_identical ? "ok" : "MISMATCH",
                linalg::simd_target_name(active),
                targets_identical ? "ok" : "MISMATCH");
  }

  ssta::McSstaOptions options;
  options.num_samples = 768;
  options.block_size = mc_block;
  options.seed = 99;
  options.keep_samples = true;

  ssta::McSstaResult serial;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    const ssta::McSstaResult result =
        run_monte_carlo_ssta(engine, samplers, options);
    bool bit_identical = true;
    if (threads == 1) {
      serial = result;
    } else {
      bit_identical =
          result.worst_delay_samples == serial.worst_delay_samples &&
          result.worst_delay.mean() == serial.worst_delay.mean() &&
          result.worst_delay.stddev() == serial.worst_delay.stddev();
      deterministic = deterministic && bit_identical;
    }
    const double rate =
        static_cast<double>(options.num_samples) / result.total_seconds;
    std::fprintf(f,
                 "{\"bench\": \"mc_ssta_threads_%zu\", \"wall_ms\": %.6f, "
                 "\"samples_per_sec\": %.1f, \"threads\": %zu, "
                 "\"block_samples\": %zu, \"speedup_vs_serial\": %.3f, "
                 "\"bit_identical\": %s, %s}\n",
                 threads, result.total_seconds * 1e3, rate,
                 result.threads_used, mc_block,
                 serial.total_seconds / std::max(result.total_seconds, 1e-12),
                 bit_identical ? "true" : "false", ctx.c_str());
    std::printf("mc_ssta @ 1669 gates, %zu samples, threads=%zu: %.3fs "
                "(%.0f samples/s)%s\n",
                options.num_samples, threads, result.total_seconds, rate,
                threads == 1 ? "" : (bit_identical ? " [bit-identical]"
                                                   : " [MISMATCH]"));
  }

  // Block-size invariance at the MC level: a different block shape must
  // retain the very same worst-delay sample bits.
  {
    options.num_threads = 1;
    options.block_size = mc_block == 96 ? 128 : 96;
    const ssta::McSstaResult result =
        run_monte_carlo_ssta(engine, samplers, options);
    const bool bit_identical =
        result.worst_delay_samples == serial.worst_delay_samples;
    deterministic = deterministic && bit_identical;
    std::fprintf(f,
                 "{\"bench\": \"mc_ssta_block_invariance\", "
                 "\"block_samples\": %zu, \"reference_block_samples\": %zu, "
                 "\"bit_identical\": %s, %s}\n",
                 options.block_size, mc_block,
                 bit_identical ? "true" : "false", ctx.c_str());
    std::printf("mc_ssta block-size invariance (%zu vs %zu): %s\n",
                options.block_size, mc_block,
                bit_identical ? "bit-identical" : "MISMATCH");
  }

  if (obs::trace_enabled())
    std::fprintf(f, "{\"bench\": \"mc_parallel_trace\", \"trace\": %s}\n",
                 compact_trace_json().c_str());
  std::fclose(f);
  if (!deterministic)
    std::fprintf(stderr, "bench_micro_kle: MC/sampling results are NOT "
                         "bit-identical across shapes/threads/targets\n");
  return deterministic && (gate_pass || !gate_enforced);
}

}  // namespace

int main(int argc, char** argv) {
  // Extract our --json=PATH / --json-mc=PATH / --block-samples=N / --trace
  // / --trace-json=PATH flags before google-benchmark sees the argv.
  // --block-samples follows the shared ExperimentFlagSet spelling
  // (common/cli.h) and sets the MC block size of the --json-mc runs.
  std::string json_path;
  std::string json_mc_path;
  std::string trace_json_path;
  std::size_t block_samples = 0;
  bool trace_flag = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--json-mc=", 10) == 0) {
      json_mc_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--block-samples=", 16) == 0) {
      block_samples =
          static_cast<std::size_t>(std::strtoull(argv[i] + 16, nullptr, 10));
      if (block_samples > sckl::ExperimentFlagSet::kMaxBlockSamples) {
        std::fprintf(stderr, "bench_micro_kle: --block-samples too large\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_flag = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  sckl::obs::TraceSession trace_session(trace_flag, trace_json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!json_path.empty() && !emit_store_json(json_path)) return 1;
  if (!json_mc_path.empty() &&
      !emit_mc_parallel_json(json_mc_path, block_samples))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
