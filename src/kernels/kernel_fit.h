// Least-squares kernel fitting (Fig. 3a of the paper).
//
// The paper picks the Gaussian kernel's decay rate c by best-fitting the
// measurement-supported linear (cone) kernel of Friedberg [12]:
//  - a 1-D fit minimizes  int_0^R (k_c(v) - target(v))^2 dv   (Fig. 3a), and
//  - a 2-D fit weights separations by how often they occur on a disc,
//    minimizing int_0^R (k_c(v) - target(v))^2 v dv, which is the fit the
//    paper uses to choose c ("best fit an isotropic linear kernel in 2-D").
// Minimization is golden-section search on the scalar decay parameter; the
// SSE in c is unimodal for every monotone kernel family here.
#pragma once

#include <functional>

namespace sckl::kernels {

/// Scalar correlation profile k(v) for separation v >= 0.
using RadialProfile = std::function<double(double)>;

/// Result of a 1-parameter radial least-squares fit.
struct RadialFitResult {
  double parameter;  // fitted decay parameter (c, or rho)
  double sse;        // integrated squared error at the optimum
};

/// Weight modes for the radial integral.
enum class FitWeight {
  kUniform,  // 1-D fit: weight 1 (Fig. 3a curves)
  kRadial,   // 2-D fit: weight v (area element of an isotropic field)
};

/// Fits `family(c)` to `target` over v in [0, v_max] by minimizing the
/// weighted integrated squared error over c in [c_lo, c_hi].
RadialFitResult fit_radial_parameter(
    const std::function<RadialProfile(double)>& family,
    const RadialProfile& target, double v_max, double c_lo, double c_hi,
    FitWeight weight = FitWeight::kUniform, int samples = 2000);

/// Integrated squared error between two profiles (diagnostic / plotting).
double radial_sse(const RadialProfile& a, const RadialProfile& b,
                  double v_max, FitWeight weight = FitWeight::kUniform,
                  int samples = 2000);

/// Convenience: the paper's choice of Gaussian c — 2-D (radially weighted)
/// best fit to the linear cone of radius rho over separations [0, v_max].
double paper_gaussian_c(double rho = 1.0, double v_max = 2.0 * 1.41421356237);

}  // namespace sckl::kernels
