// Empirical non-negative-definiteness check (eq. 2 of the paper).
//
// A valid covariance kernel must produce a positive semi-definite Gram
// matrix for every finite point set on the die. This checker samples random
// point sets, builds the Gram matrix, and reports the most negative
// eigenvalue found (relative to the largest). It is how the test suite
// demonstrates that the Gaussian/Matern/spherical kernels are valid while
// the isotropic linear cone can fail in 2-D, as [1] observes.
#pragma once

#include <cstdint>

#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"

namespace sckl::kernels {

/// Outcome of the sampled PSD check.
struct PsdCheckResult {
  double min_relative_eigenvalue;  // most negative lambda_min / lambda_max
  bool passed;                     // min_relative_eigenvalue >= -tolerance
};

/// Runs `trials` random Gram-matrix tests with `points_per_trial` uniformly
/// random die locations each. Eigenvalues below -tolerance (relative) fail.
PsdCheckResult check_positive_semidefinite(
    const CovarianceKernel& kernel,
    geometry::BoundingBox domain = geometry::BoundingBox::unit_die(),
    int trials = 8, int points_per_trial = 40, double tolerance = 1e-8,
    std::uint64_t seed = 7);

}  // namespace sckl::kernels
