// covariance_kernel.h is interface-only; the translation unit exists so the
// vtable of CovarianceKernel/IsotropicKernel is emitted exactly once.
#include "kernels/covariance_kernel.h"

namespace sckl::kernels {}
