#include "kernels/kernel_library.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace sckl::kernels {
namespace {

std::string format_params(const char* name, double a, const char* an,
                          double b = 0.0, const char* bn = nullptr) {
  std::ostringstream out;
  out << name << '(' << an << '=' << a;
  if (bn != nullptr) out << ',' << bn << '=' << b;
  out << ')';
  return out.str();
}

// Non-isotropic kernels don't pass through IsotropicKernel::operator() and
// its separation guard, so they validate their own distance measure here
// (same contract: NaN/Inf coordinates fail loudly with kNonFinite).
void require_finite_separation(double v, const CovarianceKernel& kernel,
                               geometry::Point2 x, geometry::Point2 y) {
  if (std::isfinite(v)) return;
  throw Error(kernel.name() + ": non-finite separation between query points (" +
                  std::to_string(x.x) + ", " + std::to_string(x.y) +
                  ") and (" + std::to_string(y.x) + ", " +
                  std::to_string(y.y) + ")",
              ErrorCode::kNonFinite);
}

}  // namespace

GaussianKernel::GaussianKernel(double c) : c_(c) {
  require(std::isfinite(c) && c > 0.0,
          "GaussianKernel: c must be finite and positive");
}
double GaussianKernel::radial(double v) const { return std::exp(-c_ * v * v); }
std::string GaussianKernel::name() const {
  return format_params("gaussian", c_, "c");
}
std::unique_ptr<CovarianceKernel> GaussianKernel::clone() const {
  return std::make_unique<GaussianKernel>(*this);
}

ExponentialKernel::ExponentialKernel(double c) : c_(c) {
  require(std::isfinite(c) && c > 0.0,
          "ExponentialKernel: c must be finite and positive");
}
double ExponentialKernel::radial(double v) const { return std::exp(-c_ * v); }
std::string ExponentialKernel::name() const {
  return format_params("exponential", c_, "c");
}
std::unique_ptr<CovarianceKernel> ExponentialKernel::clone() const {
  return std::make_unique<ExponentialKernel>(*this);
}

SeparableL1Kernel::SeparableL1Kernel(double c) : c_(c) {
  require(std::isfinite(c) && c > 0.0,
          "SeparableL1Kernel: c must be finite and positive");
}
double SeparableL1Kernel::operator()(geometry::Point2 x,
                                     geometry::Point2 y) const {
  const double v = geometry::manhattan_distance(x, y);
  require_finite_separation(v, *this, x, y);
  return std::exp(-c_ * v);
}
std::string SeparableL1Kernel::name() const {
  return format_params("separable_l1", c_, "c");
}
std::unique_ptr<CovarianceKernel> SeparableL1Kernel::clone() const {
  return std::make_unique<SeparableL1Kernel>(*this);
}

RadialMagnitudeKernel::RadialMagnitudeKernel(double c) : c_(c) {
  require(std::isfinite(c) && c > 0.0,
          "RadialMagnitudeKernel: c must be finite and positive");
}
double RadialMagnitudeKernel::operator()(geometry::Point2 x,
                                         geometry::Point2 y) const {
  const double rx = std::hypot(x.x, x.y);
  const double ry = std::hypot(y.x, y.y);
  const double v = std::abs(rx - ry);
  require_finite_separation(v, *this, x, y);
  return std::exp(-c_ * v);
}
std::string RadialMagnitudeKernel::name() const {
  return format_params("radial_magnitude", c_, "c");
}
std::unique_ptr<CovarianceKernel> RadialMagnitudeKernel::clone() const {
  return std::make_unique<RadialMagnitudeKernel>(*this);
}

MaternKernel::MaternKernel(double b, double s)
    : b_(b), s_(s), log_gamma_(std::lgamma(s - 1.0)) {
  require(std::isfinite(b) && b > 0.0,
          "MaternKernel: b must be finite and positive");
  require(std::isfinite(s) && s > 1.0,
          "MaternKernel: s must be finite and exceed 1");
}
double MaternKernel::radial(double v) const {
  if (v <= 0.0) return 1.0;
  const double nu = s_ - 1.0;
  const double z = b_ * v;
  // K(v) = 2 (z/2)^nu B_nu(z) / Gamma(nu), evaluated in log space to stay
  // stable for small z where B_nu blows up and the power underflows.
  const double bessel = std::cyl_bessel_k(nu, z);
  if (bessel <= 0.0 || !std::isfinite(bessel)) return v < 1e-8 ? 1.0 : 0.0;
  const double log_value = std::log(2.0) + nu * std::log(z / 2.0) +
                           std::log(bessel) - log_gamma_;
  return std::exp(log_value);
}
std::string MaternKernel::name() const {
  return format_params("matern", b_, "b", s_, "s");
}
std::unique_ptr<CovarianceKernel> MaternKernel::clone() const {
  return std::make_unique<MaternKernel>(*this);
}

LinearConeKernel::LinearConeKernel(double rho) : rho_(rho) {
  require(std::isfinite(rho) && rho > 0.0,
          "LinearConeKernel: rho must be finite and positive");
}
double LinearConeKernel::radial(double v) const {
  return v >= rho_ ? 0.0 : 1.0 - v / rho_;
}
std::string LinearConeKernel::name() const {
  return format_params("linear_cone", rho_, "rho");
}
std::unique_ptr<CovarianceKernel> LinearConeKernel::clone() const {
  return std::make_unique<LinearConeKernel>(*this);
}

SphericalKernel::SphericalKernel(double rho) : rho_(rho) {
  require(std::isfinite(rho) && rho > 0.0,
          "SphericalKernel: rho must be finite and positive");
}
double SphericalKernel::radial(double v) const {
  if (v >= rho_) return 0.0;
  const double u = v / rho_;
  return 1.0 - 1.5 * u + 0.5 * u * u * u;
}
std::string SphericalKernel::name() const {
  return format_params("spherical", rho_, "rho");
}
std::unique_ptr<CovarianceKernel> SphericalKernel::clone() const {
  return std::make_unique<SphericalKernel>(*this);
}

}  // namespace sckl::kernels
