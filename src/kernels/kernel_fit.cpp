#include "kernels/kernel_fit.h"

#include <cmath>

#include "common/error.h"
#include "kernels/kernel_library.h"

namespace sckl::kernels {
namespace {

double weight_of(FitWeight mode, double v) {
  return mode == FitWeight::kRadial ? v : 1.0;
}

}  // namespace

double radial_sse(const RadialProfile& a, const RadialProfile& b,
                  double v_max, FitWeight weight, int samples) {
  require(v_max > 0.0, "radial_sse: v_max must be positive");
  require(samples >= 2, "radial_sse: need at least two samples");
  // Composite trapezoid on a uniform grid; the integrands are smooth.
  const double dv = v_max / static_cast<double>(samples);
  double sum = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double v = dv * static_cast<double>(i);
    const double diff = a(v) - b(v);
    const double term = diff * diff * weight_of(weight, v);
    sum += (i == 0 || i == samples) ? 0.5 * term : term;
  }
  return sum * dv;
}

RadialFitResult fit_radial_parameter(
    const std::function<RadialProfile(double)>& family,
    const RadialProfile& target, double v_max, double c_lo, double c_hi,
    FitWeight weight, int samples) {
  require(c_lo > 0.0 && c_hi > c_lo, "fit_radial_parameter: bad bracket");
  auto objective = [&](double c) {
    return radial_sse(family(c), target, v_max, weight, samples);
  };
  // Golden-section search; the SSE is unimodal in the decay parameter for
  // monotone kernel families fit to a monotone target.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = c_lo;
  double b = c_hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int iter = 0; iter < 200 && (b - a) > 1e-10 * (c_hi - c_lo); ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = objective(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = objective(x2);
    }
  }
  const double best = 0.5 * (a + b);
  return RadialFitResult{best, objective(best)};
}

double paper_gaussian_c(double rho, double v_max) {
  const LinearConeKernel cone(rho);
  const RadialProfile target = [&cone](double v) { return cone.radial(v); };
  const auto family = [](double c) -> RadialProfile {
    return [c](double v) { return std::exp(-c * v * v); };
  };
  return fit_radial_parameter(family, target, v_max, 0.05, 50.0,
                              FitWeight::kRadial)
      .parameter;
}

}  // namespace sckl::kernels
