// Concrete covariance kernels.
//
// The library covers every kernel the paper discusses:
//  - GaussianKernel         exp(-c v^2)            the paper's test kernel
//  - ExponentialKernel      exp(-c v)              Liu [16] style
//  - SeparableL1Kernel      exp(-c(|dx| + |dy|))   eq. 5, analytically solvable
//  - RadialMagnitudeKernel  exp(-c | |x| - |y| |)  Bhardwaj [2]'s kernel; the
//                           paper criticizes it (perfect correlation on
//                           origin-centric circles) — kept for the ablation
//  - MaternKernel           eq. 6, the Xiong [1] extraction family (modified
//                           Bessel function of the second kind)
//  - LinearConeKernel       max(0, 1 - v/rho)      Friedberg [12] measurement
//                           fit; valid only in restricted settings [1]
//  - SphericalKernel        compactly supported, always valid in 2-D
#pragma once

#include "kernels/covariance_kernel.h"

namespace sckl::kernels {

/// Squared-exponential kernel exp(-c v^2) (Fig. 1a of the paper).
class GaussianKernel final : public IsotropicKernel {
 public:
  explicit GaussianKernel(double c);
  double radial(double v) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;
  double c() const { return c_; }

 private:
  double c_;
};

/// Isotropic exponential kernel exp(-c v).
class ExponentialKernel final : public IsotropicKernel {
 public:
  explicit ExponentialKernel(double c);
  double radial(double v) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;
  double c() const { return c_; }

 private:
  double c_;
};

/// Separable L1 exponential kernel exp(-c(|x1-y1| + |x2-y2|)) (eq. 5). Not
/// isotropic; admits the analytic 1-D product solution used as the
/// validation oracle for the Galerkin solver.
class SeparableL1Kernel final : public CovarianceKernel {
 public:
  explicit SeparableL1Kernel(double c);
  double operator()(geometry::Point2 x, geometry::Point2 y) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;
  double c() const { return c_; }

 private:
  double c_;
};

/// exp(-c | r_x - r_y |) with r the distance from the die origin; the
/// physically unrealistic kernel of [2] that the paper's generic method
/// supersedes.
class RadialMagnitudeKernel final : public CovarianceKernel {
 public:
  explicit RadialMagnitudeKernel(double c);
  double operator()(geometry::Point2 x, geometry::Point2 y) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;

 private:
  double c_;
};

/// The Matern-family kernel of eq. 6:
///   K(v) = 2 (b v / 2)^(s-1) B_{s-1}(b v) / Gamma(s-1),   K(0) = 1,
/// with B the modified Bessel function of the second kind. Requires s > 1.
class MaternKernel final : public IsotropicKernel {
 public:
  MaternKernel(double b, double s);
  double radial(double v) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;
  double b() const { return b_; }
  double s() const { return s_; }

 private:
  double b_;
  double s_;
  double log_gamma_;  // precomputed log Gamma(s-1)
};

/// Linear "cone" kernel max(0, 1 - v/rho) (Friedberg [12]).
class LinearConeKernel final : public IsotropicKernel {
 public:
  explicit LinearConeKernel(double rho);
  double radial(double v) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;
  double rho() const { return rho_; }

 private:
  double rho_;
};

/// Spherical kernel 1 - 1.5(v/rho) + 0.5(v/rho)^3 for v < rho, else 0.
class SphericalKernel final : public IsotropicKernel {
 public:
  explicit SphericalKernel(double rho);
  double radial(double v) const override;
  std::string name() const override;
  std::unique_ptr<CovarianceKernel> clone() const override;

 private:
  double rho_;
};

}  // namespace sckl::kernels
