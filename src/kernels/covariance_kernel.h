// Covariance kernel interface for the grid-less random-field model.
//
// A kernel K(x, y) returns the correlation of a normalized statistical
// parameter (L, W, Vt, tox) between two die locations (Sec. 2.2 of the
// paper). Parameters are normalized to unit variance, so covariance and
// correlation coincide and K(x, x) = 1. A physically valid kernel must be
// non-negative definite (eq. 2) and symmetric; psd_check.h provides an
// empirical validator.
#pragma once

#include <cmath>
#include <memory>
#include <string>

#include "common/error.h"
#include "geometry/point2.h"

namespace sckl::kernels {

/// Abstract correlation kernel over the die domain D x D.
class CovarianceKernel {
 public:
  virtual ~CovarianceKernel() = default;

  /// Correlation between locations x and y.
  virtual double operator()(geometry::Point2 x, geometry::Point2 y) const = 0;

  /// Human-readable name with parameter values, e.g. "gaussian(c=2.33)".
  virtual std::string name() const = 0;

  /// Deep copy preserving the dynamic type.
  virtual std::unique_ptr<CovarianceKernel> clone() const = 0;
};

/// Base for isotropic kernels: K(x, y) = k(||x - y||_2). Most physically
/// extracted kernels ([1], [12], [16]) are of this form.
class IsotropicKernel : public CovarianceKernel {
 public:
  double operator()(geometry::Point2 x, geometry::Point2 y) const final {
    const double v = geometry::distance(x, y);
    // A NaN/Inf coordinate (corrupt placement, uninitialized gate) would
    // silently poison every Galerkin entry downstream; fail at the source
    // with a code the solvers can dispatch on.
    if (!std::isfinite(v))
      throw Error(name() + ": non-finite separation between query points (" +
                      std::to_string(x.x) + ", " + std::to_string(x.y) +
                      ") and (" + std::to_string(y.x) + ", " +
                      std::to_string(y.y) + ")",
                  ErrorCode::kNonFinite);
    return radial(v);
  }

  /// Correlation as a function of Euclidean separation v >= 0.
  virtual double radial(double v) const = 0;
};

}  // namespace sckl::kernels
