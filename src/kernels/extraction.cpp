#include "kernels/extraction.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/statistics.h"

namespace sckl::kernels {

std::vector<CorrelogramBin> empirical_correlogram(
    const linalg::Matrix& samples,
    const std::vector<geometry::Point2>& sites, std::size_t num_bins,
    double max_distance) {
  const std::size_t num_dies = samples.rows();
  const std::size_t num_sites = samples.cols();
  require(num_sites == sites.size(),
          "empirical_correlogram: samples/sites mismatch");
  require(num_dies >= 3, "empirical_correlogram: need at least 3 dies");
  require(num_bins > 0 && max_distance > 0.0,
          "empirical_correlogram: bad binning");

  // Normalize each site across dies (the paper's unit-variance convention).
  linalg::Matrix normalized(num_dies, num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    RunningStats stats;
    for (std::size_t d = 0; d < num_dies; ++d) stats.add(samples(d, s));
    const double sigma = std::max(stats.stddev(), 1e-300);
    for (std::size_t d = 0; d < num_dies; ++d)
      normalized(d, s) = (samples(d, s) - stats.mean()) / sigma;
  }

  struct Accumulator {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::vector<Accumulator> bins(num_bins);
  const double scale = static_cast<double>(num_bins) / max_distance;
  const double denom = static_cast<double>(num_dies - 1);
  for (std::size_t a = 0; a < num_sites; ++a) {
    for (std::size_t b = a + 1; b < num_sites; ++b) {
      const double v = geometry::distance(sites[a], sites[b]);
      if (v >= max_distance) continue;
      const auto bin = static_cast<std::size_t>(v * scale);
      double corr = 0.0;
      for (std::size_t d = 0; d < num_dies; ++d)
        corr += normalized(d, a) * normalized(d, b);
      bins[bin].sum += corr / denom;
      bins[bin].count += 1;
    }
  }

  std::vector<CorrelogramBin> result;
  result.reserve(num_bins);
  for (std::size_t i = 0; i < num_bins; ++i) {
    if (bins[i].count == 0) continue;
    CorrelogramBin out;
    out.distance = (static_cast<double>(i) + 0.5) / scale;
    out.correlation = bins[i].sum / static_cast<double>(bins[i].count);
    out.num_pairs = bins[i].count;
    result.push_back(out);
  }
  require(!result.empty(), "empirical_correlogram: no occupied bins");
  return result;
}

CorrelogramFit fit_correlogram(
    const std::vector<CorrelogramBin>& correlogram,
    const std::function<std::function<double(double)>(double)>& family,
    double c_lo, double c_hi) {
  require(!correlogram.empty(), "fit_correlogram: empty correlogram");
  require(c_lo > 0.0 && c_hi > c_lo, "fit_correlogram: bad bracket");

  auto objective = [&](double c) {
    const auto profile = family(c);
    double sse = 0.0;
    double weight_total = 0.0;
    for (const auto& bin : correlogram) {
      const double w = static_cast<double>(bin.num_pairs);
      const double diff = profile(bin.distance) - bin.correlation;
      sse += w * diff * diff;
      weight_total += w;
    }
    return sse / weight_total;
  };

  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = c_lo;
  double b = c_hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int iter = 0; iter < 200 && (b - a) > 1e-10 * (c_hi - c_lo); ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = objective(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = objective(x2);
    }
  }
  CorrelogramFit fit;
  fit.parameter = 0.5 * (a + b);
  fit.rmse = std::sqrt(objective(fit.parameter));
  return fit;
}

}  // namespace sckl::kernels
