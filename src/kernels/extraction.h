// Kernel extraction from measurement data — the [1]/[16] workflow.
//
// The grid-less model's input is a correlation kernel extracted from
// silicon measurements: sample the parameter at test structures across many
// dies, bin the pairwise sample correlations by separation distance (the
// empirical "correlogram" of Liu [16]), and fit a valid kernel family to
// the binned curve (the robust extraction of Xiong et al. [1] — fitting a
// parametric PSD family guarantees validity, unlike using the raw empirical
// matrix). We do not have silicon, so the example drives this with
// synthetic measurements from the library's own exact sampler and verifies
// the known ground-truth kernel is recovered.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "geometry/point2.h"
#include "linalg/matrix.h"

namespace sckl::kernels {

/// One bin of the empirical correlogram.
struct CorrelogramBin {
  double distance = 0.0;     // bin center
  double correlation = 0.0;  // average pairwise sample correlation
  std::size_t num_pairs = 0; // pairs contributing to the bin
};

/// Computes the empirical correlogram of measurement data.
/// `samples` is (num_dies x num_sites): row d holds one die's measurements
/// at the `sites` locations. Sites are normalized per-site (mean/variance
/// across dies) before correlating, mirroring the paper's normalization.
std::vector<CorrelogramBin> empirical_correlogram(
    const linalg::Matrix& samples,
    const std::vector<geometry::Point2>& sites, std::size_t num_bins,
    double max_distance);

/// Result of fitting a one-parameter kernel family to a correlogram.
struct CorrelogramFit {
  double parameter = 0.0;  // fitted decay parameter
  double rmse = 0.0;       // root-mean-square residual over bins
};

/// Fits `family(c)` (a radial profile factory) to the correlogram by
/// weighted least squares (weights = pair counts) with golden-section
/// search over [c_lo, c_hi].
CorrelogramFit fit_correlogram(
    const std::vector<CorrelogramBin>& correlogram,
    const std::function<std::function<double(double)>(double)>& family,
    double c_lo, double c_hi);

}  // namespace sckl::kernels
