#include "kernels/psd_check.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/symmetric_eigen.h"

namespace sckl::kernels {

PsdCheckResult check_positive_semidefinite(const CovarianceKernel& kernel,
                                           geometry::BoundingBox domain,
                                           int trials, int points_per_trial,
                                           double tolerance,
                                           std::uint64_t seed) {
  require(trials > 0 && points_per_trial > 1, "psd_check: bad configuration");
  Rng rng(seed);
  double worst = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<geometry::Point2> points(
        static_cast<std::size_t>(points_per_trial));
    for (auto& p : points) {
      p.x = rng.uniform(domain.min.x, domain.max.x);
      p.y = rng.uniform(domain.min.y, domain.max.y);
    }
    linalg::Matrix gram(points.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      for (std::size_t j = i; j < points.size(); ++j) {
        const double value = kernel(points[i], points[j]);
        gram(i, j) = value;
        gram(j, i) = value;
      }
    const linalg::Vector values = linalg::symmetric_eigenvalues(gram);
    const double largest = std::max(values.front(), 1e-30);
    const double relative = values.back() / largest;
    worst = std::min(worst, relative);
  }
  return PsdCheckResult{worst, worst >= -tolerance};
}

}  // namespace sckl::kernels
