// Synthetic benchmark circuit generation.
//
// The paper evaluates on 14 ISCAS85/89 circuits whose netlists are not
// bundled here; per DESIGN.md we substitute random DAG circuits with the
// paper's exact gate counts (383 ... 22179), realistic logic-depth/fanout
// profiles and, for the s-series, a flip-flop population that cuts timing
// paths. The statistical experiment (e_mu, e_sigma, speedup vs N_g) depends
// on gate count and spatial placement, not on the specific Boolean
// functions, so the substitution preserves the evaluated behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace sckl::circuit {

/// Parameters of the synthetic generator.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_gates = 1000;  // physical gates, including DFFs
  std::size_t num_inputs = 0;    // 0 = auto (~2 sqrt(N), clamped)
  std::size_t num_outputs = 0;   // 0 = auto
  double dff_fraction = 0.0;     // fraction of gates that are DFFs
  std::uint64_t seed = 1;
};

/// Generates a finalized random netlist matching the spec. Deterministic in
/// the seed. Guarantees: exact physical gate count, acyclic combinational
/// logic, every primary output driven, every gate reachable as a driver.
Netlist synthetic_circuit(const SyntheticSpec& spec);

/// One row of the paper's Table 1 benchmark set.
struct PaperCircuitInfo {
  const char* name;       // ISCAS name, e.g. "c1908"
  std::size_t num_gates;  // the paper's N_g
  bool sequential;        // s-series (has DFFs)
};

/// The 14 circuits of Table 1 in the paper's order.
const std::vector<PaperCircuitInfo>& paper_circuit_table();

/// Builds the synthetic stand-in for one Table 1 circuit by name
/// ("c880" ... "s38417"). Throws for unknown names.
Netlist make_paper_circuit(const std::string& name, std::uint64_t seed = 1);

}  // namespace sckl::circuit
