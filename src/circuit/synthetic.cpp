#include "circuit/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace sckl::circuit {
namespace {

std::size_t auto_io_count(std::size_t num_gates) {
  const auto estimate = static_cast<std::size_t>(
      std::llround(2.0 * std::sqrt(static_cast<double>(num_gates))));
  return std::clamp<std::size_t>(estimate, 4, 400);
}

CellFunction random_function(Rng& rng, std::size_t arity) {
  if (arity == 1)
    return rng.uniform() < 0.7 ? CellFunction::kInv : CellFunction::kBuf;
  // ISCAS-like mix: NAND/NOR heavy, occasional XOR.
  const double u = rng.uniform();
  if (u < 0.35) return CellFunction::kNand;
  if (u < 0.55) return CellFunction::kNor;
  if (u < 0.75) return CellFunction::kAnd;
  if (u < 0.90) return CellFunction::kOr;
  if (u < 0.96) return CellFunction::kXor;
  return CellFunction::kXnor;
}

std::size_t random_arity(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.15) return 1;
  if (u < 0.80) return 2;
  if (u < 0.95) return 3;
  return 4;
}

}  // namespace

Netlist synthetic_circuit(const SyntheticSpec& spec) {
  require(spec.num_gates >= 2, "synthetic_circuit: need at least two gates");
  require(spec.dff_fraction >= 0.0 && spec.dff_fraction < 0.9,
          "synthetic_circuit: dff_fraction out of range");
  Rng rng(spec.seed);

  const std::size_t num_inputs =
      spec.num_inputs != 0 ? spec.num_inputs : auto_io_count(spec.num_gates);
  const std::size_t num_outputs =
      spec.num_outputs != 0 ? spec.num_outputs : auto_io_count(spec.num_gates);
  auto num_dffs = static_cast<std::size_t>(
      std::llround(spec.dff_fraction * static_cast<double>(spec.num_gates)));
  num_dffs = std::min(num_dffs, spec.num_gates - 1);
  const std::size_t num_comb = spec.num_gates - num_dffs;

  Netlist netlist(spec.name);

  // Primary inputs.
  std::vector<std::string> drivers;  // nets usable as combinational sources
  drivers.reserve(num_inputs + spec.num_gates);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    const std::string name = "pi" + std::to_string(i);
    netlist.add_gate(name, CellFunction::kInput, {});
    drivers.push_back(name);
  }
  // DFF outputs are startpoints, so they are declared up front and usable
  // as sources immediately; their D fanin (named later) is legal because
  // fanin resolution happens at finalize().
  std::vector<std::string> dff_names;
  for (std::size_t i = 0; i < num_dffs; ++i) {
    dff_names.push_back("ff" + std::to_string(i));
    drivers.push_back(dff_names.back());
  }

  // Combinational gates with a recency-biased source pick: mostly recent
  // drivers (creates logic depth), occasionally any driver (creates
  // reconvergence and wide fanout).
  auto pick_driver = [&](std::size_t upto) -> const std::string& {
    const std::size_t window = std::max<std::size_t>(16, upto / 8);
    if (rng.uniform() < 0.8 && upto > window) {
      const std::size_t offset = rng.uniform_index(window);
      return drivers[upto - 1 - offset];
    }
    return drivers[rng.uniform_index(upto)];
  };

  std::vector<std::string> comb_names;
  comb_names.reserve(num_comb);
  for (std::size_t i = 0; i < num_comb; ++i) {
    const std::size_t arity = std::min(random_arity(rng), drivers.size());
    std::vector<std::string> fanin;
    const std::size_t usable = drivers.size();
    while (fanin.size() < std::max<std::size_t>(arity, 1)) {
      const std::string& candidate = pick_driver(usable);
      if (std::find(fanin.begin(), fanin.end(), candidate) == fanin.end())
        fanin.push_back(candidate);
      else if (usable <= fanin.size())
        break;  // tiny driver pool; accept lower arity
    }
    const CellFunction function =
        fanin.size() == 1 ? random_function(rng, 1)
                          : random_function(rng, fanin.size());
    const std::string name = "g" + std::to_string(i);
    netlist.add_gate(name, function, std::move(fanin));
    drivers.push_back(name);
    comb_names.push_back(name);
  }

  // DFF D pins: driven by late combinational gates (register the deep
  // logic, like a pipeline stage boundary) or occasionally a PI.
  for (const std::string& ff : dff_names) {
    std::string source;
    if (!comb_names.empty() && rng.uniform() < 0.95) {
      // Bias toward the last quarter of the combinational gates.
      const std::size_t quarter = std::max<std::size_t>(1, comb_names.size() / 4);
      source = rng.uniform() < 0.7
                   ? comb_names[comb_names.size() - 1 -
                                rng.uniform_index(quarter)]
                   : comb_names[rng.uniform_index(comb_names.size())];
    } else {
      source = "pi" + std::to_string(rng.uniform_index(num_inputs));
    }
    netlist.add_gate(ff, CellFunction::kDff, {source});
  }

  // Primary outputs: the deepest combinational gates first (so the longest
  // logic is observed at an endpoint), then random nets until the output
  // budget is used. Duplicates are skipped.
  std::vector<std::string> po_sources;
  for (std::size_t i = 0; i < num_outputs; ++i) {
    const std::string* source = nullptr;
    if (i < std::min<std::size_t>(num_outputs / 2 + 1, comb_names.size())) {
      source = &comb_names[comb_names.size() - 1 - i];  // deepest gates
    } else if (!comb_names.empty()) {
      source = &comb_names[rng.uniform_index(comb_names.size())];
    } else {
      source = &dff_names[rng.uniform_index(dff_names.size())];
    }
    if (std::find(po_sources.begin(), po_sources.end(), *source) !=
        po_sources.end())
      continue;
    po_sources.push_back(*source);
    netlist.add_gate(*source + "_po", CellFunction::kOutput, {*source});
  }
  require(!po_sources.empty(), "synthetic_circuit: no outputs generated");

  netlist.finalize();
  ensure(netlist.num_physical_gates() == spec.num_gates,
         "synthetic_circuit: gate count mismatch");
  return netlist;
}

const std::vector<PaperCircuitInfo>& paper_circuit_table() {
  static const std::vector<PaperCircuitInfo> table = {
      {"c880", 383, false},    {"c1355", 546, false},
      {"c1908", 880, false},   {"c3540", 1669, false},
      {"c5315", 2307, false},  {"c6288", 2416, false},
      {"s5378", 2779, true},   {"c7552", 3512, false},
      {"s9234", 5597, true},   {"s13207", 7951, true},
      {"s15850", 9772, true},  {"s35932", 16065, true},
      {"s38584", 19253, true}, {"s38417", 22179, true},
  };
  return table;
}

Netlist make_paper_circuit(const std::string& name, std::uint64_t seed) {
  for (const auto& info : paper_circuit_table()) {
    if (name == info.name) {
      SyntheticSpec spec;
      spec.name = info.name;
      spec.num_gates = info.num_gates;
      spec.dff_fraction = info.sequential ? 0.15 : 0.0;
      spec.seed = seed ^ std::hash<std::string>{}(name);
      return synthetic_circuit(spec);
    }
  }
  require(false, "make_paper_circuit: unknown circuit '" + name + "'");
  return Netlist{};  // unreachable
}

}  // namespace sckl::circuit
