// Topological levelization of a netlist for block-based STA.
//
// Sequential handling follows standard STA semantics: primary inputs and
// DFF outputs (Q pins) are path startpoints at level 0; primary outputs and
// DFF data inputs (D pins) are endpoints. A DFF therefore does not depend
// combinationally on its fanin, which is what makes levelization of
// sequential (s-series) circuits acyclic. Combinational cycles are a
// structural error and throw.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.h"

namespace sckl::circuit {

/// Result of levelizing a finalized netlist.
struct Levelization {
  /// Gate indices in a valid combinational evaluation order (startpoints
  /// first). Every gate appears exactly once.
  std::vector<std::size_t> topological_order;

  /// Level (longest combinational distance from a startpoint) per gate.
  std::vector<std::size_t> level;

  /// Largest level (the logic depth of the circuit).
  std::size_t depth = 0;

  /// Timing endpoints: primary outputs plus DFF indices (their D pins).
  std::vector<std::size_t> endpoints;
};

/// Levelizes `netlist`; throws sckl::Error on combinational cycles.
Levelization levelize(const Netlist& netlist);

}  // namespace sckl::circuit
