#include "circuit/netlist.h"

#include <utility>

#include "common/error.h"

namespace sckl::circuit {

const char* cell_function_name(CellFunction f) {
  switch (f) {
    case CellFunction::kInput:
      return "INPUT";
    case CellFunction::kOutput:
      return "OUTPUT";
    case CellFunction::kBuf:
      return "BUF";
    case CellFunction::kInv:
      return "NOT";
    case CellFunction::kAnd:
      return "AND";
    case CellFunction::kNand:
      return "NAND";
    case CellFunction::kOr:
      return "OR";
    case CellFunction::kNor:
      return "NOR";
    case CellFunction::kXor:
      return "XOR";
    case CellFunction::kXnor:
      return "XNOR";
    case CellFunction::kDff:
      return "DFF";
  }
  return "?";
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

std::size_t Netlist::add_gate(const std::string& name, CellFunction function,
                              std::vector<std::string> fanin_names) {
  require(!finalized_, "Netlist::add_gate: netlist already finalized");
  require(!name.empty(), "Netlist::add_gate: empty gate name");
  const auto [it, inserted] = index_.try_emplace(name, gates_.size());
  require(inserted, "Netlist::add_gate: duplicate gate name '" + name + "'");
  Gate gate;
  gate.name = name;
  gate.function = function;
  gates_.push_back(std::move(gate));
  pending_fanin_.push_back(std::move(fanin_names));
  return gates_.size() - 1;
}

void Netlist::finalize() {
  require(!finalized_, "Netlist::finalize: already finalized");
  require(!gates_.empty(), "Netlist::finalize: empty netlist");

  for (std::size_t i = 0; i < gates_.size(); ++i) {
    Gate& gate = gates_[i];
    for (const std::string& fanin_name : pending_fanin_[i]) {
      const auto it = index_.find(fanin_name);
      require(it != index_.end(), "Netlist::finalize: gate '" + gate.name +
                                      "' references unknown net '" +
                                      fanin_name + "'");
      gate.fanin.push_back(it->second);
    }

    const std::size_t arity = gate.fanin.size();
    switch (gate.function) {
      case CellFunction::kInput:
        require(arity == 0, "Netlist: INPUT '" + gate.name + "' has fanin");
        break;
      case CellFunction::kOutput:
      case CellFunction::kBuf:
      case CellFunction::kInv:
      case CellFunction::kDff:
        require(arity == 1, "Netlist: gate '" + gate.name +
                                "' must have exactly one fanin");
        break;
      default:
        require(arity >= 2, "Netlist: gate '" + gate.name +
                                "' needs at least two fanins");
    }
  }
  pending_fanin_.clear();

  for (std::size_t i = 0; i < gates_.size(); ++i) {
    for (std::size_t f : gates_[i].fanin) gates_[f].fanout.push_back(i);
    switch (gates_[i].function) {
      case CellFunction::kInput:
        inputs_.push_back(i);
        break;
      case CellFunction::kOutput:
        outputs_.push_back(i);
        break;
      case CellFunction::kDff:
        dffs_.push_back(i);
        physical_.push_back(i);
        break;
      default:
        physical_.push_back(i);
    }
  }
  require(!inputs_.empty(), "Netlist::finalize: no primary inputs");
  require(!outputs_.empty(), "Netlist::finalize: no primary outputs");
  finalized_ = true;
}

std::size_t Netlist::num_physical_gates() const { return physical_.size(); }

const Gate& Netlist::gate(std::size_t i) const {
  require(i < gates_.size(), "Netlist::gate: index out of range");
  return gates_[i];
}

std::size_t Netlist::index_of(const std::string& name) const {
  const auto it = index_.find(name);
  require(it != index_.end(), "Netlist::index_of: unknown gate '" + name + "'");
  return it->second;
}

bool Netlist::contains(const std::string& name) const {
  return index_.count(name) > 0;
}

}  // namespace sckl::circuit
