// Gate-level netlist representation.
//
// The paper's experiments run on ISCAS85 (combinational c-series) and
// ISCAS89 (sequential s-series) benchmarks. A Netlist is a DAG of gates
// over named nets: primary inputs and outputs are pseudo-gates, DFFs are
// sequential elements that cut timing paths (their D pin is an endpoint,
// their Q output a startpoint). N_g — the paper's per-parameter random
// variable count — is the number of *physical* gates (everything except the
// INPUT/OUTPUT pseudo-gates).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace sckl::circuit {

/// Logic function of a gate. Fanin count is stored per gate, so e.g. a
/// 3-input NAND is (kNand, 3 fanins).
enum class CellFunction {
  kInput,   // primary input pseudo-gate (no fanin)
  kOutput,  // primary output pseudo-gate (single fanin, no delay)
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,  // sequential element; fanin[0] is the D pin
};

/// Human-readable name of a cell function ("NAND", "DFF", ...).
const char* cell_function_name(CellFunction f);

/// One gate instance.
struct Gate {
  std::string name;
  CellFunction function = CellFunction::kBuf;
  std::vector<std::size_t> fanin;   // driving gate indices, pin order
  std::vector<std::size_t> fanout;  // derived by finalize()
};

/// A netlist under construction and its finalized, queryable form.
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  /// Adds a gate with unresolved fanin names; returns its index. Names must
  /// be unique. Fanins are resolved by finalize(), so gates may reference
  /// names defined later (required for sequential feedback through DFFs).
  std::size_t add_gate(const std::string& name, CellFunction function,
                       std::vector<std::string> fanin_names);

  /// Resolves fanin names, derives fanouts, and validates arities:
  /// INPUT has 0 fanins, OUTPUT/BUF/INV/DFF exactly 1, others >= 2.
  /// Throws on dangling names or arity violations.
  void finalize();

  bool finalized() const { return finalized_; }

  const std::string& name() const { return name_; }
  std::size_t num_gates_total() const { return gates_.size(); }

  /// The paper's N_g: physical gates (excludes INPUT/OUTPUT pseudo-gates).
  std::size_t num_physical_gates() const;

  const Gate& gate(std::size_t i) const;
  const std::vector<Gate>& gates() const { return gates_; }

  /// Index lookup by gate name; throws when missing.
  std::size_t index_of(const std::string& name) const;
  bool contains(const std::string& name) const;

  const std::vector<std::size_t>& primary_inputs() const { return inputs_; }
  const std::vector<std::size_t>& primary_outputs() const { return outputs_; }

  /// All DFF gate indices (empty for combinational circuits).
  const std::vector<std::size_t>& flip_flops() const { return dffs_; }

  /// Physical gate indices in ascending order (the sampler's location list
  /// indexes into this).
  const std::vector<std::size_t>& physical_gates() const { return physical_; }

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::vector<std::string>> pending_fanin_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::size_t> inputs_;
  std::vector<std::size_t> outputs_;
  std::vector<std::size_t> dffs_;
  std::vector<std::size_t> physical_;
  bool finalized_ = false;
};

}  // namespace sckl::circuit
