#include "circuit/levelize.h"

#include <algorithm>

#include "common/error.h"

namespace sckl::circuit {

Levelization levelize(const Netlist& netlist) {
  require(netlist.finalized(), "levelize: netlist not finalized");
  const std::size_t n = netlist.num_gates_total();

  // Combinational in-degree: DFHs and INPUTs depend on nothing this cycle.
  auto is_startpoint = [&](std::size_t i) {
    const CellFunction f = netlist.gate(i).function;
    return f == CellFunction::kInput || f == CellFunction::kDff;
  };

  Levelization out;
  out.level.assign(n, 0);
  std::vector<std::size_t> in_degree(n, 0);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_startpoint(i)) {
      ready.push_back(i);
    } else {
      in_degree[i] = netlist.gate(i).fanin.size();
      if (in_degree[i] == 0)
        ready.push_back(i);  // floating gate; still schedulable
    }
  }

  out.topological_order.reserve(n);
  std::size_t head = 0;
  while (head < ready.size()) {
    const std::size_t u = ready[head++];
    out.topological_order.push_back(u);
    for (std::size_t v : netlist.gate(u).fanout) {
      if (is_startpoint(v)) continue;  // edge into a DFF D pin: cut
      out.level[v] = std::max(out.level[v], out.level[u] + 1);
      ensure(in_degree[v] > 0, "levelize: in-degree underflow");
      if (--in_degree[v] == 0) ready.push_back(v);
    }
  }
  require(out.topological_order.size() == n,
          "levelize: combinational cycle detected in '" + netlist.name() +
              "'");

  for (std::size_t level : out.level) out.depth = std::max(out.depth, level);
  out.endpoints = netlist.primary_outputs();
  for (std::size_t ff : netlist.flip_flops()) out.endpoints.push_back(ff);
  return out;
}

}  // namespace sckl::circuit
