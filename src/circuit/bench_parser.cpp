#include "circuit/bench_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace sckl::circuit {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

CellFunction function_from_token(const std::string& token, int line) {
  const std::string t = upper(token);
  if (t == "BUF" || t == "BUFF") return CellFunction::kBuf;
  if (t == "NOT" || t == "INV") return CellFunction::kInv;
  if (t == "AND") return CellFunction::kAnd;
  if (t == "NAND") return CellFunction::kNand;
  if (t == "OR") return CellFunction::kOr;
  if (t == "NOR") return CellFunction::kNor;
  if (t == "XOR") return CellFunction::kXor;
  if (t == "XNOR") return CellFunction::kXnor;
  if (t == "DFF") return CellFunction::kDff;
  require(false, "parse_bench: unknown cell '" + token + "' at line " +
                     std::to_string(line));
  return CellFunction::kBuf;  // unreachable
}

std::vector<std::string> split_args(const std::string& body, int line) {
  std::vector<std::string> args;
  std::string current;
  for (char c : body) {
    if (c == ',') {
      args.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = trim(current);
  if (!last.empty()) args.push_back(last);
  for (const auto& a : args)
    require(!a.empty(), "parse_bench: empty operand at line " +
                            std::to_string(line));
  return args;
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& name) {
  Netlist netlist(name);
  std::vector<std::string> output_nets;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string text = trim(raw);
    if (text.empty()) continue;

    const auto open = text.find('(');
    const auto close = text.rfind(')');
    const auto equals = text.find('=');
    if (equals == std::string::npos) {
      // INPUT(net) or OUTPUT(net)
      require(open != std::string::npos && close != std::string::npos &&
                  close > open,
              "parse_bench: malformed line " + std::to_string(line));
      const std::string keyword = upper(trim(text.substr(0, open)));
      const std::string net = trim(text.substr(open + 1, close - open - 1));
      require(!net.empty(),
              "parse_bench: empty net name at line " + std::to_string(line));
      if (keyword == "INPUT") {
        netlist.add_gate(net, CellFunction::kInput, {});
      } else if (keyword == "OUTPUT") {
        output_nets.push_back(net);  // materialized after all gates exist
      } else {
        require(false, "parse_bench: unknown directive '" + keyword +
                           "' at line " + std::to_string(line));
      }
      continue;
    }

    // name = FUNC(arg, arg, ...)
    require(open != std::string::npos && close != std::string::npos &&
                open > equals && close > open,
            "parse_bench: malformed assignment at line " +
                std::to_string(line));
    const std::string target = trim(text.substr(0, equals));
    const std::string func_token =
        trim(text.substr(equals + 1, open - equals - 1));
    const std::vector<std::string> args =
        split_args(text.substr(open + 1, close - open - 1), line);
    netlist.add_gate(target, function_from_token(func_token, line), args);
  }

  for (const std::string& net : output_nets)
    netlist.add_gate(net + "_po", CellFunction::kOutput, {net});
  netlist.finalize();
  return netlist;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return parse_bench(in, name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "parse_bench_file: cannot open '" + path + "'");
  auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return parse_bench(in, base);
}

std::string write_bench(const Netlist& netlist) {
  require(netlist.finalized(), "write_bench: netlist not finalized");
  std::ostringstream out;
  out << "# " << netlist.name() << "\n";
  for (std::size_t i : netlist.primary_inputs())
    out << "INPUT(" << netlist.gate(i).name << ")\n";
  for (std::size_t i : netlist.primary_outputs())
    out << "OUTPUT(" << netlist.gate(netlist.gate(i).fanin[0]).name << ")\n";
  for (const Gate& gate : netlist.gates()) {
    if (gate.function == CellFunction::kInput ||
        gate.function == CellFunction::kOutput)
      continue;
    out << gate.name << " = " << cell_function_name(gate.function) << '(';
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      if (k > 0) out << ", ";
      out << netlist.gate(gate.fanin[k]).name;
    }
    out << ")\n";
  }
  return out.str();
}

const char* c17_bench_text() {
  return R"(# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

}  // namespace sckl::circuit
