// ISCAS .bench netlist format reader/writer.
//
// The format of the ISCAS85/89 benchmark suites the paper evaluates on:
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G23 = DFF(G10)
// Primary outputs name an internal net; the parser materializes a pseudo
// OUTPUT gate "<net>_po" driven by that net. The tiny public c17 netlist is
// embedded for tests and the quickstart; larger paper circuits are produced
// by the synthetic generator (see DESIGN.md substitutions).
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace sckl::circuit {

/// Parses .bench text. Throws sckl::Error with a line number on malformed
/// input. The returned netlist is finalized.
Netlist parse_bench(std::istream& in, const std::string& name = "bench");

/// Parses .bench from a string.
Netlist parse_bench_string(const std::string& text,
                           const std::string& name = "bench");

/// Parses .bench from a file path.
Netlist parse_bench_file(const std::string& path);

/// Serializes a finalized netlist back to .bench text (round-trippable).
std::string write_bench(const Netlist& netlist);

/// The ISCAS85 c17 circuit (6 NAND gates), embedded verbatim.
const char* c17_bench_text();

}  // namespace sckl::circuit
