#include "core/kle_field.h"

#include <algorithm>

#include "common/error.h"
#include "linalg/gemm.h"

namespace sckl::core {

KleField::KleField(const KleResult& kle, std::size_t r,
                   const std::vector<geometry::Point2>& locations)
    : r_(r), d_lambda_(kle.reconstruction_operator(r)) {
  require(!locations.empty(), "KleField: no locations");
  triangle_index_.reserve(locations.size());
  gate_rows_ = linalg::Matrix(locations.size(), r_);
  for (std::size_t i = 0; i < locations.size(); ++i) {
    // Fallback chain for out-of-mesh gates: nearest triangle, counted so the
    // caller can distinguish boundary round-off from a mesh/placement bug.
    const std::optional<std::size_t> containing =
        kle.triangle_containing(locations[i]);
    if (!containing.has_value()) ++out_of_mesh_count_;
    const std::size_t tri =
        containing.has_value() ? *containing : kle.triangle_of(locations[i]);
    triangle_index_.push_back(tri);
    std::copy(d_lambda_.row_ptr(tri), d_lambda_.row_ptr(tri) + r_,
              gate_rows_.row_ptr(i));
  }
  gate_rows_t_ = gate_rows_.transposed();
}

std::size_t KleField::triangle_of_location(std::size_t i) const {
  require(i < triangle_index_.size(),
          "KleField::triangle_of_location: out of range");
  return triangle_index_[i];
}

void KleField::reconstruct(const linalg::Vector& xi,
                           linalg::Vector& values) const {
  require(xi.size() == r_, "KleField::reconstruct: xi has wrong dimension");
  // G^T-transposed product over the GEMM-ready layout: bit-identical to the
  // corresponding row of reconstruct_block (same k-ascending fma chains).
  values = linalg::gemv_transposed_fast(gate_rows_t_, xi);
}

linalg::Matrix KleField::reconstruct_block(
    const linalg::Matrix& xi_block) const {
  require(xi_block.cols() == r_,
          "KleField::reconstruct_block: xi has wrong dimension");
  return linalg::gemm_fast(xi_block, gate_rows_t_);
}

}  // namespace sckl::core
