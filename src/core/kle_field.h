// Reduced-dimension field reconstruction (eq. 28 / Algorithm 2).
//
// KleField freezes a KLE result at a chosen truncation r and precomputes,
// for a fixed set of query locations (the placed gates), the rows of
// D_lambda = D_r sqrt(Lambda_r) of their containing triangles. One sample is
// then: draw xi ~ N(0, I_r), compute values = G xi where G is the
// (num_locations x r) gathered operator — O(N_g r) per sample instead of the
// O(N_g^2) of the dense Cholesky sampler.
#pragma once

#include <vector>

#include "core/kle_solver.h"

namespace sckl::core {

/// Frozen, location-resolved KLE reconstruction operator.
class KleField {
 public:
  /// Builds the per-location operator. `locations` are die coordinates
  /// (gate placements); each is resolved to its containing triangle once.
  /// Locations outside every mesh triangle (gates legalized marginally off
  /// the die, float round-off at the boundary) resolve to the nearest
  /// triangle instead of failing; they are counted in out_of_mesh_count()
  /// so callers can decide whether the placement/mesh mismatch is benign.
  KleField(const KleResult& kle, std::size_t r,
           const std::vector<geometry::Point2>& locations);

  std::size_t reduced_dimension() const { return r_; }
  std::size_t num_locations() const { return gate_rows_.rows(); }

  /// Number of locations that fell outside every mesh triangle and were
  /// resolved to the nearest one.
  std::size_t out_of_mesh_count() const { return out_of_mesh_count_; }

  /// Triangle index backing location i.
  std::size_t triangle_of_location(std::size_t i) const;

  /// values[i] = field value at location i for the reduced sample xi.
  void reconstruct(const linalg::Vector& xi, linalg::Vector& values) const;

  /// Batch form: each row of `xi_block` (N x r) is one reduced sample; the
  /// result is N x num_locations. This is the P_j = Xi_j D_lambda^T product
  /// of Algorithm 2, organized row-major.
  linalg::Matrix reconstruct_block(const linalg::Matrix& xi_block) const;

  /// The gathered operator G (num_locations x r).
  const linalg::Matrix& location_operator() const { return gate_rows_; }

  /// The full per-triangle operator D_lambda (n x r).
  const linalg::Matrix& triangle_operator() const { return d_lambda_; }

 private:
  std::size_t r_;
  linalg::Matrix d_lambda_;   // n x r
  linalg::Matrix gate_rows_;  // num_locations x r (gathered rows of d_lambda_)
  linalg::Matrix gate_rows_t_;  // r x num_locations, the GEMM-ready layout
  std::vector<std::size_t> triangle_index_;
  std::size_t out_of_mesh_count_ = 0;
};

}  // namespace sckl::core
