// Matrix-free realizations of the scaled Galerkin operator (DESIGN.md §14).
//
// With the centroid rule the Galerkin matrix is pointwise explicit,
// B_ik = K(c_i, c_k) sqrt(a_i a_k) (eq. 21), so Lanczos never needs it
// materialized: the entries can be produced on the fly from the mesh and
// kernel. This header provides the two matrix-free KernelOperator backends
// solve_kle's OperatorMode selects between:
//
//  - ExactKernelOperator: the exact matvec, tiled into panels that are
//    evaluated into a scratch tile and multiplied with the dispatched GEMM
//    microkernels, with row tiles claimed work-stealing style over the
//    shared thread pool. O(n^2) kernel evaluations per apply, O(n) memory.
//    Bit-reproducible across thread counts (each output row is one fixed
//    ascending reduction owned by exactly one worker).
//
//  - build_hmat_operator: the hierarchical low-rank compression
//    (linalg/hmat.h) of the same entries — O(n log n * k) memory and apply
//    cost, accurate to the configured ACA tolerance rather than exact.
//
// Both reject meshes/kernels whose entries are non-finite at first use (the
// kernel interface already throws kNonFinite at the offending evaluation).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "kernels/covariance_kernel.h"
#include "linalg/hmat.h"
#include "linalg/kernel_operator.h"
#include "mesh/tri_mesh.h"

namespace sckl::core {

/// linalg::EntrySource view of the centroid-rule Galerkin entries
/// B_ik = K(c_i, c_k) sqrt(a_i a_k). Borrows mesh and kernel.
class GalerkinEntrySource final : public linalg::EntrySource {
 public:
  GalerkinEntrySource(const mesh::TriMesh& mesh,
                      const kernels::CovarianceKernel& kernel);

  std::size_t dim() const override { return sqrt_area_.size(); }
  double entry(std::size_t i, std::size_t k) const override;
  void row_slice(std::size_t i, const std::size_t* cols, std::size_t count,
                 double* out) const override;

 private:
  const mesh::TriMesh& mesh_;
  const kernels::CovarianceKernel& kernel_;
  std::vector<double> sqrt_area_;
};

/// Tuning of the matrix-free solve path (a member of core::KleOptions).
struct MatfreeOptions {
  /// Relative per-block ACA tolerance of the hierarchical operator. The
  /// spectral perturbation of the eigensolve is of this order, so keep it
  /// a couple of digits tighter than the eigenvalue accuracy you need.
  double aca_tolerance = 1e-8;
  /// Tile-tree leaf size (near-field tile edge).
  std::size_t leaf_size = 64;
  /// Admissibility parameter eta of the tile tree (see linalg/hmat.h).
  double admissibility = 2.0;
  /// Per-block ACA rank cap.
  std::size_t max_rank = 96;
  /// Worker threads for operator build and apply: 0 = auto (SCKL_THREADS,
  /// else hardware concurrency), 1 = serial.
  std::size_t num_threads = 1;
  /// Hard ceiling on the compressed operator's storage in bytes; the build
  /// throws kOverloaded beyond it and solve_kle falls back to the exact
  /// matvec. 0 = unbounded.
  std::size_t max_bytes = 0;
  /// Lanczos subspace cap override for the matrix-free path (0 = the
  /// solver's default min(n, 2m + 160)). At million-triangle n the basis
  /// dominates memory — m + a small margin is usually enough for the
  /// fast-decaying spectra of smooth kernels.
  std::size_t lanczos_max_subspace = 0;
  /// Largest n the ACA -> exact -> dense fallback chain may still
  /// materialize the dense matrix for. Above this, a failed matrix-free
  /// solve throws instead of allocating n^2 doubles.
  std::size_t dense_fallback_max_n = 20'000;
};

/// Exact matrix-free matvec: y_i = sum_k K(c_i, c_k) sqrt(a_i a_k) x_k,
/// computed tile by tile through the blocked GEMM kernels. Borrows mesh and
/// kernel — both must outlive the operator.
class ExactKernelOperator final : public linalg::KernelOperator {
 public:
  ExactKernelOperator(const mesh::TriMesh& mesh,
                      const kernels::CovarianceKernel& kernel,
                      std::size_t num_threads = 1);

  std::size_t dim() const override { return source_.dim(); }
  void apply(const linalg::Vector& x, linalg::Vector& y) const override;
  const char* name() const override { return "exact"; }

 private:
  GalerkinEntrySource source_;
  std::size_t num_threads_ = 1;
};

/// Builds the hierarchical (tile tree + ACA) compression of the Galerkin
/// operator over the mesh's triangle centroids. Throws kOverloaded when
/// options.max_bytes is exceeded. The mesh/kernel are only read during the
/// build; the returned operator is self-contained.
std::unique_ptr<linalg::HMatrix> build_hmat_operator(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    const MatfreeOptions& options = {});

}  // namespace sckl::core
