// Piecewise-linear (P1) Galerkin KLE — the higher-order basis extension.
//
// Sec. 4.2 of the paper: "Higher order piecewise polynomials can also be
// used as the basis set, along with high order numerical integration ...
// there are no restrictions on their use in this setting." This module
// implements the first rung of that ladder: continuous piecewise-linear
// "hat" functions, one per mesh vertex.
//
// With a non-orthogonal basis the Galerkin system stays the *generalized*
// eigenproblem of eq. 13,  K d = lambda M d, with
//   K_vw = int int K(x, y) phi_v(x) phi_w(y) dx dy   (tensor quadrature)
//   M_vw = int phi_v phi_w                           (P1 mass matrix:
//          A/6 on the diagonal and A/12 off, per element of area A).
// Eigenfunctions come out continuous (barycentric interpolation), so the
// reconstructed kernel has no O(h) staircase error — the accuracy gain the
// ablation bench quantifies against the P0 path at equal mesh resolution.
#pragma once

#include "core/kle_solver.h"

namespace sckl::core {

/// Result of the P1 KLE: eigenpairs with continuous eigenfunctions.
class P1KleResult {
 public:
  P1KleResult(const mesh::TriMesh& mesh, linalg::Vector eigenvalues,
              linalg::Matrix coefficients);

  std::size_t num_eigenpairs() const { return eigenvalues_.size(); }
  std::size_t basis_size() const { return coefficients_.rows(); }

  /// j-th largest eigenvalue (clamped at 0).
  double eigenvalue(std::size_t j) const;
  const linalg::Vector& eigenvalues() const { return eigenvalues_; }

  /// Coefficient of eigenfunction j at vertex v (M-orthonormal basis).
  double coefficient(std::size_t v, std::size_t j) const;

  /// Continuous eigenfunction value f_j(x): barycentric interpolation of
  /// the vertex coefficients within the triangle containing x.
  double eigenfunction_value(std::size_t j, geometry::Point2 x) const;

  /// Truncated reconstruction K_hat(x, y) from the first r eigenpairs.
  double reconstruct_kernel(geometry::Point2 x, geometry::Point2 y,
                            std::size_t r) const;

  const mesh::TriMesh& mesh() const { return mesh_; }

 private:
  const mesh::TriMesh& mesh_;
  linalg::Vector eigenvalues_;
  linalg::Matrix coefficients_;  // num_vertices x m
  geometry::SpatialGrid locator_;
};

/// Options for the P1 solve. Quadrature must be at least kSymmetric3: the
/// integrand K(x,y) phi phi is quadratic in each variable even for constant
/// kernels, and the centroid rule cannot resolve the hat functions.
struct P1KleOptions {
  std::size_t num_eigenpairs = 50;
  QuadratureRule quadrature = QuadratureRule::kSymmetric3;
};

/// Assembles the P1 mass matrix M (num_vertices x num_vertices).
linalg::Matrix assemble_p1_mass_matrix(const mesh::TriMesh& mesh);

/// Assembles the P1 kernel matrix K (num_vertices x num_vertices).
linalg::Matrix assemble_p1_kernel_matrix(const mesh::TriMesh& mesh,
                                         const kernels::CovarianceKernel& kernel,
                                         QuadratureRule rule);

/// Computes the P1 Galerkin KLE of `kernel` on `mesh` (dense generalized
/// eigensolve; intended for n up to a few thousand vertices).
P1KleResult solve_p1_kle(const mesh::TriMesh& mesh,
                         const kernels::CovarianceKernel& kernel,
                         const P1KleOptions& options = {});

}  // namespace sckl::core
