// Health validation of a solved KLE — the "trust but verify" step between
// solving (or loading a cached artifact) and spending CPU-hours sampling
// from it.
//
// A KLE can be silently wrong in ways no individual routine notices: a
// stale artifact deserialized against a different mesh, an eigensolver that
// stopped at a best-effort subspace, a kernel whose quadrature clamped away
// real variance. check_kle_health() runs cheap structural checks on the
// result alone, and — when the Galerkin matrix is available — the definitive
// eigen-residual check ||B u - lambda u||, and grades everything into a
// robust::HealthReport. Callers pick their own strictness via
// HealthReport::throw_if_fatal().
#pragma once

#include "core/kle_solver.h"
#include "robust/health.h"

namespace sckl::core {

/// Tolerances for check_kle_health(). Defaults suit the double-precision
/// dense/Lanczos solvers in this repo.
struct KleHealthOptions {
  /// Relative eigen-residual ||B u_j - lambda_j u_j|| / lambda_1 above which
  /// a pair is graded kError (requires the Galerkin-matrix overload).
  double residual_tolerance = 1e-8;
  /// Max Phi-orthonormality drift |d_j^T Phi d_k - delta_jk| graded kError.
  double orthonormality_tolerance = 1e-8;
  /// Clamped negative-eigenvalue mass, as a fraction of lambda_1, above
  /// which clamping is graded kError instead of kInfo.
  double clamped_fraction_tolerance = 1e-6;
};

/// Structural checks on the result alone: NaN/Inf scans of eigenvalues and
/// coefficients (kFatal), descending eigenvalue order (kError),
/// Phi-orthonormality drift of the eigenfunctions (kError past tolerance),
/// and negative-eigenvalue clamp accounting (kInfo, kError when the clamped
/// mass is significant). O(n m^2) for the orthonormality Gram matrix.
robust::HealthReport check_kle_health(const KleResult& kle,
                                      const KleHealthOptions& options = {});

/// Everything above plus the definitive per-pair eigen-residual check
/// ||B u_j - lambda_j u_j|| / lambda_1 against the Galerkin matrix the KLE
/// was (supposedly) solved from. `galerkin` must be the n x n scaled matrix
/// B = Phi^{1/2} K-projection Phi^{-1/2} of assemble_galerkin_matrix().
robust::HealthReport check_kle_health(const KleResult& kle,
                                      const linalg::Matrix& galerkin,
                                      const KleHealthOptions& options = {});

}  // namespace sckl::core
