#include "core/quadrature.h"

#include "common/error.h"

namespace sckl::core {
namespace {

geometry::Point2 from_barycentric(const geometry::Triangle& t, double l0,
                                  double l1, double l2) {
  return {l0 * t.p[0].x + l1 * t.p[1].x + l2 * t.p[2].x,
          l0 * t.p[0].y + l1 * t.p[1].y + l2 * t.p[2].y};
}

}  // namespace

int quadrature_point_count(QuadratureRule rule) {
  switch (rule) {
    case QuadratureRule::kCentroid1:
      return 1;
    case QuadratureRule::kSymmetric3:
      return 3;
    case QuadratureRule::kSymmetric7:
      return 7;
  }
  require(false, "quadrature_point_count: unknown rule");
  return 0;
}

std::vector<QuadraturePoint> quadrature_points(const geometry::Triangle& t,
                                               QuadratureRule rule) {
  const double area = geometry::triangle_area(t);
  std::vector<QuadraturePoint> points;
  switch (rule) {
    case QuadratureRule::kCentroid1: {
      const double third = 1.0 / 3.0;
      points.push_back({from_barycentric(t, third, third, third), area});
      break;
    }
    case QuadratureRule::kSymmetric3: {
      // Midpoints of the sides; degree-2 exactness with equal weights.
      points.push_back({from_barycentric(t, 0.5, 0.5, 0.0), area / 3.0});
      points.push_back({from_barycentric(t, 0.0, 0.5, 0.5), area / 3.0});
      points.push_back({from_barycentric(t, 0.5, 0.0, 0.5), area / 3.0});
      break;
    }
    case QuadratureRule::kSymmetric7: {
      // Classic degree-5 rule (Strang-Fix / Hammer-Stroud).
      const double third = 1.0 / 3.0;
      constexpr double w0 = 9.0 / 40.0;
      constexpr double a1 = 0.059715871789770;
      constexpr double b1 = 0.470142064105115;
      constexpr double w1 = 0.132394152788506;
      constexpr double a2 = 0.797426985353087;
      constexpr double b2 = 0.101286507323456;
      constexpr double w2 = 0.125939180544827;
      points.push_back({from_barycentric(t, third, third, third), w0 * area});
      points.push_back({from_barycentric(t, a1, b1, b1), w1 * area});
      points.push_back({from_barycentric(t, b1, a1, b1), w1 * area});
      points.push_back({from_barycentric(t, b1, b1, a1), w1 * area});
      points.push_back({from_barycentric(t, a2, b2, b2), w2 * area});
      points.push_back({from_barycentric(t, b2, a2, b2), w2 * area});
      points.push_back({from_barycentric(t, b2, b2, a2), w2 * area});
      break;
    }
  }
  return points;
}

}  // namespace sckl::core
