// Numerical integration rules on triangles.
//
// The paper integrates K over triangle pairs with the one-point centroid
// rule (eq. 21) and proves linear h-convergence (Theorem 2). Sec. 4.2 notes
// that "higher order piecewise polynomials ... along with high order
// numerical integration" may be used freely; we provide the standard
// symmetric 3-point (degree 2) and 7-point (degree 5) rules so the
// quadrature-order ablation bench can quantify what the extra accuracy buys.
#pragma once

#include <vector>

#include "geometry/triangle.h"

namespace sckl::core {

/// Available triangle quadrature rules.
enum class QuadratureRule {
  kCentroid1,  // 1 point, exact for linears (the paper's rule)
  kSymmetric3, // 3 points, exact for quadratics
  kSymmetric7, // 7 points, exact for quintics
};

/// One quadrature node: a location inside the triangle and a weight that
/// already includes the triangle area (sum of weights == area).
struct QuadraturePoint {
  geometry::Point2 location;
  double weight;
};

/// Nodes and weights of `rule` instantiated on triangle `t`.
std::vector<QuadraturePoint> quadrature_points(const geometry::Triangle& t,
                                               QuadratureRule rule);

/// Number of nodes of a rule (1, 3, or 7).
int quadrature_point_count(QuadratureRule rule);

/// Integrates a callable g(Point2) over the triangle with the given rule.
template <typename Fn>
double integrate_on_triangle(const geometry::Triangle& t, QuadratureRule rule,
                             Fn&& g) {
  double sum = 0.0;
  for (const auto& q : quadrature_points(t, rule)) sum += q.weight * g(q.location);
  return sum;
}

}  // namespace sckl::core
