#include "core/galerkin.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "obs/trace.h"

namespace sckl::core {

double element_pair_integral(const geometry::Triangle& ti,
                             const geometry::Triangle& tk,
                             const kernels::CovarianceKernel& kernel,
                             QuadratureRule rule) {
  const auto qi = quadrature_points(ti, rule);
  const auto qk = quadrature_points(tk, rule);
  double sum = 0.0;
  for (const auto& a : qi)
    for (const auto& b : qk)
      sum += a.weight * b.weight * kernel(a.location, b.location);
  return sum;
}

linalg::Matrix assemble_galerkin_matrix(const mesh::TriMesh& mesh,
                                        const kernels::CovarianceKernel& kernel,
                                        QuadratureRule rule) {
  const std::size_t n = mesh.num_triangles();
  obs::Span span("core.galerkin_assembly");
  linalg::Matrix b(n, n);

  std::vector<double> sqrt_area(n);
  for (std::size_t i = 0; i < n; ++i) sqrt_area[i] = std::sqrt(mesh.area(i));

  if (rule == QuadratureRule::kCentroid1) {
    // B_ik = K(c_i, c_k) a_i a_k / sqrt(a_i a_k) = K(c_i, c_k) sqrt(a_i a_k).
    const auto& centroids = mesh.centroids();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = i; k < n; ++k) {
        const double value =
            kernel(centroids[i], centroids[k]) * sqrt_area[i] * sqrt_area[k];
        b(i, k) = value;
        b(k, i) = value;
      }
    }
    return b;
  }

  // General rule: precompute per-element quadrature points once.
  std::vector<std::vector<QuadraturePoint>> points(n);
  for (std::size_t i = 0; i < n; ++i)
    points[i] = quadrature_points(mesh.triangle(i), rule);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i; k < n; ++k) {
      double sum = 0.0;
      for (const auto& a : points[i])
        for (const auto& c : points[k])
          sum += a.weight * c.weight * kernel(a.location, c.location);
      const double value = sum / (sqrt_area[i] * sqrt_area[k]);
      b(i, k) = value;
      b(k, i) = value;
    }
  }
  return b;
}

}  // namespace sckl::core
