#include "core/p1_galerkin.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/generalized_eigen.h"

namespace sckl::core {
namespace {

// Per-element quadrature data for the P1 assembly: node locations, weights,
// and the three hat-function (barycentric) values at each node.
struct ElementQuadrature {
  std::vector<QuadraturePoint> points;
  std::vector<std::array<double, 3>> hat_values;  // per point
};

ElementQuadrature element_quadrature(const mesh::TriMesh& mesh,
                                     std::size_t t, QuadratureRule rule) {
  const geometry::Triangle tri = mesh.triangle(t);
  ElementQuadrature eq;
  eq.points = quadrature_points(tri, rule);
  eq.hat_values.reserve(eq.points.size());
  for (const auto& q : eq.points)
    eq.hat_values.push_back(geometry::barycentric(tri, q.location));
  return eq;
}

}  // namespace

linalg::Matrix assemble_p1_mass_matrix(const mesh::TriMesh& mesh) {
  const std::size_t nv = mesh.num_vertices();
  linalg::Matrix m(nv, nv);
  for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
    const auto& idx = mesh.triangle_indices()[t];
    const double a = mesh.area(t);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        // Exact P1 mass: A/6 diagonal, A/12 off-diagonal per element.
        m(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]) +=
            (i == j) ? a / 6.0 : a / 12.0;
      }
    }
  }
  return m;
}

linalg::Matrix assemble_p1_kernel_matrix(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    QuadratureRule rule) {
  require(rule != QuadratureRule::kCentroid1,
          "assemble_p1_kernel_matrix: centroid rule cannot resolve P1 hats");
  const std::size_t nv = mesh.num_vertices();
  const std::size_t nt = mesh.num_triangles();

  std::vector<ElementQuadrature> elements;
  elements.reserve(nt);
  for (std::size_t t = 0; t < nt; ++t)
    elements.push_back(element_quadrature(mesh, t, rule));

  linalg::Matrix k(nv, nv);
  for (std::size_t s = 0; s < nt; ++s) {
    const auto& es = elements[s];
    const auto& is = mesh.triangle_indices()[s];
    for (std::size_t t = s; t < nt; ++t) {
      const auto& et = elements[t];
      const auto& it = mesh.triangle_indices()[t];
      // 3x3 block of contributions between the two elements' vertices.
      std::array<std::array<double, 3>, 3> block{};
      for (std::size_t qa = 0; qa < es.points.size(); ++qa) {
        for (std::size_t qb = 0; qb < et.points.size(); ++qb) {
          const double kv = es.points[qa].weight * et.points[qb].weight *
                            kernel(es.points[qa].location,
                                   et.points[qb].location);
          for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
              block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
                  kv * es.hat_values[qa][static_cast<std::size_t>(i)] *
                  et.hat_values[qb][static_cast<std::size_t>(j)];
        }
      }
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          const double value =
              block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          k(is[static_cast<std::size_t>(i)], it[static_cast<std::size_t>(j)]) +=
              value;
          if (s != t)
            k(it[static_cast<std::size_t>(j)],
              is[static_cast<std::size_t>(i)]) += value;
        }
      }
    }
  }
  return k;
}

P1KleResult::P1KleResult(const mesh::TriMesh& mesh,
                         linalg::Vector eigenvalues,
                         linalg::Matrix coefficients)
    : mesh_(mesh),
      eigenvalues_(std::move(eigenvalues)),
      coefficients_(std::move(coefficients)),
      locator_(mesh.to_triangles(), mesh.bounds()) {
  require(coefficients_.rows() == mesh.num_vertices(),
          "P1KleResult: coefficient rows must match vertex count");
  require(coefficients_.cols() == eigenvalues_.size(),
          "P1KleResult: coefficient columns must match eigenvalue count");
  for (auto& value : eigenvalues_) value = std::max(value, 0.0);
}

double P1KleResult::eigenvalue(std::size_t j) const {
  require(j < eigenvalues_.size(), "P1KleResult::eigenvalue: out of range");
  return eigenvalues_[j];
}

double P1KleResult::coefficient(std::size_t v, std::size_t j) const {
  require(v < coefficients_.rows() && j < coefficients_.cols(),
          "P1KleResult::coefficient: out of range");
  return coefficients_(v, j);
}

double P1KleResult::eigenfunction_value(std::size_t j,
                                        geometry::Point2 x) const {
  require(j < eigenvalues_.size(),
          "P1KleResult::eigenfunction_value: out of range");
  const std::size_t t = locator_.find_containing_or_nearest(x);
  const auto& idx = mesh_.triangle_indices()[t];
  const auto bary = geometry::barycentric(mesh_.triangle(t), x);
  double value = 0.0;
  for (int corner = 0; corner < 3; ++corner)
    value += bary[static_cast<std::size_t>(corner)] *
             coefficients_(idx[static_cast<std::size_t>(corner)], j);
  return value;
}

double P1KleResult::reconstruct_kernel(geometry::Point2 x, geometry::Point2 y,
                                       std::size_t r) const {
  require(r <= eigenvalues_.size(),
          "P1KleResult::reconstruct_kernel: r exceeds computed pairs");
  double sum = 0.0;
  for (std::size_t j = 0; j < r; ++j)
    sum += eigenvalues_[j] * eigenfunction_value(j, x) *
           eigenfunction_value(j, y);
  return sum;
}

P1KleResult solve_p1_kle(const mesh::TriMesh& mesh,
                         const kernels::CovarianceKernel& kernel,
                         const P1KleOptions& options) {
  const std::size_t nv = mesh.num_vertices();
  const std::size_t m = std::min(options.num_eigenpairs, nv);
  require(m > 0, "solve_p1_kle: need at least one eigenpair");

  const linalg::Matrix kernel_matrix =
      assemble_p1_kernel_matrix(mesh, kernel, options.quadrature);
  const linalg::Matrix mass = assemble_p1_mass_matrix(mesh);
  linalg::SymmetricEigenResult eigen =
      linalg::generalized_symmetric_eigen(kernel_matrix, mass);

  linalg::Vector values(eigen.values.begin(), eigen.values.begin() + m);
  linalg::Matrix coefficients(nv, m);
  for (std::size_t v = 0; v < nv; ++v)
    for (std::size_t j = 0; j < m; ++j)
      coefficients(v, j) = eigen.vectors(v, j);
  return P1KleResult(mesh, std::move(values), std::move(coefficients));
}

}  // namespace sckl::core
