#include "core/kle_health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "linalg/blas.h"

namespace sckl::core {
namespace {

using robust::HealthReport;
using robust::Severity;

std::string format(const char* fmt, double a, double b) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), fmt, a, b);
  return buffer;
}

void check_finiteness(const KleResult& kle, HealthReport& report) {
  for (std::size_t j = 0; j < kle.num_eigenpairs(); ++j)
    if (!std::isfinite(kle.eigenvalue(j))) {
      report.add(Severity::kFatal, "finite_eigenvalues",
                 "eigenvalue " + std::to_string(j) + " is not finite");
      return;
    }
  const linalg::Matrix& d = kle.coefficients();
  for (std::size_t i = 0; i < d.rows(); ++i) {
    const double* row = d.row_ptr(i);
    for (std::size_t j = 0; j < d.cols(); ++j)
      if (!std::isfinite(row[j])) {
        report.add(Severity::kFatal, "finite_coefficients",
                   "coefficient (" + std::to_string(i) + ", " +
                       std::to_string(j) + ") is not finite");
        return;
      }
  }
  report.add(Severity::kInfo, "finite", "all eigenvalues and coefficients finite");
}

void check_ordering(const KleResult& kle, HealthReport& report) {
  for (std::size_t j = 1; j < kle.num_eigenpairs(); ++j)
    if (kle.eigenvalue(j) > kle.eigenvalue(j - 1) * (1.0 + 1e-12) + 1e-300) {
      report.add(Severity::kError, "eigenvalue_order",
                 "eigenvalues are not in descending order at index " +
                     std::to_string(j));
      return;
    }
  report.add(Severity::kInfo, "eigenvalue_order", "eigenvalues descend");
}

void check_orthonormality(const KleResult& kle, const KleHealthOptions& options,
                          HealthReport& report) {
  // Gram matrix of the eigenfunctions in the Phi inner product:
  // G_jk = sum_i d_ij d_ik a_i, expected = I.
  const linalg::Matrix& d = kle.coefficients();
  const std::size_t m = d.cols();
  double drift = 0.0;
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t k = j; k < m; ++k) {
      double g = 0.0;
      for (std::size_t i = 0; i < d.rows(); ++i)
        g += d(i, j) * d(i, k) * kle.mesh().area(i);
      drift = std::max(drift, std::abs(g - (j == k ? 1.0 : 0.0)));
    }
  report.metric("orthonormality_drift", drift);
  if (drift > options.orthonormality_tolerance)
    report.add(Severity::kError, "orthonormality",
               format("Phi-orthonormality drift %.3g exceeds tolerance %.3g",
                      drift, options.orthonormality_tolerance));
  else
    report.add(Severity::kInfo, "orthonormality",
               format("Phi-orthonormality drift %.3g within tolerance %.3g",
                      drift, options.orthonormality_tolerance));
}

void check_clamping(const KleResult& kle, const KleHealthOptions& options,
                    HealthReport& report) {
  report.metric("clamped_eigenvalues",
                static_cast<double>(kle.clamped_count()));
  report.metric("clamped_magnitude", kle.clamped_magnitude());
  if (kle.clamped_count() == 0) {
    report.add(Severity::kInfo, "clamping", "no eigenvalues clamped");
    return;
  }
  const double scale = std::max(kle.eigenvalue(0), 1e-300);
  const double fraction = kle.clamped_magnitude() / scale;
  if (fraction > options.clamped_fraction_tolerance)
    report.add(Severity::kError, "clamping",
               format("clamped negative mass is %.3g of lambda_1 "
                      "(tolerance %.3g) — kernel may not be PSD",
                      fraction, options.clamped_fraction_tolerance));
  else
    report.add(
        Severity::kInfo, "clamping",
        std::to_string(kle.clamped_count()) +
            " trailing eigenvalues clamped (quadrature noise, negligible mass)");
}

}  // namespace

robust::HealthReport check_kle_health(const KleResult& kle,
                                      const KleHealthOptions& options) {
  HealthReport report;
  require(kle.num_eigenpairs() > 0, "check_kle_health: empty KLE");
  check_finiteness(kle, report);
  if (report.worst() == Severity::kFatal) return report;  // rest would be NaN
  check_ordering(kle, report);
  check_orthonormality(kle, options, report);
  check_clamping(kle, options, report);
  return report;
}

robust::HealthReport check_kle_health(const KleResult& kle,
                                      const linalg::Matrix& galerkin,
                                      const KleHealthOptions& options) {
  HealthReport report = check_kle_health(kle, options);
  if (report.worst() == Severity::kFatal) return report;

  const std::size_t n = kle.basis_size();
  if (galerkin.rows() != n || galerkin.cols() != n) {
    report.add(Severity::kFatal, "eigen_residual",
               "Galerkin matrix is " + std::to_string(galerkin.rows()) + "x" +
                   std::to_string(galerkin.cols()) + " but the KLE basis has " +
                   std::to_string(n) + " triangles — artifact/mesh mismatch");
    return report;
  }

  // Residual of the scaled problem: B u = lambda u with u = Phi^{1/2} d.
  const double scale = std::max(kle.eigenvalue(0), 1e-300);
  linalg::Vector u(n);
  double max_residual = 0.0;
  std::size_t worst_pair = 0;
  for (std::size_t j = 0; j < kle.num_eigenpairs(); ++j) {
    for (std::size_t i = 0; i < n; ++i)
      u[i] = kle.coefficient(i, j) * std::sqrt(kle.mesh().area(i));
    linalg::Vector bu = linalg::gemv(galerkin, u);
    const double lambda = kle.eigenvalue(j);
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = bu[i] - lambda * u[i];
      norm_sq += r * r;
    }
    const double residual = std::sqrt(norm_sq) / scale;
    if (residual > max_residual) {
      max_residual = residual;
      worst_pair = j;
    }
  }
  report.metric("max_eigen_residual", max_residual);
  if (max_residual > options.residual_tolerance)
    report.add(Severity::kError, "eigen_residual",
               format("relative eigen-residual %.3g exceeds tolerance %.3g",
                      max_residual, options.residual_tolerance) +
                   " (worst pair " + std::to_string(worst_pair) + ")");
  else
    report.add(Severity::kInfo, "eigen_residual",
               format("max relative eigen-residual %.3g within tolerance %.3g",
                      max_residual, options.residual_tolerance));
  return report;
}

}  // namespace sckl::core
