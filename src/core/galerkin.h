// Galerkin assembly of the covariance operator (Sec. 3.2 / 4 of the paper).
//
// With the piecewise-constant basis of eq. 17 the Galerkin system is the
// generalized eigenproblem  K d = lambda Phi d  (eq. 13) with
//   K_ik  = int_{tri_k} int_{tri_i} K(x, y) dx dy     (eq. 18)
//   Phi   = diag(a_i).
// We assemble the *symmetrically scaled* standard form
//   B = Phi^{-1/2} K Phi^{-1/2},  B u = lambda u,  d = Phi^{-1/2} u,
// which keeps the matrix symmetric (unlike the paper's Phi^{-1} K of
// eq. 15, which is similar to B and has the same eigenvalues) so the
// symmetric solvers apply directly and the eigenfunctions come out
// Phi-orthonormal: sum_i d_i^2 a_i = |u|^2 = 1.
//
// With the centroid rule the entries are B_ik = K(c_i, c_k) sqrt(a_i a_k)
// (eq. 21); higher-order rules evaluate the full tensor-product quadrature.
#pragma once

#include "core/quadrature.h"
#include "kernels/covariance_kernel.h"
#include "linalg/matrix.h"
#include "mesh/tri_mesh.h"

namespace sckl::core {

/// Assembles the scaled Galerkin matrix B (n x n, symmetric). Cost is
/// O(n^2 q^2) kernel evaluations for a q-point rule.
linalg::Matrix assemble_galerkin_matrix(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    QuadratureRule rule = QuadratureRule::kCentroid1);

/// Evaluates the raw double integral K_ik of eq. 18 for one element pair
/// (unscaled; used by the quadrature convergence tests of Theorem 2).
double element_pair_integral(const geometry::Triangle& ti,
                             const geometry::Triangle& tk,
                             const kernels::CovarianceKernel& kernel,
                             QuadratureRule rule);

}  // namespace sckl::core
