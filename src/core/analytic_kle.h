// Analytic KLE of the exponential kernel — the validation oracle.
//
// For the 1-D kernel k(x, y) = exp(-c |x - y|) on [-a, a] the Fredholm
// equation (4) has the classical closed-form solution (Ghanem & Spanos [8],
// Sec. 2.3.3): eigenvalues lambda = 2c / (omega^2 + c^2) where omega solves
//   even modes:  c = omega tan(omega a)
//   odd modes:   tan(omega a) = -omega / c
// with cosine/sine eigenfunctions. The 2-D separable L1 kernel of eq. 5 is
// the product of two such 1-D kernels, so its eigenpairs are products of the
// 1-D ones (Sec. 3.1). The test suite validates the Galerkin solver against
// these analytic pairs, and the ablation bench reproduces the restricted
// analytic approach of [2] that the paper's numerical method generalizes.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point2.h"

namespace sckl::core {

/// One analytic 1-D eigenpair of the exponential kernel on [-a, a].
struct Analytic1dMode {
  double lambda;      // eigenvalue
  double omega;       // transcendental root
  bool even;          // cosine (true) or sine (false) mode
  double norm;        // normalization constant of the eigenfunction
  double half_length; // the `a` of the domain

  /// Eigenfunction value at x in [-a, a]; L2-orthonormal on the interval.
  double value(double x) const;
};

/// First `count` analytic eigenpairs, sorted by descending eigenvalue.
/// Requires c > 0, half_length > 0.
std::vector<Analytic1dMode> analytic_exponential_kle_1d(double c,
                                                        double half_length,
                                                        std::size_t count);

/// One analytic 2-D eigenpair of the separable kernel exp(-c(|dx| + |dy|))
/// on the square [-a, a]^2: a product of two 1-D modes.
struct Analytic2dMode {
  double lambda;  // product of the 1-D eigenvalues
  Analytic1dMode mode_x;
  Analytic1dMode mode_y;

  /// Eigenfunction value f(p) = f_x(p.x) * f_y(p.y).
  double value(geometry::Point2 p) const {
    return mode_x.value(p.x) * mode_y.value(p.y);
  }
};

/// First `count` eigenpairs of the 2-D separable exponential kernel on the
/// centered square of the given half length, sorted descending.
std::vector<Analytic2dMode> analytic_separable_kle_2d(double c,
                                                      double half_length,
                                                      std::size_t count);

}  // namespace sckl::core
