#include "core/analytic_kle.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sckl::core {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Bisection for a strictly increasing function on (lo, hi) with
// f(lo) < 0 < f(hi).
template <typename Fn>
double bisect(Fn&& f, double lo, double hi) {
  double flo = f(lo);
  sckl::ensure(flo < 0.0, "analytic_kle: bracket lower end not negative");
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid < 0.0) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double Analytic1dMode::value(double x) const {
  return even ? std::cos(omega * x) / norm : std::sin(omega * x) / norm;
}

std::vector<Analytic1dMode> analytic_exponential_kle_1d(double c,
                                                        double half_length,
                                                        std::size_t count) {
  require(c > 0.0, "analytic_exponential_kle_1d: c must be positive");
  require(half_length > 0.0, "analytic_exponential_kle_1d: bad domain");
  require(count > 0, "analytic_exponential_kle_1d: count must be positive");
  const double a = half_length;

  std::vector<Analytic1dMode> modes;
  modes.reserve(2 * count);
  const double eps = 1e-12;
  // Roots alternate: even mode in (k pi, k pi + pi/2)/a, odd mode in
  // (k pi + pi/2, (k+1) pi)/a. Generating `count` of each guarantees at
  // least `count` after the merge sort.
  for (std::size_t k = 0; k < count; ++k) {
    const double base = static_cast<double>(k) * kPi / a;
    {
      // even: g(w) = w tan(w a) - c, increasing from -c to +inf.
      const double lo = base + eps / a;
      const double hi = base + (kPi / 2.0 - eps) / a;
      const double omega =
          bisect([&](double w) { return w * std::tan(w * a) - c; }, lo, hi);
      const double lambda = 2.0 * c / (omega * omega + c * c);
      const double norm =
          std::sqrt(a + std::sin(2.0 * omega * a) / (2.0 * omega));
      modes.push_back({lambda, omega, true, norm, a});
    }
    {
      // odd: g(w) = tan(w a) + w / c, increasing from -inf to w/c > 0.
      const double lo = base + (kPi / 2.0 + eps) / a;
      const double hi = base + (kPi - eps) / a;
      const double omega =
          bisect([&](double w) { return std::tan(w * a) + w / c; }, lo, hi);
      const double lambda = 2.0 * c / (omega * omega + c * c);
      const double norm =
          std::sqrt(a - std::sin(2.0 * omega * a) / (2.0 * omega));
      modes.push_back({lambda, omega, false, norm, a});
    }
  }
  std::sort(modes.begin(), modes.end(),
            [](const auto& x, const auto& y) { return x.lambda > y.lambda; });
  modes.resize(count);
  return modes;
}

std::vector<Analytic2dMode> analytic_separable_kle_2d(double c,
                                                      double half_length,
                                                      std::size_t count) {
  require(count > 0, "analytic_separable_kle_2d: count must be positive");
  // `count` 1-D modes per axis always cover the top `count` products.
  const auto base = analytic_exponential_kle_1d(c, half_length, count);
  std::vector<Analytic2dMode> modes;
  modes.reserve(base.size() * base.size());
  for (const auto& mx : base)
    for (const auto& my : base)
      modes.push_back({mx.lambda * my.lambda, mx, my});
  std::sort(modes.begin(), modes.end(),
            [](const auto& x, const auto& y) { return x.lambda > y.lambda; });
  modes.resize(count);
  return modes;
}

}  // namespace sckl::core
