#include "core/matfree_operator.h"

#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "linalg/gemm.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::core {
namespace {

// Tile shape of the exact matvec: each worker evaluates a rows x cols kernel
// panel into scratch and multiplies it with the dispatched GEMM kernels.
// Sized so the panel (~256 KiB) stays L2-resident while amortizing the
// per-tile bookkeeping over enough kernel evaluations.
constexpr std::size_t kRowTile = 128;
constexpr std::size_t kColTile = 256;

}  // namespace

GalerkinEntrySource::GalerkinEntrySource(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel)
    : mesh_(mesh), kernel_(kernel) {
  require(mesh.num_triangles() > 0,
          "matfree: mesh must have at least one triangle");
  sqrt_area_.resize(mesh.num_triangles());
  for (std::size_t i = 0; i < sqrt_area_.size(); ++i)
    sqrt_area_[i] = std::sqrt(mesh.area(i));
}

double GalerkinEntrySource::entry(std::size_t i, std::size_t k) const {
  return kernel_(mesh_.centroid(i), mesh_.centroid(k)) * sqrt_area_[i] *
         sqrt_area_[k];
}

void GalerkinEntrySource::row_slice(std::size_t i, const std::size_t* cols,
                                    std::size_t count, double* out) const {
  // Batched form of entry(): sqrt(a_i) and c_i are loaded once per row
  // instead of once per entry — this is the ACA / dense-tile hot path.
  const double sqrt_ai = sqrt_area_[i];
  const geometry::Point2 ci = mesh_.centroid(i);
  const auto& centroids = mesh_.centroids();
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t k = cols[c];
    out[c] = kernel_(ci, centroids[k]) * sqrt_ai * sqrt_area_[k];
  }
}

ExactKernelOperator::ExactKernelOperator(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    std::size_t num_threads)
    : source_(mesh, kernel),
      num_threads_(ThreadPool::resolve_num_threads(num_threads)) {}

void ExactKernelOperator::apply(const linalg::Vector& x,
                                linalg::Vector& y) const {
  const std::size_t n = source_.dim();
  require(x.size() == n, "matfree: exact apply dimension mismatch");
  obs::Span span("core.matfree.exact_apply");
  {
    static obs::Counter& matvecs =
        obs::counter("sckl.core.matfree.exact_matvecs");
    matvecs.add(1);
  }
  y.assign(n, 0.0);
  const std::size_t num_row_tiles = (n + kRowTile - 1) / kRowTile;

  // Each worker owns whole row tiles (claimed through the shared counter)
  // and walks their column tiles in ascending order, so every y_i is one
  // fixed reduction chain regardless of thread count: gemm_add resumes each
  // output element's fma chain exactly where the previous column tile left
  // it, and double spills are exact.
  const auto run_tiles = [&](std::atomic<std::size_t>& next) {
    linalg::Matrix tile;       // row-tile x col-tile kernel panel
    linalg::Matrix xb, yb;     // col-tile x 1 input, row-tile x 1 output
    std::vector<std::size_t> cols(kColTile);
    for (;;) {
      const std::size_t rt = next.fetch_add(1);
      if (rt >= num_row_tiles) break;
      const std::size_t r0 = rt * kRowTile;
      const std::size_t rows = std::min(kRowTile, n - r0);
      yb.reshape(rows, 1);
      yb.fill(0.0);
      for (std::size_t c0 = 0; c0 < n; c0 += kColTile) {
        const std::size_t ncols = std::min(kColTile, n - c0);
        for (std::size_t c = 0; c < ncols; ++c) cols[c] = c0 + c;
        tile.reshape(rows, ncols);
        for (std::size_t r = 0; r < rows; ++r)
          source_.row_slice(r0 + r, cols.data(), ncols, tile.row_ptr(r));
        xb.reshape(ncols, 1);
        for (std::size_t c = 0; c < ncols; ++c) xb(c, 0) = x[c0 + c];
        linalg::gemm_add(tile, xb, yb);
      }
      for (std::size_t r = 0; r < rows; ++r) y[r0 + r] = yb(r, 0);
    }
  };

  std::atomic<std::size_t> next{0};
  if (num_threads_ <= 1 || num_row_tiles <= 1) {
    run_tiles(next);
  } else {
    ThreadPool pool(std::min(num_threads_, num_row_tiles));
    pool.run([&](std::size_t) { run_tiles(next); });
  }
}

std::unique_ptr<linalg::HMatrix> build_hmat_operator(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    const MatfreeOptions& options) {
  const GalerkinEntrySource source(mesh, kernel);
  const auto& centroids = mesh.centroids();
  std::vector<double> xs(centroids.size()), ys(centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    xs[i] = centroids[i].x;
    ys[i] = centroids[i].y;
  }
  linalg::HmatOptions hopt;
  hopt.leaf_size = options.leaf_size;
  hopt.admissibility = options.admissibility;
  hopt.aca_tolerance = options.aca_tolerance;
  hopt.max_rank = options.max_rank;
  hopt.num_threads = options.num_threads;
  hopt.max_bytes = options.max_bytes;
  return std::make_unique<linalg::HMatrix>(source, xs, ys, hopt);
}

}  // namespace sckl::core
