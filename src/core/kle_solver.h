// Karhunen-Loeve Expansion solver — the paper's core algorithm.
//
// Pipeline (Sec. 3.2/4): assemble the scaled Galerkin matrix B from the mesh
// and kernel, solve the symmetric eigenproblem for the m largest pairs,
// un-scale the eigenvectors (d = Phi^{-1/2} u) into piecewise-constant
// eigenfunction coefficients, and expose:
//   - eigenvalues lambda_j (descending; tiny negatives from quadrature noise
//     are clamped to zero and reported),
//   - eigenfunction evaluation f_j(x) (constant per triangle, located via a
//     spatial grid),
//   - truncated kernel reconstruction K_hat(x,y) = sum lambda_j f_j(x) f_j(y)
//     (Fig. 3b),
//   - the reconstruction operator D_lambda = D_r sqrt(Lambda_r) of eq. 28.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/galerkin.h"
#include "core/matfree_operator.h"
#include "geometry/spatial_grid.h"
#include "linalg/lanczos.h"

namespace sckl::core {

/// Eigensolver backend selection.
enum class KleBackend {
  kAuto,    // Lanczos when m << n, dense otherwise
  kDense,   // Householder + QL on the full matrix
  kLanczos, // iterative, top-m only
};

/// How the Galerkin operator is realized for the eigensolve.
enum class OperatorMode {
  /// Assemble the dense n x n matrix (the default; exact, bit-stable, and
  /// fine up to ~10^4 triangles where 8 n^2 bytes stops fitting).
  kAssembled,
  /// Never materialize the matrix: Lanczos runs on the hierarchical
  /// ACA-compressed operator, falling back to the exact on-the-fly matvec
  /// and finally (only when n <= matfree.dense_fallback_max_n) to the
  /// assembled path. Eigenvalue-accurate to the ACA tolerance but not
  /// bit-stable across configurations — see DESIGN.md §14. The centroid
  /// quadrature rule is implied; `backend` is ignored (Lanczos is the only
  /// matrix-free eigensolver).
  kMatrixFree,
};

/// Options for solve_kle().
struct KleOptions {
  std::size_t num_eigenpairs = 200;  // m: how many pairs to compute
  QuadratureRule quadrature = QuadratureRule::kCentroid1;
  KleBackend backend = KleBackend::kAuto;
  std::uint64_t lanczos_seed = 42;
  OperatorMode operator_mode = OperatorMode::kAssembled;
  MatfreeOptions matfree;  // tuning of the kMatrixFree path
};

/// Telemetry of one solve_kle() call: which backend actually produced the
/// result, whether the Lanczos -> dense fallback chain fired and why, and
/// the negative-eigenvalue clamp accounting of the returned spectrum. Pass
/// the optional out-parameter to record it; solving is unaffected.
struct KleSolveInfo {
  KleBackend requested = KleBackend::kAuto;  // backend the caller asked for
  KleBackend used = KleBackend::kDense;      // backend that produced λ, d
  bool fallback = false;              // Lanczos failed, dense recovered
  std::string fallback_reason;        // what() of the Lanczos failure
  linalg::LanczosInfo lanczos;        // iteration telemetry (when attempted)
  std::size_t clamped_eigenvalues = 0;  // trailing negatives clamped to 0
  double clamped_magnitude = 0.0;       // total magnitude removed by clamping

  // Matrix-free telemetry (operator_mode == kMatrixFree only).
  std::string operator_used;        // "hmat", "exact", or "dense"
  bool hmat_attempted = false;      // a hierarchical build was tried
  bool hmat_failed = false;         // it failed; chain moved to exact matvec
  std::string hmat_failure_reason;  // what() of that failure
  linalg::HmatStats hmat;           // compression stats of a completed build
};

/// Result of the numerical KLE of one kernel on one mesh.
///
/// LIFETIME CONTRACT — READ BEFORE STORING A KleResult ANYWHERE:
/// KleResult deliberately BORROWS its mesh (it holds `const TriMesh&` and
/// never copies it), so the mesh passed to solve_kle()/the constructor must
/// strictly outlive the result. Returning a KleResult from a function whose
/// local mesh dies, or caching one beyond its mesh's scope, is a dangling
/// reference and undefined behaviour. When ownership is needed — persisted
/// artifacts, caches, anything deserialized — use store::StoredKleResult
/// (store/kle_io.h), which owns the mesh via shared_ptr and exposes the same
/// KleResult view.
class KleResult {
 public:
  KleResult(const mesh::TriMesh& mesh, linalg::Vector eigenvalues,
            linalg::Matrix coefficients);

  /// Number of computed eigenpairs m.
  std::size_t num_eigenpairs() const { return eigenvalues_.size(); }

  /// Number of basis functions n (mesh triangles).
  std::size_t basis_size() const { return coefficients_.rows(); }

  /// j-th largest eigenvalue (clamped at 0).
  double eigenvalue(std::size_t j) const;
  const linalg::Vector& eigenvalues() const { return eigenvalues_; }

  /// Coefficient d_{i,j} of eigenfunction j on triangle i. Eigenfunctions
  /// are Phi-orthonormal: sum_i d_{i,j}^2 a_i = 1.
  double coefficient(std::size_t i, std::size_t j) const;
  const linalg::Matrix& coefficients() const { return coefficients_; }

  /// Eigenfunction value f_j(x); x is located in the mesh via the index.
  double eigenfunction_value(std::size_t j, geometry::Point2 x) const;

  /// Eigenfunction value on a known triangle (no lookup).
  double eigenfunction_on_triangle(std::size_t j, std::size_t tri) const {
    return coefficient(tri, j);
  }

  /// Triangle containing x (nearest for boundary/degenerate points).
  std::size_t triangle_of(geometry::Point2 x) const;

  /// Triangle strictly containing x, or nullopt when x lies outside every
  /// mesh triangle (e.g. a gate legalized marginally off the die). Callers
  /// that resolve such points to the nearest triangle should count them —
  /// see KleField::out_of_mesh_count().
  std::optional<std::size_t> triangle_containing(geometry::Point2 x) const;

  /// Number of eigenvalues that came in negative (quadrature noise) and
  /// were clamped to zero by the constructor, and the total magnitude
  /// removed. Large clamped mass signals an invalid or mis-assembled kernel.
  std::size_t clamped_count() const { return clamped_count_; }
  double clamped_magnitude() const { return clamped_magnitude_; }

  /// Truncated reconstruction K_hat(x, y) from the first r eigenpairs.
  double reconstruct_kernel(geometry::Point2 x, geometry::Point2 y,
                            std::size_t r) const;

  /// D_lambda = D_r * sqrt(Lambda_r): the n x r linear map of eq. 28 taking
  /// a reduced sample xi to per-triangle parameter values.
  linalg::Matrix reconstruction_operator(std::size_t r) const;

  /// Fraction of total basis variance captured by the first r eigenvalues.
  /// Total variance of the projected process equals the matrix trace, which
  /// for the centroid rule is sum_i K(c_i,c_i) a_i = area(D) for a
  /// normalized kernel.
  double captured_variance_fraction(std::size_t r, double total) const;

  const mesh::TriMesh& mesh() const { return mesh_; }

 private:
  const mesh::TriMesh& mesh_;  // owned by the caller; must outlive the result
  linalg::Vector eigenvalues_;
  linalg::Matrix coefficients_;  // n x m, column j = d_j
  geometry::SpatialGrid locator_;
  std::size_t clamped_count_ = 0;
  double clamped_magnitude_ = 0.0;
};

/// Computes the KLE of `kernel` on `mesh`. The mesh must outlive the result
/// (see the KleResult lifetime contract above).
///
/// Resilience: a Galerkin matrix containing NaN/Inf is rejected up front
/// (sckl::Error, code kNonFinite) instead of letting NaN propagate into the
/// spectrum. When the Lanczos backend fails to converge (kNoConvergence),
/// the solve is retried with the dense backend and the fallback is recorded
/// in `info` — callers lose speed, not the answer.
///
/// With operator_mode == kMatrixFree the fallback chain is: hierarchical
/// ACA operator -> exact on-the-fly matvec -> assembled dense solve, where
/// the final dense stage only engages when n <= matfree.dense_fallback_max_n
/// (above that the solve throws rather than allocate n^2 doubles). Each hop
/// is recorded in `info` (hmat_failed / fallback / operator_used).
KleResult solve_kle(const mesh::TriMesh& mesh,
                    const kernels::CovarianceKernel& kernel,
                    const KleOptions& options = {},
                    KleSolveInfo* info = nullptr);

}  // namespace sckl::core
