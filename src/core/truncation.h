// Truncation selection — the paper's rule for choosing r (Sec. 5.2).
//
// Having computed only the first m (= 200) of n eigenvalues, the tail
// sum_{i=m+1}^{n} lambda_i is unknown but bounded above by lambda_m (n - m)
// since eigenvalues descend. The paper picks the smallest r with
//   lambda_m (n - m) + sum_{i=r+1}^{m} lambda_i <= epsilon sum_{i=1}^{r} lambda_i
// with epsilon = 1%, which guarantees the discarded variance is at most
// epsilon of the retained variance. On the paper's setup this yields r = 25.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace sckl::core {

/// Returns the smallest r satisfying the paper's criterion for the computed
/// eigenvalues (descending, size m) of an n-dimensional Galerkin problem.
/// Throws if even r = m fails the criterion (m too small for this kernel).
std::size_t select_truncation(const linalg::Vector& eigenvalues,
                              std::size_t basis_size, double epsilon = 0.01);

/// The left-hand side of the criterion for a given r: the upper bound on the
/// total discarded variance. Exposed for the Fig. 5 bench.
double discarded_variance_bound(const linalg::Vector& eigenvalues,
                                std::size_t basis_size, std::size_t r);

}  // namespace sckl::core
