#include "core/truncation.h"

#include "common/error.h"

namespace sckl::core {

double discarded_variance_bound(const linalg::Vector& eigenvalues,
                                std::size_t basis_size, std::size_t r) {
  const std::size_t m = eigenvalues.size();
  require(m > 0 && r <= m, "discarded_variance_bound: bad r");
  require(basis_size >= m, "discarded_variance_bound: m exceeds basis size");
  double tail = eigenvalues[m - 1] * static_cast<double>(basis_size - m);
  for (std::size_t i = r; i < m; ++i) tail += eigenvalues[i];
  return tail;
}

std::size_t select_truncation(const linalg::Vector& eigenvalues,
                              std::size_t basis_size, double epsilon) {
  const std::size_t m = eigenvalues.size();
  require(m > 0, "select_truncation: no eigenvalues");
  require(epsilon > 0.0, "select_truncation: epsilon must be positive");

  double retained = 0.0;
  for (std::size_t r = 1; r <= m; ++r) {
    retained += eigenvalues[r - 1];
    if (discarded_variance_bound(eigenvalues, basis_size, r) <=
        epsilon * retained)
      return r;
  }
  require(false,
          "select_truncation: criterion unmet; compute more eigenpairs");
  return m;  // unreachable
}

}  // namespace sckl::core
