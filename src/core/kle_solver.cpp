#include "core/kle_solver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/error.h"
#include "linalg/blas.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::core {

KleResult::KleResult(const mesh::TriMesh& mesh, linalg::Vector eigenvalues,
                     linalg::Matrix coefficients)
    : mesh_(mesh),
      eigenvalues_(std::move(eigenvalues)),
      coefficients_(std::move(coefficients)),
      locator_(mesh.to_triangles(), mesh.bounds()) {
  require(coefficients_.rows() == mesh.num_triangles(),
          "KleResult: coefficient rows must match mesh size");
  require(coefficients_.cols() == eigenvalues_.size(),
          "KleResult: coefficient columns must match eigenvalue count");
  // Quadrature noise can push trailing eigenvalues of a PSD kernel slightly
  // negative; clamp so sqrt(lambda) in eq. 28 stays real, and account for
  // what was removed so health validation can flag excessive clamping.
  for (auto& value : eigenvalues_) {
    if (value < 0.0) {
      ++clamped_count_;
      clamped_magnitude_ -= value;
      value = 0.0;
    }
  }
}

double KleResult::eigenvalue(std::size_t j) const {
  require(j < eigenvalues_.size(), "KleResult::eigenvalue: out of range");
  return eigenvalues_[j];
}

double KleResult::coefficient(std::size_t i, std::size_t j) const {
  require(i < coefficients_.rows() && j < coefficients_.cols(),
          "KleResult::coefficient: out of range");
  return coefficients_(i, j);
}

std::size_t KleResult::triangle_of(geometry::Point2 x) const {
  return locator_.find_containing_or_nearest(x);
}

std::optional<std::size_t> KleResult::triangle_containing(
    geometry::Point2 x) const {
  return locator_.find_containing(x);
}

double KleResult::eigenfunction_value(std::size_t j,
                                      geometry::Point2 x) const {
  return coefficient(triangle_of(x), j);
}

double KleResult::reconstruct_kernel(geometry::Point2 x, geometry::Point2 y,
                                     std::size_t r) const {
  require(r <= eigenvalues_.size(),
          "KleResult::reconstruct_kernel: r exceeds computed pairs");
  const std::size_t ti = triangle_of(x);
  const std::size_t tk = triangle_of(y);
  double sum = 0.0;
  for (std::size_t j = 0; j < r; ++j)
    sum += eigenvalues_[j] * coefficients_(ti, j) * coefficients_(tk, j);
  return sum;
}

linalg::Matrix KleResult::reconstruction_operator(std::size_t r) const {
  require(r > 0 && r <= eigenvalues_.size(),
          "KleResult::reconstruction_operator: bad r");
  linalg::Matrix d_lambda(coefficients_.rows(), r);
  for (std::size_t j = 0; j < r; ++j) {
    const double root = std::sqrt(eigenvalues_[j]);
    for (std::size_t i = 0; i < coefficients_.rows(); ++i)
      d_lambda(i, j) = coefficients_(i, j) * root;
  }
  return d_lambda;
}

double KleResult::captured_variance_fraction(std::size_t r,
                                             double total) const {
  require(r <= eigenvalues_.size(),
          "KleResult::captured_variance_fraction: bad r");
  require(total > 0.0, "KleResult::captured_variance_fraction: bad total");
  double sum = 0.0;
  for (std::size_t j = 0; j < r; ++j) sum += eigenvalues_[j];
  return sum / total;
}

namespace {

// Assembles the dense Galerkin matrix and rejects NaN/Inf before it can
// poison the whole spectrum: one bad kernel evaluation would otherwise
// surface as mysteriously wrong eigenpairs.
linalg::Matrix assemble_checked(const mesh::TriMesh& mesh,
                                const kernels::CovarianceKernel& kernel,
                                QuadratureRule quadrature) {
  const std::size_t n = mesh.num_triangles();
  const linalg::Matrix b = assemble_galerkin_matrix(mesh, kernel, quadrature);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = b.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j)
      if (!std::isfinite(row[j]))
        throw Error("solve_kle: Galerkin matrix entry (" + std::to_string(i) +
                        ", " + std::to_string(j) +
                        ") is not finite — kernel '" + kernel.name() +
                        "' produced NaN/Inf",
                    ErrorCode::kNonFinite);
  }
  return b;
}

linalg::SymmetricEigenResult dense_eigensolve(const linalg::Matrix& b) {
  obs::Span dense_span("linalg.dense_eigen");
  obs::counter("sckl.linalg.dense_eigen.solves").add(1);
  return linalg::symmetric_eigen(b);
}

linalg::LanczosOptions lanczos_options_for(const KleOptions& options,
                                           std::size_t n, std::size_t m) {
  linalg::LanczosOptions lanczos;
  lanczos.num_eigenpairs = m;
  lanczos.seed = options.lanczos_seed;
  // Clustered trailing eigenvalues of smooth kernels converge slowly;
  // give the subspace generous room by default. The matrix-free override
  // exists because at million-triangle n the Krylov basis (8n bytes per
  // vector) dominates memory, not because fewer iterations are desirable.
  const std::size_t cap = options.operator_mode == OperatorMode::kMatrixFree
                              ? options.matfree.lanczos_max_subspace
                              : 0;
  lanczos.max_subspace =
      cap == 0 ? std::min(n, 2 * m + 160) : std::max(std::min(cap, n), m);
  lanczos.tolerance = 1e-9;
  return lanczos;
}

// The kMatrixFree eigensolve: hierarchical ACA operator, then the exact
// on-the-fly matvec, then (small n only) the assembled dense solve.
linalg::SymmetricEigenResult solve_matrix_free(
    const mesh::TriMesh& mesh, const kernels::CovarianceKernel& kernel,
    const KleOptions& options, std::size_t n, std::size_t m,
    KleSolveInfo* info) {
  require(options.quadrature == QuadratureRule::kCentroid1,
          "solve_kle: the matrix-free path evaluates centroid-rule entries "
          "on the fly and supports no other quadrature");
  obs::counter("sckl.core.kle_matfree_solves").add(1);
  const linalg::LanczosOptions lanczos = lanczos_options_for(options, n, m);
  if (info != nullptr) info->used = KleBackend::kLanczos;

  // Stage 1: hierarchical compression. kOverloaded (memory budget) and
  // kNoConvergence degrade to the exact matvec; anything else is a real
  // error and propagates.
  {
    linalg::LanczosInfo lanczos_info;
    try {
      if (info != nullptr) info->hmat_attempted = true;
      const std::unique_ptr<linalg::HMatrix> hmat =
          build_hmat_operator(mesh, kernel, options.matfree);
      if (info != nullptr) info->hmat = hmat->stats();
      linalg::SymmetricEigenResult eigen =
          linalg::lanczos_largest(*hmat, lanczos, &lanczos_info);
      if (info != nullptr) {
        info->lanczos = lanczos_info;
        info->operator_used = "hmat";
      }
      return eigen;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNoConvergence &&
          e.code() != ErrorCode::kOverloaded)
        throw;
      if (info != nullptr) {
        info->lanczos = lanczos_info;
        info->hmat_failed = true;
        info->hmat_failure_reason = e.what();
      }
      obs::counter("sckl.core.kle_matfree_fallbacks").add(1);
    }
  }

  // Stage 2: exact matvec — same memory envelope, O(n^2) kernel
  // evaluations per iteration instead of the compressed apply.
  {
    const ExactKernelOperator exact(mesh, kernel,
                                    options.matfree.num_threads);
    linalg::LanczosInfo lanczos_info;
    try {
      linalg::SymmetricEigenResult eigen =
          linalg::lanczos_largest(exact, lanczos, &lanczos_info);
      if (info != nullptr) {
        info->lanczos = lanczos_info;
        info->operator_used = "exact";
      }
      return eigen;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNoConvergence) throw;
      if (info != nullptr) {
        info->lanczos = lanczos_info;
        info->fallback = true;
        info->fallback_reason = e.what();
      }
      obs::counter("sckl.core.kle_fallbacks").add(1);
      // The dense stage allocates 8 n^2 bytes — the exact thing this mode
      // exists to avoid. Refuse beyond the configured ceiling.
      if (n > options.matfree.dense_fallback_max_n)
        throw Error(
            "solve_kle: matrix-free Lanczos did not converge and n = " +
                std::to_string(n) + " exceeds dense_fallback_max_n = " +
                std::to_string(options.matfree.dense_fallback_max_n) +
                " (refusing the n^2 dense fallback); original failure: " +
                e.what(),
            ErrorCode::kNoConvergence);
    }
  }

  // Stage 3: assembled dense solve (small n only).
  if (info != nullptr) {
    info->used = KleBackend::kDense;
    info->operator_used = "dense";
  }
  return dense_eigensolve(assemble_checked(mesh, kernel, options.quadrature));
}

}  // namespace

KleResult solve_kle(const mesh::TriMesh& mesh,
                    const kernels::CovarianceKernel& kernel,
                    const KleOptions& options, KleSolveInfo* info) {
  const std::size_t n = mesh.num_triangles();
  const std::size_t m = std::min(options.num_eigenpairs, n);
  require(m > 0, "solve_kle: need at least one eigenpair");
  obs::Span span("core.solve_kle");
  obs::counter("sckl.core.kle_solves").add(1);
  if (info != nullptr) {
    *info = KleSolveInfo{};
    info->requested = options.backend;
  }

  linalg::SymmetricEigenResult eigen;
  if (options.operator_mode == OperatorMode::kMatrixFree) {
    obs::Span eigensolve_span("core.eigensolve");
    eigen = solve_matrix_free(mesh, kernel, options, n, m, info);
  } else {
    const linalg::Matrix b =
        assemble_checked(mesh, kernel, options.quadrature);

    KleBackend backend = options.backend;
    if (backend == KleBackend::kAuto)
      backend = (m * 3 < n) ? KleBackend::kLanczos : KleBackend::kDense;
    if (info != nullptr) info->used = backend;

    obs::Span eigensolve_span("core.eigensolve");
    if (backend == KleBackend::kLanczos) {
      const linalg::LanczosOptions lanczos = lanczos_options_for(options, n, m);
      linalg::LanczosInfo lanczos_info;
      try {
        eigen = linalg::lanczos_largest(b, lanczos, &lanczos_info);
        if (info != nullptr) info->lanczos = lanczos_info;
      } catch (const Error& e) {
        // Fallback chain: a non-convergent Lanczos costs us the fast path,
        // not the result — rerun with the O(n^3) dense solver and record why.
        if (e.code() != ErrorCode::kNoConvergence) throw;
        if (info != nullptr) {
          info->lanczos = lanczos_info;
          info->used = KleBackend::kDense;
          info->fallback = true;
          info->fallback_reason = e.what();
        }
        obs::counter("sckl.core.kle_fallbacks").add(1);
        eigen = dense_eigensolve(b);
      }
    } else {
      eigen = dense_eigensolve(b);
    }
  }

  // Un-scale: d = Phi^{-1/2} u, i.e. d_i = u_i / sqrt(a_i).
  linalg::Matrix coefficients(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_root = 1.0 / std::sqrt(mesh.area(i));
    for (std::size_t j = 0; j < m; ++j)
      coefficients(i, j) = eigen.vectors(i, j) * inv_root;
  }
  linalg::Vector values(eigen.values.begin(), eigen.values.begin() + m);
  KleResult result(mesh, std::move(values), std::move(coefficients));
  if (result.clamped_count() > 0)
    obs::counter("sckl.core.clamped_eigenvalues").add(result.clamped_count());
  if (info != nullptr) {
    info->clamped_eigenvalues = result.clamped_count();
    info->clamped_magnitude = result.clamped_magnitude();
  }
  return result;
}

}  // namespace sckl::core
