#include "gridmodel/grid_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/blas.h"
#include "linalg/symmetric_eigen.h"

namespace sckl::gridmodel {

GridCorrelationModel::GridCorrelationModel(
    const kernels::CovarianceKernel& kernel, geometry::BoundingBox die,
    std::size_t cells_per_side)
    : die_(die), cells_(cells_per_side) {
  require(cells_per_side > 0, "GridCorrelationModel: need at least one cell");
  require(die.width() > 0.0 && die.height() > 0.0,
          "GridCorrelationModel: degenerate die");
  const double dx = die.width() / static_cast<double>(cells_);
  const double dy = die.height() / static_cast<double>(cells_);
  centers_.reserve(cells_ * cells_);
  for (std::size_t j = 0; j < cells_; ++j)
    for (std::size_t i = 0; i < cells_; ++i)
      centers_.push_back(
          {die.min.x + dx * (static_cast<double>(i) + 0.5),
           die.min.y + dy * (static_cast<double>(j) + 0.5)});

  const std::size_t n = centers_.size();
  linalg::Matrix correlation(n, n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a; b < n; ++b) {
      const double value = kernel(centers_[a], centers_[b]);
      correlation(a, b) = value;
      correlation(b, a) = value;
    }
  linalg::SymmetricEigenResult eigen = linalg::symmetric_eigen(correlation);
  eigenvalues_ = std::move(eigen.values);
  for (auto& v : eigenvalues_) v = std::max(v, 0.0);
  eigenvectors_ = std::move(eigen.vectors);
}

std::size_t GridCorrelationModel::cell_of(geometry::Point2 p) const {
  const double fx = (p.x - die_.min.x) / die_.width();
  const double fy = (p.y - die_.min.y) / die_.height();
  const auto clamp_cell = [this](double f) {
    const auto c = static_cast<long>(std::floor(f * static_cast<double>(cells_)));
    return static_cast<std::size_t>(
        std::clamp<long>(c, 0, static_cast<long>(cells_) - 1));
  };
  return clamp_cell(fy) * cells_ + clamp_cell(fx);
}

std::size_t GridCorrelationModel::components_for_variance(
    double fraction) const {
  require(fraction > 0.0 && fraction <= 1.0,
          "components_for_variance: fraction out of range");
  double total = 0.0;
  for (double v : eigenvalues_) total += v;
  double sum = 0.0;
  for (std::size_t r = 0; r < eigenvalues_.size(); ++r) {
    sum += eigenvalues_[r];
    if (sum >= fraction * total) return r + 1;
  }
  return eigenvalues_.size();
}

linalg::Matrix GridCorrelationModel::reduction_operator(std::size_t r) const {
  require(r > 0 && r <= eigenvalues_.size(),
          "GridCorrelationModel::reduction_operator: bad r");
  linalg::Matrix d(num_cells(), r);
  for (std::size_t j = 0; j < r; ++j) {
    const double root = std::sqrt(eigenvalues_[j]);
    for (std::size_t c = 0; c < num_cells(); ++c)
      d(c, j) = eigenvectors_(c, j) * root;
  }
  return d;
}

GridPcaSampler::GridPcaSampler(const GridCorrelationModel& model,
                               std::size_t r,
                               const std::vector<geometry::Point2>& locations) {
  require(!locations.empty(), "GridPcaSampler: no locations");
  const linalg::Matrix d = model.reduction_operator(r);
  // Gather each location's cell row, directly transposed: op(c, i) is PCA
  // component c at location i.
  linalg::Matrix op(r, locations.size());
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const std::size_t cell = model.cell_of(locations[i]);
    for (std::size_t c = 0; c < r; ++c) op(c, i) = d(cell, c);
  }
  set_operator(std::move(op), "field.reconstruct.grid",
               "sckl.field.samples.grid");
}

}  // namespace sckl::gridmodel
