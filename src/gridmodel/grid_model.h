// Grid-based spatial correlation model with PCA reduction — the baseline
// the paper argues against (Sec. 2.1).
//
// The die is divided into an N_c x N_c grid; each cell carries one random
// variable; the cell-to-cell correlation matrix is built by evaluating the
// kernel at cell centers (in practice it would come from silicon
// measurements, which is exactly the cost the paper criticizes). PCA
// (eigendecomposition of the correlation matrix, eq. 1) then extracts
// r << N_c^2 uncorrelated components.
//
// Exposed through the same FieldSampler interface as the KLE sampler so the
// SSTA harness can compare the two models head-to-head (the grid+PCA
// ablation bench): the KLE needs no grid-resolution choice and converges
// with the mesh, while the grid model's accuracy is capped by its cell size
// (all gates in one cell are perfectly correlated).
#pragma once

#include <cstddef>
#include <vector>

#include "field/field_sampler.h"
#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"

namespace sckl::gridmodel {

/// The grid correlation model: cells, their centers, and the PCA of the
/// cell correlation matrix.
class GridCorrelationModel {
 public:
  /// Builds the model from a kernel on `cells_per_side`^2 grid cells over
  /// `die`. The full PCA is computed eagerly (the correlation matrix is
  /// cells^2 x cells^2 — the measurement/storage blow-up the paper notes).
  GridCorrelationModel(const kernels::CovarianceKernel& kernel,
                       geometry::BoundingBox die,
                       std::size_t cells_per_side);

  std::size_t num_cells() const { return centers_.size(); }
  std::size_t cells_per_side() const { return cells_; }

  /// Center location of cell c.
  geometry::Point2 cell_center(std::size_t c) const { return centers_[c]; }

  /// Index of the cell containing a die location (clamped to the die).
  std::size_t cell_of(geometry::Point2 p) const;

  /// PCA eigenvalues (descending).
  const linalg::Vector& eigenvalues() const { return eigenvalues_; }

  /// Number of principal components needed to capture `fraction` of the
  /// total variance (trace = num_cells for a normalized kernel).
  std::size_t components_for_variance(double fraction) const;

  /// The reduction operator sqrt(Lambda_r) V_r^T mapped per cell:
  /// returns the (num_cells x r) matrix D with row c such that the cell
  /// value is D(c, :) * xi for xi ~ N(0, I_r).
  linalg::Matrix reduction_operator(std::size_t r) const;

 private:
  geometry::BoundingBox die_;
  std::size_t cells_;
  std::vector<geometry::Point2> centers_;
  linalg::Vector eigenvalues_;
  linalg::Matrix eigenvectors_;  // num_cells x num_cells, columns descending
};

/// FieldSampler over the grid+PCA model: each location maps to its cell and
/// samples are reconstructed from r principal components (the grid-model
/// analogue of Algorithm 2). The gathered per-location PCA rows, stored
/// transposed (r x num_locations), are the LinearFieldSampler operator.
class GridPcaSampler final : public field::LinearFieldSampler {
 public:
  GridPcaSampler(const GridCorrelationModel& model, std::size_t r,
                 const std::vector<geometry::Point2>& locations);
};

}  // namespace sckl::gridmodel
