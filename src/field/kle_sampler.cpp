#include "field/kle_sampler.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::field {

KleFieldSampler::KleFieldSampler(const core::KleResult& kle, std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : r_(r), field_(kle, r, locations) {}

KleFieldSampler::KleFieldSampler(const store::StoredKleResult& stored,
                                 std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : KleFieldSampler(stored.kle(), r, locations) {}

std::size_t KleFieldSampler::num_locations() const {
  return field_.num_locations();
}

void KleFieldSampler::sample_block(const SampleRange& range,
                                   const StreamKey& key,
                                   linalg::Matrix& out) const {
  obs::Span span("field.sample_block.kle");
  static obs::Counter& samples = obs::counter("sckl.field.samples.kle");
  samples.add(range.count);
  linalg::Matrix xi;
  fill_latent_normals(range, key, r_, xi);
  out = field_.reconstruct_block(xi);
}

}  // namespace sckl::field
