#include "field/kle_sampler.h"

#include "common/error.h"

namespace sckl::field {

KleFieldSampler::KleFieldSampler(const core::KleResult& kle, std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : field_(kle, r, locations) {
  set_operator(field_.location_operator().transposed(),
               "field.reconstruct.kle", "sckl.field.samples.kle");
}

KleFieldSampler::KleFieldSampler(const store::StoredKleResult& stored,
                                 std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : KleFieldSampler(stored.kle(), r, locations) {}

}  // namespace sckl::field
