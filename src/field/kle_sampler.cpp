#include "field/kle_sampler.h"

#include "common/error.h"

namespace sckl::field {

KleFieldSampler::KleFieldSampler(const core::KleResult& kle, std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : r_(r), field_(kle, r, locations) {}

KleFieldSampler::KleFieldSampler(const store::StoredKleResult& stored,
                                 std::size_t r,
                                 const std::vector<geometry::Point2>& locations)
    : KleFieldSampler(stored.kle(), r, locations) {}

std::size_t KleFieldSampler::num_locations() const {
  return field_.num_locations();
}

void KleFieldSampler::sample_block(std::size_t n, Rng& rng,
                                   linalg::Matrix& out) const {
  require(n > 0, "KleFieldSampler::sample_block: n must be positive");
  linalg::Matrix xi(n, r_);
  for (std::size_t row = 0; row < n; ++row) {
    double* values = xi.row_ptr(row);
    for (std::size_t c = 0; c < r_; ++c) values[c] = rng.normal();
  }
  out = field_.reconstruct_block(xi);
}

}  // namespace sckl::field
