#include "field/cholesky_sampler.h"

#include "common/error.h"
#include "linalg/blas.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::field {

CholeskyFieldSampler::CholeskyFieldSampler(
    const kernels::CovarianceKernel& kernel,
    const std::vector<geometry::Point2>& locations)
    : n_(locations.size()), factor_{}, jitter_(0.0) {
  require(n_ > 0, "CholeskyFieldSampler: no locations");
  obs::Span span("field.cholesky_setup");
  linalg::Matrix gram(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      const double value = kernel(locations[i], locations[j]);
      gram(i, j) = value;
      gram(j, i) = value;
    }
  }
  auto result = linalg::cholesky_with_jitter(std::move(gram));
  factor_ = std::move(result.factor);
  jitter_ = result.jitter;
}

void CholeskyFieldSampler::sample_block(const SampleRange& range,
                                        const StreamKey& key,
                                        linalg::Matrix& out) const {
  obs::Span span("field.sample_block.cholesky");
  static obs::Counter& samples = obs::counter("sckl.field.samples.cholesky");
  samples.add(range.count);
  linalg::Matrix z;
  fill_latent_normals(range, key, n_, z);
  // P = Z L^T: row p of P is L applied to the standard-normal row, giving
  // covariance L L^T = K.
  out = linalg::gemm_bt(z, factor_.lower);
}

}  // namespace sckl::field
