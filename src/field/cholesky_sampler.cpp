#include "field/cholesky_sampler.h"

#include <utility>

#include "common/error.h"
#include "linalg/cholesky.h"
#include "obs/trace.h"

namespace sckl::field {

CholeskyFieldSampler::CholeskyFieldSampler(
    const kernels::CovarianceKernel& kernel,
    const std::vector<geometry::Point2>& locations)
    : jitter_(0.0) {
  const std::size_t n = locations.size();
  require(n > 0, "CholeskyFieldSampler: no locations");
  obs::Span span("field.cholesky_setup");
  linalg::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double value = kernel(locations[i], locations[j]);
      gram(i, j) = value;
      gram(j, i) = value;
    }
  }
  auto result = linalg::cholesky_with_jitter(std::move(gram));
  jitter_ = result.jitter;
  // P = Z U for U = L^T gives covariance U^T U = L L^T = K; storing U
  // directly makes reconstruction a plain row-major GEMM.
  set_operator(result.factor.lower.transposed(), "field.reconstruct.cholesky",
               "sckl.field.samples.cholesky");
}

}  // namespace sckl::field
