#include "field/covariance_estimate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sckl::field {

linalg::Matrix empirical_covariance(const FieldSampler& sampler,
                                    std::size_t num_samples,
                                    const StreamKey& key) {
  require(num_samples >= 2, "empirical_covariance: need at least two samples");
  const std::size_t g = sampler.num_locations();
  linalg::Matrix latents;
  linalg::Matrix block;
  sampler.latent_block(SampleRange{0, num_samples}, key, latents);
  sampler.reconstruct(latents, block);

  linalg::Vector mean(g, 0.0);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const double* row = block.row_ptr(s);
    for (std::size_t i = 0; i < g; ++i) mean[i] += row[i];
  }
  for (auto& m : mean) m /= static_cast<double>(num_samples);

  linalg::Matrix cov(g, g);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const double* row = block.row_ptr(s);
    for (std::size_t i = 0; i < g; ++i) {
      const double di = row[i] - mean[i];
      double* crow = cov.row_ptr(i);
      for (std::size_t j = i; j < g; ++j) crow[j] += di * (row[j] - mean[j]);
    }
  }
  const double denom = static_cast<double>(num_samples - 1);
  for (std::size_t i = 0; i < g; ++i)
    for (std::size_t j = i; j < g; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

CovarianceErrorSummary compare_covariance(
    const linalg::Matrix& empirical, const kernels::CovarianceKernel& kernel,
    const std::vector<geometry::Point2>& locations) {
  const std::size_t g = locations.size();
  require(empirical.rows() == g && empirical.cols() == g,
          "compare_covariance: shape mismatch");
  CovarianceErrorSummary s{0.0, 0.0, 0.0};
  double total = 0.0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      const double expected = kernel(locations[i], locations[j]);
      const double err = std::abs(empirical(i, j) - expected);
      s.max_abs_error = std::max(s.max_abs_error, err);
      total += err;
      if (i == j) s.max_diag_error = std::max(s.max_diag_error, err);
    }
  }
  s.mean_abs_error = total / static_cast<double>(g * g);
  return s;
}

}  // namespace sckl::field
