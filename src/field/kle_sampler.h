// Algorithm 2 of the paper: reduced-dimension KLE field sampling.
//
//   Xi_j    <- RandNormal(N, r)                (r ~ 25 instead of N_g)
//   P_jDelta <- D_lambda Xi_j                  (eq. 28)
//   Row(i, P_j) <- Row(IndexOfContainingTriangle(g_i), P_jDelta)
//
// The triangle lookup is folded into construction (KleField gathers the
// relevant rows of D_lambda once), so a sample block costs O(N N_g r).
#pragma once

#include <vector>

#include "core/kle_field.h"
#include "field/field_sampler.h"
#include "store/kle_io.h"

namespace sckl::field {

/// Reduced-dimension sampler backed by a truncated KLE. Reconstruction is
/// the LinearFieldSampler GEMM against D_lambda^T gathered at the gate
/// locations (r x N_g).
class KleFieldSampler final : public LinearFieldSampler {
 public:
  /// Freezes `kle` at truncation r for the given locations. The KleResult
  /// may be destroyed afterwards; all needed state is copied.
  KleFieldSampler(const core::KleResult& kle, std::size_t r,
                  const std::vector<geometry::Point2>& locations);

  /// Same, from a persisted/cached artifact (artifact store warm path).
  KleFieldSampler(const store::StoredKleResult& stored, std::size_t r,
                  const std::vector<geometry::Point2>& locations);

  const core::KleField& field() const { return field_; }

  /// Locations that were outside every mesh triangle and got resolved to
  /// the nearest one (see core::KleField::out_of_mesh_count()).
  std::size_t out_of_mesh_count() const { return field_.out_of_mesh_count(); }

 private:
  core::KleField field_;
};

}  // namespace sckl::field
