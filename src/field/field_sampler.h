// Random-field sampler interface.
//
// Both Monte Carlo STA variants of the paper need, for each statistical
// parameter, an N x N_g matrix of correlated samples at the gate locations:
// Algorithm 1 builds it from the dense Cholesky factor of the gate-location
// covariance matrix; Algorithm 2 from the truncated KLE reconstruction.
// This interface abstracts the two so the SSTA harness is sampler-agnostic,
// which is precisely the experimental control the paper wants (identical
// timer, different sample generators).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace sckl::field {

/// Generates blocks of correlated field samples at fixed locations.
class FieldSampler {
 public:
  virtual ~FieldSampler() = default;

  /// Number of sample locations (columns of a sample block).
  virtual std::size_t num_locations() const = 0;

  /// Dimensionality of the underlying independent-normal draw per sample
  /// (N_g for Cholesky, r for KLE) — the paper's headline reduction.
  virtual std::size_t latent_dimension() const = 0;

  /// Fills `out` (N x num_locations; resized if needed) with N samples of
  /// the normalized field at the locations. Rows are independent samples.
  virtual void sample_block(std::size_t n, Rng& rng,
                            linalg::Matrix& out) const = 0;
};

}  // namespace sckl::field
