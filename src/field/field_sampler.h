// Random-field sampler interface.
//
// Both Monte Carlo STA variants of the paper need, for each statistical
// parameter, an N x N_g matrix of correlated samples at the gate locations:
// Algorithm 1 builds it from the dense Cholesky factor of the gate-location
// covariance matrix; Algorithm 2 from the truncated KLE reconstruction.
// This interface abstracts the two so the SSTA harness is sampler-agnostic,
// which is precisely the experimental control the paper wants (identical
// timer, different sample generators).
//
// Sampling is *index-addressed and stateless*: a block is requested as a
// half-open range [first, first + count) of global sample indices plus the
// StreamKey of the parameter's random stream, and every latent draw is
// derived through the counter-based generator as
// CounterRng(key).normal(global_index, lane). No RNG state threads through
// the calls, so sample i is bit-identical regardless of block size, request
// order, or which thread produced it — the property the parallel MC-SSTA
// engine's determinism guarantee rests on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace sckl::field {

/// Half-open range [first, first + count) of global sample indices.
struct SampleRange {
  std::uint64_t first = 0;
  std::size_t count = 0;
};

/// Generates blocks of correlated field samples at fixed locations.
class FieldSampler {
 public:
  virtual ~FieldSampler() = default;

  /// Number of sample locations (columns of a sample block).
  virtual std::size_t num_locations() const = 0;

  /// Dimensionality of the underlying independent-normal draw per sample
  /// (N_g for Cholesky, r for KLE) — the paper's headline reduction.
  virtual std::size_t latent_dimension() const = 0;

  /// Fills `out` (range.count x num_locations; resized if needed) with the
  /// samples of the normalized field whose global indices fall in `range`,
  /// drawn from the stream identified by `key`. Row i of `out` is global
  /// sample range.first + i; rows are independent samples.
  virtual void sample_block(const SampleRange& range, const StreamKey& key,
                            linalg::Matrix& out) const = 0;
};

/// Fills `xi` (range.count x dimension) with the independent standard
/// normal latent draws for `range` under `key`: xi(i, c) =
/// CounterRng(key).normal(range.first + i, c). Shared by every sampler so
/// all of them agree on the draw-addressing scheme.
void fill_latent_normals(const SampleRange& range, const StreamKey& key,
                         std::size_t dimension, linalg::Matrix& xi);

}  // namespace sckl::field
