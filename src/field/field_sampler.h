// Random-field sampler interface, staged into latent generation and
// reconstruction.
//
// Both Monte Carlo STA variants of the paper need, for each statistical
// parameter, an N x N_g matrix of correlated samples at the gate locations:
// Algorithm 1 builds it from the dense Cholesky factor of the gate-location
// covariance matrix; Algorithm 2 from the truncated KLE reconstruction.
// This interface abstracts the two so the SSTA harness is sampler-agnostic,
// which is precisely the experimental control the paper wants (identical
// timer, different sample generators).
//
// The sampling contract has two orthogonal halves:
//
// 1. Index addressing (where the randomness comes from). Sampling is
//    *index-addressed and stateless*: a block is requested as a half-open
//    range [first, first + count) of global sample indices plus the
//    StreamKey of the parameter's random stream, and latent draw (i, c) is
//    derived through the counter-based generator as
//    CounterRng(key).normal(global_index, lane) — row i of a block is
//    global sample range.first + i, lane c is latent coordinate c. No RNG
//    state threads through the calls, so sample i is bit-identical
//    regardless of block size, request order, or which thread produced it —
//    the property the parallel MC-SSTA engine's determinism guarantee
//    rests on.
//
// 2. Staging (how a block is produced). Every sampler factors into
//       latent_block:  (range, key)  ->  Xi    (count x latent_dimension)
//       reconstruct:    Xi           ->  block (count x num_locations)
//    latent_block is pure index-addressed draw generation and is shared by
//    every sampler (same addressing scheme, batched Acklam inverse-normal);
//    reconstruct is one cache-blocked GEMM against the sampler's
//    reconstruction operator (D_lambda^T for KLE, L^T for Cholesky, the PCA
//    operator for the grid model) — see linalg/gemm.h for the kernel's own
//    determinism contract (fixed per-element fma reduction order, so
//    scalar/AVX2/AVX-512 dispatch and any block shape give identical bits).
//    sample_block is the composed convenience and is exactly
//    latent_block + reconstruct; callers that manage their own latent
//    scratch (the MC block pipeline, the serve batcher) call the stages
//    directly and size blocks for the kernel.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace sckl::obs {
class Counter;
}  // namespace sckl::obs

namespace sckl::field {

/// Half-open range [first, first + count) of global sample indices.
struct SampleRange {
  std::uint64_t first = 0;
  std::size_t count = 0;
};

/// Generates blocks of correlated field samples at fixed locations.
class FieldSampler {
 public:
  virtual ~FieldSampler() = default;

  /// Number of sample locations (columns of a sample block).
  virtual std::size_t num_locations() const = 0;

  /// Dimensionality of the underlying independent-normal draw per sample
  /// (N_g for Cholesky, r for KLE) — the paper's headline reduction.
  virtual std::size_t latent_dimension() const = 0;

  /// Stage 1: fills `xi` (reshaped in place to range.count x
  /// latent_dimension(), allocation reused) with the independent
  /// standard-normal latent draws for `range` under `key`:
  /// xi(i, c) = CounterRng(key).normal(range.first + i, c).
  /// The default implementation is the shared index-addressed scheme;
  /// samplers only override it if they consume a different latent law.
  virtual void latent_block(const SampleRange& range, const StreamKey& key,
                            linalg::Matrix& xi) const;

  /// Stage 2: reconstructs correlated samples from latents: `out` is
  /// reshaped to xi.rows() x num_locations(); row i is the field at the
  /// sample whose latents are row i of `xi`. Requires xi.cols() ==
  /// latent_dimension(). `xi` and `out` must be distinct objects.
  virtual void reconstruct(const linalg::Matrix& xi,
                           linalg::Matrix& out) const = 0;

  /// Composed convenience: latent_block + reconstruct through an internal
  /// per-thread latent scratch. Fills `out` (range.count x num_locations,
  /// reshaped) with the samples of the normalized field whose global
  /// indices fall in `range`, drawn from the stream identified by `key`.
  /// Row i of `out` is global sample range.first + i; rows are independent
  /// samples. Bit-identical to calling the stages with any caller-owned
  /// scratch.
  void sample_block(const SampleRange& range, const StreamKey& key,
                    linalg::Matrix& out) const;
};

/// Base for samplers whose reconstruction is a single linear operator:
/// out = Xi * Op with Op stored pre-transposed as latent_dimension x
/// num_locations, so reconstruct() is one row-major GEMM with no transposed
/// operand in the hot path. This is all three shipped samplers (KLE,
/// Cholesky, grid PCA); they differ only in how the operator is built.
class LinearFieldSampler : public FieldSampler {
 public:
  std::size_t num_locations() const override { return op_t_.cols(); }
  std::size_t latent_dimension() const override { return op_t_.rows(); }
  void reconstruct(const linalg::Matrix& xi,
                   linalg::Matrix& out) const override;

  /// The reconstruction operator, stored transposed (latent_dimension x
  /// num_locations).
  const linalg::Matrix& operator_transposed() const { return op_t_; }

 protected:
  LinearFieldSampler() = default;

  /// Installs the transposed operator plus the observability identity used
  /// by reconstruct(): `span_name` must outlive the sampler (string
  /// literal), `counter_name` is a registered metrics counter or nullptr.
  void set_operator(linalg::Matrix op_transposed, const char* span_name,
                    const char* counter_name);

 private:
  linalg::Matrix op_t_;
  const char* span_name_ = "field.reconstruct";
  obs::Counter* samples_ = nullptr;
};

/// Fills `xi` (reshaped to range.count x dimension) with the independent
/// standard normal latent draws for `range` under `key`: xi(i, c) =
/// CounterRng(key).normal(range.first + i, c), generated row-at-a-time via
/// CounterRng::normal_row. Shared by every sampler so all of them agree on
/// the draw-addressing scheme.
void fill_latent_normals(const SampleRange& range, const StreamKey& key,
                         std::size_t dimension, linalg::Matrix& xi);

}  // namespace sckl::field
