#include "field/field_sampler.h"

#include "common/error.h"
#include "linalg/gemm.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::field {

void fill_latent_normals(const SampleRange& range, const StreamKey& key,
                         std::size_t dimension, linalg::Matrix& xi) {
  require(range.count > 0, "fill_latent_normals: empty sample range");
  require(dimension > 0, "fill_latent_normals: zero latent dimension");
  const CounterRng rng(key);
  xi.reshape(range.count, dimension);
  for (std::size_t i = 0; i < range.count; ++i)
    rng.normal_row(range.first + i, 0, dimension, xi.row_ptr(i));
}

void FieldSampler::latent_block(const SampleRange& range, const StreamKey& key,
                                linalg::Matrix& xi) const {
  fill_latent_normals(range, key, latent_dimension(), xi);
}

void FieldSampler::sample_block(const SampleRange& range, const StreamKey& key,
                                linalg::Matrix& out) const {
  thread_local linalg::Matrix latents;
  latent_block(range, key, latents);
  reconstruct(latents, out);
}

void LinearFieldSampler::set_operator(linalg::Matrix op_transposed,
                                      const char* span_name,
                                      const char* counter_name) {
  require(!op_transposed.empty(),
          "LinearFieldSampler: empty reconstruction operator");
  op_t_ = std::move(op_transposed);
  span_name_ = span_name;
  samples_ = counter_name == nullptr ? nullptr : &obs::counter(counter_name);
}

void LinearFieldSampler::reconstruct(const linalg::Matrix& xi,
                                     linalg::Matrix& out) const {
  require(xi.cols() == op_t_.rows(),
          "LinearFieldSampler::reconstruct: latent dimension mismatch");
  obs::Span span(span_name_);
  if (samples_ != nullptr) samples_->add(xi.rows());
  linalg::gemm_into(xi, op_t_, out);
}

}  // namespace sckl::field
