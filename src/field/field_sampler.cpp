#include "field/field_sampler.h"

#include "common/error.h"

namespace sckl::field {

void fill_latent_normals(const SampleRange& range, const StreamKey& key,
                         std::size_t dimension, linalg::Matrix& xi) {
  require(range.count > 0, "fill_latent_normals: empty sample range");
  require(dimension > 0, "fill_latent_normals: zero latent dimension");
  const CounterRng rng(key);
  xi = linalg::Matrix(range.count, dimension);
  for (std::size_t i = 0; i < range.count; ++i) {
    double* row = xi.row_ptr(i);
    const std::uint64_t index = range.first + i;
    for (std::size_t c = 0; c < dimension; ++c) row[c] = rng.normal(index, c);
  }
}

}  // namespace sckl::field
