#include "field/lhs.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace sckl::field {

double inverse_normal_cdf(double p) { return standard_normal_quantile(p); }

void latin_hypercube_normal(std::size_t n, std::size_t dims,
                            const StreamKey& key, linalg::Matrix& out) {
  require(n > 0 && dims > 0, "latin_hypercube_normal: empty request");
  const CounterRng rng(key);
  out = linalg::Matrix(n, dims);
  std::vector<std::size_t> permutation(n);
  // Draw addressing within the key's stream: dimension d uses counter index
  // d for its permutation draws (lane = shuffle position) and counter index
  // dims + d for the within-stratum jitter (lane = row). The two index
  // ranges are disjoint, so every draw in the design is distinct.
  for (std::size_t d = 0; d < dims; ++d) {
    std::iota(permutation.begin(), permutation.end(), 0);
    // Fisher-Yates; the floor(u * i) index has O(2^-53) selection bias,
    // negligible against the sampling noise this design suppresses.
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(d, i) * static_cast<double>(i));
      std::swap(permutation[i - 1], permutation[std::min(j, i - 1)]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Stratum `permutation[i]`, uniform within the stratum, mapped to a
      // normal through the inverse CDF.
      const double u =
          (static_cast<double>(permutation[i]) + rng.uniform(dims + d, i)) /
          static_cast<double>(n);
      out(i, d) = standard_normal_quantile(std::clamp(u, 1e-12, 1.0 - 1e-12));
    }
  }
}

}  // namespace sckl::field
