// Algorithm 1 of the paper: dense Cholesky field sampling.
//
//   K_j  <- CovMatrix(K_j, {g_i})          (N_g x N_g Gram matrix)
//   U_j  <- CholeskyUpperFactor(K_j)
//   P_j  <- RandNormal(N, N_g) * U_j
//
// We factor K = L L^T and store the upper factor U = L^T as the
// LinearFieldSampler operator, so P = Z U is one row-major GEMM per block
// (covariance U^T U = K). The Gram matrix of a smooth kernel at thousands
// of locations is numerically semi-definite, so the factorization uses the
// standard jitter escape. This sampler is the *reference generator*: exact
// covariance at the gate locations, O(N_g^3/3) setup and O(N N_g^2) per
// block.
#pragma once

#include <vector>

#include "field/field_sampler.h"
#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"

namespace sckl::field {

/// Exact (Cholesky-based) correlated sampler at fixed locations.
class CholeskyFieldSampler final : public LinearFieldSampler {
 public:
  /// Builds the covariance matrix of `kernel` at `locations` and factors it.
  CholeskyFieldSampler(const kernels::CovarianceKernel& kernel,
                       const std::vector<geometry::Point2>& locations);

  /// Jitter that was required to make the Gram matrix factorizable.
  double jitter() const { return jitter_; }

 private:
  double jitter_;
};

}  // namespace sckl::field
