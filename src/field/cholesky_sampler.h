// Algorithm 1 of the paper: dense Cholesky field sampling.
//
//   K_j  <- CovMatrix(K_j, {g_i})          (N_g x N_g Gram matrix)
//   U_j  <- CholeskyUpperFactor(K_j)
//   P_j  <- RandNormal(N, N_g) * U_j
//
// We store the lower factor L = U^T and compute P = Z L^T via gemm_bt. The
// Gram matrix of a smooth kernel at thousands of locations is numerically
// semi-definite, so the factorization uses the standard jitter escape.
// This sampler is the *reference generator*: exact covariance at the gate
// locations, O(N_g^3/3) setup and O(N N_g^2) per block.
#pragma once

#include <vector>

#include "field/field_sampler.h"
#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"
#include "linalg/cholesky.h"

namespace sckl::field {

/// Exact (Cholesky-based) correlated sampler at fixed locations.
class CholeskyFieldSampler final : public FieldSampler {
 public:
  /// Builds the covariance matrix of `kernel` at `locations` and factors it.
  CholeskyFieldSampler(const kernels::CovarianceKernel& kernel,
                       const std::vector<geometry::Point2>& locations);

  std::size_t num_locations() const override { return n_; }
  std::size_t latent_dimension() const override { return n_; }
  void sample_block(const SampleRange& range, const StreamKey& key,
                    linalg::Matrix& out) const override;

  /// Jitter that was required to make the Gram matrix factorizable.
  double jitter() const { return jitter_; }

 private:
  std::size_t n_;
  linalg::CholeskyFactor factor_;
  double jitter_;
};

}  // namespace sckl::field
