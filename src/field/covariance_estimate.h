// Empirical covariance estimation from sampled field blocks.
//
// Validation utility: draw many samples from a FieldSampler and compare the
// empirical location-pair covariance against the kernel's analytic value.
// Used by the statistical test suite (both samplers must reproduce the
// kernel, the KLE one up to truncation error) and by the Fig. 1b style
// demonstrations.
#pragma once

#include <cstddef>
#include <vector>

#include "field/field_sampler.h"
#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"

namespace sckl::field {

/// Empirical covariance matrix (num_locations x num_locations) from
/// `num_samples` draws of the sampler (global indices 0..num_samples-1 of
/// the stream identified by `key`).
linalg::Matrix empirical_covariance(const FieldSampler& sampler,
                                    std::size_t num_samples,
                                    const StreamKey& key);

/// Summary of an empirical-vs-analytic covariance comparison.
struct CovarianceErrorSummary {
  double max_abs_error;   // worst entry-wise deviation
  double mean_abs_error;  // average deviation
  double max_diag_error;  // worst variance deviation (diagonal)
};

/// Compares an empirical covariance against kernel values at the locations.
CovarianceErrorSummary compare_covariance(
    const linalg::Matrix& empirical,
    const kernels::CovarianceKernel& kernel,
    const std::vector<geometry::Point2>& locations);

}  // namespace sckl::field
