// Latin hypercube sampling of standard normals — variance reduction for
// the Monte Carlo SSTA.
//
// The paper's framework samples xi ~ N(0, I_r) independently; because r is
// small (25), stratified sampling pays off: each of the r dimensions is
// divided into N equal-probability strata, one sample drawn per stratum,
// and strata matched across dimensions by independent random permutations.
// Means and variances of smooth functionals converge visibly faster than
// plain MC at identical cost — quantified in the sampling-scheme bench.
//
// Like the FieldSampler API, the design is a stateless function of a
// StreamKey: the same key always yields the same design. Unlike the plain
// samplers an LHS design is *coupled across its N rows* (the permutations
// tie every stratum to exactly one sample), so it is generated as a whole
// block rather than addressed row-by-row — partial ranges of a stratified
// design would not be stratified.
#pragma once

#include "common/rng.h"
#include "linalg/matrix.h"

namespace sckl::field {

/// Inverse standard normal CDF (Acklam), exposed for tests and the yield
/// helpers. Thin wrapper over sckl::standard_normal_quantile.
double inverse_normal_cdf(double p);

/// Fills `out` (n x dims) with the Latin hypercube sample of N(0, I_dims)
/// identified by `key`: every column is a stratified standard normal
/// sample, rows are the joint draws. Deterministic per key.
void latin_hypercube_normal(std::size_t n, std::size_t dims,
                            const StreamKey& key, linalg::Matrix& out);

}  // namespace sckl::field
