// Latin hypercube sampling of standard normals — variance reduction for
// the Monte Carlo SSTA.
//
// The paper's framework samples xi ~ N(0, I_r) independently; because r is
// small (25), stratified sampling pays off: each of the r dimensions is
// divided into N equal-probability strata, one sample drawn per stratum,
// and strata matched across dimensions by independent random permutations.
// Means and variances of smooth functionals converge visibly faster than
// plain MC at identical cost — quantified in the sampling-scheme bench.
#pragma once

#include "common/rng.h"
#include "linalg/matrix.h"

namespace sckl::field {

/// Inverse standard normal CDF (Acklam), exposed for tests.
double inverse_normal_cdf(double p);

/// Fills `out` (n x dims) with a Latin hypercube sample of N(0, I_dims):
/// every column is a stratified standard normal sample, rows are the joint
/// draws.
void latin_hypercube_normal(std::size_t n, std::size_t dims, Rng& rng,
                            linalg::Matrix& out);

}  // namespace sckl::field
