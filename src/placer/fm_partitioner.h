// Fiduccia-Mattheyses min-cut bisection.
//
// The engine of our Capo-substitute placer (the paper placed its benchmarks
// with Capo, a recursive min-cut bisection placer [23]). Standard FM: gain
// buckets over [-max_degree, +max_degree], single-cell moves with a balance
// constraint, locking, and rollback to the best prefix of each pass.
#pragma once

#include <cstdint>
#include <vector>

#include "placer/hypergraph.h"

namespace sckl::placer {

/// Options controlling the FM run.
struct FmOptions {
  double balance_tolerance = 0.1;  // allowed deviation from perfect halves
  int max_passes = 8;              // FM passes (each O(pins))
  std::uint64_t seed = 1;          // initial random partition
};

/// Bisection result.
struct FmResult {
  std::vector<int> side;  // 0 or 1 per cell
  std::size_t cut = 0;    // hyperedges spanning both sides
  std::size_t size0 = 0;  // cells on side 0
};

/// Computes the cut of a given assignment (validation utility).
std::size_t cut_size(const Hypergraph& graph, const std::vector<int>& side);

/// Runs FM bisection on `graph`. Guarantees a balanced partition within
/// tolerance; deterministic in the seed.
FmResult fm_bisect(const Hypergraph& graph, const FmOptions& options = {});

}  // namespace sckl::placer
