// Netlist hypergraph for partitioning-driven placement.
//
// Cells are the physical gates of a netlist (paper's N_g objects); each
// driver gate induces one hyperedge containing the driver and all physical
// fanout gates. INPUT/OUTPUT pseudo-gates are pads: they are fixed on the
// die boundary by the placer and excluded from partitioning.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.h"

namespace sckl::placer {

/// Hypergraph over cells 0..num_cells-1.
struct Hypergraph {
  std::size_t num_cells = 0;
  /// nets[e] = cell indices on hyperedge e (each has >= 2 distinct cells).
  std::vector<std::vector<std::size_t>> nets;
  /// cell_nets[c] = hyperedges incident to cell c.
  std::vector<std::vector<std::size_t>> cell_nets;

  /// Maximum number of nets on any single cell (bounds FM gain range).
  std::size_t max_cell_degree() const;
};

/// Builds the hypergraph of `netlist`'s physical gates. Cell i corresponds
/// to netlist.physical_gates()[i].
Hypergraph build_hypergraph(const circuit::Netlist& netlist);

/// Extracts the sub-hypergraph induced by `cells` (indices into the parent).
/// Hyperedges with fewer than 2 endpoints inside the subset are dropped.
Hypergraph induced_subgraph(const Hypergraph& parent,
                            const std::vector<std::size_t>& cells);

}  // namespace sckl::placer
