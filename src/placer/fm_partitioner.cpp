#include "placer/fm_partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace sckl::placer {
namespace {

// Gain-bucket structure: doubly-linked lists per gain value with a moving
// max-gain pointer — the classic FM O(pins)-per-pass machinery.
class GainBuckets {
 public:
  GainBuckets(std::size_t num_cells, long max_gain)
      : max_gain_(max_gain),
        head_(2 * max_gain + 1, kNone),
        next_(num_cells, kNone),
        prev_(num_cells, kNone),
        gain_(num_cells, 0),
        in_(num_cells, false),
        best_(-1) {}

  void insert(std::size_t cell, long gain) {
    gain_[cell] = gain;
    const std::size_t b = bucket(gain);
    next_[cell] = head_[b];
    prev_[cell] = kNone;
    if (head_[b] != kNone) prev_[head_[b]] = cell;
    head_[b] = cell;
    in_[cell] = true;
    best_ = std::max(best_, static_cast<long>(b));
  }

  void remove(std::size_t cell) {
    if (!in_[cell]) return;
    const std::size_t b = bucket(gain_[cell]);
    if (prev_[cell] != kNone)
      next_[prev_[cell]] = next_[cell];
    else
      head_[b] = next_[cell];
    if (next_[cell] != kNone) prev_[next_[cell]] = prev_[cell];
    in_[cell] = false;
  }

  void update_gain(std::size_t cell, long delta) {
    if (!in_[cell]) return;
    const long g = gain_[cell] + delta;
    remove(cell);
    insert(cell, g);
  }

  bool contains(std::size_t cell) const { return in_[cell]; }
  long gain_of(std::size_t cell) const { return gain_[cell]; }

  /// Highest-gain unlocked cell satisfying `feasible`, or kNone.
  template <typename Fn>
  std::size_t pop_best(Fn&& feasible) {
    for (long b = best_; b >= 0; --b) {
      std::size_t cell = head_[static_cast<std::size_t>(b)];
      while (cell != kNone) {
        if (feasible(cell)) {
          remove(cell);
          best_ = b;
          return cell;
        }
        cell = next_[cell];
      }
    }
    return kNone;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  std::size_t bucket(long gain) const {
    return static_cast<std::size_t>(gain + max_gain_);
  }

  long max_gain_;
  std::vector<std::size_t> head_;
  std::vector<std::size_t> next_;
  std::vector<std::size_t> prev_;
  std::vector<long> gain_;
  std::vector<bool> in_;
  long best_;
};

}  // namespace

std::size_t cut_size(const Hypergraph& graph, const std::vector<int>& side) {
  require(side.size() == graph.num_cells, "cut_size: side size mismatch");
  std::size_t cut = 0;
  for (const auto& net : graph.nets) {
    const int first = side[net.front()];
    for (std::size_t cell : net) {
      if (side[cell] != first) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

FmResult fm_bisect(const Hypergraph& graph, const FmOptions& options) {
  const std::size_t n = graph.num_cells;
  require(n >= 2, "fm_bisect: need at least two cells");
  Rng rng(options.seed);

  // Random balanced initial partition.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  std::vector<int> side(n, 0);
  for (std::size_t i = n / 2; i < n; ++i) side[order[i]] = 1;

  const auto min_side = static_cast<std::size_t>(
      std::max(1.0, (0.5 - options.balance_tolerance) *
                        static_cast<double>(n)));
  const long max_gain =
      std::max<long>(1, static_cast<long>(graph.max_cell_degree()));

  std::vector<std::size_t> count0(graph.nets.size(), 0);
  auto recount = [&] {
    for (std::size_t e = 0; e < graph.nets.size(); ++e) {
      std::size_t c0 = 0;
      for (std::size_t cell : graph.nets[e]) c0 += (side[cell] == 0) ? 1 : 0;
      count0[e] = c0;
    }
  };

  auto cell_gain = [&](std::size_t cell) {
    long gain = 0;
    for (std::size_t e : graph.cell_nets[cell]) {
      const std::size_t total = graph.nets[e].size();
      const std::size_t on_my_side =
          side[cell] == 0 ? count0[e] : total - count0[e];
      const std::size_t on_other = total - on_my_side;
      if (on_my_side == 1) ++gain;   // move uncuts the net
      if (on_other == 0) --gain;     // move cuts a currently-uncut net
    }
    return gain;
  };

  std::size_t size0 = static_cast<std::size_t>(
      std::count(side.begin(), side.end(), 0));

  for (int pass = 0; pass < options.max_passes; ++pass) {
    recount();
    GainBuckets buckets(n, max_gain);
    for (std::size_t cell = 0; cell < n; ++cell)
      buckets.insert(cell, cell_gain(cell));

    std::vector<std::size_t> moved;
    moved.reserve(n);
    long cumulative = 0;
    long best_cumulative = 0;
    std::size_t best_prefix = 0;

    while (true) {
      const std::size_t cell = buckets.pop_best([&](std::size_t c) {
        // Balance feasibility of moving c off its side.
        const std::size_t from = side[c] == 0 ? size0 : n - size0;
        return from > min_side;
      });
      if (cell == GainBuckets::kNone) break;

      cumulative += buckets.gain_of(cell);
      const int from = side[cell];
      // Update net counts and neighbor gains incrementally (standard FM
      // delta rules derived from the before/after pin distribution).
      for (std::size_t e : graph.cell_nets[cell]) {
        const std::size_t total = graph.nets[e].size();
        const std::size_t before_from =
            from == 0 ? count0[e] : total - count0[e];
        const std::size_t before_to = total - before_from;
        if (before_to == 0) {
          // Net was uncut on `from`; now cut: every other free cell gains.
          for (std::size_t other : graph.nets[e])
            if (other != cell) buckets.update_gain(other, +1);
        } else if (before_to == 1) {
          // The lone cell on `to` no longer uncuts the net by moving.
          for (std::size_t other : graph.nets[e])
            if (other != cell && side[other] != from)
              buckets.update_gain(other, -1);
        }
        // Apply the move to this net's count.
        count0[e] += (from == 0) ? -1 : +1;
        const std::size_t after_from = before_from - 1;
        if (after_from == 0) {
          // Net now uncut on `to`: moving any member would cut it again.
          for (std::size_t other : graph.nets[e])
            if (other != cell) buckets.update_gain(other, -1);
        } else if (after_from == 1) {
          // The lone remaining cell on `from` would uncut the net.
          for (std::size_t other : graph.nets[e])
            if (other != cell && side[other] == from)
              buckets.update_gain(other, +1);
        }
      }
      side[cell] = 1 - from;
      size0 += (from == 0) ? -1 : +1;
      moved.push_back(cell);

      if (cumulative > best_cumulative ||
          (cumulative == best_cumulative && best_prefix == 0)) {
        best_cumulative = cumulative;
        best_prefix = moved.size();
      }
    }

    // Roll back past the best prefix.
    for (std::size_t i = moved.size(); i > best_prefix; --i) {
      const std::size_t cell = moved[i - 1];
      const int from = side[cell];
      side[cell] = 1 - from;
      size0 += (from == 0) ? -1 : +1;
    }
    if (best_cumulative <= 0) break;  // no improvement: converged
  }

  FmResult result;
  result.side = std::move(side);
  result.cut = cut_size(graph, result.side);
  result.size0 = static_cast<std::size_t>(
      std::count(result.side.begin(), result.side.end(), 0));
  return result;
}

}  // namespace sckl::placer
