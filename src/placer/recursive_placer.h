// Recursive min-cut bisection placement (Capo substitute, [23]).
//
// The die is split recursively: each region's cells are FM-bisected and the
// region is cut along its longer axis proportionally to the partition
// sizes; leaf regions scatter their few cells on a regular sub-grid.
// Primary input/output pads are fixed on the die boundary (left/right
// edges respectively), matching the pad rings of placed ASIC benchmarks.
// The result assigns a die coordinate to *every* netlist gate, which is
// exactly what the paper's samplers need (the gate locations g_i).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "geometry/point2.h"

namespace sckl::placer {

/// A completed placement of a netlist.
struct Placement {
  geometry::BoundingBox die;
  /// Die coordinates indexed by netlist gate index (pads included).
  std::vector<geometry::Point2> location;

  /// Locations of the physical gates only, in physical_gates() order —
  /// the g_i vector handed to the field samplers.
  std::vector<geometry::Point2> physical_locations(
      const circuit::Netlist& netlist) const;
};

/// Options for the recursive placer.
struct PlacerOptions {
  std::size_t leaf_size = 8;  // stop bisecting below this many cells
  std::uint64_t seed = 1;
  double balance_tolerance = 0.1;
  int fm_passes = 6;
};

/// Places `netlist` on `die` (defaults to the paper's normalized unit die).
Placement place(const circuit::Netlist& netlist,
                geometry::BoundingBox die = geometry::BoundingBox::unit_die(),
                const PlacerOptions& options = {});

}  // namespace sckl::placer
