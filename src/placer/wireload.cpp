#include "placer/wireload.h"

#include <algorithm>

#include "common/error.h"

namespace sckl::placer {

double net_hpwl(const circuit::Netlist& netlist, const Placement& placement,
                std::size_t driver) {
  const circuit::Gate& gate = netlist.gate(driver);
  if (gate.fanout.empty()) return 0.0;
  geometry::Point2 p = placement.location[driver];
  double min_x = p.x;
  double max_x = p.x;
  double min_y = p.y;
  double max_y = p.y;
  for (std::size_t sink : gate.fanout) {
    const geometry::Point2 q = placement.location[sink];
    min_x = std::min(min_x, q.x);
    max_x = std::max(max_x, q.x);
    min_y = std::min(min_y, q.y);
    max_y = std::max(max_y, q.y);
  }
  return (max_x - min_x) + (max_y - min_y);
}

std::vector<double> all_net_hpwl(const circuit::Netlist& netlist,
                                 const Placement& placement) {
  require(placement.location.size() == netlist.num_gates_total(),
          "all_net_hpwl: placement/netlist mismatch");
  std::vector<double> hpwl(netlist.num_gates_total(), 0.0);
  for (std::size_t g = 0; g < netlist.num_gates_total(); ++g)
    hpwl[g] = net_hpwl(netlist, placement, g);
  return hpwl;
}

double total_hpwl(const circuit::Netlist& netlist,
                  const Placement& placement) {
  double total = 0.0;
  for (std::size_t g = 0; g < netlist.num_gates_total(); ++g)
    total += net_hpwl(netlist, placement, g);
  return total;
}

}  // namespace sckl::placer
