// Half-perimeter wirelength (HPWL) wire-load model.
//
// The paper models wire loads from the placed half-perimeter wirelength of
// each net (Sec. 5.1). A net is one driver gate plus its fanout sinks; its
// HPWL is the half perimeter of the bounding box of all pin locations. The
// timing layer converts HPWL to wire resistance/capacitance with per-unit
// constants from the synthetic 90nm-like technology.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "placer/recursive_placer.h"

namespace sckl::placer {

/// HPWL of the net driven by `driver` (0 when the gate has no fanout).
double net_hpwl(const circuit::Netlist& netlist, const Placement& placement,
                std::size_t driver);

/// HPWL for every gate's output net, indexed by gate index.
std::vector<double> all_net_hpwl(const circuit::Netlist& netlist,
                                 const Placement& placement);

/// Total HPWL over all nets — the placer's quality metric.
double total_hpwl(const circuit::Netlist& netlist,
                  const Placement& placement);

}  // namespace sckl::placer
