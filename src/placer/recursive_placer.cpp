#include "placer/recursive_placer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "placer/fm_partitioner.h"

namespace sckl::placer {
namespace {

// Scatters `cells` on a near-square sub-grid of `region`, jittered slightly
// so no two leaf cells coincide exactly (coincident gates would be perfectly
// correlated, which is fine physically but hides lookup bugs in tests).
void place_leaf(const std::vector<std::size_t>& cells,
                geometry::BoundingBox region, Rng& rng,
                std::vector<geometry::Point2>& out) {
  const std::size_t k = cells.size();
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(k))));
  const std::size_t rows = (k + cols - 1) / cols;
  const double dx = region.width() / static_cast<double>(cols);
  const double dy = region.height() / static_cast<double>(rows);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t cx = i % cols;
    const std::size_t cy = i / cols;
    const double jx = rng.uniform(-0.2, 0.2) * dx;
    const double jy = rng.uniform(-0.2, 0.2) * dy;
    out[cells[i]] = {
        region.min.x + dx * (static_cast<double>(cx) + 0.5) + jx,
        region.min.y + dy * (static_cast<double>(cy) + 0.5) + jy};
  }
}

void place_region(const Hypergraph& graph,
                  const std::vector<std::size_t>& cells,
                  geometry::BoundingBox region, const PlacerOptions& options,
                  Rng& rng, std::vector<geometry::Point2>& out) {
  if (cells.size() <= options.leaf_size) {
    place_leaf(cells, region, rng, out);
    return;
  }

  const Hypergraph sub = induced_subgraph(graph, cells);
  FmOptions fm;
  fm.balance_tolerance = options.balance_tolerance;
  fm.max_passes = options.fm_passes;
  fm.seed = rng();
  const FmResult split = fm_bisect(sub, fm);

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (std::size_t i = 0; i < cells.size(); ++i)
    (split.side[i] == 0 ? left : right).push_back(cells[i]);
  ensure(!left.empty() && !right.empty(),
         "place_region: degenerate FM split");

  // Cut the longer axis proportionally to the partition sizes so cell
  // density stays uniform.
  const double fraction = static_cast<double>(left.size()) /
                          static_cast<double>(cells.size());
  geometry::BoundingBox region_left = region;
  geometry::BoundingBox region_right = region;
  if (region.width() >= region.height()) {
    const double cut_x = region.min.x + fraction * region.width();
    region_left.max.x = cut_x;
    region_right.min.x = cut_x;
  } else {
    const double cut_y = region.min.y + fraction * region.height();
    region_left.max.y = cut_y;
    region_right.min.y = cut_y;
  }
  place_region(graph, left, region_left, options, rng, out);
  place_region(graph, right, region_right, options, rng, out);
}

}  // namespace

std::vector<geometry::Point2> Placement::physical_locations(
    const circuit::Netlist& netlist) const {
  std::vector<geometry::Point2> result;
  result.reserve(netlist.physical_gates().size());
  for (std::size_t gate : netlist.physical_gates())
    result.push_back(location[gate]);
  return result;
}

Placement place(const circuit::Netlist& netlist, geometry::BoundingBox die,
                const PlacerOptions& options) {
  require(netlist.finalized(), "place: netlist not finalized");
  require(die.width() > 0.0 && die.height() > 0.0, "place: degenerate die");
  Rng rng(options.seed);

  Placement placement;
  placement.die = die;
  placement.location.assign(netlist.num_gates_total(), {0.0, 0.0});

  // Pad ring: PIs spread along the left edge, POs along the right.
  const auto& pis = netlist.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(pis.size());
    placement.location[pis[i]] = {die.min.x, die.min.y + t * die.height()};
  }
  const auto& pos = netlist.primary_outputs();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(pos.size());
    placement.location[pos[i]] = {die.max.x, die.min.y + t * die.height()};
  }

  // Core area with a small pad margin.
  geometry::BoundingBox core = die;
  const double margin_x = 0.02 * die.width();
  const double margin_y = 0.02 * die.height();
  core.min.x += margin_x;
  core.max.x -= margin_x;
  core.min.y += margin_y;
  core.max.y -= margin_y;

  const Hypergraph graph = build_hypergraph(netlist);
  std::vector<std::size_t> all_cells(graph.num_cells);
  std::iota(all_cells.begin(), all_cells.end(), 0);

  std::vector<geometry::Point2> cell_location(graph.num_cells, {0.0, 0.0});
  if (graph.num_cells <= options.leaf_size) {
    place_leaf(all_cells, core, rng, cell_location);
  } else {
    place_region(graph, all_cells, core, options, rng, cell_location);
  }

  const auto& physical = netlist.physical_gates();
  for (std::size_t c = 0; c < physical.size(); ++c)
    placement.location[physical[c]] = cell_location[c];
  return placement;
}

}  // namespace sckl::placer
