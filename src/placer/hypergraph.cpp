#include "placer/hypergraph.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace sckl::placer {

std::size_t Hypergraph::max_cell_degree() const {
  std::size_t degree = 0;
  for (const auto& incident : cell_nets)
    degree = std::max(degree, incident.size());
  return degree;
}

Hypergraph build_hypergraph(const circuit::Netlist& netlist) {
  require(netlist.finalized(), "build_hypergraph: netlist not finalized");
  const auto& physical = netlist.physical_gates();
  std::unordered_map<std::size_t, std::size_t> cell_of_gate;
  cell_of_gate.reserve(physical.size());
  for (std::size_t c = 0; c < physical.size(); ++c)
    cell_of_gate.emplace(physical[c], c);

  Hypergraph graph;
  graph.num_cells = physical.size();
  graph.cell_nets.assign(graph.num_cells, {});

  for (std::size_t c = 0; c < physical.size(); ++c) {
    const circuit::Gate& driver = netlist.gate(physical[c]);
    std::vector<std::size_t> members{c};
    for (std::size_t sink : driver.fanout) {
      const auto it = cell_of_gate.find(sink);
      if (it == cell_of_gate.end()) continue;  // pad sink
      if (std::find(members.begin(), members.end(), it->second) ==
          members.end())
        members.push_back(it->second);
    }
    if (members.size() < 2) continue;
    const std::size_t e = graph.nets.size();
    for (std::size_t cell : members) graph.cell_nets[cell].push_back(e);
    graph.nets.push_back(std::move(members));
  }
  return graph;
}

Hypergraph induced_subgraph(const Hypergraph& parent,
                            const std::vector<std::size_t>& cells) {
  std::unordered_map<std::size_t, std::size_t> local_of;
  local_of.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    local_of.emplace(cells[i], i);

  Hypergraph sub;
  sub.num_cells = cells.size();
  sub.cell_nets.assign(sub.num_cells, {});

  // Visit each parent net at most once via incident lists of the subset.
  std::vector<bool> net_seen(parent.nets.size(), false);
  for (std::size_t cell : cells) {
    for (std::size_t e : parent.cell_nets[cell]) {
      if (net_seen[e]) continue;
      net_seen[e] = true;
      std::vector<std::size_t> members;
      for (std::size_t parent_cell : parent.nets[e]) {
        const auto it = local_of.find(parent_cell);
        if (it != local_of.end()) members.push_back(it->second);
      }
      if (members.size() < 2) continue;
      const std::size_t local_edge = sub.nets.size();
      for (std::size_t m : members) sub.cell_nets[m].push_back(local_edge);
      sub.nets.push_back(std::move(members));
    }
  }
  return sub;
}

}  // namespace sckl::placer
