// Bounded retry-with-backoff for transiently failing operations.
//
// The artifact store uses this around disk reads/writes: a torn read on a
// network filesystem or a transient EMFILE is worth a couple of retries, a
// checksum mismatch is not. Retryability is decided by the caller-supplied
// predicate over the thrown sckl::Error (typically `code() == kIoTransient`);
// everything else propagates immediately. Backoff grows geometrically and is
// deliberately tiny by default — this is smoothing over hiccups, not a
// distributed-systems reconnect loop.
#pragma once

#include <utility>

#include "common/error.h"

namespace sckl::robust {

/// Retry budget and pacing.
struct RetryPolicy {
  int max_attempts = 3;                    // total tries, including the first
  double initial_backoff_seconds = 5e-4;   // sleep before the first retry
  double backoff_growth = 2.0;             // multiplier per further retry
};

/// Attempts actually retried (i.e. failures absorbed) by one retry_bounded
/// call; useful for telemetry counters.
struct RetryStats {
  int retried = 0;
};

namespace detail {
void sleep_seconds(double seconds);
}  // namespace detail

/// Calls `fn` up to policy.max_attempts times. A thrown sckl::Error is
/// retried (after a backoff sleep) only while `should_retry(error)` returns
/// true and attempts remain; otherwise it propagates to the caller. Returns
/// fn's result on the first success.
template <typename Fn, typename ShouldRetry>
auto retry_bounded(const RetryPolicy& policy, Fn&& fn,
                   ShouldRetry&& should_retry, RetryStats* stats = nullptr)
    -> decltype(fn()) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error& e) {
      if (attempt >= policy.max_attempts || !should_retry(e)) throw;
      if (stats != nullptr) ++stats->retried;
      detail::sleep_seconds(backoff);
      backoff *= policy.backoff_growth;
    }
  }
}

}  // namespace sckl::robust
