// Bounded retry-with-backoff for transiently failing operations.
//
// The artifact store uses this around disk reads/writes: a torn read on a
// network filesystem or a transient EMFILE is worth a couple of retries, a
// checksum mismatch is not. Retryability is decided by the caller-supplied
// predicate over the thrown sckl::Error (typically `code() == kIoTransient`);
// everything else propagates immediately. Backoff grows geometrically and is
// deliberately tiny by default — smoothing over hiccups.
//
// The distributed MC worker (serve/worker.h) stretches the same primitive
// into a reconnect loop: many attempts, a max_backoff_seconds cap so the
// geometric growth plateaus instead of overflowing, and jitter so a fleet
// of workers cut off by one coordinator restart doesn't reconnect in
// lockstep (the classic thundering-herd failure mode).
#pragma once

#include <utility>

#include "common/error.h"

namespace sckl::robust {

/// Retry budget and pacing.
struct RetryPolicy {
  int max_attempts = 3;                    // total tries, including the first
  double initial_backoff_seconds = 5e-4;   // sleep before the first retry
  double backoff_growth = 2.0;             // multiplier per further retry
  /// Cap on a single backoff sleep; 0 = uncapped. Long reconnect loops
  /// need this or the geometric growth quickly reaches hours.
  double max_backoff_seconds = 0.0;
  /// Jitter fraction in [0, 1]: each sleep is scaled by a uniform draw
  /// from [1 - jitter, 1 + jitter]. 0 = deterministic backoff.
  double jitter = 0.0;
};

/// Attempts actually retried (i.e. failures absorbed) by one retry_bounded
/// call; useful for telemetry counters.
struct RetryStats {
  int retried = 0;
};

namespace detail {
void sleep_seconds(double seconds);
/// `seconds`, scaled by a uniform draw from [1 - jitter, 1 + jitter]
/// (thread-local PRNG; jitter <= 0 returns `seconds` unchanged).
double jittered_seconds(double seconds, double jitter);
}  // namespace detail

/// Calls `fn` up to policy.max_attempts times. A thrown sckl::Error is
/// retried (after a backoff sleep) only while `should_retry(error)` returns
/// true and attempts remain; otherwise it propagates to the caller. Returns
/// fn's result on the first success.
template <typename Fn, typename ShouldRetry>
auto retry_bounded(const RetryPolicy& policy, Fn&& fn,
                   ShouldRetry&& should_retry, RetryStats* stats = nullptr)
    -> decltype(fn()) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error& e) {
      if (attempt >= policy.max_attempts || !should_retry(e)) throw;
      if (stats != nullptr) ++stats->retried;
      detail::sleep_seconds(detail::jittered_seconds(backoff, policy.jitter));
      backoff *= policy.backoff_growth;
      if (policy.max_backoff_seconds > 0.0 &&
          backoff > policy.max_backoff_seconds)
        backoff = policy.max_backoff_seconds;
    }
  }
}

}  // namespace sckl::robust
