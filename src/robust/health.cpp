#include "robust/health.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace sckl::robust {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "unknown";
}

void HealthReport::add(Severity severity, std::string check,
                       std::string message) {
  if (severity > worst_) worst_ = severity;
  findings_.push_back({severity, std::move(check), std::move(message)});
}

void HealthReport::metric(std::string name, double value) {
  metrics_.emplace_back(std::move(name), value);
}

double HealthReport::metric_value(const std::string& name) const {
  for (const auto& [metric_name, value] : metrics_)
    if (metric_name == name) return value;
  return std::nan("");
}

std::size_t HealthReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& finding : findings_)
    if (finding.severity == severity) ++n;
  return n;
}

void HealthReport::throw_if_fatal(Severity threshold) const {
  if (ok(threshold)) return;
  std::string what = "health check failed:";
  for (const auto& finding : findings_) {
    if (finding.severity < threshold) continue;
    what.append("\n  [").append(robust::to_string(finding.severity))
        .append("] ").append(finding.check).append(": ")
        .append(finding.message);
  }
  throw Error(what, ErrorCode::kHealthCheckFailed);
}

std::string HealthReport::to_string() const {
  std::string out;
  if (findings_.empty()) out = "health: ok (no findings)\n";
  for (const auto& finding : findings_) {
    out.append("[").append(robust::to_string(finding.severity)).append("] ")
        .append(finding.check).append(": ").append(finding.message)
        .append("\n");
  }
  for (const auto& [name, value] : metrics_) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-28s %.6g\n", name.c_str(), value);
    out.append(line);
  }
  return out;
}

}  // namespace sckl::robust
