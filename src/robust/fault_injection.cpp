#include "robust/fault_injection.h"

#include <cstdlib>

#include "common/error.h"
#include "obs/metrics.h"

namespace sckl::robust {

namespace {

constexpr std::array<const char*, kNumFaultSites> kSiteNames = {
    "store_read",
    "store_write",
    "lanczos_convergence",
    "cholesky_pivot",
    "store_write_pre_fsync",
    "store_write_pre_rename",
    "store_write_post_rename",
    "store_gc_mid_sweep",
    "serve_accept",
    "serve_read",
    "serve_deadline",
    "mc_lease_expire",
    "mc_ledger_write",
    "mc_worker_crash",
    "mc_rpc_transient",
    "mc_worker_stall",
    "mc_coordinator_crash",
};

std::uint64_t parse_count(std::string_view text, const char* what) {
  require(!text.empty(), std::string("FaultInjector: missing ") + what);
  std::uint64_t value = 0;
  for (char c : text) {
    require(c >= '0' && c <= '9',
            std::string("FaultInjector: ") + what +
                " must be a non-negative integer");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

const char* to_string(FaultSite site) {
  const int index = static_cast<int>(site);
  if (index < 0 || index >= kNumFaultSites) return "unknown";
  return kSiteNames[static_cast<std::size_t>(index)];
}

std::optional<FaultSite> fault_site_from_name(std::string_view name) {
  for (int i = 0; i < kNumFaultSites; ++i)
    if (name == kSiteNames[static_cast<std::size_t>(i)])
      return static_cast<FaultSite>(i);
  return std::nullopt;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("SCKL_FAULTS");
  if (env != nullptr && *env != '\0') arm(env);
}

void FaultInjector::arm(const std::string& plan) {
  std::size_t start = 0;
  while (start < plan.size()) {
    std::size_t end = plan.find(',', start);
    if (end == std::string::npos) end = plan.size();
    const std::string_view entry(plan.data() + start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    require(colon != std::string_view::npos,
            "FaultInjector: plan entry is not of the form site:count");
    const std::string_view name = entry.substr(0, colon);
    std::string_view count_text = entry.substr(colon + 1);
    const std::optional<FaultSite> site = fault_site_from_name(name);
    require(site.has_value(),
            "FaultInjector: unknown fault site '" + std::string(name) + "'");
    std::uint64_t skip = 0;
    const std::size_t at = count_text.find('@');
    if (at != std::string_view::npos) {
      skip = parse_count(count_text.substr(at + 1), "fault skip");
      count_text = count_text.substr(0, at);
    }
    arm(*site, parse_count(count_text, "fault count"), skip);
  }
}

void FaultInjector::arm(FaultSite site, std::uint64_t count,
                        std::uint64_t skip) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_[static_cast<std::size_t>(site)] = count;
  skip_[static_cast<std::size_t>(site)] = skip;
  bool any = false;
  for (std::uint64_t b : budget_) any = any || b > 0;
  armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_.fill(0);
  skip_.fill(0);
  stats_.fill(FaultSiteStats{});
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_inject(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  // Only armed sites reach this slow path (fault_injected() short-circuits
  // when disarmed), so the metric counts hits on armed sites, mirroring the
  // per-site stats_ table the tests read back.
  obs::counter("sckl.robust.faults.hits").add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_[index].hits;
  if (budget_[index] == 0) return false;
  if (skip_[index] > 0) {
    --skip_[index];
    return false;
  }
  --budget_[index];
  ++stats_[index].injected;
  obs::counter("sckl.robust.faults.injected").add(1);
  if (budget_[index] == 0) {
    bool any = false;
    for (std::uint64_t b : budget_) any = any || b > 0;
    armed_.store(any, std::memory_order_relaxed);
  }
  return true;
}

void crash_point(FaultSite site) {
  if (fault_injected(site)) std::_Exit(kCrashExitCode);
}

FaultSiteStats FaultInjector::stats(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[static_cast<std::size_t>(site)];
}

}  // namespace sckl::robust
