// Severity-graded health reporting for numerical results.
//
// A HealthReport collects the findings of a validator pass (e.g.
// core::validate_kle: eigen-residual norms, orthonormality drift, NaN scans,
// clamp accounting) as (severity, check, message) triples plus named numeric
// metrics. Callers choose the policy: print the report, count findings, or
// call throw_if_fatal() for strict mode — the validator itself never throws,
// so degraded-but-usable results stay usable.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sckl::robust {

/// Finding severity, ordered: higher values are worse.
enum class Severity : int {
  kInfo = 0,   // normal, recorded for telemetry (e.g. tiny clamped tail)
  kWarning,    // degraded but usable (residual above tolerance, fallback hit)
  kError,      // result is suspect; strict pipelines should stop
  kFatal,      // result is unusable (NaN/Inf, structural violation)
};

const char* to_string(Severity severity);

/// One validator finding.
struct HealthFinding {
  Severity severity = Severity::kInfo;
  std::string check;    // short check id, e.g. "eigen_residual"
  std::string message;  // human-readable detail
};

/// Accumulated findings and metrics of one validation pass.
class HealthReport {
 public:
  void add(Severity severity, std::string check, std::string message);

  /// Records a named numeric measurement (e.g. "max_eigen_residual").
  void metric(std::string name, double value);

  const std::vector<HealthFinding>& findings() const { return findings_; }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

  /// Value of a recorded metric; NaN when absent.
  double metric_value(const std::string& name) const;

  /// Worst severity seen; kInfo for an empty report.
  Severity worst() const { return worst_; }

  /// Number of findings at exactly `severity`.
  std::size_t count(Severity severity) const;

  /// True when no finding reaches `threshold`.
  bool ok(Severity threshold = Severity::kError) const {
    return worst_ < threshold;
  }

  /// Strict mode: throws sckl::Error (code kHealthCheckFailed) listing every
  /// finding at or above `threshold`; no-op when the report is clean.
  void throw_if_fatal(Severity threshold = Severity::kError) const;

  /// Multi-line rendering: one line per finding, then one per metric.
  std::string to_string() const;

 private:
  std::vector<HealthFinding> findings_;
  std::vector<std::pair<std::string, double>> metrics_;
  Severity worst_ = Severity::kInfo;
};

}  // namespace sckl::robust
