#include "robust/retry.h"

#include <chrono>
#include <thread>

namespace sckl::robust::detail {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace sckl::robust::detail
