#include "robust/retry.h"

#include <chrono>
#include <random>
#include <thread>

namespace sckl::robust::detail {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double jittered_seconds(double seconds, double jitter) {
  if (jitter <= 0.0 || seconds <= 0.0) return seconds;
  if (jitter > 1.0) jitter = 1.0;
  // Pacing only — never touches sampled statistics, so a nondeterministic
  // seed is fine here (and is the point: de-synchronize the fleet).
  thread_local std::minstd_rand rng(std::random_device{}());
  std::uniform_real_distribution<double> scale(1.0 - jitter, 1.0 + jitter);
  return seconds * scale(rng);
}

}  // namespace sckl::robust::detail
