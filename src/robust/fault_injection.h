// Deterministic, site-keyed fault injection for resilience testing.
//
// The paper promises a *robust* numerical KLE method; this repo backs that up
// by making every degraded path testable on demand. A small set of named
// injection sites is compiled into the numerically fragile spots of the
// pipeline (store disk I/O, Lanczos convergence, Cholesky pivots). Each site
// is disarmed by default and costs exactly one relaxed atomic load on the hot
// path — zero observable overhead until someone arms a fault plan.
//
// Arming is deterministic and counted, never random: a plan like
//
//   SCKL_FAULTS="store_read:2,lanczos_convergence:1"   (environment)
//   FaultInjector::instance().arm("cholesky_pivot:3")  (API)
//
// makes the named site fail on its next N hits, then behave normally again.
// Tests arm a plan, drive the pipeline, and assert both the recovered result
// and the recorded telemetry (hits vs injected counts per site). The
// environment variable is read once, on first use, so whole test binaries or
// CLI runs can be executed with faults armed (the CI fault-injection job does
// exactly that).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace sckl::robust {

/// A compiled-in point in the pipeline where a deterministic fault can be
/// injected. Keep to_string()/fault_site_from_name() in sync when extending.
///
/// The store_write_pre_fsync .. store_gc_mid_sweep entries are *crash
/// points*, not error injections: when armed (via crash_point() below) they
/// terminate the process with _Exit, simulating a `kill -9` at the worst
/// possible instants of the artifact store's publish/sweep protocols. The
/// kill-loop harness (tests/kill_loop_harness.cpp) arms them in child
/// processes and asserts the crash-consistency invariant after each kill.
enum class FaultSite : int {
  kStoreRead = 0,          // artifact read fails with a transient I/O error
  kStoreWrite,             // artifact write/publish fails transiently
  kLanczosConvergence,     // Lanczos reports non-convergence (kNoConvergence)
  kCholeskyPivot,          // Cholesky reports a non-positive pivot
  kStoreWritePreFsync,     // crash: tmp bytes written, not yet fsync'd
  kStoreWritePreRename,    // crash: tmp durable, rename not yet issued
  kStoreWritePostRename,   // crash: renamed, directory not yet fsync'd
  kStoreGcMidSweep,        // crash: gc/fsck halfway through its delete list
  kServeAccept,            // serve: accept loop drops an incoming connection
  kServeRead,              // serve: reading a request frame fails transiently
  kServeDeadline,          // serve: request deadline treated as already past
  kMcLeaseExpire,          // mc: a claimed block lease reports as expired
  kMcLedgerWrite,          // crash: mid ledger append (torn tail record)
  kMcWorkerCrash,          // crash: MC worker dies at a block boundary
  kMcRpcTransient,         // dist mc: a worker RPC fails transiently
  kMcWorkerStall,          // dist mc: worker wedges past its lease TTL
                           //   without heartbeating (lease gets reclaimed)
  kMcCoordinatorCrash,     // crash: coordinator dies right after a durable
                           //   lease commit, before anyone learns of it
};
inline constexpr int kNumFaultSites = 17;

/// Exit status of a process killed by an armed crash point; the kill-loop
/// harness asserts it to distinguish an intended crash from a real failure.
inline constexpr int kCrashExitCode = 86;

/// Stable lowercase site name ("store_read", "lanczos_convergence", ...).
const char* to_string(FaultSite site);

/// Inverse of to_string(); nullopt for unknown names.
std::optional<FaultSite> fault_site_from_name(std::string_view name);

/// Per-site telemetry: how often the site was consulted while armed, and how
/// many of those consultations injected a failure.
struct FaultSiteStats {
  std::uint64_t hits = 0;
  std::uint64_t injected = 0;
};

/// Process-wide deterministic fault injector. Thread-safe; the disarmed fast
/// path is a single relaxed atomic load.
class FaultInjector {
 public:
  /// The process singleton. On first call, arms from the SCKL_FAULTS
  /// environment variable when it is set and non-empty.
  static FaultInjector& instance();

  /// Arms the sites named in `plan`, a comma-separated list of
  /// "site:count" entries (count > 0 = fail the next `count` hits). An
  /// entry may carry a skip suffix, "site:count@skip": the site behaves
  /// normally for its first `skip` hits, then fails the next `count` — how
  /// the kill-loop harness marches a crash point through a run, killing at
  /// the k-th block instead of always the first. Throws sckl::Error on a
  /// malformed plan or unknown site name.
  void arm(const std::string& plan);

  /// Arms one site to fail `count` hits after ignoring its first `skip`.
  void arm(FaultSite site, std::uint64_t count, std::uint64_t skip = 0);

  /// Clears every pending fault and all telemetry counters.
  void disarm();

  /// True when any site still has a pending fault budget.
  bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Consults `site`: returns true (and consumes one unit of its budget)
  /// when a fault must be injected now. Counts the hit either way.
  bool should_inject(FaultSite site);

  FaultSiteStats stats(FaultSite site) const;

 private:
  FaultInjector();

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::array<std::uint64_t, kNumFaultSites> budget_{};
  std::array<std::uint64_t, kNumFaultSites> skip_{};
  std::array<FaultSiteStats, kNumFaultSites> stats_{};
};

/// The one-line site check used at injection points:
///   if (robust::fault_injected(robust::FaultSite::kStoreRead)) throw ...;
/// Compiles to a relaxed atomic load when no plan is armed.
inline bool fault_injected(FaultSite site) {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.armed()) return false;
  return injector.should_inject(site);
}

/// Crash-injection check for the kill-9 simulation sites: terminates the
/// process immediately (no atexit handlers, no stream flush — exactly like a
/// kill) when `site` is armed. Disarmed cost is the same single relaxed
/// atomic load as fault_injected(). Never returns true-and-continues: a
/// crash point either kills the process or does nothing.
void crash_point(FaultSite site);

/// RAII fault plan for tests: arms on construction, disarms (and clears
/// telemetry) on destruction so plans never leak across test cases.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& plan) {
    FaultInjector::instance().disarm();
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace sckl::robust
