// Hierarchical RAII trace spans with wall + CPU time.
//
// A Span measures one phase of work. Spans nest: each thread keeps a stack of
// open spans, and a new Span parents itself under the innermost open span on
// the *same* thread. Cross-thread parenting (e.g. thread-pool workers that
// logically run "inside" the dispatching span) is explicit: the dispatcher
// captures `Span::current_id()` before handing work out, and each worker
// constructs its root span with that id as parent. This keeps sckl_common
// free of any obs dependency — the pool never touches the tracer; call sites
// thread the parent id through their own closures.
//
// Overhead policy: tracing is off by default. Every Span constructor starts
// with a single relaxed atomic load; when tracing is disabled that load is
// the whole cost — no clock reads, no allocation, no locks. Span names must
// be string literals (const char*), so even enabled spans never copy or
// allocate for the name. Finished spans are appended to a per-thread shard
// (amortised vector push under a shard-local mutex that is only ever
// contended by snapshot()); there is no global lock on the hot path.
//
// Enable with `SCKL_TRACE=1` in the environment, `--trace` on any binary
// that takes experiment flags, or programmatically via trace_enable().
#pragma once

#include <cstdint>
#include <vector>

namespace sckl::obs {

/// One finished span, as reported by trace_snapshot().
struct SpanRecord {
  std::uint64_t id = 0;      ///< Unique, process-wide, never 0 for a real span.
  std::uint64_t parent = 0;  ///< 0 = root.
  const char* name = "";     ///< String literal supplied by the call site.
  std::uint32_t thread = 0;  ///< Sequential tracer thread index (0 = first seen).
  std::int64_t start_ns = 0; ///< Wall-clock start, ns since trace_reset()/enable.
  std::int64_t wall_ns = 0;  ///< Wall-clock duration.
  std::int64_t cpu_ns = 0;   ///< Thread CPU time consumed between ctor and dtor.
  std::uint64_t tag = 0;     ///< Caller-defined correlation id (0 = untagged);
                             ///< the serve daemon stamps the request id here.
};

/// Turns span collection on or off. Enabling does not clear prior records;
/// call trace_reset() for a fresh session. Safe to call from any thread.
void trace_enable(bool on);

/// True when spans are being collected. Single relaxed atomic load.
bool trace_enabled();

/// True if the SCKL_TRACE environment variable requests tracing ("1", "true",
/// "on", case-insensitive; "0"/"false"/"off"/unset mean no).
bool trace_env_requested();

/// Drops all recorded spans and restarts the epoch clock at zero.
void trace_reset();

/// Folds every thread's shard into one list. Spans still open are not
/// included. Safe to call while other threads keep recording.
std::vector<SpanRecord> trace_snapshot();

/// RAII span. Construct to open, destroy to close. The name pointer is
/// stored, not copied: pass string literals only.
class Span {
 public:
  /// Opens a span parented under this thread's innermost open span.
  explicit Span(const char* name);

  /// Opens a span with an explicit parent (use Span::current_id() captured on
  /// another thread to stitch worker spans under a dispatching span).
  Span(const char* name, std::uint64_t parent_id);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Id of this span; 0 when tracing was disabled at construction.
  std::uint64_t id() const { return id_; }

  /// Attaches a numeric correlation id recorded with the span (e.g. the
  /// serve request id, so spans from one request can be grepped out of a
  /// trace). No-op overhead when tracing is disabled.
  void set_tag(std::uint64_t tag) { tag_ = tag; }

  /// Innermost open span id on the calling thread (0 if none / disabled).
  static std::uint64_t current_id();

 private:
  void open(const char* name, std::uint64_t parent_id);

  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t tag_ = 0;
  const char* name_ = "";
  std::int64_t start_wall_ns_ = 0;
  std::int64_t start_cpu_ns_ = 0;
};

}  // namespace sckl::obs
