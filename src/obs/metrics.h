// Process-wide metrics registry: counters, gauges, log2-bucket histograms.
//
// Naming convention: `sckl.<module>.<name>` (e.g. sckl.store.cache.hits,
// sckl.linalg.lanczos.matvecs). Metrics are always on — unlike spans they
// are cheap enough to leave armed — but exporters only print them when a
// trace session is active, so quiet binaries stay quiet.
//
// Fast path: Counter::add hashes the calling thread onto one of a fixed set
// of cache-line-padded atomic shards and does a single relaxed fetch_add; no
// locks, no false sharing between pool workers. value() folds the shards.
// Gauges are one relaxed atomic. Histograms bucket by log2(value) with a
// relaxed fetch_add per record, plus CAS-maintained sum/min/max.
//
// Handle lookup (counter("...")) takes a registry mutex; call sites on hot
// paths cache the handle in a function-local static so the name is resolved
// once per process.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sckl::obs {

/// Monotonic counter with per-thread-sharded storage.
class Counter {
 public:
  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;  ///< Folds all shards. Racy-but-atomic reads.

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Summary of a histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Upper-bound estimate of the p-quantile from the log2 buckets.
  double quantile(double p) const;
  /// Bucket 0 holds v <= 0; bucket i >= 1 holds v in (2^(i-2), 2^(i-1)]
  /// (values below 0.5 clamp into bucket 1, huge values into bucket 63).
  std::uint64_t buckets[64] = {0};
};

/// Log2-bucketed histogram for non-negative samples (latencies, sizes).
class Histogram {
 public:
  void record(double v);
  HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[64] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bits, CAS-accumulated
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;

 public:
  Histogram();
};

/// Returns the process-wide metric with this name, creating it on first use.
/// Pointers are stable for the life of the process — cache them in
/// function-local statics on hot paths.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// One row of metrics_snapshot().
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;        ///< counter value, or histogram count
  double value = 0.0;             ///< gauge value, or histogram mean
  HistogramSnapshot histogram{};  ///< populated for kHistogram only
};

/// All registered metrics, sorted by name.
std::vector<MetricRow> metrics_snapshot();

/// Resets every registered metric to zero (for tests and bench sessions).
void metrics_reset();

/// Pre-registers the standard metric names used across the pipeline so
/// exports always show the full vocabulary (zero-valued when untouched) —
/// e.g. a run that never consults the store still reports
/// sckl.store.cache.hits = 0 rather than omitting the row.
void register_standard_metrics();

}  // namespace sckl::obs
