// The one wall-clock timing primitive of the codebase.
//
// Formerly common/stopwatch.h; it lives in the observability library now so
// raw duration measurement and trace spans (obs/trace.h, which is built on
// exactly this clock) cannot drift apart. Use a Span when the measurement
// should appear in the trace tree; use a Stopwatch when the caller only
// needs a number (result fields like McSstaResult::sampling_seconds).
// Monotonic (steady_clock) so results are immune to NTP jumps.
#pragma once

#include <chrono>

namespace sckl::obs {

/// Simple monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sckl::obs
