// Exporters for the trace/metrics subsystem, plus the TraceSession RAII
// helper that binaries use to turn flags/env into a complete session.
//
// Two output forms, both over the same snapshot:
//  - write_text_report: indented span tree (wall ms, CPU ms, % of root) and
//    a metrics table, meant for a human on stderr;
//  - write_trace_json: stable machine-readable schema "sckl-trace-v1":
//      {
//        "schema": "sckl-trace-v1",
//        "spans":   [{"id","parent","name","thread",
//                     "start_ns","wall_ns","cpu_ns","tag"} ...],
//        "metrics": [{"name","kind","count","value",          (all kinds)
//                     "sum","min","max","p50","p99"} ...]     (histograms)
//      }
//    Benches merge this object into their BENCH_*.json payloads.
#pragma once

#include <cstdio>
#include <string>

namespace sckl::obs {

/// Prints the span tree and metrics table for the current snapshot.
void write_text_report(std::FILE* out);

/// Serializes the current snapshot as sckl-trace-v1 JSON. Returns false (and
/// prints a warning to stderr) if the file cannot be written.
bool write_trace_json(const std::string& path);

/// Returns the sckl-trace-v1 JSON document as a string (exact bytes
/// write_trace_json would produce) — used by benches to splice trace data
/// into their own JSON output, and by tests for round-trip checks.
std::string trace_json_string();

/// Returns just the metrics portion of the snapshot as a JSON array
/// ("[{...}, ...]", "[]" when empty) — the same objects trace_json_string
/// places under "metrics". The serve daemon's Stats reply embeds this so
/// remote clients see the identical schema the local exporters produce.
std::string metrics_json_array();

/// RAII session: arms tracing at construction if requested, and at
/// destruction emits the stderr report and optional JSON file.
///
/// Tracing activates when any of these holds:
///   - `enable_flag` is true (a binary's --trace flag),
///   - `json_path` is non-empty (--trace-json=PATH implies tracing),
///   - the SCKL_TRACE environment variable requests it.
/// When inactive the session does nothing at all.
class TraceSession {
 public:
  TraceSession(bool enable_flag, std::string json_path);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::string json_path_;
};

}  // namespace sckl::obs
