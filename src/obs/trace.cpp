#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define SCKL_OBS_HAS_THREAD_CPUTIME 1
#endif

namespace sckl::obs {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t thread_cpu_ns() {
#ifdef SCKL_OBS_HAS_THREAD_CPUTIME
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return 0;
}

// Per-thread list of finished spans. Each shard has its own mutex so the
// owning thread's appends never contend with anything except a concurrent
// snapshot; there is no global lock on the span close path. Shards are
// heap-allocated and owned by the registry so records survive thread exit.
struct Shard {
  std::mutex mu;
  std::vector<SpanRecord> records;
  std::uint32_t thread_index = 0;
};

struct Registry {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next_span_id{1};
  std::atomic<std::uint32_t> next_thread_index{0};
  SteadyClock::time_point epoch = SteadyClock::now();
  std::mutex mu;  // guards `shards` (the list itself) and `epoch`.
  std::vector<std::unique_ptr<Shard>> shards;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

Shard& local_shard() {
  thread_local Shard* shard = [] {
    auto owned = std::make_unique<Shard>();
    Shard* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    raw->thread_index = r.next_thread_index.fetch_add(1, std::memory_order_relaxed);
    r.shards.push_back(std::move(owned));
    return raw;
  }();
  return *shard;
}

// Innermost-open-span stack. Fixed capacity: deeper nesting than this keeps
// timing correctly but parents further children under the 64th ancestor.
struct SpanStack {
  std::uint64_t ids[64];
  int depth = 0;
};

SpanStack& local_stack() {
  thread_local SpanStack stack;
  return stack;
}

std::int64_t now_wall_ns() {
  Registry& r = registry();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                              r.epoch)
      .count();
}

}  // namespace

void trace_enable(bool on) {
  registry().enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

bool trace_env_requested() {
  const char* v = std::getenv("SCKL_TRACE");
  if (v == nullptr || *v == '\0') return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return !(s == "0" || s == "false" || s == "off" || s == "no");
}

void trace_reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->records.clear();
  }
  r.epoch = SteadyClock::now();
}

std::vector<SpanRecord> trace_snapshot() {
  Registry& r = registry();
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    out.insert(out.end(), shard->records.begin(), shard->records.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

Span::Span(const char* name) {
  if (!trace_enabled()) return;
  SpanStack& stack = local_stack();
  std::uint64_t parent = stack.depth > 0 ? stack.ids[stack.depth - 1] : 0;
  open(name, parent);
}

Span::Span(const char* name, std::uint64_t parent_id) {
  if (!trace_enabled()) return;
  open(name, parent_id);
}

void Span::open(const char* name, std::uint64_t parent_id) {
  Registry& r = registry();
  id_ = r.next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = parent_id;
  name_ = name;
  SpanStack& stack = local_stack();
  if (stack.depth < 64) stack.ids[stack.depth] = id_;
  ++stack.depth;
  start_wall_ns_ = now_wall_ns();
  start_cpu_ns_ = thread_cpu_ns();
}

Span::~Span() {
  if (id_ == 0) return;
  SpanRecord rec;
  rec.id = id_;
  rec.parent = parent_;
  rec.name = name_;
  rec.tag = tag_;
  rec.wall_ns = now_wall_ns() - start_wall_ns_;
  rec.cpu_ns = thread_cpu_ns() - start_cpu_ns_;
  rec.start_ns = start_wall_ns_;
  SpanStack& stack = local_stack();
  if (stack.depth > 0) --stack.depth;
  Shard& shard = local_shard();
  rec.thread = shard.thread_index;
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.records.push_back(rec);
}

std::uint64_t Span::current_id() {
  if (!trace_enabled()) return 0;
  SpanStack& stack = local_stack();
  int usable = std::min(stack.depth, 64);
  return usable > 0 ? stack.ids[usable - 1] : 0;
}

}  // namespace sckl::obs
