#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace sckl::obs {
namespace {

// Sequential small thread index for shard selection. Using a counter instead
// of hashing std::thread::id keeps pool workers on distinct shards.
int shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(idx % 16);
}

double bits_to_double(std::uint64_t b) { return std::bit_cast<double>(b); }
std::uint64_t double_to_bits(double d) { return std::bit_cast<std::uint64_t>(d); }

struct MetricSlot {
  MetricRow::Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, MetricSlot> slots;  // node-stable: pointers never move
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

int value_bucket(double v) {
  if (!(v > 0.0)) return 0;
  int e = static_cast<int>(std::ceil(std::log2(v)));
  return std::clamp(e + 1, 1, 63);  // bucket i holds (2^(i-2), 2^(i-1)]
}

}  // namespace

void Counter::add(std::uint64_t delta) {
  shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::set(double v) {
  bits_.store(double_to_bits(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return bits_to_double(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram()
    : min_bits_(double_to_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_to_bits(-std::numeric_limits<double>::infinity())) {}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  buckets_[value_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loops for sum/min/max; contention here is bounded by record() rate,
  // which for our call sites is per-block / per-solve, not per-element.
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(cur, double_to_bits(bits_to_double(cur) + v),
                                          std::memory_order_relaxed)) {
  }
  cur = min_bits_.load(std::memory_order_relaxed);
  while (bits_to_double(cur) > v &&
         !min_bits_.compare_exchange_weak(cur, double_to_bits(v),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (bits_to_double(cur) < v &&
         !max_bits_.compare_exchange_weak(cur, double_to_bits(v),
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = bits_to_double(sum_bits_.load(std::memory_order_relaxed));
  for (int i = 0; i < 64; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  if (out.count > 0) {
    out.min = bits_to_double(min_bits_.load(std::memory_order_relaxed));
    out.max = bits_to_double(max_bits_.load(std::memory_order_relaxed));
    out.mean = out.sum / static_cast<double>(out.count);
  }
  return out;
}

double HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (int i = 0; i < 64; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      // Upper edge of bucket i; bucket 0 is the [0, 1] catch-all (and
      // anything that rounded down), report its edge as min.
      return i == 0 ? min : std::ldexp(1.0, i - 1);
    }
  }
  return max;
}

namespace {

MetricSlot& slot_for(const std::string& name, MetricRow::Kind kind) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.slots.find(name);
  if (it == r.slots.end()) {
    MetricSlot slot;
    slot.kind = kind;
    switch (kind) {
      case MetricRow::Kind::kCounter:
        slot.counter = std::make_unique<Counter>();
        break;
      case MetricRow::Kind::kGauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case MetricRow::Kind::kHistogram:
        slot.histogram = std::make_unique<Histogram>();
        break;
    }
    it = r.slots.emplace(name, std::move(slot)).first;
  }
  return it->second;
}

}  // namespace

Counter& counter(const std::string& name) {
  return *slot_for(name, MetricRow::Kind::kCounter).counter;
}

Gauge& gauge(const std::string& name) {
  return *slot_for(name, MetricRow::Kind::kGauge).gauge;
}

Histogram& histogram(const std::string& name) {
  return *slot_for(name, MetricRow::Kind::kHistogram).histogram;
}

std::vector<MetricRow> metrics_snapshot() {
  MetricsRegistry& r = metrics_registry();
  std::vector<MetricRow> out;
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& [name, slot] : r.slots) {
    MetricRow row;
    row.name = name;
    row.kind = slot.kind;
    switch (slot.kind) {
      case MetricRow::Kind::kCounter:
        row.count = slot.counter->value();
        row.value = static_cast<double>(row.count);
        break;
      case MetricRow::Kind::kGauge:
        row.value = slot.gauge->value();
        break;
      case MetricRow::Kind::kHistogram:
        row.histogram = slot.histogram->snapshot();
        row.count = row.histogram.count;
        row.value = row.histogram.mean;
        break;
    }
    out.push_back(std::move(row));
  }
  return out;
}

void metrics_reset() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, slot] : r.slots) {
    switch (slot.kind) {
      case MetricRow::Kind::kCounter:
        slot.counter = std::make_unique<Counter>();
        break;
      case MetricRow::Kind::kGauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case MetricRow::Kind::kHistogram:
        slot.histogram = std::make_unique<Histogram>();
        break;
    }
  }
}

void register_standard_metrics() {
  // Solver layer.
  counter("sckl.core.kle_solves");
  counter("sckl.core.kle_fallbacks");
  counter("sckl.core.kle_matfree_solves");
  counter("sckl.core.kle_matfree_fallbacks");
  counter("sckl.core.clamped_eigenvalues");
  counter("sckl.core.matfree.exact_matvecs");
  counter("sckl.linalg.hmat.builds");
  counter("sckl.linalg.hmat.matvecs");
  counter("sckl.linalg.hmat.lowrank_blocks");
  counter("sckl.linalg.hmat.dense_blocks");
  counter("sckl.linalg.hmat.compressed_bytes");
  counter("sckl.linalg.hmat.rank_cap_hits");
  counter("sckl.linalg.hmat.aca_restarts");
  counter("sckl.linalg.lanczos.solves");
  counter("sckl.linalg.lanczos.iterations");
  counter("sckl.linalg.lanczos.matvecs");
  counter("sckl.linalg.lanczos.restarts");
  counter("sckl.linalg.dense_eigen.solves");
  counter("sckl.linalg.cholesky.factorizations");
  counter("sckl.linalg.cholesky.jitter_retries");
  counter("sckl.mesh.refine.meshes");
  gauge("sckl.mesh.refine.triangles");
  // Store layer.
  counter("sckl.store.cache.hits");
  counter("sckl.store.cache.misses");
  counter("sckl.store.fetch.memory");
  counter("sckl.store.fetch.disk");
  counter("sckl.store.fetch.solved");
  counter("sckl.store.read_retries");
  counter("sckl.store.write_retries");
  counter("sckl.store.failed_reads");
  counter("sckl.store.failed_writes");
  counter("sckl.store.quarantined");
  counter("sckl.store.deduped_solves");
  counter("sckl.store.fsck.runs");
  counter("sckl.store.gc.removed");
  // Sampling + MC layer.
  counter("sckl.field.samples.kle");
  counter("sckl.field.samples.cholesky");
  counter("sckl.ssta.mc.runs");
  counter("sckl.ssta.mc.blocks");
  histogram("sckl.ssta.mc.steal_ns");
  histogram("sckl.ssta.mc.worker_busy_us");
  // Checkpointed MC (durable run ledger + lease coordinator).
  counter("sckl.ssta.mc.checkpointed_runs");
  counter("sckl.ssta.mc.ledger_appends");
  counter("sckl.ssta.mc.leases_claimed");
  counter("sckl.ssta.mc.leases_expired");
  counter("sckl.ssta.mc.leases_recomputed");
  counter("sckl.ssta.mc.leases_resumed");
  // Fault injection.
  counter("sckl.robust.faults.hits");
  counter("sckl.robust.faults.injected");
  // Serve layer.
  counter("sckl.serve.requests");
  counter("sckl.serve.replies.ok");
  counter("sckl.serve.replies.error");
  counter("sckl.serve.rejected.overloaded");
  counter("sckl.serve.rejected.deadline");
  counter("sckl.serve.rejected.protocol");
  counter("sckl.serve.rejected.row_limit");
  counter("sckl.serve.rejected.reply_bytes");
  counter("sckl.serve.connections");
  counter("sckl.serve.connections_reaped");
  counter("sckl.serve.batches");
  counter("sckl.serve.batched_requests");
  counter("sckl.serve.sampler_cache.hits");
  counter("sckl.serve.sampler_cache.misses");
  gauge("sckl.serve.queue_depth");
  histogram("sckl.serve.request_us");
}

}  // namespace sckl::obs
