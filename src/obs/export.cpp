#include "obs/export.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::obs {
namespace {

struct TreeNode {
  const SpanRecord* rec = nullptr;
  std::vector<int> children;  // indices into the node array
};

// Builds a forest over the snapshot. Spans whose parent was never closed (or
// belongs to a previous session) are treated as roots rather than dropped.
std::vector<int> build_tree(const std::vector<SpanRecord>& spans,
                            std::vector<TreeNode>& nodes) {
  nodes.resize(spans.size());
  std::map<std::uint64_t, int> by_id;
  for (size_t i = 0; i < spans.size(); ++i) {
    nodes[i].rec = &spans[i];
    by_id[spans[i].id] = static_cast<int>(i);
  }
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    auto it = by_id.find(spans[i].parent);
    if (spans[i].parent != 0 && it != by_id.end()) {
      nodes[it->second].children.push_back(static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  auto by_start = [&](int a, int b) {
    return nodes[a].rec->start_ns < nodes[b].rec->start_ns;
  };
  for (TreeNode& n : nodes) std::sort(n.children.begin(), n.children.end(), by_start);
  std::sort(roots.begin(), roots.end(), by_start);
  return roots;
}

void print_node(std::FILE* out, const std::vector<TreeNode>& nodes, int idx,
                int depth, double root_wall_ns) {
  const SpanRecord& r = *nodes[idx].rec;
  double pct = root_wall_ns > 0 ? 100.0 * static_cast<double>(r.wall_ns) / root_wall_ns
                                : 0.0;
  std::fprintf(out, "  %*s%-*s %10.3f ms  cpu %10.3f ms  %5.1f%%  [t%u]\n", depth * 2,
               "", std::max(1, 36 - depth * 2), r.name,
               static_cast<double>(r.wall_ns) / 1e6,
               static_cast<double>(r.cpu_ns) / 1e6, pct, r.thread);
  for (int child : nodes[idx].children) {
    print_node(out, nodes, child, depth + 1, root_wall_ns);
  }
}

void append_json_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", *p);
          out += buf;
        } else {
          out += *p;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void write_text_report(std::FILE* out) {
  const std::vector<SpanRecord> spans = trace_snapshot();
  std::fprintf(out, "\n== sckl trace report ==\n");
  if (spans.empty()) {
    std::fprintf(out, "  (no spans recorded)\n");
  } else {
    std::vector<TreeNode> nodes;
    const std::vector<int> roots = build_tree(spans, nodes);
    for (int root : roots) {
      print_node(out, nodes, root, 0,
                 static_cast<double>(nodes[root].rec->wall_ns));
    }
  }
  std::fprintf(out, "\n== sckl metrics ==\n");
  for (const MetricRow& row : metrics_snapshot()) {
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
        std::fprintf(out, "  %-40s %12" PRIu64 "\n", row.name.c_str(), row.count);
        break;
      case MetricRow::Kind::kGauge:
        std::fprintf(out, "  %-40s %12.3f\n", row.name.c_str(), row.value);
        break;
      case MetricRow::Kind::kHistogram:
        std::fprintf(out,
                     "  %-40s n=%-8" PRIu64 " mean=%.3g min=%.3g max=%.3g "
                     "p50<=%.3g p99<=%.3g\n",
                     row.name.c_str(), row.histogram.count, row.histogram.mean,
                     row.histogram.min, row.histogram.max,
                     row.histogram.quantile(0.5), row.histogram.quantile(0.99));
        break;
    }
  }
  std::fflush(out);
}

std::string trace_json_string() {
  const std::vector<SpanRecord> spans = trace_snapshot();
  std::string out;
  out.reserve(4096 + spans.size() * 128);
  out += "{\n  \"schema\": \"sckl-trace-v1\",\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& r = spans[i];
    out += i == 0 ? "\n" : ",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"id\": %" PRIu64 ", \"parent\": %" PRIu64
                  ", \"name\": \"",
                  r.id, r.parent);
    out += buf;
    append_json_escaped(out, r.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"thread\": %u, \"start_ns\": %" PRId64
                  ", \"wall_ns\": %" PRId64 ", \"cpu_ns\": %" PRId64
                  ", \"tag\": %" PRIu64 "}",
                  r.thread, r.start_ns, r.wall_ns, r.cpu_ns, r.tag);
    out += buf;
  }
  out += spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": ";
  out += metrics_json_array();
  out += "\n}\n";
  return out;
}

std::string metrics_json_array() {
  const std::vector<MetricRow> rows = metrics_snapshot();
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const MetricRow& row = rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_json_escaped(out, row.name.c_str());
    out += "\", \"kind\": \"";
    switch (row.kind) {
      case MetricRow::Kind::kCounter: out += "counter"; break;
      case MetricRow::Kind::kGauge: out += "gauge"; break;
      case MetricRow::Kind::kHistogram: out += "histogram"; break;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "\", \"count\": %" PRIu64 ", \"value\": ",
                  row.count);
    out += buf;
    append_double(out, row.value);
    if (row.kind == MetricRow::Kind::kHistogram) {
      out += ", \"sum\": ";
      append_double(out, row.histogram.sum);
      out += ", \"min\": ";
      append_double(out, row.histogram.min);
      out += ", \"max\": ";
      append_double(out, row.histogram.max);
      out += ", \"p50\": ";
      append_double(out, row.histogram.quantile(0.5));
      out += ", \"p99\": ";
      append_double(out, row.histogram.quantile(0.99));
    }
    out += "}";
  }
  out += rows.empty() ? "]" : "\n  ]";
  return out;
}

bool write_trace_json(const std::string& path) {
  const std::string doc = trace_json_string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  }
  return ok;
}

TraceSession::TraceSession(bool enable_flag, std::string json_path)
    : json_path_(std::move(json_path)) {
  active_ = enable_flag || !json_path_.empty() || trace_env_requested();
  if (!active_) return;
  register_standard_metrics();
  trace_reset();
  trace_enable(true);
}

TraceSession::~TraceSession() {
  if (!active_) return;
  trace_enable(false);
  write_text_report(stderr);
  if (!json_path_.empty()) {
    write_trace_json(json_path_);
  }
}

}  // namespace sckl::obs
