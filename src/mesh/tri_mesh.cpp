#include "mesh/tri_mesh.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"

namespace sckl::mesh {

TriMesh::TriMesh(std::vector<geometry::Point2> vertices,
                 std::vector<TriangleIndices> triangles)
    : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {
  require(!vertices_.empty(), "TriMesh: no vertices");
  require(!triangles_.empty(), "TriMesh: no triangles");
  areas_.reserve(triangles_.size());
  centroids_.reserve(triangles_.size());
  for (auto& tri : triangles_) {
    for (std::size_t v : tri)
      require(v < vertices_.size(), "TriMesh: vertex index out of range");
    const double twice_signed =
        geometry::orientation(vertices_[tri[0]], vertices_[tri[1]],
                              vertices_[tri[2]]);
    require(std::abs(twice_signed) > 1e-300, "TriMesh: degenerate triangle");
    if (twice_signed < 0.0) std::swap(tri[1], tri[2]);
    areas_.push_back(0.5 * std::abs(twice_signed));
    centroids_.push_back(
        {(vertices_[tri[0]].x + vertices_[tri[1]].x + vertices_[tri[2]].x) /
             3.0,
         (vertices_[tri[0]].y + vertices_[tri[1]].y + vertices_[tri[2]].y) /
             3.0});
  }
}

geometry::Triangle TriMesh::triangle(std::size_t t) const {
  require(t < triangles_.size(), "TriMesh::triangle: index out of range");
  const auto& idx = triangles_[t];
  return geometry::Triangle{
      {vertices_[idx[0]], vertices_[idx[1]], vertices_[idx[2]]}};
}

std::vector<geometry::Triangle> TriMesh::to_triangles() const {
  std::vector<geometry::Triangle> out;
  out.reserve(triangles_.size());
  for (std::size_t t = 0; t < triangles_.size(); ++t)
    out.push_back(triangle(t));
  return out;
}

geometry::BoundingBox TriMesh::bounds() const {
  geometry::BoundingBox box{
      {std::numeric_limits<double>::infinity(),
       std::numeric_limits<double>::infinity()},
      {-std::numeric_limits<double>::infinity(),
       -std::numeric_limits<double>::infinity()}};
  for (const auto& v : vertices_) {
    box.min.x = std::min(box.min.x, v.x);
    box.min.y = std::min(box.min.y, v.y);
    box.max.x = std::max(box.max.x, v.x);
    box.max.y = std::max(box.max.y, v.y);
  }
  return box;
}

MeshQuality TriMesh::quality() const {
  MeshQuality q;
  q.min_angle_degrees = 180.0;
  q.min_area = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const geometry::Triangle tri = triangle(t);
    q.min_angle_degrees =
        std::min(q.min_angle_degrees, geometry::min_angle_degrees(tri));
    q.max_side = std::max(q.max_side, geometry::longest_side(tri));
    q.min_area = std::min(q.min_area, areas_[t]);
    q.max_area = std::max(q.max_area, areas_[t]);
    q.total_area += areas_[t];
  }
  return q;
}

}  // namespace sckl::mesh
