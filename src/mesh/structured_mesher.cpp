#include "mesh/structured_mesher.h"

#include <cmath>

#include "common/error.h"

namespace sckl::mesh {

TriMesh structured_mesh(geometry::BoundingBox bounds, std::size_t nx,
                        std::size_t ny, StructuredPattern pattern) {
  require(nx > 0 && ny > 0, "structured_mesh: grid must be non-empty");
  require(bounds.width() > 0.0 && bounds.height() > 0.0,
          "structured_mesh: degenerate bounds");
  const double dx = bounds.width() / static_cast<double>(nx);
  const double dy = bounds.height() / static_cast<double>(ny);

  std::vector<geometry::Point2> vertices;
  vertices.reserve((nx + 1) * (ny + 1));
  for (std::size_t j = 0; j <= ny; ++j)
    for (std::size_t i = 0; i <= nx; ++i)
      vertices.push_back({bounds.min.x + dx * static_cast<double>(i),
                          bounds.min.y + dy * static_cast<double>(j)});
  auto corner = [nx](std::size_t i, std::size_t j) {
    return j * (nx + 1) + i;
  };

  std::vector<TriMesh::TriangleIndices> triangles;
  if (pattern == StructuredPattern::kDiagonal) {
    triangles.reserve(2 * nx * ny);
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t a = corner(i, j);
        const std::size_t b = corner(i + 1, j);
        const std::size_t c = corner(i + 1, j + 1);
        const std::size_t d = corner(i, j + 1);
        // Alternate the diagonal per cell parity to avoid mesh anisotropy.
        if ((i + j) % 2 == 0) {
          triangles.push_back({a, b, c});
          triangles.push_back({a, c, d});
        } else {
          triangles.push_back({a, b, d});
          triangles.push_back({b, c, d});
        }
      }
  } else {
    triangles.reserve(4 * nx * ny);
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t a = corner(i, j);
        const std::size_t b = corner(i + 1, j);
        const std::size_t c = corner(i + 1, j + 1);
        const std::size_t d = corner(i, j + 1);
        vertices.push_back({bounds.min.x + dx * (static_cast<double>(i) + 0.5),
                            bounds.min.y +
                                dy * (static_cast<double>(j) + 0.5)});
        const std::size_t center = vertices.size() - 1;
        triangles.push_back({a, b, center});
        triangles.push_back({b, c, center});
        triangles.push_back({c, d, center});
        triangles.push_back({d, a, center});
      }
  }
  return TriMesh(std::move(vertices), std::move(triangles));
}

TriMesh structured_mesh_for_count(geometry::BoundingBox bounds,
                                  std::size_t target_triangles,
                                  StructuredPattern pattern) {
  require(target_triangles > 0, "structured_mesh_for_count: zero target");
  const double per_cell =
      pattern == StructuredPattern::kDiagonal ? 2.0 : 4.0;
  const double cells = static_cast<double>(target_triangles) / per_cell;
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(cells)));
  return structured_mesh(bounds, std::max<std::size_t>(side, 1),
                         std::max<std::size_t>(side, 1), pattern);
}

TriMesh structured_mesh_for_max_area(geometry::BoundingBox bounds,
                                     double max_area,
                                     StructuredPattern pattern) {
  require(max_area > 0.0, "structured_mesh_for_max_area: non-positive area");
  const double per_cell =
      pattern == StructuredPattern::kDiagonal ? 2.0 : 4.0;
  // Square cells of side s produce triangles of area s^2 / per_cell.
  const double cell_area = max_area * per_cell;
  const double side_length = std::sqrt(cell_area);
  const auto nx = static_cast<std::size_t>(
      std::ceil(bounds.width() / side_length));
  const auto ny = static_cast<std::size_t>(
      std::ceil(bounds.height() / side_length));
  return structured_mesh(bounds, std::max<std::size_t>(nx, 1),
                         std::max<std::size_t>(ny, 1), pattern);
}

}  // namespace sckl::mesh
