// Quality mesh generation by Delaunay refinement.
//
// Substitute for the paper's use of Shewchuk's Triangle with "minimum angle
// 28 degrees and maximum triangle area 0.1% of the chip area" (Sec. 5.2).
// Strategy: seed the rectangle boundary and a jittered interior grid at a
// spacing matched to the area budget, Delaunay-triangulate, then repeatedly
// insert Steiner points (circumcenters, falling back to centroids near the
// boundary) into the worst offending triangle until the area bound holds
// and angles are acceptable. On the paper's setup (unit die, max area
// 0.004) this lands within a few percent of the paper's n = 1546.
#pragma once

#include <cstdint>

#include "mesh/tri_mesh.h"

namespace sckl::mesh {

/// Parameters for refined_delaunay_mesh().
///
/// The angle target defaults to 15 degrees, not the paper's 28: plain
/// circumcenter (Ruppert) refinement is only guaranteed below ~20.7 degrees
/// and demonstrably diverges above it; Shewchuk's Triangle reaches 28 with
/// additional machinery. The area constraint — which is what the Galerkin
/// convergence (Theorem 2) actually depends on — is enforced strictly, and
/// the structured cross mesh (structured_mesher.h) offers an exact 45-degree
/// alternative where angle quality matters.
struct RefinementOptions {
  double max_area;                  // hard constraint on element area
  double min_angle_degrees = 15.0;  // refinement target (see note above)
  std::uint64_t seed = 1;           // interior-grid jitter seed
  int max_insertions = 200000;      // refinement budget
};

/// Generates a quality triangulation of `bounds`. The area constraint is
/// enforced strictly; the angle target is best-effort (violations can remain
/// near the boundary, as with any Steiner-only scheme). Throws only when the
/// insertion budget is exhausted before the area constraint is met.
TriMesh refined_delaunay_mesh(geometry::BoundingBox bounds,
                              const RefinementOptions& options);

/// The paper's exact mesh configuration: max area = `area_fraction` of the
/// die area (default 0.1%) on the normalized die.
TriMesh paper_mesh(geometry::BoundingBox bounds = geometry::BoundingBox::unit_die(),
                   double area_fraction = 0.001, std::uint64_t seed = 1);

}  // namespace sckl::mesh
