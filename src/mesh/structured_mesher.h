// Structured triangulations of a rectangular die.
//
// Footnote 2 of the paper notes that any meshing is usable. These meshers
// produce deterministic, provably good meshes of a rectangle:
//  - diagonal: each grid cell split along one diagonal (2 triangles/cell,
//    45 deg min angle on square cells),
//  - cross: each cell split at its center (4 triangles/cell, 45 deg min
//    angle) — this pattern reaches triangle counts close to the paper's
//    n = 1546 (a 20x20 grid gives 1600).
// They also anchor the h-convergence sweeps of Fig. 6b, since h halves
// exactly when the grid doubles.
#pragma once

#include <cstddef>

#include "mesh/tri_mesh.h"

namespace sckl::mesh {

/// Split pattern of a structured rectangular mesh.
enum class StructuredPattern {
  kDiagonal,  // 2 triangles per cell
  kCross,     // 4 triangles per cell (center vertex added)
};

/// Triangulates `bounds` with an nx x ny grid of cells.
TriMesh structured_mesh(geometry::BoundingBox bounds, std::size_t nx,
                        std::size_t ny,
                        StructuredPattern pattern = StructuredPattern::kCross);

/// Picks the square grid whose triangle count is closest to (and at least)
/// `target_triangles` and meshes it.
TriMesh structured_mesh_for_count(
    geometry::BoundingBox bounds, std::size_t target_triangles,
    StructuredPattern pattern = StructuredPattern::kCross);

/// Meshes so that every element's area is at most `max_area` (the paper's
/// "maximum triangle area 0.1% of chip area" constraint).
TriMesh structured_mesh_for_max_area(
    geometry::BoundingBox bounds, double max_area,
    StructuredPattern pattern = StructuredPattern::kCross);

}  // namespace sckl::mesh
