// Triangulation container for the Galerkin basis.
//
// The paper's basis functions are indicator functions of mesh triangles
// (eq. 17); everything the assembly needs per element — area a_i and
// centroid x_i for the midpoint quadrature of eq. 21 — is precomputed here.
// Quality statistics (min angle, max side h) let experiments verify the
// mesh meets the paper's constraints (min angle 28 deg, max area 0.1% of
// the die) and drive the h-convergence studies of Theorem 2.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/triangle.h"

namespace sckl::mesh {

/// Aggregate quality statistics of a mesh.
struct MeshQuality {
  double min_angle_degrees = 0.0;  // worst interior angle over all elements
  double max_side = 0.0;           // the `h` in Theorem 2
  double min_area = 0.0;
  double max_area = 0.0;
  double total_area = 0.0;
};

/// Immutable triangulation: shared vertices plus index triples.
class TriMesh {
 public:
  using TriangleIndices = std::array<std::size_t, 3>;

  /// Builds a mesh; triangle windings are normalized to counter-clockwise
  /// and per-element areas/centroids are precomputed. Throws on degenerate
  /// (zero-area) elements or out-of-range indices.
  TriMesh(std::vector<geometry::Point2> vertices,
          std::vector<TriangleIndices> triangles);

  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_triangles() const { return triangles_.size(); }

  const std::vector<geometry::Point2>& vertices() const { return vertices_; }
  const std::vector<TriangleIndices>& triangle_indices() const {
    return triangles_;
  }

  /// Corner points of triangle t.
  geometry::Triangle triangle(std::size_t t) const;

  /// Area a_i of triangle t (the diagonal of the Gram matrix Phi, eq. 18).
  double area(std::size_t t) const { return areas_[t]; }

  /// Centroid x_i of triangle t (the quadrature node of eq. 21).
  geometry::Point2 centroid(std::size_t t) const { return centroids_[t]; }

  const std::vector<double>& areas() const { return areas_; }
  const std::vector<geometry::Point2>& centroids() const { return centroids_; }

  /// Materializes all elements as Triangle objects (SpatialGrid input).
  std::vector<geometry::Triangle> to_triangles() const;

  /// Bounding box of all vertices.
  geometry::BoundingBox bounds() const;

  /// Quality statistics over all elements.
  MeshQuality quality() const;

 private:
  std::vector<geometry::Point2> vertices_;
  std::vector<TriangleIndices> triangles_;
  std::vector<double> areas_;
  std::vector<geometry::Point2> centroids_;
};

}  // namespace sckl::mesh
