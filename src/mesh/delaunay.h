// Incremental Delaunay triangulation (Bowyer-Watson).
//
// The paper meshes the die with Shewchuk's Triangle [24]; this is our
// self-contained substitute. Points are inserted one at a time: the "cavity"
// of triangles whose circumcircle contains the new point is removed and
// re-fanned from the point. The triangulator object stays alive across
// insertions so the refinement loop (refine.h) can add Steiner points
// incrementally.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/tri_mesh.h"

namespace sckl::mesh {

/// Incremental Bowyer-Watson triangulator over a fixed bounding box.
class DelaunayTriangulator {
 public:
  /// Prepares a 4-corner bounding frame enclosing `bounds` with moderate
  /// margin (keeps in-circle determinants well conditioned).
  explicit DelaunayTriangulator(geometry::BoundingBox bounds);

  /// Inserts a point. Points closer than `duplicate_tolerance` to an
  /// existing vertex are ignored (returns false). Points outside the
  /// original bounds are clamped onto it.
  bool insert(geometry::Point2 p);

  /// Number of real (non-frame) vertices inserted so far.
  std::size_t num_points() const { return vertices_.size() - kFrameVertices; }

  /// Extracts the triangulation of the inserted points, dropping every
  /// triangle incident to the bounding frame. Requires >= 3 points.
  TriMesh finalize() const;

  /// Minimum distance below which two points are considered duplicates.
  static constexpr double duplicate_tolerance = 1e-9;

 private:
  static constexpr std::size_t kFrameVertices = 4;

  struct Tri {
    std::size_t v[3];
  };

  geometry::Triangle corners(const Tri& t) const;

  geometry::BoundingBox bounds_;
  std::vector<geometry::Point2> vertices_;  // [0..3] are frame vertices
  std::vector<Tri> triangles_;
};

/// One-shot Delaunay triangulation of a point set over `bounds`.
TriMesh delaunay_mesh(geometry::BoundingBox bounds,
                      const std::vector<geometry::Point2>& points);

}  // namespace sckl::mesh
