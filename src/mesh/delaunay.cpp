#include "mesh/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/error.h"

namespace sckl::mesh {

DelaunayTriangulator::DelaunayTriangulator(geometry::BoundingBox bounds)
    : bounds_(bounds) {
  require(bounds.width() > 0.0 && bounds.height() > 0.0,
          "DelaunayTriangulator: degenerate bounds");
  // Bounding frame: four corners of a box a few times the domain. Keeping
  // the frame close (rather than a far-away super-triangle) keeps every
  // in-circle determinant well conditioned; all real points are strictly
  // inside the frame, so hull degeneracies never arise.
  const double margin = 2.0 * std::max(bounds.width(), bounds.height());
  const geometry::Point2 lo{bounds.min.x - margin, bounds.min.y - margin};
  const geometry::Point2 hi{bounds.max.x + margin, bounds.max.y + margin};
  vertices_.push_back({lo.x, lo.y});
  vertices_.push_back({hi.x, lo.y});
  vertices_.push_back({hi.x, hi.y});
  vertices_.push_back({lo.x, hi.y});
  triangles_.push_back(Tri{{0, 1, 2}});
  triangles_.push_back(Tri{{0, 2, 3}});
}

geometry::Triangle DelaunayTriangulator::corners(const Tri& t) const {
  return geometry::Triangle{
      {vertices_[t.v[0]], vertices_[t.v[1]], vertices_[t.v[2]]}};
}

bool DelaunayTriangulator::insert(geometry::Point2 p) {
  p.x = std::clamp(p.x, bounds_.min.x, bounds_.max.x);
  p.y = std::clamp(p.y, bounds_.min.y, bounds_.max.y);
  for (std::size_t i = kFrameVertices; i < vertices_.size(); ++i)
    if (geometry::distance(vertices_[i], p) < duplicate_tolerance)
      return false;

  // --- Robust cavity construction -----------------------------------------
  // The textbook "all triangles whose circumcircle contains p" cavity breaks
  // under floating-point noise (skinny triangles, near-cocircular points):
  // it can come out disconnected or non-star-shaped, and re-fanning it then
  // corrupts the mesh. We instead grow the cavity as an *edge-connected*
  // region from the triangle containing p, then *repair* it: any cavity
  // boundary edge that p does not see strictly from the cavity side evicts
  // its triangle. The resulting fan is a triangulation of a star polygon
  // around p, so the tiling invariant holds unconditionally.

  // Edge-adjacency of the current triangulation.
  using Edge = std::pair<std::size_t, std::size_t>;
  std::map<Edge, std::array<std::size_t, 2>> neighbors;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t containing = kNone;
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    const Tri& tri = triangles_[t];
    for (int e = 0; e < 3; ++e) {
      const std::size_t a = tri.v[e];
      const std::size_t b = tri.v[(e + 1) % 3];
      const Edge key{std::min(a, b), std::max(a, b)};
      auto [it, inserted] = neighbors.try_emplace(key,
                                                  std::array{t, kNone});
      if (!inserted) it->second[1] = t;
    }
    if (containing == kNone &&
        geometry::point_in_triangle(corners(tri), p, 1e-14))
      containing = t;
  }
  if (containing == kNone) return false;  // outside the frame: reject

  // BFS over edge neighbors passing the in-circle test.
  std::vector<bool> in_cavity(triangles_.size(), false);
  std::vector<std::size_t> queue{containing};
  in_cavity[containing] = true;
  std::vector<std::size_t> bad;
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    bad.push_back(t);
    const Tri& tri = triangles_[t];
    for (int e = 0; e < 3; ++e) {
      const std::size_t a = tri.v[e];
      const std::size_t b = tri.v[(e + 1) % 3];
      const auto& pair_of = neighbors.at({std::min(a, b), std::max(a, b)});
      const std::size_t other = pair_of[0] == t ? pair_of[1] : pair_of[0];
      if (other == kNone || in_cavity[other]) continue;
      const geometry::Triangle candidate = corners(triangles_[other]);
      if (geometry::in_circumcircle(candidate.p[0], candidate.p[1],
                                    candidate.p[2], p)) {
        in_cavity[other] = true;
        queue.push_back(other);
      }
    }
  }

  // Repair until every boundary edge sees p strictly on the cavity side.
  // Each cavity triangle's edges are oriented CCW, so the cavity lies to
  // the left of (a, b): require orientation(a, b, p) > 0.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t idx = 0; idx < bad.size(); ++idx) {
      const std::size_t t = bad[idx];
      const Tri& tri = triangles_[t];
      bool evict = false;
      for (int e = 0; e < 3 && !evict; ++e) {
        const std::size_t a = tri.v[e];
        const std::size_t b = tri.v[(e + 1) % 3];
        const auto& pair_of = neighbors.at({std::min(a, b), std::max(a, b)});
        const std::size_t other = pair_of[0] == t ? pair_of[1] : pair_of[0];
        const bool is_boundary = (other == kNone || !in_cavity[other]);
        if (is_boundary &&
            geometry::orientation(vertices_[a], vertices_[b], p) <= 0.0)
          evict = true;
      }
      if (evict && t != containing) {
        in_cavity[t] = false;
        bad[idx] = bad.back();
        bad.pop_back();
        --idx;
        changed = true;
      } else if (evict) {
        return false;  // even the containing triangle fails: degenerate p
      }
    }
  }
  // Eviction can disconnect the cavity; keep the component containing p.
  {
    std::vector<bool> kept(triangles_.size(), false);
    std::vector<std::size_t> stack{containing};
    kept[containing] = true;
    while (!stack.empty()) {
      const std::size_t t = stack.back();
      stack.pop_back();
      const Tri& tri = triangles_[t];
      for (int e = 0; e < 3; ++e) {
        const std::size_t a = tri.v[e];
        const std::size_t b = tri.v[(e + 1) % 3];
        const auto& pair_of = neighbors.at({std::min(a, b), std::max(a, b)});
        const std::size_t other = pair_of[0] == t ? pair_of[1] : pair_of[0];
        if (other != kNone && in_cavity[other] && !kept[other]) {
          kept[other] = true;
          stack.push_back(other);
        }
      }
    }
    bad.clear();
    for (std::size_t t = 0; t < triangles_.size(); ++t) {
      in_cavity[t] = kept[t];
      if (kept[t]) bad.push_back(t);
    }
  }

  // Collect boundary edges (oriented: cavity to the left) and build the fan.
  std::vector<Tri> fan;
  const std::size_t pi = vertices_.size();
  for (std::size_t t : bad) {
    const Tri& tri = triangles_[t];
    for (int e = 0; e < 3; ++e) {
      const std::size_t a = tri.v[e];
      const std::size_t b = tri.v[(e + 1) % 3];
      const auto& pair_of = neighbors.at({std::min(a, b), std::max(a, b)});
      const std::size_t other = pair_of[0] == t ? pair_of[1] : pair_of[0];
      if (other != kNone && in_cavity[other]) continue;  // interior edge
      if (geometry::orientation(vertices_[a], vertices_[b], p) <= 0.0)
        return false;  // repair fixpoint failed to certify: reject
      fan.push_back(Tri{{a, b, pi}});
    }
  }
  if (fan.empty()) return false;

  // Commit: remove cavity triangles (descending swap-remove keeps indices
  // valid) and append the fan.
  std::sort(bad.rbegin(), bad.rend());
  for (std::size_t t : bad) {
    triangles_[t] = triangles_.back();
    triangles_.pop_back();
  }
  vertices_.push_back(p);
  triangles_.insert(triangles_.end(), fan.begin(), fan.end());
  return true;
}

TriMesh DelaunayTriangulator::finalize() const {
  require(num_points() >= 3, "DelaunayTriangulator: need at least 3 points");
  std::vector<geometry::Point2> vertices(
      vertices_.begin() + kFrameVertices, vertices_.end());
  std::vector<TriMesh::TriangleIndices> triangles;
  for (const Tri& t : triangles_) {
    if (t.v[0] < kFrameVertices || t.v[1] < kFrameVertices ||
        t.v[2] < kFrameVertices)
      continue;
    triangles.push_back({t.v[0] - kFrameVertices, t.v[1] - kFrameVertices,
                         t.v[2] - kFrameVertices});
  }
  require(!triangles.empty(),
          "DelaunayTriangulator: no interior triangles (collinear input?)");
  return TriMesh(std::move(vertices), std::move(triangles));
}

TriMesh delaunay_mesh(geometry::BoundingBox bounds,
                      const std::vector<geometry::Point2>& points) {
  DelaunayTriangulator builder(bounds);
  for (const auto& p : points) builder.insert(p);
  return builder.finalize();
}

}  // namespace sckl::mesh
