#include "mesh/refine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/delaunay.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sckl::mesh {
namespace {

// Tracks the subdivision of the four rectangle sides into boundary
// segments, and implements Ruppert-style encroachment: a candidate Steiner
// point that falls inside the diametral circle of a boundary segment must
// not be inserted — the segment midpoint is inserted instead. This is what
// keeps the mesh boundary free of slivers (a point a hair inside the
// boundary would make the boundary edge numerically non-Delaunay and punch
// a hole in the finalized mesh).
class BoundaryTracker {
 public:
  explicit BoundaryTracker(geometry::BoundingBox bounds) : bounds_(bounds) {
    marks_[kBottom] = {bounds.min.x, bounds.max.x};
    marks_[kTop] = {bounds.min.x, bounds.max.x};
    marks_[kLeft] = {bounds.min.y, bounds.max.y};
    marks_[kRight] = {bounds.min.y, bounds.max.y};
  }

  /// Registers an inserted point that lies on a rectangle side.
  void register_point(geometry::Point2 p) {
    if (p.y == bounds_.min.y) marks_[kBottom].insert(p.x);
    if (p.y == bounds_.max.y) marks_[kTop].insert(p.x);
    if (p.x == bounds_.min.x) marks_[kLeft].insert(p.y);
    if (p.x == bounds_.max.x) marks_[kRight].insert(p.y);
  }

  /// If q encroaches a boundary segment, returns that segment's midpoint.
  std::optional<geometry::Point2> encroached_midpoint(
      geometry::Point2 q) const {
    for (int side = 0; side < 4; ++side) {
      const auto hit = check_side(side, q);
      if (hit.has_value()) return hit;
    }
    return std::nullopt;
  }

 private:
  enum Side { kBottom = 0, kTop = 1, kLeft = 2, kRight = 3 };

  std::optional<geometry::Point2> check_side(int side,
                                             geometry::Point2 q) const {
    // Coordinates: `along` runs along the side, `away` is the distance of
    // q from the side's supporting line.
    double along = 0.0;
    double away = 0.0;
    switch (side) {
      case kBottom:
        along = q.x;
        away = q.y - bounds_.min.y;
        break;
      case kTop:
        along = q.x;
        away = bounds_.max.y - q.y;
        break;
      case kLeft:
        along = q.y;
        away = q.x - bounds_.min.x;
        break;
      case kRight:
        along = q.y;
        away = bounds_.max.x - q.x;
        break;
    }
    const auto& marks = marks_[static_cast<std::size_t>(side)];
    // Segment containing `along` (plus its neighbors, which the diametral
    // circle of can also reach q).
    auto hi = marks.upper_bound(along);
    if (hi == marks.begin()) hi = std::next(marks.begin());
    if (hi == marks.end()) hi = std::prev(marks.end());
    auto lo = std::prev(hi);
    for (int probe = -1; probe <= 1; ++probe) {
      auto a = lo;
      auto b = hi;
      if (probe < 0) {
        if (a == marks.begin()) continue;
        b = a;
        a = std::prev(a);
      } else if (probe > 0) {
        if (std::next(b) == marks.end()) continue;
        a = b;
        b = std::next(b);
      }
      const double mid = 0.5 * (*a + *b);
      const double radius = 0.5 * (*b - *a);
      const double d_along = along - mid;
      if (d_along * d_along + away * away < radius * radius * (1.0 - 1e-12))
        return point_on_side(side, mid);
    }
    return std::nullopt;
  }

  geometry::Point2 point_on_side(int side, double along) const {
    switch (side) {
      case kBottom:
        return {along, bounds_.min.y};
      case kTop:
        return {along, bounds_.max.y};
      case kLeft:
        return {bounds_.min.x, along};
      default:
        return {bounds_.max.x, along};
    }
  }

  geometry::BoundingBox bounds_;
  std::array<std::set<double>, 4> marks_;
};

// Seeds boundary points at uniform spacing plus a jittered interior grid.
// Spacing is chosen so the initial triangles are already near the area
// budget; refinement then only needs local fixes.
void seed_points(DelaunayTriangulator& builder, BoundaryTracker& tracker,
                 geometry::BoundingBox bounds, double max_area, Rng& rng) {
  // Target edge length for triangles of area ~ max_area/1.3 (equilateral:
  // area = sqrt(3)/4 * s^2).
  const double s = std::sqrt(4.0 / std::sqrt(3.0) * max_area / 1.3);
  const auto nx = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(bounds.width() / s)));
  const auto ny = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(bounds.height() / s)));
  const double dx = bounds.width() / static_cast<double>(nx);
  const double dy = bounds.height() / static_cast<double>(ny);

  auto insert_boundary = [&](geometry::Point2 p) {
    if (builder.insert(p)) tracker.register_point(p);
  };

  // Boundary points stay exactly on the rectangle edges but their spacing
  // is jittered independently per edge: a uniform grid creates exactly
  // cocircular quadruples (symmetric pairs on parallel edges) that break
  // the strict in-circle predicate of Bowyer-Watson.
  insert_boundary({bounds.min.x, bounds.min.y});
  insert_boundary({bounds.max.x, bounds.min.y});
  insert_boundary({bounds.min.x, bounds.max.y});
  insert_boundary({bounds.max.x, bounds.max.y});
  for (std::size_t i = 1; i < nx; ++i) {
    const double t = static_cast<double>(i);
    insert_boundary(
        {bounds.min.x + dx * (t + rng.uniform(-0.2, 0.2)), bounds.min.y});
    insert_boundary(
        {bounds.min.x + dx * (t + rng.uniform(-0.2, 0.2)), bounds.max.y});
  }
  for (std::size_t j = 1; j < ny; ++j) {
    const double t = static_cast<double>(j);
    insert_boundary(
        {bounds.min.x, bounds.min.y + dy * (t + rng.uniform(-0.2, 0.2))});
    insert_boundary(
        {bounds.max.x, bounds.min.y + dy * (t + rng.uniform(-0.2, 0.2))});
  }
  // Interior: jittered grid offset by half a cell; jitter breaks the exact
  // cocircularities that degrade Bowyer-Watson. Points are kept clear of
  // the boundary by construction (half-cell offset).
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double jx = rng.uniform(-0.15, 0.15) * dx;
      const double jy = rng.uniform(-0.15, 0.15) * dy;
      builder.insert({bounds.min.x + dx * (static_cast<double>(i) + 0.5) + jx,
                      bounds.min.y + dy * (static_cast<double>(j) + 0.5) + jy});
    }
  }
}

// Inserts one Steiner point for an offending triangle, honoring boundary
// encroachment (Ruppert): encroaching candidates are replaced by the
// encroached segment's midpoint.
bool insert_steiner(DelaunayTriangulator& builder, BoundaryTracker& tracker,
                    geometry::BoundingBox bounds,
                    const geometry::Triangle& tri, Rng& rng) {
  auto attempt = [&](geometry::Point2 candidate) {
    const auto encroached = tracker.encroached_midpoint(candidate);
    if (encroached.has_value()) {
      if (builder.insert(*encroached)) {
        tracker.register_point(*encroached);
        return true;
      }
      return false;
    }
    return builder.insert(candidate);
  };

  if (std::abs(geometry::orientation(tri.p[0], tri.p[1], tri.p[2])) > 1e-14) {
    const geometry::Point2 cc = geometry::circumcenter(tri);
    if (bounds.contains(cc) && attempt(cc)) return true;
  }
  if (attempt(tri.centroid())) return true;
  const double u = rng.uniform(0.2, 0.8);
  const double v = rng.uniform(0.1, 1.0 - u);
  return attempt(tri.p[0] + u * (tri.p[1] - tri.p[0]) +
                 v * (tri.p[2] - tri.p[0]));
}

}  // namespace

TriMesh refined_delaunay_mesh(geometry::BoundingBox bounds,
                              const RefinementOptions& options) {
  require(options.max_area > 0.0, "refined_delaunay_mesh: max_area <= 0");
  obs::Span span("mesh.refine");
  Rng rng(options.seed);
  DelaunayTriangulator builder(bounds);
  BoundaryTracker tracker(bounds);
  seed_points(builder, tracker, bounds, options.max_area, rng);

  // Pass-based refinement: each pass rebuilds the mesh once, collects every
  // offending element, and inserts one Steiner point per offender. Area
  // violations shrink geometrically per pass, so few passes suffice; angle
  // improvement is best-effort within a small pass budget (circumcenter
  // refinement with segment splitting reaches the high-20s in practice).
  constexpr int kMaxAreaPasses = 48;
  constexpr int kMaxAnglePasses = 12;
  int insertions = 0;

  auto fix_oversized = [&](int passes) {
    for (int pass = 0; pass < passes; ++pass) {
      const TriMesh mesh = builder.finalize();
      std::vector<geometry::Triangle> offenders;
      for (std::size_t t = 0; t < mesh.num_triangles(); ++t)
        if (mesh.area(t) > options.max_area)
          offenders.push_back(mesh.triangle(t));
      if (offenders.empty()) return true;
      bool progressed = false;
      for (const auto& tri : offenders) {
        if (insertions >= options.max_insertions) break;
        if (insert_steiner(builder, tracker, bounds, tri, rng)) {
          ++insertions;
          progressed = true;
        }
      }
      ensure(progressed && insertions < options.max_insertions,
             "refined_delaunay_mesh: cannot satisfy the area constraint");
    }
    return false;
  };

  ensure(fix_oversized(kMaxAreaPasses),
         "refined_delaunay_mesh: area passes exhausted");

  for (int pass = 0; pass < kMaxAnglePasses; ++pass) {
    const TriMesh mesh = builder.finalize();
    std::vector<geometry::Triangle> offenders;
    for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
      const geometry::Triangle tri = mesh.triangle(t);
      if (geometry::min_angle_degrees(tri) < options.min_angle_degrees)
        offenders.push_back(tri);
    }
    if (offenders.empty()) break;
    bool progressed = false;
    for (const auto& tri : offenders) {
      if (insertions >= options.max_insertions) break;
      if (insert_steiner(builder, tracker, bounds, tri, rng)) {
        ++insertions;
        progressed = true;
      }
    }
    // Angle fixes may create fresh area violations; clean them up.
    fix_oversized(8);
    if (!progressed) break;
  }

  TriMesh mesh = builder.finalize();
  const MeshQuality q = mesh.quality();
  ensure(q.max_area <= options.max_area * (1.0 + 1e-9),
         "refined_delaunay_mesh: area constraint not met within budget");
  // Overlap/hole detector: a valid triangulation of the rectangle covers it
  // exactly once, so any Bowyer-Watson corruption shows up here.
  ensure(std::abs(q.total_area - bounds.area()) < 1e-6 * bounds.area(),
         "refined_delaunay_mesh: mesh does not tile the domain");
  obs::counter("sckl.mesh.refine.meshes").add(1);
  obs::gauge("sckl.mesh.refine.triangles")
      .set(static_cast<double>(mesh.num_triangles()));
  return mesh;
}

TriMesh paper_mesh(geometry::BoundingBox bounds, double area_fraction,
                   std::uint64_t seed) {
  RefinementOptions options{};
  options.max_area = bounds.area() * area_fraction;
  options.seed = seed;
  return refined_delaunay_mesh(bounds, options);
}

}  // namespace sckl::mesh
