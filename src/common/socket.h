// Thin POSIX socket helpers for the serve daemon and its clients.
//
// Everything here is blocking-I/O with explicit EINTR handling; readiness
// waits go through poll() with a timeout so accept/read loops can observe
// shutdown flags instead of parking forever in the kernel. Failures throw
// sckl::Error with code kIoTransient (the caller decides whether to retry,
// drop the connection, or give up). No buffering is done at this layer —
// framing (common/frame.h) reads and writes exact byte counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sckl::net {

/// RAII file-descriptor owner. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();
  /// shutdown(SHUT_RDWR): unblocks any thread inside read/write on this fd
  /// without racing the close (used to force-drain stuck connections).
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a unix-domain stream socket at `path`.
/// An existing socket file at `path` is unlinked first (the daemon owns its
/// socket path). Throws on failure, including paths longer than sun_path.
Fd listen_unix(const std::string& path);

/// Creates, binds, and listens on a loopback TCP socket. `port` 0 picks an
/// ephemeral port; the bound port is written to `bound_port`.
Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port);

/// Connects to a unix-domain socket. Throws on failure.
Fd connect_unix(const std::string& path);

/// Connects to 127.0.0.1:`port`. Throws on failure.
Fd connect_tcp(std::uint16_t port);

/// Accepts one connection. Returns an invalid Fd on timeout (nothing
/// arrived within `timeout_ms`) so callers can poll a shutdown flag.
Fd accept_with_timeout(int listen_fd, int timeout_ms);

/// True when `fd` has readable data (or EOF) within `timeout_ms`.
bool wait_readable(int fd, int timeout_ms);

/// Reads exactly `size` bytes. Returns false on clean EOF before the first
/// byte; throws kIoTransient on errors or EOF mid-buffer.
bool read_exact(int fd, void* data, std::size_t size);

/// Writes all `size` bytes, retrying partial writes. Throws kIoTransient on
/// failure (including EPIPE from a peer that went away).
void write_all(int fd, const void* data, std::size_t size);

}  // namespace sckl::net
