#include "common/cli.h"

#include <cstdlib>

#include "common/error.h"

namespace sckl {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long CliFlags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "CliFlags: malformed integer for --" + name);
  return value;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "CliFlags: malformed double for --" + name);
  return value;
}

namespace {

std::size_t get_size(const CliFlags& flags, const std::string& name,
                     std::size_t fallback) {
  const long value = flags.get_int(name, static_cast<long>(fallback));
  require(value >= 0, "CliFlags: --" + name + " must be non-negative");
  return static_cast<std::size_t>(value);
}

}  // namespace

void ExperimentFlagSet::apply(const CliFlags& flags) {
  circuit = flags.get_string("circuit", circuit);
  num_samples = get_size(flags, "samples", num_samples);
  r = get_size(flags, "r", r);
  seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<long>(seed)));
  num_threads = get_size(flags, "threads", num_threads);
  block_samples = get_size(flags, "block-samples", block_samples);
  require(block_samples <= kMaxBlockSamples,
          "ExperimentFlagSet: --block-samples exceeds the maximum of " +
              std::to_string(kMaxBlockSamples));
  store_root = flags.get_string("store", store_root);
  validate = flags.get_bool("validate", validate);
  strict = flags.get_bool("strict", strict);
  fsck = flags.get_bool("fsck", fsck);
  run_id = flags.get_string("run-id", run_id);
  resume = flags.get_bool("resume", resume);
  lease_ttl_ms = static_cast<std::uint64_t>(get_size(flags, "lease-ttl",
      static_cast<std::size_t>(lease_ttl_ms)));
  matrix_free = flags.get_bool("matrix-free", matrix_free);
  aca_tol = flags.get_double("aca-tol", aca_tol);
  require(aca_tol >= 0.0, "ExperimentFlagSet: --aca-tol must be >= 0");
  trace = flags.get_bool("trace", trace);
  trace_json = flags.get_string("trace-json", trace_json);
}

ExperimentFlagSet parse_experiment_flags(const CliFlags& flags,
                                         ExperimentFlagSet defaults) {
  defaults.apply(flags);
  return defaults;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  require(false, "CliFlags: malformed boolean for --" + name);
  return fallback;
}

}  // namespace sckl
