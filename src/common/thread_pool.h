// Minimal fixed-size thread pool for the parallel Monte Carlo engines.
//
// The pool owns its workers for its whole lifetime; `run` dispatches one
// job to every worker simultaneously and blocks until all of them return.
// Work division is the *caller's* job — the intended pattern is dynamic
// (work-stealing style) block claiming through a shared std::atomic
// counter inside the job, which balances load without any per-task queue
// overhead. Determinism is likewise the caller's job: with the
// counter-based samplers every block's content is a pure function of its
// index, so it does not matter which worker claims which block.
//
// Thread-count resolution honors the SCKL_THREADS environment variable so
// CI can force the whole test suite through the parallel paths without
// touching call sites (see resolve_num_threads).
#pragma once

#include <cstddef>
#include <functional>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace sckl {

/// Fixed set of worker threads with barrier-style job dispatch.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (must be >= 1; pass the result of
  /// resolve_num_threads for the user-facing 0 = auto convention).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers. Must not be called while run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs job(worker_index) on every worker — worker 0 is the calling
  /// thread, so a 1-thread pool executes entirely inline — and returns when
  /// all invocations have finished. If any invocation throws, the first
  /// exception (in worker order) is rethrown after the barrier.
  void run(const std::function<void(std::size_t)>& job);

  /// Maps the user-facing thread-count convention to a concrete count:
  /// `requested` > 0 is taken verbatim; 0 means auto — the SCKL_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (minimum 1).
  static std::size_t resolve_num_threads(std::size_t requested);

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;  // current job
  std::uint64_t generation_ = 0;   // bumped per run() to wake the workers
  std::size_t in_flight_ = 0;      // workers still inside the current job
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  // per worker slot, current job
};

}  // namespace sckl
