#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace sckl {
namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

// SplitMix64 finalizer: full-avalanche 64-bit mixer.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += kGolden;
  return mix64(x);
}

// Absorbs one word into a digest: offset by the golden ratio (so absorbing
// zero still perturbs), then re-avalanche. Sequential absorption — not a
// linear xor of the words — keeps (a, b) and (b, a) on unrelated streams.
std::uint64_t absorb(std::uint64_t digest, std::uint64_t word) {
  return mix64(digest ^ (word + kGolden));
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

double standard_normal_quantile(double p) {
  require(p > 0.0 && p < 1.0,
          "standard_normal_quantile: p must be in (0, 1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "uniform_index: n must be positive");
  // Rejection sampling over the largest multiple of n to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t value = (*this)();
  while (value >= limit) value = (*this)();
  return value % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * scale;
  has_cached_normal_ = true;
  return u * scale;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::normal_fill(std::vector<double>& out) {
  for (auto& value : out) value = normal();
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  normal_fill(out);
  return out;
}

Rng Rng::split() {
  // xoshiro256++ long-jump polynomial: advances this stream by 2^192 calls;
  // the pre-jump state seeds the child so parent and child never overlap.
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  Rng child(0);
  for (int i = 0; i < 4; ++i) child.state_[i] = state_[i];

  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  return child;
}

CounterRng::CounterRng(const StreamKey& key)
    : digest_(absorb(absorb(0, key.seed), key.parameter_id)) {}

std::uint64_t CounterRng::bits(std::uint64_t index, std::uint64_t lane) const {
  return absorb(absorb(digest_, index), lane);
}

double CounterRng::uniform(std::uint64_t index, std::uint64_t lane) const {
  // Center each of the 2^53 representable mantissa buckets: the result is
  // strictly inside (0, 1), so the normal quantile below never sees 0 or 1.
  return (static_cast<double>(bits(index, lane) >> 11) + 0.5) * 0x1.0p-53;
}

double CounterRng::normal(std::uint64_t index, std::uint64_t lane) const {
  return standard_normal_quantile(uniform(index, lane));
}

void CounterRng::normal_row(std::uint64_t index, std::uint64_t first_lane,
                            std::size_t count, double* out) const {
  // absorb(absorb(digest, index), lane) with the index round hoisted: the
  // same composition as bits(), so each out[c] is bit-identical to the
  // scalar normal(index, first_lane + c).
  const std::uint64_t row_digest = absorb(digest_, index);
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint64_t word = absorb(row_digest, first_lane + c);
    const double u = (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;
    out[c] = standard_normal_quantile(u);
  }
}

}  // namespace sckl
