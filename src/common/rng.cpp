#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace sckl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "uniform_index: n must be positive");
  // Rejection sampling over the largest multiple of n to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t value = (*this)();
  while (value >= limit) value = (*this)();
  return value % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * scale;
  has_cached_normal_ = true;
  return u * scale;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::normal_fill(std::vector<double>& out) {
  for (auto& value : out) value = normal();
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  normal_fill(out);
  return out;
}

Rng Rng::split() {
  // xoshiro256++ long-jump polynomial: advances this stream by 2^192 calls;
  // the pre-jump state seeds the child so parent and child never overlap.
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  Rng child(0);
  for (int i = 0; i < 4; ++i) child.state_[i] = state_[i];

  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  return child;
}

}  // namespace sckl
