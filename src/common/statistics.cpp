#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"

namespace sckl {
namespace {

// The batch helpers reject NaN/Inf up front with a located diagnostic: a
// single poisoned sample would otherwise turn the whole summary into NaN
// (or, for quantile, silently break the sort ordering).
void require_finite(const std::vector<double>& values, const char* who) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!std::isfinite(values[i]))
      throw Error(std::string(who) + ": input value at index " +
                      std::to_string(i) + " is not finite",
                  ErrorCode::kNonFinite);
}

}  // namespace

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void CovarianceAccumulator::add(double x, double y) {
  ++count_;
  const double n = static_cast<double>(count_);
  const double dx = x - mean_x_;
  mean_x_ += dx / n;
  m2_x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / n;
  m2_y_ += dy * (y - mean_y_);
  cxy_ += dx * (y - mean_y_);
}

double CovarianceAccumulator::covariance() const {
  if (count_ < 2) return 0.0;
  return cxy_ / static_cast<double>(count_ - 1);
}

double CovarianceAccumulator::correlation() const {
  if (count_ < 2 || m2_x_ == 0.0 || m2_y_ == 0.0) return 0.0;
  return cxy_ / std::sqrt(m2_x_ * m2_y_);
}

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  require_finite(values, "quantile");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  require(!values.empty(), "mean_of: empty input");
  require_finite(values, "mean_of");
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  require(values.size() >= 2, "stddev_of: need at least two values");
  require_finite(values, "stddev_of");
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace sckl
