#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"

namespace sckl {
namespace {

// The batch helpers reject NaN/Inf up front with a located diagnostic: a
// single poisoned sample would otherwise turn the whole summary into NaN
// (or, for quantile, silently break the sort ordering).
void require_finite(const std::vector<double>& values, const char* who) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!std::isfinite(values[i]))
      throw Error(std::string(who) + ": input value at index " +
                      std::to_string(i) + " is not finite",
                  ErrorCode::kNonFinite);
}

// std::min/max return the other operand when one side is NaN, which would
// let a poisoned sample vanish from the extremes while the mean turns NaN —
// an inconsistent summary. These propagate the NaN instead.
double nan_aware_min(double a, double b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<double>::quiet_NaN();
  return std::min(a, b);
}

double nan_aware_max(double a, double b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<double>::quiet_NaN();
  return std::max(a, b);
}

std::uint64_t bit_pattern(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = nan_aware_min(min_, x);
  max_ = nan_aware_max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = nan_aware_min(min_, other.min_);
  max_ = nan_aware_max(max_, other.max_);
}

void RunningStats::encode(std::vector<std::uint8_t>& out) const {
  wire::put_u64(out, static_cast<std::uint64_t>(count_));
  wire::put_f64(out, mean_);
  wire::put_f64(out, m2_);
  wire::put_f64(out, min_);
  wire::put_f64(out, max_);
}

RunningStats RunningStats::decode(wire::ByteReader& r) {
  RunningStats s;
  s.count_ = static_cast<std::size_t>(r.u64());
  s.mean_ = r.f64();
  s.m2_ = r.f64();
  s.min_ = r.f64();
  s.max_ = r.f64();
  return s;
}

bool RunningStats::state_equals(const RunningStats& other) const {
  return count_ == other.count_ &&
         bit_pattern(mean_) == bit_pattern(other.mean_) &&
         bit_pattern(m2_) == bit_pattern(other.m2_) &&
         bit_pattern(min_) == bit_pattern(other.min_) &&
         bit_pattern(max_) == bit_pattern(other.max_);
}

QuantileSketch::QuantileSketch(std::size_t capacity)
    : capacity_(capacity),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      levels_(1),
      compactions_(1, 0) {
  require(capacity >= 8, "QuantileSketch: capacity must be >= 8");
}

void QuantileSketch::add(double x) {
  if (!std::isfinite(x))
    throw Error("QuantileSketch: observation is not finite",
                ErrorCode::kNonFinite);
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  levels_[0].push_back(x);
  if (levels_[0].size() >= capacity_) compact(0);
}

void QuantileSketch::compact(std::size_t level) {
  // Move the buffer out before touching levels_: emplacing the next level
  // may reallocate the outer vector and invalidate any reference held here.
  std::vector<double> buf = std::move(levels_[level]);
  levels_[level].clear();
  std::stable_sort(buf.begin(), buf.end());
  if (levels_.size() <= level + 1) {
    levels_.emplace_back();
    compactions_.push_back(0);
  }
  // An odd buffer keeps its smallest item at this level so total weight is
  // preserved exactly; the even remainder promotes every second item, the
  // starting parity alternating with the compaction counter to cancel the
  // selection bias over time.
  std::size_t begin = 0;
  if (buf.size() % 2 != 0) {
    levels_[level].push_back(buf[0]);
    begin = 1;
  }
  const std::size_t offset = begin + (compactions_[level] & 1u);
  for (std::size_t i = offset; i < buf.size(); i += 2)
    levels_[level + 1].push_back(buf[i]);
  ++compactions_[level];
  if (levels_[level + 1].size() >= capacity_) compact(level + 1);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  require(capacity_ == other.capacity_,
          "QuantileSketch::merge: capacity mismatch");
  if (other.count_ == 0) return;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    compactions_.resize(other.levels_.size(), 0);
  }
  for (std::size_t level = 0; level < other.levels_.size(); ++level)
    levels_[level].insert(levels_[level].end(), other.levels_[level].begin(),
                          other.levels_[level].end());
  for (std::size_t level = 0; level < levels_.size(); ++level)
    while (levels_[level].size() >= capacity_) compact(level);
}

double QuantileSketch::quantile(double q) const {
  require(count_ > 0, "QuantileSketch::quantile: empty sketch");
  require(q >= 0.0 && q <= 1.0, "QuantileSketch::quantile: q must be in [0, 1]");
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  std::vector<std::pair<double, std::uint64_t>> items;  // (value, weight)
  for (std::size_t level = 0; level < levels_.size(); ++level)
    for (double v : levels_[level])
      items.emplace_back(v, std::uint64_t{1} << level);
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const double threshold = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (const auto& [value, weight] : items) {
    cumulative += static_cast<double>(weight);
    if (cumulative >= threshold) return value;
  }
  return max_;
}

bool QuantileSketch::state_equals(const QuantileSketch& other) const {
  if (capacity_ != other.capacity_ || count_ != other.count_ ||
      bit_pattern(min_) != bit_pattern(other.min_) ||
      bit_pattern(max_) != bit_pattern(other.max_) ||
      levels_.size() != other.levels_.size() ||
      compactions_ != other.compactions_)
    return false;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() != other.levels_[level].size()) return false;
    for (std::size_t i = 0; i < levels_[level].size(); ++i)
      if (bit_pattern(levels_[level][i]) !=
          bit_pattern(other.levels_[level][i]))
        return false;
  }
  return true;
}

void QuantileSketch::encode(std::vector<std::uint8_t>& out) const {
  wire::put_u64(out, capacity_);
  wire::put_u64(out, count_);
  wire::put_f64(out, min_);
  wire::put_f64(out, max_);
  wire::put_u32(out, static_cast<std::uint32_t>(levels_.size()));
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    wire::put_u64(out, compactions_[level]);
    wire::put_u64(out, levels_[level].size());
    for (double v : levels_[level]) wire::put_f64(out, v);
  }
}

QuantileSketch QuantileSketch::decode(wire::ByteReader& r) {
  const std::uint64_t capacity = r.u64();
  if (capacity < 8 || capacity > (std::uint64_t{1} << 20))
    throw Error("QuantileSketch::decode: implausible capacity " +
                    std::to_string(capacity),
                r.code());
  QuantileSketch sketch{static_cast<std::size_t>(capacity)};
  sketch.count_ = r.u64();
  sketch.min_ = r.f64();
  sketch.max_ = r.f64();
  const std::uint32_t num_levels = r.u32();
  if (num_levels == 0 || num_levels > 64)
    throw Error("QuantileSketch::decode: implausible level count " +
                    std::to_string(num_levels),
                r.code());
  sketch.levels_.assign(num_levels, {});
  sketch.compactions_.assign(num_levels, 0);
  for (std::uint32_t level = 0; level < num_levels; ++level) {
    sketch.compactions_[level] = r.u64();
    const std::uint64_t size = r.u64();
    r.need_count(size, 8, "QuantileSketch level items");
    sketch.levels_[level].reserve(static_cast<std::size_t>(size));
    for (std::uint64_t i = 0; i < size; ++i)
      sketch.levels_[level].push_back(r.f64());
  }
  return sketch;
}

void CovarianceAccumulator::add(double x, double y) {
  ++count_;
  const double n = static_cast<double>(count_);
  const double dx = x - mean_x_;
  mean_x_ += dx / n;
  m2_x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / n;
  m2_y_ += dy * (y - mean_y_);
  cxy_ += dx * (y - mean_y_);
}

double CovarianceAccumulator::covariance() const {
  if (count_ < 2) return 0.0;
  return cxy_ / static_cast<double>(count_ - 1);
}

double CovarianceAccumulator::correlation() const {
  if (count_ < 2 || m2_x_ == 0.0 || m2_y_ == 0.0) return 0.0;
  return cxy_ / std::sqrt(m2_x_ * m2_y_);
}

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  require_finite(values, "quantile");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  require(!values.empty(), "mean_of: empty input");
  require_finite(values, "mean_of");
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  require(values.size() >= 2, "stddev_of: need at least two values");
  require_finite(values, "stddev_of");
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace sckl
