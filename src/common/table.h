// Console table formatting for the bench harness.
//
// Every bench binary prints the rows/series of one paper table or figure;
// TextTable renders them with aligned columns so the output is directly
// comparable with the paper and trivially machine-parsable (also exposed as
// CSV).
#pragma once

#include <string>
#include <vector>

namespace sckl {

/// Accumulates string cells and renders an aligned text table or CSV.
class TextTable {
 public:
  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; its width may differ from the header's.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` significant decimals.
  void add_numeric_row(const std::vector<double>& row, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with space-padded, right-aligned columns.
  std::string to_string() const;

  /// Renders as comma-separated values (header first when present).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (used by bench output).
std::string format_double(double value, int precision = 4);

/// Formats a double in scientific notation.
std::string format_scientific(double value, int precision = 3);

}  // namespace sckl
