// Minimal command-line flag parsing for bench binaries and examples.
//
// Flags use the form --name=value (or bare --name for booleans); anything
// else is a positional argument. Space-separated values are deliberately
// not supported — "--flag positional" would be ambiguous. Unknown flags are
// tolerated (benches accept google-benchmark's own flags alongside ours).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sckl {

/// Parses --key=value style flags with typed accessors and defaults.
class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  /// True when the flag was present (with or without a value).
  bool has(const std::string& name) const;

  /// String flag value, or `fallback` when absent.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// Integer flag value; throws on malformed input.
  long get_int(const std::string& name, long fallback) const;

  /// Double flag value; throws on malformed input.
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or =true/=false/=1/=0.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The flag vocabulary shared by the experiment binaries (ssta_flow,
/// kle_store_tool, bench_table1_ssta, bench_fig6_convergence):
///
///   --circuit=NAME  --samples=N  --r=N  --seed=N  --threads=K
///   --block-samples=N  --store=DIR  --validate  --strict  --fsck
///   --run-id=NAME   --resume     --lease-ttl=MS
///   --matrix-free   --aca-tol=EPS
///   --trace         --trace-json=PATH
///
/// Registered in one place so a new option (e.g. --threads) lands in every
/// binary at once instead of being hand-rolled per main(). Construct with
/// the binary's defaults, then apply() overrides the fields whose flags are
/// present on the command line. ssta::add_experiment_flags() maps a parsed
/// set onto an ExperimentConfig (the ssta layer owns that type).
struct ExperimentFlagSet {
  std::string circuit = "c880";
  std::size_t num_samples = 1000;
  std::size_t r = 25;
  std::uint64_t seed = 1;
  /// 0 = auto (SCKL_THREADS env, else hardware concurrency), 1 = serial.
  std::size_t num_threads = 0;
  /// Monte Carlo block size (--block-samples): samples generated per
  /// staged latent-fill + GEMM in the MC pipeline, and the serve daemon's
  /// per-chunk row count. 0 = each consumer's default. Index-addressed
  /// sampling makes the choice a pure performance knob — results are
  /// bit-identical for any value. apply() rejects values above
  /// kMaxBlockSamples (the serve layer's max_sample_rows ceiling).
  std::size_t block_samples = 0;
  std::string store_root;  // empty = no artifact store
  bool validate = false;
  bool strict = false;  // implies validate at the consumer
  bool fsck = false;    // run store crash recovery on open
  /// Checkpointed Monte Carlo (ssta/mc_run.h): a non-empty run_id selects
  /// the crash-safe runner, writing the run ledger under <store>/mc_runs
  /// (requires --store). resume continues a ledger that already holds
  /// completed leases instead of rejecting it.
  std::string run_id;
  bool resume = false;
  /// Lease time-to-live in milliseconds for checkpointed runs
  /// (--lease-ttl): a claimed lease not completed or heartbeat-extended
  /// within this budget is reclaimed and recomputed. Must be > 0.
  std::uint64_t lease_ttl_ms = 300'000;
  /// Matrix-free KLE solve (--matrix-free): Lanczos runs on the
  /// hierarchical ACA-compressed Galerkin operator instead of assembling
  /// the dense n x n matrix — the scaling path past ~10^4 triangles
  /// (DESIGN.md §14). Eigenvalue-accurate to aca_tol, not bit-stable.
  /// Applies to the fresh-solve path; store fetches are unaffected.
  bool matrix_free = false;
  /// Relative ACA block tolerance for --matrix-free (--aca-tol). 0 = the
  /// solver default (core::MatfreeOptions::aca_tolerance). Must be >= 0.
  double aca_tol = 0.0;
  /// Observability (obs::TraceSession reads both; a non-empty trace_json
  /// implies tracing, as does the SCKL_TRACE environment variable).
  bool trace = false;
  std::string trace_json;  // empty = no JSON export

  /// Largest accepted --block-samples value. Matches the serve layer's
  /// default max_sample_rows cap so one request/block can never outgrow
  /// what a server is willing to materialize.
  static constexpr std::size_t kMaxBlockSamples = std::size_t{1} << 20;

  /// Overrides fields from the flags present in `flags`.
  void apply(const CliFlags& flags);
};

/// Parses the shared experiment flags over `defaults`.
ExperimentFlagSet parse_experiment_flags(const CliFlags& flags,
                                         ExperimentFlagSet defaults = {});

}  // namespace sckl
