// Minimal command-line flag parsing for bench binaries and examples.
//
// Flags use the form --name=value (or bare --name for booleans); anything
// else is a positional argument. Space-separated values are deliberately
// not supported — "--flag positional" would be ambiguous. Unknown flags are
// tolerated (benches accept google-benchmark's own flags alongside ours).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sckl {

/// Parses --key=value style flags with typed accessors and defaults.
class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  /// True when the flag was present (with or without a value).
  bool has(const std::string& name) const;

  /// String flag value, or `fallback` when absent.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// Integer flag value; throws on malformed input.
  long get_int(const std::string& name, long fallback) const;

  /// Double flag value; throws on malformed input.
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or =true/=false/=1/=0.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sckl
