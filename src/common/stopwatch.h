// Wall-clock stopwatch used for the speedup measurements in Table 1 and the
// bench harness. Monotonic (steady_clock) so results are immune to NTP jumps.
#pragma once

#include <chrono>

namespace sckl {

/// Simple monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sckl
