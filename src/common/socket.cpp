#include "common/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace sckl::net {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno),
              ErrorCode::kIoTransient);
}

// Every socket fd in the process is close-on-exec. The chaos harness (and
// any embedder) forks workers; an inherited listener would keep the
// endpoint alive after the daemon dies, and an inherited connection would
// hold peers open. Prefer the atomic flags; fall back to fcntl where
// SOCK_CLOEXEC/accept4 are unavailable.
[[maybe_unused]] void set_cloexec(int fd) {
  if (fd < 0) return;
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

int socket_cloexec(int domain) {
#ifdef SOCK_CLOEXEC
  return ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  set_cloexec(fd);
  return fd;
#endif
}

int accept_cloexec(int listen_fd) {
#if defined(SOCK_CLOEXEC) && defined(__linux__)
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
#else
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  set_cloexec(fd);
  return fd;
#endif
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("socket: unix path too long: " + path,
                ErrorCode::kPrecondition);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(socket_cloexec(AF_UNIX));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  // Only a *stale* socket file may be unlinked. If a peer accepts a probe
  // connection the path belongs to a live daemon — silently unlinking it
  // would steal the endpoint: existing clients keep talking to the orphaned
  // listener while new ones reach the usurper.
  {
    Fd probe(socket_cloexec(AF_UNIX));
    if (probe.valid() &&
        ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw Error("socket: '" + path +
                      "' is in use by a live listener; refusing to steal it",
                  ErrorCode::kPrecondition);
  }
  ::unlink(path.c_str());  // stale (or absent): the daemon owns its path
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    raise_errno("bind('" + path + "')");
  if (::listen(fd.get(), 64) != 0) raise_errno("listen('" + path + "')");
  return fd;
}

Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port) {
  Fd fd(socket_cloexec(AF_INET));
  if (!fd.valid()) raise_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    raise_errno("bind(tcp:" + std::to_string(port) + ")");
  if (::listen(fd.get(), 64) != 0) raise_errno("listen(tcp)");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    raise_errno("getsockname");
  bound_port = ntohs(addr.sin_port);
  return fd;
}

Fd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("socket: unix path too long: " + path,
                ErrorCode::kPrecondition);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(socket_cloexec(AF_UNIX));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    raise_errno("connect('" + path + "')");
  return fd;
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(socket_cloexec(AF_INET));
  if (!fd.valid()) raise_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    raise_errno("connect(tcp:" + std::to_string(port) + ")");
  return fd;
}

Fd accept_with_timeout(int listen_fd, int timeout_ms) {
  pollfd p{listen_fd, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll(listen)");
    }
    if (ready == 0) return Fd();  // timeout
    const int client = accept_cloexec(listen_fd);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      raise_errno("accept");
    }
    return Fd(client);
  }
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll(read)");
    }
    return ready > 0;
  }
}

bool read_exact(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("read");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw Error("socket: connection closed mid-message (" +
                      std::to_string(got) + " of " + std::to_string(size) +
                      " bytes)",
                  ErrorCode::kIoTransient);
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the process
    // with SIGPIPE — the daemon must survive any client disconnect.
    const ssize_t n =
        ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace sckl::net
