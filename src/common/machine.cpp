#include "common/machine.h"

#include <cstdlib>
#include <fstream>
#include <thread>

namespace sckl {

MachineContext read_machine_context() {
  MachineContext context;
  context.hardware_threads = std::thread::hardware_concurrency();
  const char* env = std::getenv("SCKL_THREADS");
  if (env != nullptr) context.sckl_threads = env;
  std::ifstream governor(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (governor) {
    std::string value;
    governor >> value;  // operator>> trims the trailing newline
    context.governor = value;
  }
  return context;
}

std::string machine_context_json_fields(const MachineContext& context) {
  std::string out = "\"hardware_threads\": ";
  out += std::to_string(context.hardware_threads);
  out += ", \"sckl_threads\": \"";
  out += context.sckl_threads;  // env var contents; benches set it themselves
  out += "\", \"governor\": \"";
  out += context.governor;
  out += "\"";
  return out;
}

}  // namespace sckl
