// Length-prefixed binary framing for the serve protocol.
//
// Every message in either direction is one frame:
//
//   offset  size  field
//   0       4     magic "SCKF"
//   4       4     u32 protocol version (kProtocolVersion)
//   8       4     u32 message type
//   12      4     u32 deadline_ms (requests: 0 = none; replies: 0)
//   16      8     u64 request id (echoed verbatim in the reply)
//   24      8     u64 payload size P in bytes
//   32      P     payload (message-specific, see serve/protocol.h)
//   32+P    4     u32 CRC-32 (IEEE 802.3) of the payload bytes
//
// read_frame() deliberately does NOT reject version mismatches: the header
// layout is stable across versions, so the server can still parse the
// request id of a newer client's frame and answer with a *typed* version-
// mismatch error instead of dropping the connection silently. What it does
// reject, with ErrorCode::kProtocol, is structural garbage: bad magic,
// payload sizes above the caller's limit (a hostile length prefix must
// never cause a giant allocation), and CRC mismatches.
#pragma once

#include <cstdint>
#include <vector>

namespace sckl::wire {

/// "SCKF" interpreted as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x464B4353u;

/// Version of the serve wire protocol (header + payload schemas).
/// v3: distributed Monte Carlo — ClaimLeases / PublishPartial / Heartbeat /
/// RunStatus message types, and RunSsta gained distributed / mc_block_size /
/// mc_lease_blocks in the request.
/// v2: RunSsta gained run_id/resume in the request and the tail quantiles
/// (p99, p99.9) + resumed_leases in the reply.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Fixed size of the encoded header (magic through payload size).
inline constexpr std::size_t kFrameHeaderBytes = 32;

/// Everything in a frame except the payload bytes themselves.
struct FrameHeader {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t type = 0;
  std::uint32_t deadline_ms = 0;
  std::uint64_t request_id = 0;
  std::uint64_t payload_size = 0;
};

/// Serializes and writes one complete frame (header + payload + CRC).
/// `header.payload_size` is taken from `payload`, not the struct field.
/// Throws sckl::Error(kIoTransient) on socket failure.
void write_frame(int fd, const FrameHeader& header,
                 const std::vector<std::uint8_t>& payload);

/// Reads one complete frame. Returns false on clean EOF at a frame
/// boundary. Throws sckl::Error with:
///   kProtocol     bad magic, payload size > max_payload, CRC mismatch
///   kIoTransient  socket error or EOF mid-frame
/// Version mismatches are NOT rejected here — check header.version.
bool read_frame(int fd, std::size_t max_payload, FrameHeader& header,
                std::vector<std::uint8_t>& payload);

}  // namespace sckl::wire
