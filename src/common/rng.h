// Deterministic random number generation.
//
// Rng wraps the xoshiro256++ generator (Blackman & Vigna). We implement the
// generator directly (rather than using std::mt19937_64) so that sampled
// streams are bit-reproducible across standard libraries, which keeps the
// Monte Carlo regression tests and experiment tables stable. Normal variates
// are produced by the Marsaglia polar method for the same reason:
// std::normal_distribution is implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

namespace sckl {

/// Reproducible uniform/normal random number generator (xoshiro256++ core).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed initial state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64-bit output (satisfies UniformRandomBitGenerator).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (mean 0, variance 1), Marsaglia polar method.
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fills `out` with independent standard normal variates.
  void normal_fill(std::vector<double>& out);

  /// Returns n independent standard normal variates.
  std::vector<double> normal_vector(std::size_t n);

  /// Creates an independent generator stream by jumping the state; useful for
  /// giving each statistical parameter its own stream as the paper's samplers
  /// require (the P_j matrices are mutually independent).
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sckl
