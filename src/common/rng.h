// Deterministic random number generation.
//
// Two generators live here, for two different jobs:
//
//  - Rng wraps the xoshiro256++ generator (Blackman & Vigna): a fast
//    *sequential* stream for code whose draw order is inherently serial
//    (mesh jitter, synthetic netlists, PCE regression sampling). We
//    implement the generator directly (rather than using std::mt19937_64)
//    so that sampled streams are bit-reproducible across standard
//    libraries. Normal variates use the Marsaglia polar method for the same
//    reason: std::normal_distribution is implementation-defined.
//
//  - CounterRng is a *counter-based* (stateless) generator in the
//    Philox/SplitMix tradition: every output is a pure function of
//    (StreamKey, sample index, lane). Nothing is mutated between draws, so
//    draw i is bit-identical no matter which thread produces it, in which
//    order, or how the sample range is partitioned into blocks. This is the
//    generator behind the index-addressed FieldSampler API and the parallel
//    Monte Carlo SSTA engine.
//
// Stream-derivation scheme (the contract the SSTA engine relies on):
//   * One Monte Carlo run seeded S gives statistical parameter j (0 = L,
//     1 = W, 2 = Vt, 3 = tox) the stream StreamKey{S, j}. Auxiliary
//     consumers (LHS designs, validation sweeps) use parameter_id values
//     disjoint from the parameter indices of the same run, or a different
//     seed.
//   * Within a stream, the draw for global sample index i, latent lane c
//     (column of the independent-normal matrix: c < N_g for the Cholesky
//     sampler, c < r for the KLE sampler) is normal(i, c).
//   * Derivation: a 64-bit stream digest is computed by absorbing seed and
//     parameter_id through the SplitMix64 finalizer; each draw then
//     hash-combines (index, lane) into the digest with two more finalizer
//     rounds and maps the 64-bit result to a normal variate through the
//     inverse normal CDF. The finalizer's avalanche makes neighboring
//     (index, lane) pairs statistically independent.
#pragma once

#include <cstdint>
#include <vector>

namespace sckl {

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Requires p in (0, 1).
double standard_normal_quantile(double p);

/// Reproducible uniform/normal random number generator (xoshiro256++ core).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed initial state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64-bit output (satisfies UniformRandomBitGenerator).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (mean 0, variance 1), Marsaglia polar method.
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fills `out` with independent standard normal variates.
  void normal_fill(std::vector<double>& out);

  /// Returns n independent standard normal variates.
  std::vector<double> normal_vector(std::size_t n);

  /// Creates an independent generator stream by jumping the state. NOTE:
  /// the child stream depends on how many draws and splits preceded the
  /// call, so split() is unsuitable wherever reproducibility across code
  /// paths matters — the Monte Carlo pipeline instead derives its four
  /// parameter streams from StreamKey{seed, parameter_id} via CounterRng,
  /// which has no call-order dependence at all.
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Identifies one logical random stream: all draws for one statistical
/// parameter of one Monte Carlo run (see the stream-derivation scheme in
/// the file comment). Equal keys produce bit-identical streams.
struct StreamKey {
  std::uint64_t seed = 0;
  std::uint64_t parameter_id = 0;

  friend bool operator==(const StreamKey& a, const StreamKey& b) {
    return a.seed == b.seed && a.parameter_id == b.parameter_id;
  }
};

/// Counter-based stateless generator: output = f(key, index, lane). All
/// methods are const and the object is freely shared across threads.
class CounterRng {
 public:
  /// Precomputes the stream digest for `key`; cheap enough to construct
  /// per block.
  explicit CounterRng(const StreamKey& key);

  /// Raw 64-bit output for (index, lane).
  std::uint64_t bits(std::uint64_t index, std::uint64_t lane) const;

  /// Uniform double strictly inside (0, 1) with 53 bits of randomness.
  double uniform(std::uint64_t index, std::uint64_t lane) const;

  /// Standard normal variate (mean 0, variance 1) via the inverse CDF —
  /// one draw per (index, lane), no rejection, no carried state.
  double normal(std::uint64_t index, std::uint64_t lane) const;

  /// Batched row of normal draws: out[c] = normal(index, first_lane + c)
  /// for c in [0, count), bit-identical to the scalar calls. The per-index
  /// digest round is hoisted out of the lane loop, which is what makes
  /// block-at-a-time latent generation cheaper than `count` scalar calls.
  void normal_row(std::uint64_t index, std::uint64_t first_lane,
                  std::size_t count, double* out) const;

 private:
  std::uint64_t digest_;
};

}  // namespace sckl
