#include "common/frame.h"

#include <string>

#include "common/error.h"
#include "common/socket.h"
#include "common/wire.h"

namespace sckl::wire {

void write_frame(int fd, const FrameHeader& header,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size() + 4);
  put_u32(bytes, kFrameMagic);
  put_u32(bytes, header.version);
  put_u32(bytes, header.type);
  put_u32(bytes, header.deadline_ms);
  put_u64(bytes, header.request_id);
  put_u64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  put_u32(bytes, crc32(payload.data(), payload.size()));
  net::write_all(fd, bytes.data(), bytes.size());
}

bool read_frame(int fd, std::size_t max_payload, FrameHeader& header,
                std::vector<std::uint8_t>& payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  if (!net::read_exact(fd, raw, sizeof(raw))) return false;

  ByteReader r(raw, sizeof(raw), ErrorCode::kProtocol, "frame header");
  if (r.u32() != kFrameMagic)
    throw Error("frame: bad magic (not a sckl_serve frame)",
                ErrorCode::kProtocol);
  header.version = r.u32();
  header.type = r.u32();
  header.deadline_ms = r.u32();
  header.request_id = r.u64();
  header.payload_size = r.u64();
  if (header.payload_size > max_payload)
    throw Error("frame: declared payload of " +
                    std::to_string(header.payload_size) +
                    " bytes exceeds the limit of " +
                    std::to_string(max_payload),
                ErrorCode::kProtocol);

  payload.resize(static_cast<std::size_t>(header.payload_size));
  if (header.payload_size > 0 &&
      !net::read_exact(fd, payload.data(), payload.size()))
    throw Error("frame: connection closed before the payload",
                ErrorCode::kIoTransient);

  std::uint8_t crc_raw[4];
  if (!net::read_exact(fd, crc_raw, sizeof(crc_raw)))
    throw Error("frame: connection closed before the checksum",
                ErrorCode::kIoTransient);
  ByteReader crc_reader(crc_raw, sizeof(crc_raw), ErrorCode::kProtocol,
                        "frame checksum");
  if (crc_reader.u32() != crc32(payload.data(), payload.size()))
    throw Error("frame: payload checksum mismatch", ErrorCode::kProtocol);
  return true;
}

}  // namespace sckl::wire
