#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace sckl {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      out << std::string(widths[i] - row[i].size(), ' ') << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < header_.size(); ++i)
      total += widths[i] + (i > 0 ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_scientific(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace sckl
