// Streaming statistics accumulators.
//
// RunningStats implements Welford's numerically stable online algorithm for
// mean/variance, extended with min/max. CovarianceAccumulator tracks the
// joint second moment of two streams. Both are used by the Monte Carlo SSTA
// harness (per-endpoint delay statistics) and by the field-sampler
// validation tests (empirical vs. analytic covariance).
#pragma once

#include <cstddef>
#include <vector>

namespace sckl {

/// Online mean/variance/min/max over a stream of doubles (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats();
};

/// Online covariance between two paired streams.
class CovarianceAccumulator {
 public:
  /// Adds one paired observation (x, y).
  void add(double x, double y);

  std::size_t count() const { return count_; }

  /// Unbiased sample covariance (n-1 denominator); 0 when count < 2.
  double covariance() const;

  /// Pearson correlation coefficient; 0 when either variance is 0.
  double correlation() const;

 private:
  std::size_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;
  double m2_y_ = 0.0;
  double cxy_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics. The input is copied and partially sorted.
/// Throws sckl::Error (code kNonFinite) when any input is NaN/Inf.
double quantile(std::vector<double> values, double q);

/// Mean of a vector; throws on empty input or non-finite values
/// (kNonFinite, naming the offending index).
double mean_of(const std::vector<double>& values);

/// Unbiased standard deviation of a vector; throws when size < 2 or any
/// value is non-finite.
double stddev_of(const std::vector<double>& values);

}  // namespace sckl
