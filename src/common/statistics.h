// Streaming statistics accumulators.
//
// RunningStats implements Welford's numerically stable online algorithm for
// mean/variance, extended with min/max. CovarianceAccumulator tracks the
// joint second moment of two streams. QuantileSketch is a fixed-size,
// deterministic, mergeable quantile summary (a simplified KLL compactor
// hierarchy) for full-distribution reporting — tail quantiles such as p99 /
// p99.9 timing yield — where retaining every sample would be unaffordable.
// All are used by the Monte Carlo SSTA harness (per-endpoint delay
// statistics, worst-delay distributions) and by the field-sampler
// validation tests (empirical vs. analytic covariance).
//
// Checkpointing contract: RunningStats and QuantileSketch expose bit-exact
// binary serialization (encode/decode over common/wire primitives) and
// state_equals(), so the Monte Carlo run ledger (ssta/mc_run.h) can persist
// per-lease partials and a resumed run can reproduce the exact accumulator
// state of an uninterrupted one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/wire.h"

namespace sckl {

/// Online mean/variance/min/max over a stream of doubles (Welford).
///
/// NaN guard: a NaN observation deliberately poisons the whole summary —
/// mean/variance turn NaN through the Welford update, and min/max are
/// propagated explicitly (a plain std::min/max would silently drop the NaN
/// and report clean extremes over corrupt data). merge() propagates the
/// poison the same way.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

  /// Appends the exact accumulator state (count, mean, M2, min, max) as
  /// little-endian wire primitives; doubles travel as IEEE-754 bit patterns,
  /// so decode() reproduces this object bit for bit.
  void encode(std::vector<std::uint8_t>& out) const;

  /// Inverse of encode(); throws with the reader's error code on truncation.
  static RunningStats decode(wire::ByteReader& r);

  /// Bitwise state comparison (count and the exact bit patterns of mean,
  /// M2, min, max) — the resume invariant of the Monte Carlo run ledger.
  bool state_equals(const RunningStats& other) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats();
};

/// Fixed-size mergeable quantile summary (simplified KLL sketch).
///
/// A hierarchy of buffers ("levels"); an item at level i represents 2^i
/// observations. add() appends to level 0; a full level is compacted:
/// sorted, every second item promoted to the next level, the selection
/// parity alternating with a per-level compaction counter. The counter —
/// not a random coin — drives the parity, so the sketch is a pure
/// deterministic function of its operation sequence: the same adds and
/// merges in the same order always yield the identical state, which is what
/// lets a resumed Monte Carlo run reproduce an uninterrupted run's sketch
/// bit for bit (blocks are folded in block order; see ssta/mc_run.h).
///
/// Accuracy: while count() <= capacity() the sketch is exact (everything
/// still sits in level 0); beyond that, quantile() carries the usual KLL
/// rank error of O(levels / capacity). capacity 128 holds 10^6 samples in
/// ~13 levels at well under 2% rank error — ample for p99/p99.9 reporting.
/// Non-finite observations are rejected (kNonFinite): one NaN would corrupt
/// the sort ordering silently.
class QuantileSketch {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  /// `capacity` is the per-level buffer size; >= 8 and identical across
  /// every sketch that will be merged together.
  explicit QuantileSketch(std::size_t capacity = kDefaultCapacity);

  /// Adds one observation; throws sckl::Error(kNonFinite) on NaN/Inf.
  void add(double x);

  /// Deterministically folds `other` into this sketch (capacities must
  /// match): per level, other's buffer is appended after ours, then full
  /// levels compact bottom-up.
  void merge(const QuantileSketch& other);

  /// Total observations represented (sum of item weights).
  std::uint64_t count() const { return count_; }

  std::size_t capacity() const { return capacity_; }

  /// Approximate q-quantile (exact while count() <= capacity()): the
  /// smallest retained value whose cumulative weight reaches q * count().
  /// q = 0 / q = 1 return the exact min / max. Throws on an empty sketch
  /// or q outside [0, 1].
  double quantile(double q) const;

  /// Exact extremes; +inf / -inf when empty (as RunningStats).
  double min() const { return min_; }
  double max() const { return max_; }

  /// Bitwise state comparison: capacity, count, extremes, every level's
  /// compaction counter and item bit patterns.
  bool state_equals(const QuantileSketch& other) const;

  /// Bit-exact binary serialization over common/wire primitives.
  void encode(std::vector<std::uint8_t>& out) const;

  /// Inverse of encode(); validates capacity and level shapes with the
  /// reader's error code.
  static QuantileSketch decode(wire::ByteReader& r);

 private:
  void compact(std::size_t level);

  std::size_t capacity_;
  std::uint64_t count_ = 0;
  double min_;
  double max_;
  std::vector<std::vector<double>> levels_;  // level i items weigh 2^i
  std::vector<std::uint64_t> compactions_;   // parity source per level
};

/// Online covariance between two paired streams.
class CovarianceAccumulator {
 public:
  /// Adds one paired observation (x, y).
  void add(double x, double y);

  std::size_t count() const { return count_; }

  /// Unbiased sample covariance (n-1 denominator); 0 when count < 2.
  double covariance() const;

  /// Pearson correlation coefficient; 0 when either variance is 0.
  double correlation() const;

 private:
  std::size_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;
  double m2_y_ = 0.0;
  double cxy_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics. The input is copied and partially sorted.
/// Throws sckl::Error (code kNonFinite) when any input is NaN/Inf.
double quantile(std::vector<double> values, double q);

/// Mean of a vector; throws on empty input or non-finite values
/// (kNonFinite, naming the offending index).
double mean_of(const std::vector<double>& values);

/// Unbiased standard deviation of a vector; throws when size < 2 or any
/// value is non-finite.
double stddev_of(const std::vector<double>& values);

}  // namespace sckl
