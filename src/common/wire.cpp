#include "common/wire.h"

#include <array>
#include <bit>

namespace sckl::wire {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_blob(std::vector<std::uint8_t>& out,
              const std::vector<std::uint8_t>& bytes) {
  put_u64(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void ByteReader::need(std::size_t n, const char* what) {
  if (size_ - pos_ < n)
    throw Error(std::string(context_) + ": truncated input (while reading " +
                    what + ")",
                code_);
}

void ByteReader::need_count(std::uint64_t count, std::size_t elem_bytes,
                            const char* what) {
  if (elem_bytes == 0) return;
  if (count > remaining() / elem_bytes)
    throw Error(std::string(context_) + ": declared count " +
                    std::to_string(count) + " of " + what + " exceeds the " +
                    std::to_string(remaining()) + " bytes remaining",
                code_);
}

std::uint8_t ByteReader::u8() {
  need(1, "u8");
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::string() {
  const std::uint32_t len = u32();
  need(len, "string body");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> ByteReader::blob() {
  const std::uint64_t len = u64();
  need(static_cast<std::size_t>(len), "blob body");
  std::vector<std::uint8_t> bytes(data_ + pos_,
                                  data_ + pos_ + static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return bytes;
}

}  // namespace sckl::wire
