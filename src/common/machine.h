// Machine context recorded alongside benchmark results.
//
// Perf trajectories (BENCH_*.json) are only comparable across runs when the
// record says what hardware produced them: core count, the SCKL_THREADS
// override in effect, and the cpufreq governor (a "powersave" box can be 2x
// slower than the same silicon under "performance"). One helper builds the
// JSON fields so bench_serve and bench_micro_kle can never drift apart on
// what context they record.
#pragma once

#include <string>

namespace sckl {

/// Hardware/environment facts that shift benchmark numbers between boxes.
struct MachineContext {
  unsigned hardware_threads = 0;  // std::thread::hardware_concurrency()
  std::string sckl_threads;       // SCKL_THREADS env var; "" when unset
  std::string governor;  // cpu0 cpufreq scaling governor; "" when unknown
};

/// Reads the current machine's context. Never throws: a missing cpufreq
/// sysfs node (containers, non-Linux) simply leaves governor empty.
MachineContext read_machine_context();

/// The context as JSON object fields (no surrounding braces), e.g.
///   "hardware_threads": 8, "sckl_threads": "4", "governor": "performance"
/// for splicing into a larger JSON-lines benchmark record.
std::string machine_context_json_fields(const MachineContext& context);

}  // namespace sckl
