// Error handling for the sckl library.
//
// All precondition/invariant failures throw sckl::Error (derived from
// std::runtime_error). Library code uses require() for argument checking on
// public entry points and ensure() for internal invariants; both carry a
// formatted message with the failing context.
//
// Every Error additionally carries an ErrorCode so callers can react to the
// *class* of failure without parsing messages — the resilience layer
// (src/robust/, the artifact store's retry loop, solve_kle's backend
// fallback) dispatches on these codes: transient I/O errors are retried,
// corrupt artifacts are quarantined, eigensolver non-convergence triggers the
// dense fallback, and everything else propagates. with_context() chains a
// pipeline-stage prefix onto an in-flight error so a failure deep inside
// linalg reports which stage of the pipeline it killed.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sckl {

/// Machine-readable classification of an Error. Codes describe how a caller
/// may *react* (retry, fall back, quarantine, give up), not where the error
/// was thrown — with_context() preserves the code while the message grows.
enum class ErrorCode : int {
  kGeneric = 0,          // unclassified failure
  kPrecondition,         // caller violated a documented precondition
  kInvariant,            // internal invariant broke (library bug or fault)
  kIoTransient,          // I/O failure that a bounded retry may fix
  kCorruptArtifact,      // checksum/format violation — retrying cannot help
  kNotPositiveDefinite,  // Cholesky met a non-positive pivot
  kNoConvergence,        // iterative solver exhausted its budget
  kNonFinite,            // NaN/Inf reached a numeric entry point
  kHealthCheckFailed,    // robust::HealthReport::throw_if_fatal tripped
  kProtocol,             // malformed wire frame/payload — peer bug, drop it
  kVersionMismatch,      // peer speaks an unsupported protocol version
  kOverloaded,           // admission control rejected the request; back off
  kDeadlineExceeded,     // request deadline expired before completion
};

/// Short stable name of a code ("io_transient", "no_convergence", ...).
const char* to_string(ErrorCode code);

/// Exception type thrown by every sckl component on contract violation or
/// unrecoverable numerical failure (e.g. Cholesky on a non-PSD matrix).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

  /// Returns a copy whose message is prefixed with `stage`, preserving the
  /// code. Use in catch blocks to record which pipeline stage an error
  /// passed through: `throw e.with_context("solve_kle")` yields
  /// "solve_kle: <original message>".
  Error with_context(std::string_view stage) const {
    std::string chained;
    chained.reserve(stage.size() + 2 + std::string_view(what()).size());
    chained.append(stage).append(": ").append(what());
    return Error(chained, code_);
  }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] void raise(std::string_view kind, std::string_view message,
                        ErrorCode code);
}  // namespace detail

/// Validates a caller-supplied precondition; throws sckl::Error when violated.
inline void require(bool condition, std::string_view message) {
  if (!condition)
    detail::raise("precondition violated", message, ErrorCode::kPrecondition);
}

/// Validates an internal invariant; throws sckl::Error when violated.
inline void ensure(bool condition, std::string_view message) {
  if (!condition)
    detail::raise("invariant violated", message, ErrorCode::kInvariant);
}

}  // namespace sckl
