// Error handling for the sckl library.
//
// All precondition/invariant failures throw sckl::Error (derived from
// std::runtime_error). Library code uses require() for argument checking on
// public entry points and ensure() for internal invariants; both carry a
// formatted message with the failing context.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sckl {

/// Exception type thrown by every sckl component on contract violation or
/// unrecoverable numerical failure (e.g. Cholesky on a non-PSD matrix).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise(std::string_view kind, std::string_view message);
}  // namespace detail

/// Validates a caller-supplied precondition; throws sckl::Error when violated.
inline void require(bool condition, std::string_view message) {
  if (!condition) detail::raise("precondition violated", message);
}

/// Validates an internal invariant; throws sckl::Error when violated.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) detail::raise("invariant violated", message);
}

}  // namespace sckl
