#include "common/thread_pool.h"

#include <cstdlib>

#include "common/error.h"

namespace sckl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  require(num_threads >= 1, "ThreadPool: need at least one thread");
  errors_.assign(num_threads, nullptr);
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 1; w < num_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      (*job)(worker_index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_[worker_index] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    done_.notify_one();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    in_flight_ = workers_.size();
    ++generation_;
    for (auto& slot : errors_) slot = nullptr;
  }
  wake_.notify_all();

  // Worker 0 is the calling thread: a 1-thread pool spawns nothing and
  // never touches the condition variables on the hot path.
  try {
    job(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    errors_[0] = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return in_flight_ == 0; });
    job_ = nullptr;
  }
  for (const auto& error : errors_)
    if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::resolve_num_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SCKL_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value > 0)
      return static_cast<std::size_t>(value);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<std::size_t>(hardware) : 1;
}

}  // namespace sckl
