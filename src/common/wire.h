// Little-endian byte-stream primitives shared by every binary codec in the
// repository: the on-disk KLE artifact format (store/kle_io) and the serve
// daemon's request/response protocol (serve/protocol) encode with the same
// put_* writers and decode with the same bounds-checked ByteReader, so the
// two formats can never drift apart on endianness or double representation
// (doubles always travel as their IEEE-754 bit patterns in a u64).
//
// ByteReader throws sckl::Error on any read past the end of the buffer; the
// error *code* is chosen by the owner (kCorruptArtifact for artifact files,
// kProtocol for network frames) so the existing reaction machinery — store
// quarantine, serve typed error replies — keeps dispatching on codes alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace sckl::wire {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

// --- little-endian appenders ----------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Stored as the IEEE-754 bit pattern in a u64 — bit-exact round trips.
void put_f64(std::vector<std::uint8_t>& out, double v);
/// u32 length prefix + raw bytes.
void put_string(std::vector<std::uint8_t>& out, const std::string& s);
/// u64 length prefix + raw bytes (for opaque payloads such as artifacts).
void put_blob(std::vector<std::uint8_t>& out,
              const std::vector<std::uint8_t>& bytes);

// --- bounds-checked little-endian reader ----------------------------------

/// Sequential reader over a fixed buffer. Every accessor validates that the
/// requested bytes exist and throws sckl::Error(code) otherwise, with the
/// owning format's context string in the message.
class ByteReader {
 public:
  /// `context` must outlive the reader (pass a string literal).
  ByteReader(const std::uint8_t* data, std::size_t size, ErrorCode code,
             const char* context)
      : data_(data), size_(size), code_(code), context_(context) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string string();                 ///< u32 length prefix + bytes
  std::vector<std::uint8_t> blob();     ///< u64 length prefix + bytes

  std::size_t remaining() const { return size_ - pos_; }

  /// The error code this reader throws with (lets shared decode helpers
  /// raise their own validation errors under the owning format's code).
  ErrorCode code() const { return code_; }

  /// Throws unless exactly `n` more bytes exist (used before bulk copies).
  void need(std::size_t n, const char* what);

  /// Throws unless `count` elements of `elem_bytes` each fit in the
  /// remaining buffer. Validates by division, never by multiplying the
  /// attacker-controlled count — a hostile count near 2^64 must fail here,
  /// not wrap `count * elem_bytes` to a small value that passes need() and
  /// then feeds a giant resize(count).
  void need_count(std::uint64_t count, std::size_t elem_bytes,
                  const char* what);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  ErrorCode code_;
  const char* context_;
};

}  // namespace sckl::wire
