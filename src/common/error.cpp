#include "common/error.h"

namespace sckl::detail {

void raise(std::string_view kind, std::string_view message) {
  std::string what;
  what.reserve(kind.size() + 2 + message.size());
  what.append(kind).append(": ").append(message);
  throw Error(what);
}

}  // namespace sckl::detail
