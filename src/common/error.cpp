#include "common/error.h"

namespace sckl {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kPrecondition: return "precondition";
    case ErrorCode::kInvariant: return "invariant";
    case ErrorCode::kIoTransient: return "io_transient";
    case ErrorCode::kCorruptArtifact: return "corrupt_artifact";
    case ErrorCode::kNotPositiveDefinite: return "not_positive_definite";
    case ErrorCode::kNoConvergence: return "no_convergence";
    case ErrorCode::kNonFinite: return "non_finite";
    case ErrorCode::kHealthCheckFailed: return "health_check_failed";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kVersionMismatch: return "version_mismatch";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

namespace detail {

void raise(std::string_view kind, std::string_view message, ErrorCode code) {
  std::string what;
  what.reserve(kind.size() + 2 + message.size());
  what.append(kind).append(": ").append(message);
  throw Error(what, code);
}

}  // namespace detail
}  // namespace sckl
