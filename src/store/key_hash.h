// Content-hash keys for solved-KLE artifacts.
//
// A KLE is fully determined by (kernel, die, mesh, quadrature rule, number of
// eigenpairs) — Algorithm 2 of the paper consumes the decomposition without
// caring how it was produced. KleArtifactConfig captures exactly those
// fields; artifact_key() folds a canonical little-endian encoding of them
// through 64-bit FNV-1a and finishes with the SplitMix64 mixer, giving a
// stable, platform-independent key. Two configs share a key iff every field
// is bit-identical (doubles are hashed by IEEE-754 bit pattern, so -0.0 and
// 0.0 differ — callers should normalize if they care).
//
// Deliberately excluded from the key: the eigensolver backend and the
// Lanczos seed. Those change the floating-point noise of the solve, not the
// mathematical object being approximated; including them would fragment the
// cache across equivalent solves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/kle_solver.h"
#include "geometry/point2.h"
#include "kernels/covariance_kernel.h"
#include "mesh/tri_mesh.h"

namespace sckl::store {

/// How to (re)build the mesh of an artifact on a cache miss.
struct MeshSpec {
  enum class Kind : std::uint32_t {
    kStructuredCross = 0,    // structured_mesh_for_count, cross split
    kStructuredDiagonal = 1, // structured_mesh_for_count, diagonal split
    kPaperRefined = 2,       // mesh::paper_mesh (Delaunay + refinement)
  };

  Kind kind = Kind::kStructuredCross;
  std::uint64_t target_triangles = 1546;  // structured kinds: count target
  double area_fraction = 0.001;           // kPaperRefined: max area fraction
  std::uint64_t mesher_seed = 1;          // kPaperRefined: refinement seed

  /// Materializes the mesh on `die`.
  mesh::TriMesh build(const geometry::BoundingBox& die) const;
};

/// Everything that identifies one solved KLE artifact.
struct KleArtifactConfig {
  std::string kernel_id;              // family name, e.g. "gaussian"
  std::vector<double> kernel_params;  // family parameters, e.g. {c}
  geometry::BoundingBox die = geometry::BoundingBox::unit_die();
  MeshSpec mesh;
  core::QuadratureRule quadrature = core::QuadratureRule::kCentroid1;
  std::uint64_t num_eigenpairs = 50;
};

/// Incremental FNV-1a 64-bit hasher over raw bytes with a SplitMix64
/// finalizer. Exposed for reuse (and so tests can pin the avalanche).
class ContentHasher {
 public:
  void update(const void* data, std::size_t size);
  void update_u32(std::uint32_t v);
  void update_u64(std::uint64_t v);
  void update_double(double v);  // by IEEE-754 bit pattern
  void update_string(const std::string& s);  // length-prefixed

  /// SplitMix64-mixed digest of everything fed so far.
  std::uint64_t digest() const;

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// 64-bit content key of an artifact configuration.
std::uint64_t artifact_key(const KleArtifactConfig& config);

/// The key as a fixed-width lowercase hex string (the on-disk file stem).
std::string key_string(std::uint64_t key);

/// Best-effort structural descriptor of a library kernel: family id plus
/// exact parameter values for every type in kernels/kernel_library.h. For
/// unknown kernel types falls back to (name(), {}), which still keys
/// uniquely as long as name() encodes the parameters.
void describe_kernel(const kernels::CovarianceKernel& kernel,
                     std::string& id, std::vector<double>& params);

/// Inverse of describe_kernel for the structurally-described families
/// ("gaussian", "exponential", "separable_l1", "matern", "linear_cone",
/// "radial_magnitude", "spherical"). Lets a remote peer name a kernel by
/// (id, params) alone — the serve daemon rebuilds it from a SolveKle
/// request. Throws sckl::Error(kPrecondition) for an unknown id or a wrong
/// parameter count, so a bad request yields a typed error, not a crash.
std::unique_ptr<kernels::CovarianceKernel> make_kernel(
    const std::string& id, const std::vector<double>& params);

}  // namespace sckl::store
