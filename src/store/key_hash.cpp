#include "store/key_hash.h"

#include <bit>
#include <cstring>

#include "common/error.h"
#include "kernels/kernel_library.h"
#include "mesh/refine.h"
#include "mesh/structured_mesher.h"

namespace sckl::store {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

mesh::TriMesh MeshSpec::build(const geometry::BoundingBox& die) const {
  switch (kind) {
    case Kind::kStructuredCross:
      return mesh::structured_mesh_for_count(
          die, target_triangles, mesh::StructuredPattern::kCross);
    case Kind::kStructuredDiagonal:
      return mesh::structured_mesh_for_count(
          die, target_triangles, mesh::StructuredPattern::kDiagonal);
    case Kind::kPaperRefined:
      return mesh::paper_mesh(die, area_fraction, mesher_seed);
  }
  throw Error("MeshSpec::build: unknown mesh kind");
}

void ContentHasher::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= kFnvPrime;
  }
}

void ContentHasher::update_u32(std::uint32_t v) {
  // Feed bytes LSB-first regardless of host endianness so keys are
  // platform-stable.
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  update(bytes, sizeof(bytes));
}

void ContentHasher::update_u64(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  update(bytes, sizeof(bytes));
}

void ContentHasher::update_double(double v) {
  update_u64(std::bit_cast<std::uint64_t>(v));
}

void ContentHasher::update_string(const std::string& s) {
  update_u64(s.size());
  update(s.data(), s.size());
}

std::uint64_t ContentHasher::digest() const { return splitmix64(state_); }

std::uint64_t artifact_key(const KleArtifactConfig& config) {
  ContentHasher h;
  // Each field group is preceded by a tag byte so that adjacent
  // variable-length fields cannot alias (e.g. kernel_id bytes vs params).
  h.update_u32('K');
  h.update_string(config.kernel_id);
  h.update_u64(config.kernel_params.size());
  for (double p : config.kernel_params) h.update_double(p);
  h.update_u32('D');
  h.update_double(config.die.min.x);
  h.update_double(config.die.min.y);
  h.update_double(config.die.max.x);
  h.update_double(config.die.max.y);
  h.update_u32('M');
  h.update_u32(static_cast<std::uint32_t>(config.mesh.kind));
  h.update_u64(config.mesh.target_triangles);
  h.update_double(config.mesh.area_fraction);
  h.update_u64(config.mesh.mesher_seed);
  h.update_u32('Q');
  h.update_u32(static_cast<std::uint32_t>(config.quadrature));
  h.update_u32('E');
  h.update_u64(config.num_eigenpairs);
  return h.digest();
}

std::string key_string(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xF];
    key >>= 4;
  }
  return out;
}

void describe_kernel(const kernels::CovarianceKernel& kernel,
                     std::string& id, std::vector<double>& params) {
  using namespace kernels;
  if (const auto* k = dynamic_cast<const GaussianKernel*>(&kernel)) {
    id = "gaussian";
    params = {k->c()};
  } else if (const auto* k = dynamic_cast<const ExponentialKernel*>(&kernel)) {
    id = "exponential";
    params = {k->c()};
  } else if (const auto* k = dynamic_cast<const SeparableL1Kernel*>(&kernel)) {
    id = "separable_l1";
    params = {k->c()};
  } else if (const auto* k = dynamic_cast<const MaternKernel*>(&kernel)) {
    id = "matern";
    params = {k->b(), k->s()};
  } else if (const auto* k = dynamic_cast<const LinearConeKernel*>(&kernel)) {
    id = "linear_cone";
    params = {k->rho()};
  } else {
    // RadialMagnitude/Spherical and user kernels: name() embeds the
    // parameters, which is sufficient for keying.
    id = kernel.name();
    params.clear();
  }
}

std::unique_ptr<kernels::CovarianceKernel> make_kernel(
    const std::string& id, const std::vector<double>& params) {
  using namespace kernels;
  const auto want = [&](std::size_t n) {
    require(params.size() == n,
            "make_kernel: kernel '" + id + "' takes " + std::to_string(n) +
                " parameter(s), got " + std::to_string(params.size()));
  };
  if (id == "gaussian") {
    want(1);
    return std::make_unique<GaussianKernel>(params[0]);
  }
  if (id == "exponential") {
    want(1);
    return std::make_unique<ExponentialKernel>(params[0]);
  }
  if (id == "separable_l1") {
    want(1);
    return std::make_unique<SeparableL1Kernel>(params[0]);
  }
  if (id == "matern") {
    want(2);
    return std::make_unique<MaternKernel>(params[0], params[1]);
  }
  if (id == "linear_cone") {
    want(1);
    return std::make_unique<LinearConeKernel>(params[0]);
  }
  if (id == "radial_magnitude") {
    want(1);
    return std::make_unique<RadialMagnitudeKernel>(params[0]);
  }
  if (id == "spherical") {
    want(1);
    return std::make_unique<SphericalKernel>(params[0]);
  }
  throw Error("make_kernel: unknown kernel id '" + id + "'",
              ErrorCode::kPrecondition);
}

}  // namespace sckl::store
