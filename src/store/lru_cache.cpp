#include "store/lru_cache.h"

#include <cstdio>

namespace sckl::store {

std::string to_string(const CacheStats& stats) {
  char buffer[200];
  std::snprintf(buffer, sizeof(buffer),
                "hits=%llu misses=%llu evictions=%llu oversized=%llu "
                "entries=%zu bytes=%zu/%zu hit_rate=%.1f%%",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.oversized_rejects),
                stats.entries, stats.bytes, stats.byte_budget,
                100.0 * stats.hit_rate());
  return buffer;
}

}  // namespace sckl::store
