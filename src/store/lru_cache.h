// Thread-safe, byte-budgeted LRU cache fronting the on-disk artifact store.
//
// Values are held by shared_ptr so a caller can keep using an artifact after
// it has been evicted; eviction only drops the cache's reference. All
// operations take one std::mutex — artifacts are coarse objects fetched a
// handful of times per process, so a sharded design would be over-
// engineering here. Hit/miss/eviction counters are exported via CacheStats
// for the serving-telemetry story (and asserted by the unit tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.h"

namespace sckl::store {

/// Counters describing cache behaviour since construction (or clear()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t oversized_rejects = 0;  // puts larger than the whole budget
  std::size_t entries = 0;      // current resident entry count
  std::size_t bytes = 0;        // current resident byte charge
  std::size_t byte_budget = 0;  // configured capacity

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// One-line human-readable rendering of the counters.
std::string to_string(const CacheStats& stats);

/// LRU cache keyed by `Key`, holding shared_ptr<const Value>, evicting by
/// least-recent use once the summed byte charges exceed the budget.
template <typename Key, typename Value>
class LruCache {
 public:
  /// A zero budget disables caching entirely (every put is a no-op).
  explicit LruCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and marks it most-recently-used, or nullptr
  /// (counting a miss).
  std::shared_ptr<const Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts (or replaces) `value` with the given byte charge, then evicts
  /// least-recently-used entries until the budget holds. An entry larger
  /// than the whole budget passes through uncached — flushing every resident
  /// entry to make room for something that still wouldn't fit would only
  /// trade one guaranteed miss for many; the rejection is counted in
  /// CacheStats::oversized_rejects.
  void put(const Key& key, std::shared_ptr<const Value> value,
           std::size_t bytes) {
    require(value != nullptr, "LruCache::put: value must not be null");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      order_.erase(it->second);
      index_.erase(it);
    }
    if (bytes > byte_budget_) {
      ++oversized_rejects_;
      return;
    }
    order_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = order_.begin();
    bytes_ += bytes;
    ++insertions_;
    while (bytes_ > byte_budget_ && order_.size() > 1) {
      const Entry& victim = order_.back();
      bytes_ -= victim.bytes;
      index_.erase(victim.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Drops every entry; counters keep accumulating.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.clear();
    index_.clear();
    bytes_ = 0;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.insertions = insertions_;
    s.oversized_rejects = oversized_rejects_;
    s.entries = order_.size();
    s.bytes = bytes_;
    s.byte_budget = byte_budget_;
    return s;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex_;
  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t oversized_rejects_ = 0;
};

}  // namespace sckl::store
